//! Umbrella crate for the Velus-rs reproduction workspace.
//!
//! This package exists to host the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`). The actual library
//! surface lives in the `velus` crate and its substrates; see the
//! workspace `README.md` for an architectural overview.
//!
//! Re-exports the top-level compiler API for convenience so examples can
//! simply `use velus_repro as velus;` if they wish.

pub use velus::*;

/// Returns the absolute path of the repository root (the workspace root).
///
/// Used by examples and integration tests to locate `benchmarks/*.lus`.
pub fn repo_root() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Returns the path of a named benchmark program under `benchmarks/`.
///
/// ```
/// let p = velus_repro::benchmark_path("tracker");
/// assert!(p.ends_with("benchmarks/tracker.lus"));
/// ```
pub fn benchmark_path(name: &str) -> std::path::PathBuf {
    repo_root().join("benchmarks").join(format!("{name}.lus"))
}
