//! Normalization: typed full Lustre → N-Lustre (§2.1).
//!
//! Normalization "ensures that every fby expression and node instantiation
//! occurs in a dedicated equation and not nested arbitrarily within an
//! expression", and that merges and muxes appear only at the top of
//! control expressions. It is justified by referential transparency: a
//! variable can always be replaced by its defining expression and
//! conversely.
//!
//! Concretely, this pass:
//!
//! * extracts nested `fby`s, node calls, and control expressions in
//!   expression position into fresh equations;
//! * desugars `e1 -> e2` into `if h then e1 else e2` with one fresh
//!   `h = true fby false` equation per clock (shared across arrows on the
//!   same clock);
//! * copies `fby`-defined *outputs* through a fresh local (the translation
//!   to Obc requires memories to be locals — outputs are returned from the
//!   `step` method's environment);
//! * assigns every generated equation the clock of the expression it was
//!   extracted from.
//!
//! The traversal is id-based over the elaborator's [`TArena`]: before
//! normalizing a node, a linear scan over the node's contiguous arena
//! slice counts how many equations and locals extraction will create, so
//! every output vector is sized once up front.

use velus_common::{FreshGen, Ident, PreMarks, Span, SpanMap};
use velus_nlustre::ast::{CExpr, Equation, Expr, Node, Program, VarDecl};
use velus_nlustre::clock::Clock;
use velus_nlustre::SemError;
use velus_ops::Ops;

use crate::elab::{TArena, TEquation, TExpr, TExprId, TNode, TProgram};

struct Norm<'a, O: Ops> {
    ta: &'a TArena<O>,
    fresh: FreshGen,
    new_locals: Vec<VarDecl<O>>,
    new_eqs: Vec<Equation<O>>,
    /// Shared `true fby false` initialization flags, per clock. A node
    /// rarely has more than a handful of distinct clocks, so a linear
    /// scan over a `Vec` beats hashing `Clock`s.
    init_flags: Vec<(Clock, Ident)>,
    /// Span of the source equation currently being normalized; every
    /// extracted equation inherits it.
    current_span: Span,
    /// Defined variable -> source span, for the node's `SpanMap` entry.
    eq_spans: Vec<(Ident, Span)>,
    /// Memory variable -> `pre` span, for the node's [`PreMarks`] entry
    /// (the initialization analysis only inspects these memories).
    pre_marks: Vec<(Ident, Span)>,
}

impl<'a, O: Ops> Norm<'a, O> {
    fn fresh_var(&mut self, prefix: &str, ty: O::Ty, ck: Clock) -> Ident {
        let x = self.fresh.fresh(prefix);
        self.new_locals.push(VarDecl { name: x, ty, ck });
        x
    }

    /// The initialization flag `h = true fby false` for clock `ck`.
    fn init_flag(&mut self, ck: &Clock) -> Ident {
        if let Some((_, h)) = self.init_flags.iter().find(|(c, _)| c == ck) {
            return *h;
        }
        let h = self.fresh_var("h", O::bool_type(), ck.clone());
        self.eq_spans.push((h, self.current_span));
        self.new_eqs.push(Equation::Fby {
            x: h,
            ck: ck.clone(),
            init: truthy::<O>(true),
            rhs: Expr::Const(truthy::<O>(false)),
        });
        self.init_flags.push((ck.clone(), h));
        h
    }

    /// Normalizes `e` in control-expression position at clock `ck`.
    fn norm_cexpr(&mut self, e: TExprId, ck: &Clock) -> Result<CExpr<O>, SemError> {
        let ta = self.ta;
        match &ta[e] {
            TExpr::If(c, t, f) => Ok(CExpr::If(
                self.norm_expr(*c, ck)?,
                Box::new(self.norm_cexpr(*t, ck)?),
                Box::new(self.norm_cexpr(*f, ck)?),
            )),
            TExpr::Merge(x, t, f) => Ok(CExpr::Merge(
                *x,
                Box::new(self.norm_cexpr(*t, &ck.clone().on(*x, true))?),
                Box::new(self.norm_cexpr(*f, &ck.clone().on(*x, false))?),
            )),
            TExpr::Arrow(l, r) => {
                let h = self.init_flag(ck);
                Ok(CExpr::If(
                    Expr::Var(h, O::bool_type()),
                    Box::new(self.norm_cexpr(*l, ck)?),
                    Box::new(self.norm_cexpr(*r, ck)?),
                ))
            }
            _ => Ok(CExpr::Expr(self.norm_expr(e, ck)?)),
        }
    }

    /// Normalizes the arguments of a call into owned N-Lustre
    /// expressions.
    fn norm_args(
        &mut self,
        args: crate::elab::TRange,
        ck: &Clock,
    ) -> Result<Vec<Expr<O>>, SemError> {
        let ta = self.ta;
        let ids = ta.args(args);
        let mut out = Vec::with_capacity(ids.len());
        for &a in ids {
            out.push(self.norm_expr(a, ck)?);
        }
        Ok(out)
    }

    /// Normalizes `e` in simple-expression position at clock `ck`,
    /// extracting anything that is not a simple expression.
    fn norm_expr(&mut self, e: TExprId, ck: &Clock) -> Result<Expr<O>, SemError> {
        let ta = self.ta;
        match &ta[e] {
            TExpr::Const(c) => Ok(Expr::Const(c.clone())),
            TExpr::Var(x, ty) => Ok(Expr::Var(*x, ty.clone())),
            TExpr::Unop(op, e1, ty) => Ok(Expr::Unop(
                *op,
                Box::new(self.norm_expr(*e1, ck)?),
                ty.clone(),
            )),
            TExpr::Binop(op, l, r, ty) => Ok(Expr::Binop(
                *op,
                Box::new(self.norm_expr(*l, ck)?),
                Box::new(self.norm_expr(*r, ck)?),
                ty.clone(),
            )),
            TExpr::When(e1, x, k) => {
                let parent = match ck {
                    Clock::On(p, y, k2) if y == x && k2 == k => p.as_ref().clone(),
                    _ => {
                        return Err(SemError::ClockError(format!(
                            "normalization: `when {x}` at clock {ck}"
                        )))
                    }
                };
                Ok(Expr::When(Box::new(self.norm_expr(*e1, &parent)?), *x, *k))
            }
            TExpr::Fby(init, e1) => {
                let e1 = *e1;
                let init = init.clone();
                let rhs = self.norm_expr(e1, ck)?;
                let ty = ta.ty_of(e1);
                let x = self.fresh_var("fby", ty.clone(), ck.clone());
                self.eq_spans.push((x, self.current_span));
                if let Some(ps) = ta.pre_span(e) {
                    self.pre_marks.push((x, ps));
                }
                self.new_eqs.push(Equation::Fby {
                    x,
                    ck: ck.clone(),
                    init,
                    rhs,
                });
                Ok(Expr::Var(x, ty))
            }
            TExpr::Call(f, args, out_ty) => {
                let (f, args, out_ty) = (*f, *args, out_ty.clone());
                let args = self.norm_args(args, ck)?;
                let x = self.fresh_var("out", out_ty.clone(), ck.clone());
                self.eq_spans.push((x, self.current_span));
                self.new_eqs.push(Equation::Call {
                    xs: vec![x],
                    ck: ck.clone(),
                    node: f,
                    args,
                });
                Ok(Expr::Var(x, out_ty))
            }
            TExpr::If(..) | TExpr::Merge(..) | TExpr::Arrow(..) => {
                let rhs = self.norm_cexpr(e, ck)?;
                let ty = ta.ty_of(e);
                let x = self.fresh_var("v", ty.clone(), ck.clone());
                self.eq_spans.push((x, self.current_span));
                self.new_eqs.push(Equation::Def {
                    x,
                    ck: ck.clone(),
                    rhs,
                });
                Ok(Expr::Var(x, ty))
            }
        }
    }
}

/// A boolean constant of the operator interface.
fn truthy<O: Ops>(b: bool) -> O::Const {
    let lit = velus_ops::Literal::Bool(b);
    O::const_of_literal(&lit, &O::bool_type())
        .expect("every operator interface supplies boolean constants")
}

/// Counts, in one scan of the node's arena slice, how many equations
/// extraction can create: each `fby`, call, and control expression
/// becomes at most one fresh equation (plus up to one init flag per
/// arrow). The counts bound the fresh-equation and fresh-local vectors
/// so normalization never regrows them.
fn count_extractions<O: Ops>(ta: &TArena<O>, node: &TNode<O>) -> usize {
    ta.exprs_in(node.exprs)
        .iter()
        .filter(|e| {
            matches!(
                e,
                TExpr::Fby(..)
                    | TExpr::Call(..)
                    | TExpr::If(..)
                    | TExpr::Merge(..)
                    | TExpr::Arrow(..)
            )
        })
        .count()
}

fn normalize_node<O: Ops>(
    tnode: TNode<O>,
    ta: &TArena<O>,
    spans: &mut SpanMap,
    marks: &mut PreMarks,
) -> Result<Node<O>, SemError> {
    let extractions = count_extractions(ta, &tnode);
    let mut norm = Norm::<O> {
        ta,
        fresh: FreshGen::new("n"),
        new_locals: Vec::with_capacity(extractions),
        new_eqs: Vec::with_capacity(extractions),
        init_flags: Vec::new(),
        current_span: Span::DUMMY,
        eq_spans: Vec::with_capacity(tnode.eqs.len() + extractions + 1),
        pre_marks: Vec::new(),
    };
    let output_names: Vec<Ident> = tnode.outputs.iter().map(|d| d.name).collect();
    let mut eqs = Vec::with_capacity(tnode.eqs.len() + 1);

    for TEquation { lhs, ck, rhs, span } in &tnode.eqs {
        norm.current_span = *span;
        for &x in lhs {
            norm.eq_spans.push((x, *span));
        }
        if lhs.len() > 1 {
            // Tuple call.
            match ta[*rhs] {
                TExpr::Call(f, args, _) => {
                    let args = norm.norm_args(args, ck)?;
                    eqs.push(Equation::Call {
                        xs: lhs.clone(),
                        ck: ck.clone(),
                        node: f,
                        args,
                    });
                }
                _ => {
                    return Err(SemError::Malformed(
                        "tuple equation without a call survived elaboration".to_owned(),
                    ))
                }
            }
            continue;
        }
        let x = lhs[0];
        match &ta[*rhs] {
            // Keep top-level fbys as fby equations; copy through a fresh
            // local when the target is an output.
            TExpr::Fby(init, e1) => {
                let pre = ta.pre_span(*rhs);
                let (init, e1) = (init.clone(), *e1);
                let rhs = norm.norm_expr(e1, ck)?;
                let ty = ta.ty_of(e1);
                if output_names.contains(&x) {
                    let m = norm.fresh_var("mem", ty.clone(), ck.clone());
                    norm.eq_spans.push((m, *span));
                    // The mark follows the memory: the copy `x = m` is
                    // what the initialization analysis sees reading it.
                    if let Some(ps) = pre {
                        norm.pre_marks.push((m, ps));
                    }
                    eqs.push(Equation::Fby {
                        x: m,
                        ck: ck.clone(),
                        init,
                        rhs,
                    });
                    eqs.push(Equation::Def {
                        x,
                        ck: ck.clone(),
                        rhs: CExpr::Expr(Expr::Var(m, ty)),
                    });
                } else {
                    if let Some(ps) = pre {
                        norm.pre_marks.push((x, ps));
                    }
                    eqs.push(Equation::Fby {
                        x,
                        ck: ck.clone(),
                        init,
                        rhs,
                    });
                }
            }
            // Keep top-level single-output calls as call equations.
            TExpr::Call(f, args, _) => {
                let (f, args) = (*f, *args);
                let args = norm.norm_args(args, ck)?;
                eqs.push(Equation::Call {
                    xs: vec![x],
                    ck: ck.clone(),
                    node: f,
                    args,
                });
            }
            _ => {
                let rhs = norm.norm_cexpr(*rhs, ck)?;
                eqs.push(Equation::Def {
                    x,
                    ck: ck.clone(),
                    rhs,
                });
            }
        }
    }

    let mut eq_spans = velus_common::ident_map_with_capacity(norm.eq_spans.len());
    eq_spans.extend(norm.eq_spans);
    spans.insert_node(
        tnode.name,
        velus_common::NodeSpans {
            span: tnode.span,
            eqs: eq_spans,
        },
    );
    for (v, ps) in norm.pre_marks {
        marks.record(tnode.name, v, ps);
    }
    eqs.extend(norm.new_eqs);
    let mut locals = tnode.locals;
    locals.extend(norm.new_locals);
    Ok(Node {
        name: tnode.name,
        inputs: tnode.inputs,
        outputs: tnode.outputs,
        locals,
        eqs,
    })
}

/// Normalizes a typed program into N-Lustre. `ta` is the arena the
/// elaborator built the program's expressions into.
///
/// The result satisfies the structural invariants of
/// [`velus_nlustre::ast`] by construction and is re-validated by the
/// pipeline's type and clock checks.
///
/// Also returns the [`SpanMap`] recording where every node and equation
/// came from (fresh equations inherit the span of the source equation
/// they were extracted from) — the bridge that lets scheduling,
/// checking and validation failures point at real source positions —
/// and the [`PreMarks`] naming the memory variables that stand for a
/// surface `pre` (with the `pre`'s own span), the input of the semantic
/// initialization analysis.
///
/// # Errors
///
/// Internal clock inconsistencies (which indicate an elaboration bug) are
/// reported as [`SemError`]s rather than panics.
pub fn normalize<O: Ops>(
    prog: TProgram<O>,
    ta: &TArena<O>,
) -> Result<(Program<O>, SpanMap, PreMarks), SemError> {
    let mut spans = SpanMap::new();
    let mut marks = PreMarks::new();
    let nodes = prog
        .nodes
        .into_iter()
        .map(|n| normalize_node(n, ta, &mut spans, &mut marks))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((Program::new(nodes), spans, marks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use velus_nlustre::{clockcheck, typecheck};
    use velus_ops::ClightOps;

    fn compile(src: &str) -> Program<ClightOps> {
        let (prog, _) = crate::compile_to_nlustre::<ClightOps>(src).expect("compiles");
        prog
    }

    #[test]
    fn nested_fby_is_extracted() {
        let prog = compile(
            "node f(x: int) returns (y: int)
             let y = (0 fby x) + x; tel",
        );
        let node = &prog.nodes[0];
        assert_eq!(node.eqs.len(), 2);
        assert!(node.eqs.iter().any(|e| matches!(e, Equation::Fby { .. })));
        typecheck::check_program(&prog).unwrap();
        clockcheck::check_program_clocks(&prog).unwrap();
    }

    #[test]
    fn arrow_introduces_shared_init_flag() {
        let prog = compile(
            "node f(x: int) returns (y, z: int)
             let y = 0 -> x; z = 1 -> x; tel",
        );
        let node = &prog.nodes[0];
        // One h = true fby false shared by both arrows.
        let fbys = node
            .eqs
            .iter()
            .filter(|e| matches!(e, Equation::Fby { .. }))
            .count();
        assert_eq!(fbys, 1, "{node}");
        typecheck::check_program(&prog).unwrap();
        clockcheck::check_program_clocks(&prog).unwrap();
    }

    #[test]
    fn pre_desugars_to_default_fby() {
        let (prog, warnings) = crate::compile_to_nlustre::<ClightOps>(
            "node f(x: int) returns (y: int)
             let y = pre x; tel",
        )
        .unwrap();
        assert!(warnings.iter().any(|d| d.message.contains("pre")));
        let node = &prog.nodes[0];
        assert!(node.eqs.iter().any(|e| matches!(e, Equation::Fby { .. })));
    }

    #[test]
    fn initialized_pre_does_not_warn() {
        let (_, warnings) = crate::compile_to_nlustre::<ClightOps>(
            "node f(x: int) returns (y: int)
             let y = x -> pre y + x; tel",
        )
        .unwrap();
        assert!(warnings.is_empty(), "{warnings}");
    }

    #[test]
    fn fby_defined_output_gets_a_copy() {
        let prog = compile(
            "node f(x: int) returns (y: int)
             let y = 0 fby (y + x); tel",
        );
        let node = &prog.nodes[0];
        // Output y is defined by a Def that copies the fresh memory.
        let def_y = node.eqs.iter().find_map(|e| match e {
            Equation::Def { x, rhs, .. } if x.as_str() == "y" => Some(rhs),
            _ => None,
        });
        assert!(def_y.is_some(), "{node}");
        velus_obc::translate::translate_program(&prog).unwrap();
    }

    #[test]
    fn nested_calls_are_flattened() {
        let prog = compile(
            "node id(a: int) returns (b: int) let b = a; tel
             node g(x: int) returns (y: int) let y = id(id(x)) + 1; tel",
        );
        let g = prog.node(velus_common::Ident::new("g")).unwrap();
        let calls = g
            .eqs
            .iter()
            .filter(|e| matches!(e, Equation::Call { .. }))
            .count();
        assert_eq!(calls, 2, "{g}");
        typecheck::check_program(&prog).unwrap();
    }

    #[test]
    fn control_in_expression_position_is_extracted() {
        let prog = compile(
            "node f(c: bool; x: int) returns (y: int)
             let y = (if c then x else 0) + 1; tel",
        );
        let node = &prog.nodes[0];
        assert_eq!(node.eqs.len(), 2, "{node}");
        typecheck::check_program(&prog).unwrap();
        clockcheck::check_program_clocks(&prog).unwrap();
    }

    #[test]
    fn normalized_programs_validate() {
        let prog = compile(
            "node counter(ini, inc: int; res: bool) returns (n: int)
             let
               n = if (true fby false) or res then ini else (0 fby n) + inc;
             tel
             node d_integrator(gamma: int) returns (speed, position: int)
             let
               speed = counter(0, gamma, false);
               position = counter(0, speed, false);
             tel",
        );
        typecheck::check_program(&prog).unwrap();
        clockcheck::check_program_clocks(&prog).unwrap();
        assert_eq!(prog.nodes.len(), 2);
        // counter first (callee), d_integrator second.
        assert_eq!(prog.nodes[0].name.as_str(), "counter");
    }
}
