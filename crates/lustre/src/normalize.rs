//! Normalization: typed full Lustre → N-Lustre (§2.1).
//!
//! Normalization "ensures that every fby expression and node instantiation
//! occurs in a dedicated equation and not nested arbitrarily within an
//! expression", and that merges and muxes appear only at the top of
//! control expressions. It is justified by referential transparency: a
//! variable can always be replaced by its defining expression and
//! conversely.
//!
//! Concretely, this pass:
//!
//! * extracts nested `fby`s, node calls, and control expressions in
//!   expression position into fresh equations;
//! * desugars `e1 -> e2` into `if h then e1 else e2` with one fresh
//!   `h = true fby false` equation per clock (shared across arrows on the
//!   same clock);
//! * copies `fby`-defined *outputs* through a fresh local (the translation
//!   to Obc requires memories to be locals — outputs are returned from the
//!   `step` method's environment);
//! * assigns every generated equation the clock of the expression it was
//!   extracted from.

use std::collections::HashMap;

use velus_common::{FreshGen, Ident, Span, SpanMap};
use velus_nlustre::ast::{CExpr, Equation, Expr, Node, Program, VarDecl};
use velus_nlustre::clock::Clock;
use velus_nlustre::SemError;
use velus_ops::Ops;

use crate::elab::{TEquation, TExpr, TNode, TProgram};

struct Norm<O: Ops> {
    fresh: FreshGen,
    new_locals: Vec<VarDecl<O>>,
    new_eqs: Vec<Equation<O>>,
    /// Shared `true fby false` initialization flags, per clock.
    init_flags: HashMap<Clock, Ident>,
    /// Span of the source equation currently being normalized; every
    /// extracted equation inherits it.
    current_span: Span,
    /// Defined variable -> source span, for the node's `SpanMap` entry.
    eq_spans: Vec<(Ident, Span)>,
}

impl<O: Ops> Norm<O> {
    fn fresh_var(&mut self, prefix: &str, ty: O::Ty, ck: Clock) -> Ident {
        let x = self.fresh.fresh(prefix);
        self.new_locals.push(VarDecl { name: x, ty, ck });
        x
    }

    /// The initialization flag `h = true fby false` for clock `ck`.
    fn init_flag(&mut self, ck: &Clock) -> Ident {
        if let Some(&h) = self.init_flags.get(ck) {
            return h;
        }
        let h = self.fresh_var("h", O::bool_type(), ck.clone());
        self.eq_spans.push((h, self.current_span));
        self.new_eqs.push(Equation::Fby {
            x: h,
            ck: ck.clone(),
            init: truthy::<O>(true),
            rhs: Expr::Const(truthy::<O>(false)),
        });
        self.init_flags.insert(ck.clone(), h);
        h
    }

    /// Normalizes `e` in control-expression position at clock `ck`.
    fn norm_cexpr(&mut self, e: &TExpr<O>, ck: &Clock) -> Result<CExpr<O>, SemError> {
        match e {
            TExpr::If(c, t, f) => Ok(CExpr::If(
                self.norm_expr(c, ck)?,
                Box::new(self.norm_cexpr(t, ck)?),
                Box::new(self.norm_cexpr(f, ck)?),
            )),
            TExpr::Merge(x, t, f) => Ok(CExpr::Merge(
                *x,
                Box::new(self.norm_cexpr(t, &ck.clone().on(*x, true))?),
                Box::new(self.norm_cexpr(f, &ck.clone().on(*x, false))?),
            )),
            TExpr::Arrow(l, r) => {
                let h = self.init_flag(ck);
                Ok(CExpr::If(
                    Expr::Var(h, O::bool_type()),
                    Box::new(self.norm_cexpr(l, ck)?),
                    Box::new(self.norm_cexpr(r, ck)?),
                ))
            }
            other => Ok(CExpr::Expr(self.norm_expr(other, ck)?)),
        }
    }

    /// Normalizes `e` in simple-expression position at clock `ck`,
    /// extracting anything that is not a simple expression.
    fn norm_expr(&mut self, e: &TExpr<O>, ck: &Clock) -> Result<Expr<O>, SemError> {
        match e {
            TExpr::Const(c) => Ok(Expr::Const(c.clone())),
            TExpr::Var(x, ty) => Ok(Expr::Var(*x, ty.clone())),
            TExpr::Unop(op, e1, ty) => Ok(Expr::Unop(
                *op,
                Box::new(self.norm_expr(e1, ck)?),
                ty.clone(),
            )),
            TExpr::Binop(op, l, r, ty) => Ok(Expr::Binop(
                *op,
                Box::new(self.norm_expr(l, ck)?),
                Box::new(self.norm_expr(r, ck)?),
                ty.clone(),
            )),
            TExpr::When(e1, x, k) => {
                let parent = match ck {
                    Clock::On(p, y, k2) if y == x && k2 == k => p.as_ref().clone(),
                    _ => {
                        return Err(SemError::ClockError(format!(
                            "normalization: `when {x}` at clock {ck}"
                        )))
                    }
                };
                Ok(Expr::When(Box::new(self.norm_expr(e1, &parent)?), *x, *k))
            }
            TExpr::Fby(init, e1) => {
                let rhs = self.norm_expr(e1, ck)?;
                let x = self.fresh_var("fby", e1.ty(), ck.clone());
                self.eq_spans.push((x, self.current_span));
                self.new_eqs.push(Equation::Fby {
                    x,
                    ck: ck.clone(),
                    init: init.clone(),
                    rhs,
                });
                Ok(Expr::Var(x, e1.ty()))
            }
            TExpr::Call(f, args, outs) => {
                let args = args
                    .iter()
                    .map(|a| self.norm_expr(a, ck))
                    .collect::<Result<Vec<_>, _>>()?;
                let x = self.fresh_var("out", outs[0].1.clone(), ck.clone());
                self.eq_spans.push((x, self.current_span));
                self.new_eqs.push(Equation::Call {
                    xs: vec![x],
                    ck: ck.clone(),
                    node: *f,
                    args,
                });
                Ok(Expr::Var(x, outs[0].1.clone()))
            }
            ctrl @ (TExpr::If(..) | TExpr::Merge(..) | TExpr::Arrow(..)) => {
                let rhs = self.norm_cexpr(ctrl, ck)?;
                let x = self.fresh_var("v", ctrl.ty(), ck.clone());
                self.eq_spans.push((x, self.current_span));
                self.new_eqs.push(Equation::Def {
                    x,
                    ck: ck.clone(),
                    rhs,
                });
                Ok(Expr::Var(x, ctrl.ty()))
            }
        }
    }
}

/// A boolean constant of the operator interface.
fn truthy<O: Ops>(b: bool) -> O::Const {
    let lit = velus_ops::Literal::Bool(b);
    O::const_of_literal(&lit, &O::bool_type())
        .expect("every operator interface supplies boolean constants")
}

fn normalize_node<O: Ops>(tnode: TNode<O>, spans: &mut SpanMap) -> Result<Node<O>, SemError> {
    let mut norm = Norm::<O> {
        fresh: FreshGen::new("n"),
        new_locals: Vec::new(),
        new_eqs: Vec::new(),
        init_flags: HashMap::new(),
        current_span: Span::DUMMY,
        eq_spans: Vec::new(),
    };
    norm.eq_spans.reserve(tnode.eqs.len() * 2);
    let output_names: Vec<Ident> = tnode.outputs.iter().map(|d| d.name).collect();
    let mut eqs = Vec::new();

    for TEquation { lhs, ck, rhs, span } in &tnode.eqs {
        norm.current_span = *span;
        for &x in lhs {
            norm.eq_spans.push((x, *span));
        }
        if lhs.len() > 1 {
            // Tuple call.
            match rhs {
                TExpr::Call(f, args, _) => {
                    let args = args
                        .iter()
                        .map(|a| norm.norm_expr(a, ck))
                        .collect::<Result<Vec<_>, _>>()?;
                    eqs.push(Equation::Call {
                        xs: lhs.clone(),
                        ck: ck.clone(),
                        node: *f,
                        args,
                    });
                }
                _ => {
                    return Err(SemError::Malformed(
                        "tuple equation without a call survived elaboration".to_owned(),
                    ))
                }
            }
            continue;
        }
        let x = lhs[0];
        match rhs {
            // Keep top-level fbys as fby equations; copy through a fresh
            // local when the target is an output.
            TExpr::Fby(init, e1) => {
                let rhs = norm.norm_expr(e1, ck)?;
                if output_names.contains(&x) {
                    let m = norm.fresh_var("mem", e1.ty(), ck.clone());
                    norm.eq_spans.push((m, *span));
                    eqs.push(Equation::Fby {
                        x: m,
                        ck: ck.clone(),
                        init: init.clone(),
                        rhs,
                    });
                    eqs.push(Equation::Def {
                        x,
                        ck: ck.clone(),
                        rhs: CExpr::Expr(Expr::Var(m, e1.ty())),
                    });
                } else {
                    eqs.push(Equation::Fby {
                        x,
                        ck: ck.clone(),
                        init: init.clone(),
                        rhs,
                    });
                }
            }
            // Keep top-level single-output calls as call equations.
            TExpr::Call(f, args, _) => {
                let args = args
                    .iter()
                    .map(|a| norm.norm_expr(a, ck))
                    .collect::<Result<Vec<_>, _>>()?;
                eqs.push(Equation::Call {
                    xs: vec![x],
                    ck: ck.clone(),
                    node: *f,
                    args,
                });
            }
            other => {
                let rhs = norm.norm_cexpr(other, ck)?;
                eqs.push(Equation::Def {
                    x,
                    ck: ck.clone(),
                    rhs,
                });
            }
        }
    }

    let mut eq_spans = velus_common::ident_map_with_capacity(norm.eq_spans.len());
    eq_spans.extend(norm.eq_spans);
    spans.insert_node(
        tnode.name,
        velus_common::NodeSpans {
            span: tnode.span,
            eqs: eq_spans,
        },
    );
    eqs.extend(norm.new_eqs);
    let mut locals = tnode.locals;
    locals.extend(norm.new_locals);
    Ok(Node {
        name: tnode.name,
        inputs: tnode.inputs,
        outputs: tnode.outputs,
        locals,
        eqs,
    })
}

/// Normalizes a typed program into N-Lustre.
///
/// The result satisfies the structural invariants of
/// [`velus_nlustre::ast`] by construction and is re-validated by the
/// pipeline's type and clock checks.
///
/// Also returns the [`SpanMap`] recording where every node and equation
/// came from (fresh equations inherit the span of the source equation
/// they were extracted from) — the bridge that lets scheduling,
/// checking and validation failures point at real source positions.
///
/// # Errors
///
/// Internal clock inconsistencies (which indicate an elaboration bug) are
/// reported as [`SemError`]s rather than panics.
pub fn normalize<O: Ops>(prog: TProgram<O>) -> Result<(Program<O>, SpanMap), SemError> {
    let mut spans = SpanMap::new();
    let nodes = prog
        .nodes
        .into_iter()
        .map(|n| normalize_node(n, &mut spans))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((Program::new(nodes), spans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use velus_nlustre::{clockcheck, typecheck};
    use velus_ops::ClightOps;

    fn compile(src: &str) -> Program<ClightOps> {
        let (prog, _) = crate::compile_to_nlustre::<ClightOps>(src).expect("compiles");
        prog
    }

    #[test]
    fn nested_fby_is_extracted() {
        let prog = compile(
            "node f(x: int) returns (y: int)
             let y = (0 fby x) + x; tel",
        );
        let node = &prog.nodes[0];
        assert_eq!(node.eqs.len(), 2);
        assert!(node.eqs.iter().any(|e| matches!(e, Equation::Fby { .. })));
        typecheck::check_program(&prog).unwrap();
        clockcheck::check_program_clocks(&prog).unwrap();
    }

    #[test]
    fn arrow_introduces_shared_init_flag() {
        let prog = compile(
            "node f(x: int) returns (y, z: int)
             let y = 0 -> x; z = 1 -> x; tel",
        );
        let node = &prog.nodes[0];
        // One h = true fby false shared by both arrows.
        let fbys = node
            .eqs
            .iter()
            .filter(|e| matches!(e, Equation::Fby { .. }))
            .count();
        assert_eq!(fbys, 1, "{node}");
        typecheck::check_program(&prog).unwrap();
        clockcheck::check_program_clocks(&prog).unwrap();
    }

    #[test]
    fn pre_desugars_to_default_fby() {
        let (prog, warnings) = crate::compile_to_nlustre::<ClightOps>(
            "node f(x: int) returns (y: int)
             let y = pre x; tel",
        )
        .unwrap();
        assert!(warnings.iter().any(|d| d.message.contains("pre")));
        let node = &prog.nodes[0];
        assert!(node.eqs.iter().any(|e| matches!(e, Equation::Fby { .. })));
    }

    #[test]
    fn initialized_pre_does_not_warn() {
        let (_, warnings) = crate::compile_to_nlustre::<ClightOps>(
            "node f(x: int) returns (y: int)
             let y = x -> pre y + x; tel",
        )
        .unwrap();
        assert!(warnings.is_empty(), "{warnings}");
    }

    #[test]
    fn fby_defined_output_gets_a_copy() {
        let prog = compile(
            "node f(x: int) returns (y: int)
             let y = 0 fby (y + x); tel",
        );
        let node = &prog.nodes[0];
        // Output y is defined by a Def that copies the fresh memory.
        let def_y = node.eqs.iter().find_map(|e| match e {
            Equation::Def { x, rhs, .. } if x.as_str() == "y" => Some(rhs),
            _ => None,
        });
        assert!(def_y.is_some(), "{node}");
        velus_obc::translate::translate_program(&prog).unwrap();
    }

    #[test]
    fn nested_calls_are_flattened() {
        let prog = compile(
            "node id(a: int) returns (b: int) let b = a; tel
             node g(x: int) returns (y: int) let y = id(id(x)) + 1; tel",
        );
        let g = prog.node(velus_common::Ident::new("g")).unwrap();
        let calls = g
            .eqs
            .iter()
            .filter(|e| matches!(e, Equation::Call { .. }))
            .count();
        assert_eq!(calls, 2, "{g}");
        typecheck::check_program(&prog).unwrap();
    }

    #[test]
    fn control_in_expression_position_is_extracted() {
        let prog = compile(
            "node f(c: bool; x: int) returns (y: int)
             let y = (if c then x else 0) + 1; tel",
        );
        let node = &prog.nodes[0];
        assert_eq!(node.eqs.len(), 2, "{node}");
        typecheck::check_program(&prog).unwrap();
        clockcheck::check_program_clocks(&prog).unwrap();
    }

    #[test]
    fn normalized_programs_validate() {
        let prog = compile(
            "node counter(ini, inc: int; res: bool) returns (n: int)
             let
               n = if (true fby false) or res then ini else (0 fby n) + inc;
             tel
             node d_integrator(gamma: int) returns (speed, position: int)
             let
               speed = counter(0, gamma, false);
               position = counter(0, speed, false);
             tel",
        );
        typecheck::check_program(&prog).unwrap();
        clockcheck::check_program_clocks(&prog).unwrap();
        assert_eq!(prog.nodes.len(), 2);
        // counter first (callee), d_integrator second.
        assert_eq!(prog.nodes[0].name.as_str(), "counter");
    }
}
