//! The surface (unannotated) abstract syntax, as produced by the parser.
//!
//! This is the full Lustre expression language: operators nest freely,
//! `fby`, `->` and `pre` appear anywhere, node calls return tuples.
//! Elaboration types it; normalization flattens it into N-Lustre.

use velus_common::{Ident, Span};
use velus_ops::{Literal, SurfaceBinOp, SurfaceUnOp};

/// A surface expression.
#[derive(Debug, Clone, PartialEq)]
pub enum UExpr {
    /// A literal.
    Lit(Literal, Span),
    /// A variable (or global constant) reference.
    Var(Ident, Span),
    /// Unary operator application.
    Unop(SurfaceUnOp, Box<UExpr>, Span),
    /// Binary operator application.
    Binop(SurfaceBinOp, Box<UExpr>, Box<UExpr>, Span),
    /// Sampling `e when x` (`true`) or `e when not x` / `e whenot x`.
    When(Box<UExpr>, Ident, bool, Span),
    /// `merge x e1 e2`.
    Merge(Ident, Box<UExpr>, Box<UExpr>, Span),
    /// `if e then e else e` (a multiplexer).
    If(Box<UExpr>, Box<UExpr>, Box<UExpr>, Span),
    /// `e1 fby e2` — initialized delay; `e1` must be a constant.
    Fby(Box<UExpr>, Box<UExpr>, Span),
    /// `e1 -> e2` — initialization.
    Arrow(Box<UExpr>, Box<UExpr>, Span),
    /// `pre e` — uninitialized delay.
    Pre(Box<UExpr>, Span),
    /// `f(e, …)` — node instantiation or type cast (`int(e)`).
    Call(Ident, Vec<UExpr>, Span),
}

impl UExpr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            UExpr::Lit(_, s)
            | UExpr::Var(_, s)
            | UExpr::Unop(_, _, s)
            | UExpr::Binop(_, _, _, s)
            | UExpr::When(_, _, _, s)
            | UExpr::Merge(_, _, _, s)
            | UExpr::If(_, _, _, s)
            | UExpr::Fby(_, _, s)
            | UExpr::Arrow(_, _, s)
            | UExpr::Pre(_, s)
            | UExpr::Call(_, _, s) => *s,
        }
    }
}

/// A clock annotation in a declaration: `base`, or `ck on (not) x`.
#[derive(Debug, Clone, PartialEq)]
pub enum UClock {
    /// The node's base clock.
    Base,
    /// Sampled: `when x` (`true`) or `when not x` (`false`).
    On(Box<UClock>, Ident, bool),
}

/// A variable declaration `x : ty [when …]`.
#[derive(Debug, Clone, PartialEq)]
pub struct UDecl {
    /// Variable name.
    pub name: Ident,
    /// Type name (resolved through the operator interface).
    pub ty_name: Ident,
    /// Clock annotation.
    pub clock: UClock,
    /// Source position.
    pub span: Span,
}

/// An equation `x, y, … = e;`.
#[derive(Debug, Clone, PartialEq)]
pub struct UEquation {
    /// The defined variables (a tuple pattern for multi-output calls).
    pub lhs: Vec<Ident>,
    /// The right-hand side.
    pub rhs: UExpr,
    /// Source position.
    pub span: Span,
}

/// A node declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct UNode {
    /// Node name.
    pub name: Ident,
    /// Inputs.
    pub inputs: Vec<UDecl>,
    /// Outputs.
    pub outputs: Vec<UDecl>,
    /// Locals (the `var` section).
    pub locals: Vec<UDecl>,
    /// The equations, in source order.
    pub eqs: Vec<UEquation>,
    /// Source position of the header.
    pub span: Span,
}

/// A global constant declaration `const x : ty = lit;`.
#[derive(Debug, Clone, PartialEq)]
pub struct UConst {
    /// Constant name.
    pub name: Ident,
    /// Type name.
    pub ty_name: Ident,
    /// Value (a literal, possibly negated).
    pub value: UExpr,
    /// Source position.
    pub span: Span,
}

/// A parsed source file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UProgram {
    /// Global constants, in source order.
    pub consts: Vec<UConst>,
    /// Nodes, in source order.
    pub nodes: Vec<UNode>,
}
