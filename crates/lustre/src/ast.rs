//! The surface (unannotated) abstract syntax, as produced by the parser.
//!
//! This is the full Lustre expression language: operators nest freely,
//! `fby`, `->` and `pre` appear anywhere, node calls return tuples.
//! Elaboration types it; normalization flattens it into N-Lustre.
//!
//! Expressions and clock annotations live in a [`UArena`]: flat `Vec`
//! pools addressed by [`ExprId`]/[`ClockId`] indices. Nodes are `Copy`,
//! children sit densely in cache, and dropping a whole parse is freeing
//! three `Vec`s. Call arguments are stored as contiguous runs in a side
//! pool (`ExprRange`), so a call allocates nothing of its own. The
//! arena is external to the program — callers that compile repeatedly
//! recycle it via [`UArena::clear`], which keeps the pool capacity.

use velus_common::{Ident, Span};
use velus_ops::{Literal, SurfaceBinOp, SurfaceUnOp};

/// An index into a [`UArena`]'s expression pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExprId(u32);

impl ExprId {
    /// The position in the pool.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An index into a [`UArena`]'s clock pool. `ClockId::BASE` (index 0)
/// is pre-seeded in every arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockId(u32);

impl ClockId {
    /// The base clock, present in every arena at index 0.
    pub const BASE: ClockId = ClockId(0);

    /// The position in the pool.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A contiguous run of [`ExprId`]s in the arena's argument pool
/// (used for call arguments), or of expressions in the expression pool
/// (used to record which slice of the arena a node owns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExprRange {
    /// First index of the run.
    pub start: u32,
    /// Number of elements.
    pub len: u32,
}

impl ExprRange {
    /// The empty range.
    pub const EMPTY: ExprRange = ExprRange { start: 0, len: 0 };

    /// Number of elements in the range.
    #[inline]
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// Whether the range is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// A surface expression. Children are [`ExprId`]s into the owning
/// [`UArena`]; the node itself is `Copy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UExpr {
    /// A literal.
    Lit(Literal, Span),
    /// A variable (or global constant) reference.
    Var(Ident, Span),
    /// Unary operator application.
    Unop(SurfaceUnOp, ExprId, Span),
    /// Binary operator application.
    Binop(SurfaceBinOp, ExprId, ExprId, Span),
    /// Sampling `e when x` (`true`) or `e when not x` / `e whenot x`.
    When(ExprId, Ident, bool, Span),
    /// `merge x e1 e2`.
    Merge(Ident, ExprId, ExprId, Span),
    /// `if e then e else e` (a multiplexer).
    If(ExprId, ExprId, ExprId, Span),
    /// `e1 fby e2` — initialized delay; `e1` must be a constant.
    Fby(ExprId, ExprId, Span),
    /// `e1 -> e2` — initialization.
    Arrow(ExprId, ExprId, Span),
    /// `pre e` — uninitialized delay.
    Pre(ExprId, Span),
    /// `f(e, …)` — node instantiation or type cast (`int(e)`). The
    /// arguments are a contiguous run in the arena's argument pool.
    Call(Ident, ExprRange, Span),
}

impl UExpr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            UExpr::Lit(_, s)
            | UExpr::Var(_, s)
            | UExpr::Unop(_, _, s)
            | UExpr::Binop(_, _, _, s)
            | UExpr::When(_, _, _, s)
            | UExpr::Merge(_, _, _, s)
            | UExpr::If(_, _, _, s)
            | UExpr::Fby(_, _, s)
            | UExpr::Arrow(_, _, s)
            | UExpr::Pre(_, s)
            | UExpr::Call(_, _, s) => *s,
        }
    }
}

/// A clock annotation in a declaration: `base`, or `ck on (not) x`,
/// with the parent clock held in the arena's clock pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UClock {
    /// The node's base clock.
    Base,
    /// Sampled: `when x` (`true`) or `when not x` (`false`).
    On(ClockId, Ident, bool),
}

/// The expression, argument and clock pools behind a parsed program.
#[derive(Debug, Clone, PartialEq)]
pub struct UArena {
    exprs: Vec<UExpr>,
    args: Vec<ExprId>,
    clocks: Vec<UClock>,
}

impl Default for UArena {
    fn default() -> Self {
        Self::new()
    }
}

impl UArena {
    /// An empty arena with the base clock pre-seeded.
    pub fn new() -> Self {
        UArena {
            exprs: Vec::new(),
            args: Vec::new(),
            clocks: vec![UClock::Base],
        }
    }

    /// Empties the pools but keeps their capacity, so a recycled arena
    /// compiles the next program without growing.
    pub fn clear(&mut self) {
        self.exprs.clear();
        self.args.clear();
        self.clocks.truncate(1);
    }

    /// Adds an expression, returning its id.
    #[inline]
    pub fn push(&mut self, e: UExpr) -> ExprId {
        let id = ExprId(self.exprs.len() as u32);
        self.exprs.push(e);
        id
    }

    /// Adds a sampled clock over `parent`, returning its id.
    #[inline]
    pub fn push_clock(&mut self, parent: ClockId, x: Ident, polarity: bool) -> ClockId {
        let id = ClockId(self.clocks.len() as u32);
        self.clocks.push(UClock::On(parent, x, polarity));
        id
    }

    /// Moves `stack[base..]` into the argument pool, returning the run.
    /// The per-call scratch stack pattern keeps argument collection
    /// allocation-free for nested calls.
    pub fn push_args(&mut self, stack: &mut Vec<ExprId>, base: usize) -> ExprRange {
        let start = self.args.len() as u32;
        self.args.extend(stack.drain(base..));
        ExprRange {
            start,
            len: self.args.len() as u32 - start,
        }
    }

    /// The clock node behind `id`.
    #[inline]
    pub fn clock(&self, id: ClockId) -> UClock {
        self.clocks[id.index()]
    }

    /// The argument run of a call.
    #[inline]
    pub fn args(&self, r: ExprRange) -> &[ExprId] {
        &self.args[r.start as usize..(r.start + r.len) as usize]
    }

    /// The expressions in a contiguous pool range (a node's slice).
    #[inline]
    pub fn exprs_in(&self, r: ExprRange) -> &[UExpr] {
        &self.exprs[r.start as usize..(r.start + r.len) as usize]
    }

    /// Number of expressions in the pool.
    #[inline]
    pub fn num_exprs(&self) -> usize {
        self.exprs.len()
    }

    /// Pool capacities `(exprs, args, clocks)` — exposed so reuse
    /// tests can assert that recycled arenas stop growing.
    pub fn capacities(&self) -> (usize, usize, usize) {
        (
            self.exprs.capacity(),
            self.args.capacity(),
            self.clocks.capacity(),
        )
    }
}

impl std::ops::Index<ExprId> for UArena {
    type Output = UExpr;

    #[inline]
    fn index(&self, id: ExprId) -> &UExpr {
        &self.exprs[id.index()]
    }
}

/// A variable declaration `x : ty [when …]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UDecl {
    /// Variable name.
    pub name: Ident,
    /// Type name (resolved through the operator interface).
    pub ty_name: Ident,
    /// Clock annotation (an id into the arena's clock pool).
    pub clock: ClockId,
    /// Source position.
    pub span: Span,
}

/// An equation `x, y, … = e;`.
#[derive(Debug, Clone, PartialEq)]
pub struct UEquation {
    /// The defined variables (a tuple pattern for multi-output calls).
    pub lhs: Vec<Ident>,
    /// The right-hand side.
    pub rhs: ExprId,
    /// Source position.
    pub span: Span,
}

/// A node declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct UNode {
    /// Node name.
    pub name: Ident,
    /// Inputs.
    pub inputs: Vec<UDecl>,
    /// Outputs.
    pub outputs: Vec<UDecl>,
    /// Locals (the `var` section).
    pub locals: Vec<UDecl>,
    /// The equations, in source order.
    pub eqs: Vec<UEquation>,
    /// The contiguous slice of the expression pool this node's
    /// equations occupy (the parser emits nodes sequentially), used to
    /// pre-size elaboration from a linear scan.
    pub exprs: ExprRange,
    /// Source position of the header.
    pub span: Span,
}

/// A global constant declaration `const x : ty = lit;`.
#[derive(Debug, Clone, PartialEq)]
pub struct UConst {
    /// Constant name.
    pub name: Ident,
    /// Type name.
    pub ty_name: Ident,
    /// Value (a literal, possibly negated).
    pub value: ExprId,
    /// Source position.
    pub span: Span,
}

/// A parsed source file (ids index the [`UArena`] it was parsed into).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UProgram {
    /// Global constants, in source order.
    pub consts: Vec<UConst>,
    /// Nodes, in source order.
    pub nodes: Vec<UNode>,
}
