//! The Lustre lexer.
//!
//! Hand-written (the paper generates one with ocamllex). Supports `--`
//! line comments and `(* … *)` block comments, decimal integer and float
//! literals, and the keyword/operator set of the surface language.

use std::fmt;

use velus_common::{codes, DiagStage, Diagnostic, Diagnostics, Ident, Span};

/// A lexical token.
///
/// Identifiers are interned at lexing time, which makes `Tok` `Copy`:
/// the parser clones tokens freely (peeks, error paths) and a compile
/// of an already-seen source interns nothing new.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tok {
    /// An identifier (interned).
    Ident(Ident),
    /// An integer literal (kept wide; typed during elaboration).
    Int(i128),
    /// A floating-point literal.
    Float(f64),
    // Keywords.
    /// `node`
    Node,
    /// `function` (accepted as a synonym of `node`)
    Function,
    /// `returns`
    Returns,
    /// `var`
    Var,
    /// `let`
    Let,
    /// `tel`
    Tel,
    /// `const`
    Const,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `when`
    When,
    /// `whenot` (alias for `when not`)
    Whenot,
    /// `merge`
    Merge,
    /// `fby`
    Fby,
    /// `pre`
    Pre,
    /// `not`
    Not,
    /// `and`
    And,
    /// `or`
    Or,
    /// `xor`
    Xor,
    /// `div`
    Div,
    /// `mod`
    Mod,
    /// `true`
    True,
    /// `false`
    False,
    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `->`
    Arrow,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Node => f.write_str("node"),
            Tok::Function => f.write_str("function"),
            Tok::Returns => f.write_str("returns"),
            Tok::Var => f.write_str("var"),
            Tok::Let => f.write_str("let"),
            Tok::Tel => f.write_str("tel"),
            Tok::Const => f.write_str("const"),
            Tok::If => f.write_str("if"),
            Tok::Then => f.write_str("then"),
            Tok::Else => f.write_str("else"),
            Tok::When => f.write_str("when"),
            Tok::Whenot => f.write_str("whenot"),
            Tok::Merge => f.write_str("merge"),
            Tok::Fby => f.write_str("fby"),
            Tok::Pre => f.write_str("pre"),
            Tok::Not => f.write_str("not"),
            Tok::And => f.write_str("and"),
            Tok::Or => f.write_str("or"),
            Tok::Xor => f.write_str("xor"),
            Tok::Div => f.write_str("div"),
            Tok::Mod => f.write_str("mod"),
            Tok::True => f.write_str("true"),
            Tok::False => f.write_str("false"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::Comma => f.write_str(","),
            Tok::Semi => f.write_str(";"),
            Tok::Colon => f.write_str(":"),
            Tok::Eq => f.write_str("="),
            Tok::Neq => f.write_str("<>"),
            Tok::Lt => f.write_str("<"),
            Tok::Le => f.write_str("<="),
            Tok::Gt => f.write_str(">"),
            Tok::Ge => f.write_str(">="),
            Tok::Plus => f.write_str("+"),
            Tok::Minus => f.write_str("-"),
            Tok::Star => f.write_str("*"),
            Tok::Slash => f.write_str("/"),
            Tok::Arrow => f.write_str("->"),
            Tok::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Its position.
    pub span: Span,
}

fn keyword(s: &str) -> Option<Tok> {
    Some(match s {
        "node" => Tok::Node,
        "function" => Tok::Function,
        "returns" => Tok::Returns,
        "var" => Tok::Var,
        "let" => Tok::Let,
        "tel" => Tok::Tel,
        "const" => Tok::Const,
        "if" => Tok::If,
        "then" => Tok::Then,
        "else" => Tok::Else,
        "when" => Tok::When,
        "whenot" => Tok::Whenot,
        "merge" => Tok::Merge,
        "fby" => Tok::Fby,
        "pre" => Tok::Pre,
        "not" => Tok::Not,
        "and" => Tok::And,
        "or" => Tok::Or,
        "xor" => Tok::Xor,
        "div" => Tok::Div,
        "mod" => Tok::Mod,
        "true" => Tok::True,
        "false" => Tok::False,
        _ => return None,
    })
}

/// Whether `c` can begin a token (or whitespace) — used to delimit runs
/// of unexpected characters so each run costs one diagnostic, not one
/// per probed character.
#[inline]
fn starts_token(c: u8) -> bool {
    c.is_ascii_whitespace()
        || c.is_ascii_alphanumeric()
        || matches!(
            c,
            b'_' | b'('
                | b')'
                | b','
                | b';'
                | b':'
                | b'='
                | b'<'
                | b'>'
                | b'+'
                | b'-'
                | b'*'
                | b'/'
        )
}

/// Tokenizes `source`.
///
/// # Errors
///
/// Unterminated comments, malformed numbers and unexpected characters.
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostics> {
    let mut out = Vec::new();
    lex_into(source, &mut out)?;
    Ok(out)
}

/// Tokenizes `source` into a caller-owned buffer (cleared first), so a
/// caller compiling repeatedly reuses one allocation. The buffer is
/// pre-sized from the source length on first use.
///
/// # Errors
///
/// Same as [`lex`]; `out` still holds the tokens lexed before the error
/// (error recovery continues to the end of the input).
pub fn lex_into(source: &str, out: &mut Vec<Token>) -> Result<(), Diagnostics> {
    let bytes = source.as_bytes();
    out.clear();
    // Lustre averages roughly one token per four bytes; one up-front
    // reservation replaces the doubling regrowths of a cold Vec and is
    // a no-op for a recycled buffer that is already big enough.
    out.reserve(source.len() / 4 + 8);
    let mut i = 0usize;
    let n = bytes.len();
    let mut errs = Diagnostics::new();

    while i < n {
        let c = bytes[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == b'-' && i + 1 < n && bytes[i + 1] == b'-' {
            while i < n && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Block comment (* ... *), nestable.
        if c == b'(' && i + 1 < n && bytes[i + 1] == b'*' {
            let start = i;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if bytes[i] == b'(' && i + 1 < n && bytes[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < n && bytes[i + 1] == b')' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            if depth > 0 {
                errs.push(
                    Diagnostic::error(
                        codes::E0102,
                        "unterminated comment",
                        Span::new(start as u32, n as u32),
                    )
                    .at_stage(DiagStage::Lex),
                );
            }
            continue;
        }
        let start = i as u32;
        // Identifier or keyword.
        if c.is_ascii_alphabetic() || c == b'_' {
            let mut j = i + 1;
            while j < n && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            let text = &source[i..j];
            let tok = keyword(text).unwrap_or_else(|| Tok::Ident(Ident::new(text)));
            out.push(Token {
                tok,
                span: Span::new(start, j as u32),
            });
            i = j;
            continue;
        }
        // Number (integer or float).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n && bytes[j].is_ascii_digit() {
                j += 1;
            }
            let mut is_float = false;
            if j < n && bytes[j] == b'.' && j + 1 < n && bytes[j + 1].is_ascii_digit() {
                is_float = true;
                j += 1;
                while j < n && bytes[j].is_ascii_digit() {
                    j += 1;
                }
            }
            if j < n && (bytes[j] == b'e' || bytes[j] == b'E') {
                let mut k = j + 1;
                if k < n && (bytes[k] == b'+' || bytes[k] == b'-') {
                    k += 1;
                }
                if k < n && bytes[k].is_ascii_digit() {
                    is_float = true;
                    j = k + 1;
                    while j < n && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
            }
            let text = &source[i..j];
            let span = Span::new(start, j as u32);
            if is_float {
                match text.parse::<f64>() {
                    Ok(x) => out.push(Token {
                        tok: Tok::Float(x),
                        span,
                    }),
                    Err(_) => errs.push(
                        Diagnostic::error(
                            codes::E0105,
                            format!("malformed float literal `{text}`"),
                            span,
                        )
                        .at_stage(DiagStage::Lex),
                    ),
                }
            } else {
                match text.parse::<i128>() {
                    Ok(x) => out.push(Token {
                        tok: Tok::Int(x),
                        span,
                    }),
                    Err(_) => errs.push(
                        Diagnostic::error(
                            codes::E0105,
                            format!("malformed integer literal `{text}`"),
                            span,
                        )
                        .at_stage(DiagStage::Lex),
                    ),
                }
            }
            i = j;
            continue;
        }
        // Operators and punctuation. Matched as *bytes*: slicing the
        // source string two bytes ahead would panic mid-character on
        // non-ASCII input, which must lex to a diagnostic, not a panic
        // (found by the fault-injection property test).
        let two: &[u8] = if i + 1 < n { &bytes[i..i + 2] } else { b"" };
        let (tok, len) = match two {
            b"->" => (Tok::Arrow, 2),
            b"<>" => (Tok::Neq, 2),
            b"<=" => (Tok::Le, 2),
            b">=" => (Tok::Ge, 2),
            _ => match c {
                b'(' => (Tok::LParen, 1),
                b')' => (Tok::RParen, 1),
                b',' => (Tok::Comma, 1),
                b';' => (Tok::Semi, 1),
                b':' => (Tok::Colon, 1),
                b'=' => (Tok::Eq, 1),
                b'<' => (Tok::Lt, 1),
                b'>' => (Tok::Gt, 1),
                b'+' => (Tok::Plus, 1),
                b'-' => (Tok::Minus, 1),
                b'*' => (Tok::Star, 1),
                b'/' => (Tok::Slash, 1),
                _ => {
                    // Coalesce the whole run of unexpected characters
                    // into one diagnostic, stepping over complete UTF-8
                    // sequences so both the span and the next lexer
                    // state sit on character boundaries. The message is
                    // formatted once per run, not once per probed
                    // character.
                    let ch = source[i..].chars().next().expect("in bounds");
                    let mut j = i + ch.len_utf8();
                    while j < n && !starts_token(bytes[j]) {
                        let ch2 = source[j..].chars().next().expect("on boundary");
                        j += ch2.len_utf8();
                    }
                    let run = &source[i..j];
                    let msg = if j == i + ch.len_utf8() {
                        format!("unexpected character `{ch}`")
                    } else {
                        format!("unexpected characters `{run}`")
                    };
                    errs.push(
                        Diagnostic::error(codes::E0101, msg, Span::new(start, j as u32))
                            .at_stage(DiagStage::Lex),
                    );
                    i = j;
                    continue;
                }
            },
        };
        out.push(Token {
            tok,
            span: Span::new(start, start + len as u32),
        });
        i += len;
    }
    out.push(Token {
        tok: Tok::Eof,
        span: Span::new(n as u32, n as u32),
    });
    errs.into_result(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("node counter tel"),
            vec![
                Tok::Node,
                Tok::Ident(Ident::new("counter")),
                Tok::Tel,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Tok::Int(42), Tok::Eof]);
        assert_eq!(toks("3.5"), vec![Tok::Float(3.5), Tok::Eof]);
        assert_eq!(toks("1e3"), vec![Tok::Float(1000.0), Tok::Eof]);
        // A bare dot is not part of the language.
        assert!(lex("1 .").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a -> b <> c <= d"),
            vec![
                Tok::Ident(Ident::new("a")),
                Tok::Arrow,
                Tok::Ident(Ident::new("b")),
                Tok::Neq,
                Tok::Ident(Ident::new("c")),
                Tok::Le,
                Tok::Ident(Ident::new("d")),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments() {
        assert_eq!(toks("a -- to end of line\nb"), toks("a b"));
        assert_eq!(toks("a (* nested (* ok *) still *) b"), toks("a b"));
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        assert!(lex("a (* whoops").is_err());
    }

    #[test]
    fn minus_minus_needs_spacing() {
        // `a - -1` is subtraction of a negated literal, not a comment.
        assert_eq!(
            toks("a - - 1"),
            vec![
                Tok::Ident(Ident::new("a")),
                Tok::Minus,
                Tok::Minus,
                Tok::Int(1),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn spans_point_into_the_source() {
        let ts = lex("ab cd").unwrap();
        assert_eq!(ts[1].span, Span::new(3, 5));
    }

    #[test]
    fn unexpected_character_runs_coalesce() {
        // A run of stray characters yields one diagnostic covering the
        // whole run, not one per character.
        let errs = lex("a @#$ b").unwrap_err();
        assert_eq!(errs.iter().count(), 1);
        assert!(errs.iter().next().unwrap().message.contains("@#$"));
        // A single stray character keeps the singular message.
        let errs = lex("a ? b").unwrap_err();
        let msg = &errs.iter().next().unwrap().message;
        assert!(msg.contains("unexpected character `?`"), "{msg}");
    }

    #[test]
    fn lex_into_reuses_the_buffer() {
        let mut buf = Vec::new();
        lex_into("node f(x: int) returns (y: int) let y = x; tel", &mut buf).unwrap();
        let cap = buf.capacity();
        lex_into("node g(a: bool) returns (b: bool) let b = a; tel", &mut buf).unwrap();
        assert_eq!(buf.capacity(), cap, "recycled buffer must not regrow");
    }
}
