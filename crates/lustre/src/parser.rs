//! A recursive-descent parser for the Lustre surface syntax.
//!
//! The paper uses a Menhir-generated parser with a Coq-verified
//! correctness/completeness proof; here the grammar is small enough that a
//! hand-written precedence-climbing parser with good error messages is the
//! idiomatic Rust choice.
//!
//! The parser builds directly into a caller-supplied [`UArena`]: every
//! expression is pushed into the flat pool as it is reduced, and call
//! arguments are collected on a scratch stack and drained into the
//! arena's argument pool, so parsing performs no per-node allocation.
//!
//! Operator precedence, loosest to tightest:
//!
//! | level | operators                       | associativity |
//! |-------|---------------------------------|---------------|
//! | 1     | `->`, `fby`                     | right         |
//! | 2     | `or`, `xor`                     | left          |
//! | 3     | `and`                           | left          |
//! | 4     | `when`, `whenot`                | left (postfix)|
//! | 5     | `=`, `<>`, `<`, `<=`, `>`, `>=` | none          |
//! | 6     | `+`, `-`                        | left          |
//! | 7     | `*`, `/`, `div`, `mod`          | left          |
//! | 8     | unary `-`, `not`, `pre`         | prefix        |

use velus_common::{codes, Code, DiagStage, Diagnostic, Diagnostics, Ident, Span};
use velus_ops::{Literal, SurfaceBinOp, SurfaceUnOp};

use crate::ast::{
    ClockId, ExprId, ExprRange, UArena, UConst, UDecl, UEquation, UExpr, UNode, UProgram,
};
use crate::lexer::{Tok, Token};

struct Parser<'t, 'a> {
    toks: &'t [Token],
    pos: usize,
    ast: &'a mut UArena,
    /// Scratch for call arguments (drained into the arena per call).
    arg_stack: Vec<ExprId>,
}

type PResult<T> = Result<T, Diagnostics>;

impl Parser<'_, '_> {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok;
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, code: Code, msg: impl Into<String>) -> PResult<T> {
        Err(Diagnostics::from(
            Diagnostic::error(code, msg, self.span()).at_stage(DiagStage::Parse),
        ))
    }

    fn expect(&mut self, tok: Tok) -> PResult<()> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.error(
                codes::E0104,
                format!("expected `{tok}`, found `{}`", self.peek()),
            )
        }
    }

    fn eat(&mut self, tok: Tok) -> bool {
        if *self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> PResult<Ident> {
        match *self.peek() {
            Tok::Ident(id) => {
                self.bump();
                Ok(id)
            }
            other => self.error(
                codes::E0104,
                format!("expected identifier, found `{other}`"),
            ),
        }
    }

    /// The span of an already-built expression.
    fn espan(&self, id: ExprId) -> Span {
        self.ast[id].span()
    }

    // ---- declarations -------------------------------------------------

    fn clock_annotation(&mut self) -> PResult<ClockId> {
        let mut ck = ClockId::BASE;
        loop {
            if self.eat(Tok::When) {
                let polarity = !self.eat(Tok::Not);
                let x = self.ident()?;
                ck = self.ast.push_clock(ck, x, polarity);
            } else if self.eat(Tok::Whenot) {
                let x = self.ident()?;
                ck = self.ast.push_clock(ck, x, false);
            } else {
                return Ok(ck);
            }
        }
    }

    /// `x, y : ty [when …]` — one typed group, appended to `out`.
    fn decl_group(&mut self, out: &mut Vec<UDecl>) -> PResult<()> {
        let start = self.span();
        let first = out.len();
        out.push(UDecl {
            name: self.ident()?,
            ty_name: Ident::new(""),
            clock: ClockId::BASE,
            span: start,
        });
        while self.eat(Tok::Comma) {
            let name = self.ident()?;
            out.push(UDecl {
                name,
                ty_name: Ident::new(""),
                clock: ClockId::BASE,
                span: start,
            });
        }
        self.expect(Tok::Colon)?;
        let ty_name = self.ident()?;
        let clock = self.clock_annotation()?;
        let span = start.merge(self.prev_span());
        for d in &mut out[first..] {
            d.ty_name = ty_name;
            d.clock = clock;
            d.span = span;
        }
        Ok(())
    }

    /// `group ; group ; …` until a closing token.
    fn decl_list(&mut self, stop: &Tok) -> PResult<Vec<UDecl>> {
        let mut out = Vec::new();
        if self.peek() == stop {
            return Ok(out);
        }
        loop {
            self.decl_group(&mut out)?;
            if self.eat(Tok::Semi) {
                if self.peek() == stop {
                    return Ok(out);
                }
                continue;
            }
            return Ok(out);
        }
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self) -> PResult<ExprId> {
        self.arrow_expr()
    }

    /// Level 1: `->` and `fby`, right associative.
    fn arrow_expr(&mut self) -> PResult<ExprId> {
        let lhs = self.or_expr()?;
        if self.eat(Tok::Arrow) {
            let rhs = self.arrow_expr()?;
            let span = self.espan(lhs).merge(self.espan(rhs));
            return Ok(self.ast.push(UExpr::Arrow(lhs, rhs, span)));
        }
        if self.eat(Tok::Fby) {
            let rhs = self.arrow_expr()?;
            let span = self.espan(lhs).merge(self.espan(rhs));
            return Ok(self.ast.push(UExpr::Fby(lhs, rhs, span)));
        }
        Ok(lhs)
    }

    fn or_expr(&mut self) -> PResult<ExprId> {
        let mut lhs = self.and_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Or => SurfaceBinOp::Or,
                Tok::Xor => SurfaceBinOp::Xor,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.and_expr()?;
            let span = self.espan(lhs).merge(self.espan(rhs));
            lhs = self.ast.push(UExpr::Binop(op, lhs, rhs, span));
        }
    }

    fn and_expr(&mut self) -> PResult<ExprId> {
        let mut lhs = self.when_expr()?;
        while self.eat(Tok::And) {
            let rhs = self.when_expr()?;
            let span = self.espan(lhs).merge(self.espan(rhs));
            lhs = self
                .ast
                .push(UExpr::Binop(SurfaceBinOp::And, lhs, rhs, span));
        }
        Ok(lhs)
    }

    /// Level 4: postfix sampling chains.
    fn when_expr(&mut self) -> PResult<ExprId> {
        let mut e = self.cmp_expr()?;
        loop {
            if self.eat(Tok::When) {
                let polarity = !self.eat(Tok::Not);
                let x = self.ident()?;
                let span = self.espan(e).merge(self.prev_span());
                e = self.ast.push(UExpr::When(e, x, polarity, span));
            } else if self.eat(Tok::Whenot) {
                let x = self.ident()?;
                let span = self.espan(e).merge(self.prev_span());
                e = self.ast.push(UExpr::When(e, x, false, span));
            } else {
                return Ok(e);
            }
        }
    }

    fn cmp_expr(&mut self) -> PResult<ExprId> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Eq => SurfaceBinOp::Eq,
            Tok::Neq => SurfaceBinOp::Ne,
            Tok::Lt => SurfaceBinOp::Lt,
            Tok::Le => SurfaceBinOp::Le,
            Tok::Gt => SurfaceBinOp::Gt,
            Tok::Ge => SurfaceBinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        let span = self.espan(lhs).merge(self.espan(rhs));
        Ok(self.ast.push(UExpr::Binop(op, lhs, rhs, span)))
    }

    fn add_expr(&mut self) -> PResult<ExprId> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => SurfaceBinOp::Add,
                Tok::Minus => SurfaceBinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = self.espan(lhs).merge(self.espan(rhs));
            lhs = self.ast.push(UExpr::Binop(op, lhs, rhs, span));
        }
    }

    fn mul_expr(&mut self) -> PResult<ExprId> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => SurfaceBinOp::Mul,
                Tok::Slash | Tok::Div => SurfaceBinOp::Div,
                Tok::Mod => SurfaceBinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = self.espan(lhs).merge(self.espan(rhs));
            lhs = self.ast.push(UExpr::Binop(op, lhs, rhs, span));
        }
    }

    fn unary_expr(&mut self) -> PResult<ExprId> {
        let start = self.span();
        if self.eat(Tok::Minus) {
            let e = self.unary_expr()?;
            let span = start.merge(self.espan(e));
            // Fold negation into literals so that `-1 fby x` has a
            // constant head. The folded node replaces the literal in
            // place — ids below the watermark are never re-read.
            return Ok(match self.ast[e] {
                UExpr::Lit(Literal::Int(i), _) => self.ast.push(UExpr::Lit(Literal::Int(-i), span)),
                UExpr::Lit(Literal::Float(x), _) => {
                    self.ast.push(UExpr::Lit(Literal::Float(-x), span))
                }
                _ => self.ast.push(UExpr::Unop(SurfaceUnOp::Neg, e, span)),
            });
        }
        if self.eat(Tok::Not) {
            let e = self.unary_expr()?;
            let span = start.merge(self.espan(e));
            return Ok(self.ast.push(UExpr::Unop(SurfaceUnOp::Not, e, span)));
        }
        if self.eat(Tok::Pre) {
            let e = self.unary_expr()?;
            let span = start.merge(self.espan(e));
            return Ok(self.ast.push(UExpr::Pre(e, span)));
        }
        self.primary_expr()
    }

    /// A `merge` branch is atomic: a variable, a literal, or a
    /// parenthesized expression. A bare identifier is *never* treated as
    /// a call here, so that `merge x c (e)` parses as two branches rather
    /// than the call `c(e)`.
    fn merge_branch(&mut self) -> PResult<ExprId> {
        let span = self.span();
        match *self.peek() {
            Tok::Ident(name) => {
                self.bump();
                Ok(self.ast.push(UExpr::Var(name, span)))
            }
            Tok::Int(i) => {
                self.bump();
                Ok(self.ast.push(UExpr::Lit(Literal::Int(i), span)))
            }
            Tok::Float(x) => {
                self.bump();
                Ok(self.ast.push(UExpr::Lit(Literal::Float(x), span)))
            }
            Tok::True => {
                self.bump();
                Ok(self.ast.push(UExpr::Lit(Literal::Bool(true), span)))
            }
            Tok::False => {
                self.bump();
                Ok(self.ast.push(UExpr::Lit(Literal::Bool(false), span)))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => self.error(
                codes::E0104,
                format!(
                    "expected a merge branch (variable, literal or parenthesized \
                     expression), found `{other}`"
                ),
            ),
        }
    }

    fn primary_expr(&mut self) -> PResult<ExprId> {
        let span = self.span();
        match *self.peek() {
            Tok::Int(i) => {
                self.bump();
                Ok(self.ast.push(UExpr::Lit(Literal::Int(i), span)))
            }
            Tok::Float(x) => {
                self.bump();
                Ok(self.ast.push(UExpr::Lit(Literal::Float(x), span)))
            }
            Tok::True => {
                self.bump();
                Ok(self.ast.push(UExpr::Lit(Literal::Bool(true), span)))
            }
            Tok::False => {
                self.bump();
                Ok(self.ast.push(UExpr::Lit(Literal::Bool(false), span)))
            }
            Tok::If => {
                self.bump();
                let c = self.expr()?;
                self.expect(Tok::Then)?;
                let t = self.expr()?;
                self.expect(Tok::Else)?;
                let f = self.expr()?;
                let span = span.merge(self.espan(f));
                Ok(self.ast.push(UExpr::If(c, t, f, span)))
            }
            Tok::Merge => {
                self.bump();
                let x = self.ident()?;
                let t = self.merge_branch()?;
                let f = self.merge_branch()?;
                let span = span.merge(self.espan(f));
                Ok(self.ast.push(UExpr::Merge(x, t, f, span)))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(id) => {
                self.bump();
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let base = self.arg_stack.len();
                    if *self.peek() != Tok::RParen {
                        let a = self.expr()?;
                        self.arg_stack.push(a);
                        while self.eat(Tok::Comma) {
                            let a = self.expr()?;
                            self.arg_stack.push(a);
                        }
                    }
                    if let Err(e) = self.expect(Tok::RParen) {
                        self.arg_stack.truncate(base);
                        return Err(e);
                    }
                    let args: ExprRange = self.ast.push_args(&mut self.arg_stack, base);
                    let span = span.merge(self.prev_span());
                    Ok(self.ast.push(UExpr::Call(id, args, span)))
                } else {
                    Ok(self.ast.push(UExpr::Var(id, span)))
                }
            }
            other => self.error(
                codes::E0104,
                format!("expected expression, found `{other}`"),
            ),
        }
    }

    // ---- top level -----------------------------------------------------

    fn equation(&mut self) -> PResult<UEquation> {
        let start = self.span();
        let mut lhs = Vec::new();
        if self.eat(Tok::LParen) {
            lhs.push(self.ident()?);
            while self.eat(Tok::Comma) {
                lhs.push(self.ident()?);
            }
            self.expect(Tok::RParen)?;
        } else {
            lhs.push(self.ident()?);
            while self.eat(Tok::Comma) {
                lhs.push(self.ident()?);
            }
        }
        self.expect(Tok::Eq)?;
        let rhs = self.expr()?;
        self.expect(Tok::Semi)?;
        let span = start.merge(self.prev_span());
        Ok(UEquation { lhs, rhs, span })
    }

    fn node(&mut self) -> PResult<UNode> {
        let start = self.span();
        let estart = self.ast.num_exprs() as u32;
        self.bump(); // `node` or `function`
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let inputs = self.decl_list(&Tok::RParen)?;
        self.expect(Tok::RParen)?;
        self.expect(Tok::Returns)?;
        self.expect(Tok::LParen)?;
        let outputs = self.decl_list(&Tok::RParen)?;
        self.expect(Tok::RParen)?;
        self.eat(Tok::Semi);
        let locals = if self.eat(Tok::Var) {
            let ds = self.decl_list(&Tok::Let)?;
            self.eat(Tok::Semi);
            ds
        } else {
            Vec::new()
        };
        self.expect(Tok::Let)?;
        let mut eqs = Vec::new();
        while *self.peek() != Tok::Tel {
            if *self.peek() == Tok::Eof {
                return self.error(
                    codes::E0103,
                    "unexpected end of file inside node body (missing `tel`?)",
                );
            }
            eqs.push(self.equation()?);
        }
        self.expect(Tok::Tel)?;
        self.eat(Tok::Semi);
        let span = start.merge(self.prev_span());
        Ok(UNode {
            name,
            inputs,
            outputs,
            locals,
            eqs,
            exprs: ExprRange {
                start: estart,
                len: self.ast.num_exprs() as u32 - estart,
            },
            span,
        })
    }

    fn const_decl(&mut self) -> PResult<UConst> {
        let start = self.span();
        self.expect(Tok::Const)?;
        let name = self.ident()?;
        self.expect(Tok::Colon)?;
        let ty_name = self.ident()?;
        self.expect(Tok::Eq)?;
        let value = self.expr()?;
        self.expect(Tok::Semi)?;
        let span = start.merge(self.prev_span());
        Ok(UConst {
            name,
            ty_name,
            value,
            span,
        })
    }

    fn program(&mut self) -> PResult<UProgram> {
        let mut prog = UProgram::default();
        loop {
            match self.peek() {
                Tok::Eof => return Ok(prog),
                Tok::Const => prog.consts.push(self.const_decl()?),
                Tok::Node | Tok::Function => prog.nodes.push(self.node()?),
                other => {
                    return self.error(
                        codes::E0104,
                        format!("expected `node`, `function` or `const`, found `{other}`"),
                    )
                }
            }
        }
    }
}

/// Parses a token stream into a surface program, building expressions
/// into `arena`. The arena is cleared first; ids in the result index it.
///
/// `source` is only used for error rendering by callers; the parser works
/// on spans.
///
/// # Errors
///
/// Syntax errors with positions.
pub fn parse(tokens: &[Token], source: &str, arena: &mut UArena) -> Result<UProgram, Diagnostics> {
    let _ = source;
    arena.clear();
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        ast: arena,
        arg_stack: Vec::new(),
    };
    p.program()
}

/// Convenience: lex and parse in one step, returning the program with
/// its backing arena.
///
/// # Errors
///
/// Lexical and syntax errors.
pub fn parse_source(source: &str) -> Result<(UProgram, UArena), Diagnostics> {
    let toks = crate::lexer::lex(source)?;
    let mut arena = UArena::new();
    let prog = parse(&toks, source, &mut arena)?;
    Ok((prog, arena))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::UClock;

    #[test]
    fn parses_the_paper_counter() {
        let src = "
            node counter(ini, inc: int; res: bool) returns (n: int)
            let
              n = if (true fby false) or res then ini else (0 fby n) + inc;
            tel
        ";
        let (p, a) = parse_source(src).unwrap();
        assert_eq!(p.nodes.len(), 1);
        let n = &p.nodes[0];
        assert_eq!(n.name, Ident::new("counter"));
        assert_eq!(n.inputs.len(), 3);
        assert_eq!(n.outputs.len(), 1);
        assert_eq!(n.eqs.len(), 1);
        assert!(matches!(a[n.eqs[0].rhs], UExpr::If(..)));
        // The node's expressions sit in one contiguous arena slice.
        assert_eq!(n.exprs.len(), a.num_exprs());
    }

    #[test]
    fn parses_tuple_equations() {
        let src = "
            node d(gamma: int) returns (speed, position: int)
            let
              (speed, position) = two(gamma);
            tel
        ";
        let (p, _) = parse_source(src).unwrap();
        assert_eq!(p.nodes[0].eqs[0].lhs.len(), 2);
    }

    #[test]
    fn precedence_arrow_is_loosest() {
        let (p, a) =
            parse_source("node f(x: int) returns (y: int) let y = 0 -> x + 1; tel").unwrap();
        match a[p.nodes[0].eqs[0].rhs] {
            UExpr::Arrow(_, rhs, _) => assert!(matches!(a[rhs], UExpr::Binop(..))),
            other => panic!("expected arrow at top, got {other:?}"),
        }
    }

    #[test]
    fn precedence_fby_binds_like_arrow() {
        let (p, a) =
            parse_source("node f(x: int) returns (y: int) let y = 0 fby y + x; tel").unwrap();
        match a[p.nodes[0].eqs[0].rhs] {
            UExpr::Fby(init, rhs, _) => {
                assert!(matches!(a[init], UExpr::Lit(..)));
                assert!(matches!(a[rhs], UExpr::Binop(..)));
            }
            other => panic!("expected fby at top, got {other:?}"),
        }
    }

    #[test]
    fn when_samples_whole_comparisons() {
        let (p, a) =
            parse_source("node f(s: int; c: bool) returns (y: bool) let y = s > 5 when c; tel")
                .unwrap();
        match a[p.nodes[0].eqs[0].rhs] {
            UExpr::When(inner, _, true, _) => assert!(matches!(a[inner], UExpr::Binop(..))),
            other => panic!("expected when at top, got {other:?}"),
        }
    }

    #[test]
    fn when_not_parses_both_ways() {
        for src in [
            "node f(x: int; c: bool) returns (y: int) let y = x when not c; tel",
            "node f(x: int; c: bool) returns (y: int) let y = x whenot c; tel",
        ] {
            let (p, a) = parse_source(src).unwrap();
            assert!(matches!(
                a[p.nodes[0].eqs[0].rhs],
                UExpr::When(_, _, false, _)
            ));
        }
    }

    #[test]
    fn clock_annotations_on_declarations() {
        let src = "
            node f(x: bool) returns (o: int)
            var c: int when x;
            let c = 1 when x; o = merge x c (0 when not x); tel
        ";
        let (p, a) = parse_source(src).unwrap();
        let d = &p.nodes[0].locals[0];
        match a.clock(d.clock) {
            UClock::On(parent, x, true) => {
                assert_eq!(x, Ident::new("x"));
                assert_eq!(a.clock(parent), UClock::Base);
            }
            other => panic!("expected `when x`, got {other:?}"),
        }
    }

    #[test]
    fn negative_literals_fold() {
        let (p, a) = parse_source("node f() returns (y: int) let y = -3 fby y; tel").unwrap();
        match a[p.nodes[0].eqs[0].rhs] {
            UExpr::Fby(init, _, _) => {
                assert!(matches!(a[init], UExpr::Lit(Literal::Int(-3), _)))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn const_declarations() {
        let (p, _) =
            parse_source("const limit: int = 5; node f() returns (y: int) let y = limit; tel")
                .unwrap();
        assert_eq!(p.consts.len(), 1);
        assert_eq!(p.consts[0].name, Ident::new("limit"));
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_source("node f() returns (y: int) let y = ; tel").unwrap_err();
        assert!(err.has_errors());
        let msg = err.to_string();
        assert!(msg.contains("expected expression"), "{msg}");
    }

    #[test]
    fn missing_tel_is_a_clear_error() {
        let err = parse_source("node f() returns (y: int) let y = 1;").unwrap_err();
        assert!(err.to_string().contains("missing `tel`"));
    }
}
