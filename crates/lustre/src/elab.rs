//! Elaboration: typing and clocking of the surface syntax (§2.1).
//!
//! Elaboration rejects programs that are not well typed or well clocked
//! and produces an *annotated* AST ([`TExpr`]) in which every variable and
//! operator application carries its machine type, literals have been
//! resolved to constants of the operator interface, `pre` has been
//! desugared to `fby` of the type's default value (marked in the arena
//! for the semantic initialization analysis), and casts have been
//! resolved.
//!
//! Typed expressions live in a [`TArena`] pool addressed by [`TExprId`],
//! mirroring the surface arena: building is a bump push, dropping is
//! freeing two `Vec`s, and call arguments are contiguous runs. Per-node
//! tables are pre-sized from the declaration and equation counts, and
//! the typed pool is reserved from the surface node's expression count,
//! so elaborating a node does not grow tables mid-way.
//!
//! Bidirectional typing: literals are type-polymorphic (`PTy::IntLit`,
//! `PTy::FloatLit`) and take their type from context (`0 fby n` gives
//! `0` the type of `n`); unconstrained integer literals default to `int`,
//! float literals to `real`. Clocks are checked against declarations;
//! constants are clock-polymorphic.
//!
//! Nodes may be declared in any order; elaboration topologically orders
//! them (callees first) and rejects recursion — the paper's "nodes are not
//! applied circularly".

use velus_common::{
    codes, ident_map_with_capacity, DiagStage, Diagnostic, Diagnostics, Ident, IdentMap, Span,
};
use velus_nlustre::clock::Clock;
use velus_ops::{Literal, Ops, SurfaceBinOp, SurfaceUnOp};

use crate::ast::{ClockId, ExprId, UArena, UClock, UDecl, UExpr, UNode, UProgram};

/// An index into a [`TArena`]'s typed-expression pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TExprId(u32);

impl TExprId {
    /// The position in the pool.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A contiguous run in a [`TArena`] pool: call-argument runs (in the
/// argument pool) and per-node expression slices (in the expression
/// pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TRange {
    /// First index of the run.
    pub start: u32,
    /// Number of elements.
    pub len: u32,
}

impl TRange {
    /// Number of elements.
    #[inline]
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// Whether the run is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// A typed expression (surface constructs preserved, annotations added).
/// Children are [`TExprId`]s into the owning [`TArena`].
#[derive(Debug, Clone, PartialEq)]
pub enum TExpr<O: Ops> {
    /// A constant (literal or global constant, resolved).
    Const(O::Const),
    /// A variable with its type.
    Var(Ident, O::Ty),
    /// Unary operator (including casts), annotated with the result type.
    Unop(O::UnOp, TExprId, O::Ty),
    /// Binary operator, annotated with the result type.
    Binop(O::BinOp, TExprId, TExprId, O::Ty),
    /// Sampling.
    When(TExprId, Ident, bool),
    /// Merge of complementary streams.
    Merge(Ident, TExprId, TExprId),
    /// Multiplexer.
    If(TExprId, TExprId, TExprId),
    /// Initialized delay (the `pre` form has already been desugared).
    Fby(O::Const, TExprId),
    /// Initialization `e1 -> e2`.
    Arrow(TExprId, TExprId),
    /// Node instantiation; the annotation is the callee's *first*
    /// output type (the value type in expression position — tuple calls
    /// only occur at equation level, where the pattern is checked
    /// against the full signature directly).
    Call(Ident, TRange, O::Ty),
}

/// The typed-expression and argument pools behind a [`TProgram`].
#[derive(Debug, Clone, PartialEq)]
pub struct TArena<O: Ops> {
    exprs: Vec<TExpr<O>>,
    args: Vec<TExprId>,
    /// `Fby` expressions introduced by desugaring a `pre`, with the
    /// `pre`'s source span (id-ascending). Normalization threads these
    /// into the [`velus_common::PreMarks`] the initialization analysis
    /// consumes; the old syntactic W0001 check lived here instead.
    pre_spans: Vec<(TExprId, Span)>,
}

impl<O: Ops> Default for TArena<O> {
    fn default() -> Self {
        Self::new()
    }
}

impl<O: Ops> TArena<O> {
    /// An empty arena.
    pub fn new() -> Self {
        TArena {
            exprs: Vec::new(),
            args: Vec::new(),
            pre_spans: Vec::new(),
        }
    }

    /// Empties the pools but keeps their capacity for reuse.
    pub fn clear(&mut self) {
        self.exprs.clear();
        self.args.clear();
        self.pre_spans.clear();
    }

    /// Records that `id` is a `Fby` desugared from a `pre` at `span`.
    fn mark_pre(&mut self, id: TExprId, span: Span) {
        debug_assert!(self.pre_spans.last().is_none_or(|(p, _)| p.0 < id.0));
        self.pre_spans.push((id, span));
    }

    /// The `pre` span of `id`, when `id` is a `pre`-introduced `Fby`.
    pub fn pre_span(&self, id: TExprId) -> Option<Span> {
        self.pre_spans
            .binary_search_by_key(&id.0, |(p, _)| p.0)
            .ok()
            .map(|i| self.pre_spans[i].1)
    }

    /// Adds an expression, returning its id.
    #[inline]
    pub fn push(&mut self, e: TExpr<O>) -> TExprId {
        let id = TExprId(self.exprs.len() as u32);
        self.exprs.push(e);
        id
    }

    /// Moves `stack[base..]` into the argument pool, returning the run.
    fn push_args(&mut self, stack: &mut Vec<TExprId>, base: usize) -> TRange {
        let start = self.args.len() as u32;
        self.args.extend(stack.drain(base..));
        TRange {
            start,
            len: self.args.len() as u32 - start,
        }
    }

    /// The argument run of a call.
    #[inline]
    pub fn args(&self, r: TRange) -> &[TExprId] {
        &self.args[r.start as usize..(r.start + r.len) as usize]
    }

    /// The expressions in a contiguous pool range (a node's slice).
    #[inline]
    pub fn exprs_in(&self, r: TRange) -> &[TExpr<O>] {
        &self.exprs[r.start as usize..(r.start + r.len) as usize]
    }

    /// Number of expressions in the pool.
    #[inline]
    pub fn num_exprs(&self) -> usize {
        self.exprs.len()
    }

    /// Pool capacities `(exprs, args)` — exposed so reuse tests can
    /// assert that recycled arenas stop growing.
    pub fn capacities(&self) -> (usize, usize) {
        (self.exprs.capacity(), self.args.capacity())
    }

    /// The type of an expression (first output for calls). Iterative:
    /// the annotation is at most one spine walk away.
    pub fn ty_of(&self, mut id: TExprId) -> O::Ty {
        loop {
            match &self[id] {
                TExpr::Const(c) => return O::type_of_const(c),
                TExpr::Var(_, ty)
                | TExpr::Unop(_, _, ty)
                | TExpr::Binop(_, _, _, ty)
                | TExpr::Call(_, _, ty) => return ty.clone(),
                TExpr::When(e, _, _)
                | TExpr::Merge(_, e, _)
                | TExpr::If(_, e, _)
                | TExpr::Fby(_, e)
                | TExpr::Arrow(e, _) => id = *e,
            }
        }
    }
}

impl<O: Ops> std::ops::Index<TExprId> for TArena<O> {
    type Output = TExpr<O>;

    #[inline]
    fn index(&self, id: TExprId) -> &TExpr<O> {
        &self.exprs[id.index()]
    }
}

/// A typed equation. The right-hand side is an id into the program's
/// [`TArena`], so the equation itself is interface-independent.
#[derive(Debug, Clone, PartialEq)]
pub struct TEquation {
    /// Defined variables.
    pub lhs: Vec<Ident>,
    /// The (common) clock of the defined variables.
    pub ck: Clock,
    /// Typed right-hand side.
    pub rhs: TExprId,
    /// The source equation's span (threaded into the
    /// [`velus_common::SpanMap`] by normalization so mid-end failures
    /// point back here).
    pub span: Span,
}

/// A typed node.
#[derive(Debug, Clone, PartialEq)]
pub struct TNode<O: Ops> {
    /// Node name.
    pub name: Ident,
    /// Typed, clocked inputs.
    pub inputs: Vec<velus_nlustre::ast::VarDecl<O>>,
    /// Typed, clocked outputs.
    pub outputs: Vec<velus_nlustre::ast::VarDecl<O>>,
    /// Typed, clocked locals.
    pub locals: Vec<velus_nlustre::ast::VarDecl<O>>,
    /// Typed equations.
    pub eqs: Vec<TEquation>,
    /// The contiguous slice of the typed pool this node occupies, used
    /// by normalization to pre-size from a linear scan.
    pub exprs: TRange,
    /// The node header's span.
    pub span: Span,
}

/// A typed program, nodes in dependency order (callees first). Ids
/// index the [`TArena`] elaboration built it in.
#[derive(Debug, Clone, PartialEq)]
pub struct TProgram<O: Ops> {
    /// The nodes.
    pub nodes: Vec<TNode<O>>,
}

/// Partial types for literal inference.
#[derive(Debug, Clone, PartialEq)]
enum PTy<O: Ops> {
    Known(O::Ty),
    IntLit,
    FloatLit,
}

/// Callee signatures: name → (input types, named output types).
type SigMap<O> = IdentMap<(Vec<<O as Ops>::Ty>, Vec<(Ident, <O as Ops>::Ty)>)>;

/// Declared variables: name → (type, clock).
type VarMap<O> = IdentMap<(<O as Ops>::Ty, Clock)>;

/// Elaborated declaration groups (inputs, outputs, locals), plus the
/// combined variable environment.
type ElabDecls<O> = (VarMap<O>, [Vec<velus_nlustre::ast::VarDecl<O>>; 3]);

struct NodeEnv<'e, O: Ops> {
    /// Variable name → (type, clock).
    vars: VarMap<O>,
    /// Global constants (shared across nodes, hence borrowed — cloning
    /// them per node made elaboration quadratic in program size).
    consts: &'e IdentMap<O::Const>,
    /// Callee signatures: name → (input types, outputs); borrowed for
    /// the same reason, and call sites borrow straight from the map
    /// rather than cloning the signature vectors.
    sigs: &'e SigMap<O>,
}

struct Elab<'a, O: Ops> {
    ua: &'a UArena,
    ta: &'a mut TArena<O>,
    env: NodeEnv<'a, O>,
    /// Scratch for call arguments (drained into the arena per call).
    arg_stack: &'a mut Vec<TExprId>,
}

type EResult<T> = Result<T, Diagnostics>;

fn err<T>(code: velus_common::Code, msg: impl Into<String>, span: Span) -> EResult<T> {
    Err(Diagnostics::from(
        Diagnostic::error(code, msg, span).at_stage(DiagStage::Elaborate),
    ))
}

impl<'a, O: Ops> Elab<'a, O> {
    // ---- types ---------------------------------------------------------

    fn unify(&self, a: PTy<O>, b: PTy<O>, span: Span) -> EResult<PTy<O>> {
        use PTy::*;
        match (a, b) {
            (Known(x), Known(y)) if x == y => Ok(Known(x)),
            (Known(x), Known(y)) => err(codes::E0202, format!("type mismatch: {x} vs {y}"), span),
            (IntLit, IntLit) => Ok(IntLit),
            (FloatLit, FloatLit) | (IntLit, FloatLit) | (FloatLit, IntLit) => Ok(FloatLit),
            (IntLit, Known(t)) | (Known(t), IntLit) => {
                if O::const_of_literal(&Literal::Int(0), &t).is_some() {
                    Ok(Known(t))
                } else {
                    err(
                        codes::E0207,
                        format!("integer literal used at type {t}"),
                        span,
                    )
                }
            }
            (FloatLit, Known(t)) | (Known(t), FloatLit) => {
                if O::const_of_literal(&Literal::Float(0.0), &t).is_some() {
                    Ok(Known(t))
                } else {
                    err(
                        codes::E0207,
                        format!("float literal used at type {t}"),
                        span,
                    )
                }
            }
        }
    }

    fn resolve(&self, p: PTy<O>, span: Span) -> EResult<O::Ty> {
        match p {
            PTy::Known(t) => Ok(t),
            PTy::IntLit => O::type_of_name("int").ok_or(()).or_else(|_| {
                err(
                    codes::E0215,
                    "no default integer type in this operator interface",
                    span,
                )
            }),
            PTy::FloatLit => O::type_of_name("real").ok_or(()).or_else(|_| {
                err(
                    codes::E0215,
                    "no default real type in this operator interface",
                    span,
                )
            }),
        }
    }

    fn var_ty(&self, x: Ident, span: Span) -> EResult<PTy<O>> {
        if let Some((t, _)) = self.env.vars.get(&x) {
            return Ok(PTy::Known(t.clone()));
        }
        if let Some(c) = self.env.consts.get(&x) {
            return Ok(PTy::Known(O::type_of_const(c)));
        }
        err(codes::E0201, format!("unknown variable {x}"), span)
    }

    /// Infers a partial type bottom-up (used where no expectation exists).
    fn infer(&self, e: ExprId) -> EResult<PTy<O>> {
        match self.ua[e] {
            UExpr::Lit(Literal::Int(_), _) => Ok(PTy::IntLit),
            UExpr::Lit(Literal::Float(_), _) => Ok(PTy::FloatLit),
            UExpr::Lit(Literal::Bool(_), _) => Ok(PTy::Known(O::bool_type())),
            UExpr::Var(x, s) => self.var_ty(x, s),
            UExpr::Unop(SurfaceUnOp::Not, _, _) => Ok(PTy::Known(O::bool_type())),
            UExpr::Unop(SurfaceUnOp::Neg, e1, _) => self.infer(e1),
            UExpr::Binop(op, l, r, s) => {
                use SurfaceBinOp::*;
                match op {
                    Eq | Ne | Lt | Le | Gt | Ge => Ok(PTy::Known(O::bool_type())),
                    And | Or | Xor => Ok(PTy::Known(O::bool_type())),
                    _ => {
                        let a = self.infer(l)?;
                        let b = self.infer(r)?;
                        self.unify(a, b, s)
                    }
                }
            }
            UExpr::When(e1, _, _, _) => self.infer(e1),
            UExpr::Merge(_, t, f, s) | UExpr::If(_, t, f, s) => {
                let a = self.infer(t)?;
                let b = self.infer(f)?;
                self.unify(a, b, s)
            }
            UExpr::Fby(c, e1, s) | UExpr::Arrow(c, e1, s) => {
                let a = self.infer(c)?;
                let b = self.infer(e1)?;
                self.unify(a, b, s)
            }
            UExpr::Pre(e1, _) => self.infer(e1),
            UExpr::Call(f, _, s) => {
                if let Some(t) = O::type_of_name(f.as_str()) {
                    return Ok(PTy::Known(t));
                }
                match self.env.sigs.get(&f) {
                    Some((_, outs)) if outs.len() == 1 => Ok(PTy::Known(outs[0].1.clone())),
                    Some((_, outs)) => err(
                        codes::E0214,
                        format!(
                            "node {f} has {} outputs; tuple calls only at equation level",
                            outs.len()
                        ),
                        s,
                    ),
                    None => err(codes::E0203, format!("unknown node or type {f}"), s),
                }
            }
        }
    }

    /// Builds a typed expression at the expected type, returning its id
    /// in the typed arena.
    ///
    /// A `pre` desugars to an uninitialized `fby` and is marked in the
    /// arena ([`TArena::pre_span`]); whether its default value can
    /// actually be observed is decided later by the semantic
    /// initialization analysis (`velus-analysis`), not here.
    fn build(&mut self, e: ExprId, expected: &O::Ty) -> EResult<TExprId> {
        match self.ua[e] {
            UExpr::Lit(lit, s) => match O::const_of_literal(&lit, expected) {
                Some(c) => Ok(self.ta.push(TExpr::Const(c))),
                None => err(
                    codes::E0207,
                    format!("literal {lit} does not fit type {expected}"),
                    s,
                ),
            },
            UExpr::Var(x, s) => {
                if let Some((t, _)) = self.env.vars.get(&x) {
                    if t == expected {
                        let t = t.clone();
                        Ok(self.ta.push(TExpr::Var(x, t)))
                    } else {
                        err(
                            codes::E0202,
                            format!("variable {x} has type {t}, expected {expected}"),
                            s,
                        )
                    }
                } else if let Some(c) = self.env.consts.get(&x) {
                    if O::type_of_const(c) == *expected {
                        let c = c.clone();
                        Ok(self.ta.push(TExpr::Const(c)))
                    } else {
                        err(
                            codes::E0202,
                            format!(
                                "constant {x} has type {}, expected {expected}",
                                O::type_of_const(c)
                            ),
                            s,
                        )
                    }
                } else {
                    err(codes::E0201, format!("unknown variable {x}"), s)
                }
            }
            UExpr::Unop(sop, e1, s) => {
                let operand_ty = match sop {
                    SurfaceUnOp::Not => O::bool_type(),
                    SurfaceUnOp::Neg => expected.clone(),
                };
                let te = self.build(e1, &operand_ty)?;
                match O::elab_unop(sop, &operand_ty) {
                    Some((op, rty)) if rty == *expected => {
                        Ok(self.ta.push(TExpr::Unop(op, te, rty)))
                    }
                    Some((_, rty)) => err(
                        codes::E0202,
                        format!("operator {sop} yields {rty}, expected {expected}"),
                        s,
                    ),
                    None => err(
                        codes::E0208,
                        format!("operator {sop} inapplicable at type {operand_ty}"),
                        s,
                    ),
                }
            }
            UExpr::Binop(sop, l, r, s) => {
                use SurfaceBinOp::*;
                let operand_ty = match sop {
                    Eq | Ne | Lt | Le | Gt | Ge => {
                        let a = self.infer(l)?;
                        let b = self.infer(r)?;
                        let u = self.unify(a, b, s)?;
                        self.resolve(u, s)?
                    }
                    And | Or | Xor => O::bool_type(),
                    _ => expected.clone(),
                };
                let tl = self.build(l, &operand_ty)?;
                let tr = self.build(r, &operand_ty)?;
                match O::elab_binop(sop, &operand_ty, &operand_ty) {
                    Some((op, rty)) if rty == *expected => {
                        Ok(self.ta.push(TExpr::Binop(op, tl, tr, rty)))
                    }
                    Some((_, rty)) => err(
                        codes::E0202,
                        format!("operator {sop} yields {rty}, expected {expected}"),
                        s,
                    ),
                    None => err(
                        codes::E0208,
                        format!("operator {sop} inapplicable at type {operand_ty}"),
                        s,
                    ),
                }
            }
            UExpr::When(e1, x, k, s) => {
                self.require_bool_var(x, s)?;
                let te = self.build(e1, expected)?;
                Ok(self.ta.push(TExpr::When(te, x, k)))
            }
            UExpr::Merge(x, t, f, s) => {
                self.require_bool_var(x, s)?;
                let tt = self.build(t, expected)?;
                let tf = self.build(f, expected)?;
                Ok(self.ta.push(TExpr::Merge(x, tt, tf)))
            }
            UExpr::If(c, t, f, _) => {
                let tc = self.build(c, &O::bool_type())?;
                let tt = self.build(t, expected)?;
                let tf = self.build(f, expected)?;
                Ok(self.ta.push(TExpr::If(tc, tt, tf)))
            }
            UExpr::Fby(c, e1, _) => {
                let init = self.const_value(c, expected)?;
                let te = self.build(e1, expected)?;
                Ok(self.ta.push(TExpr::Fby(init, te)))
            }
            UExpr::Arrow(l, r, _) => {
                let tl = self.build(l, expected)?;
                let tr = self.build(r, expected)?;
                Ok(self.ta.push(TExpr::Arrow(tl, tr)))
            }
            UExpr::Pre(e1, s) => {
                let te = self.build(e1, expected)?;
                let id = self.ta.push(TExpr::Fby(O::default_const(expected), te));
                self.ta.mark_pre(id, s);
                Ok(id)
            }
            UExpr::Call(f, args, s) => {
                // Type cast?
                if let Some(to) = O::type_of_name(f.as_str()) {
                    let args = self.ua.args(args);
                    if args.len() != 1 {
                        return err(
                            codes::E0204,
                            format!("cast {f}(…) takes exactly one argument"),
                            s,
                        );
                    }
                    if to != *expected {
                        return err(
                            codes::E0202,
                            format!("cast to {to} used at type {expected}"),
                            s,
                        );
                    }
                    let arg = args[0];
                    let from_p = self.infer(arg)?;
                    let from = self.resolve(from_p, s)?;
                    let te = self.build(arg, &from)?;
                    return match O::elab_cast(&from, &to) {
                        Some(op) => Ok(self.ta.push(TExpr::Unop(op, te, to))),
                        None => err(codes::E0208, format!("no cast from {from} to {to}"), s),
                    };
                }
                // Borrow the signature straight out of the (outer-lived)
                // map — no per-call-site clone of the signature vectors.
                let sigs: &'a SigMap<O> = self.env.sigs;
                let (ins, outs) = match sigs.get(&f) {
                    Some(sig) => sig,
                    None => return err(codes::E0203, format!("unknown node or type {f}"), s),
                };
                if outs.len() != 1 {
                    return err(
                        codes::E0214,
                        format!(
                            "node {f} has {} outputs; tuple calls only at equation level",
                            outs.len()
                        ),
                        s,
                    );
                }
                if outs[0].1 != *expected {
                    return err(
                        codes::E0202,
                        format!("node {f} returns {}, expected {expected}", outs[0].1),
                        s,
                    );
                }
                let targs = self.build_args(f, ins, args, s)?;
                let out_ty = outs[0].1.clone();
                Ok(self.ta.push(TExpr::Call(f, targs, out_ty)))
            }
        }
    }

    fn build_args(
        &mut self,
        f: Ident,
        ins: &[O::Ty],
        args: crate::ast::ExprRange,
        span: Span,
    ) -> EResult<TRange> {
        let ua: &'a UArena = self.ua;
        let args = ua.args(args);
        if ins.len() != args.len() {
            return err(
                codes::E0204,
                format!(
                    "node {f} takes {} arguments, {} given",
                    ins.len(),
                    args.len()
                ),
                span,
            );
        }
        let base = self.arg_stack.len();
        for (&a, t) in args.iter().zip(ins) {
            match self.build(a, t) {
                Ok(id) => self.arg_stack.push(id),
                Err(e) => {
                    self.arg_stack.truncate(base);
                    return Err(e);
                }
            }
        }
        Ok(self.ta.push_args(self.arg_stack, base))
    }

    fn require_bool_var(&self, x: Ident, span: Span) -> EResult<()> {
        match self.env.vars.get(&x) {
            Some((t, _)) if *t == O::bool_type() => Ok(()),
            Some((t, _)) => err(
                codes::E0302,
                format!("sampler {x} has type {t}, expected bool"),
                span,
            ),
            None => err(codes::E0201, format!("unknown variable {x}"), span),
        }
    }

    /// Evaluates a constant expression (literal, possibly negated literal,
    /// or global constant) at the expected type.
    fn const_value(&self, e: ExprId, expected: &O::Ty) -> EResult<O::Const> {
        match self.ua[e] {
            UExpr::Lit(lit, s) => O::const_of_literal(&lit, expected).ok_or(()).or_else(|_| {
                err(
                    codes::E0207,
                    format!("literal {lit} does not fit type {expected}"),
                    s,
                )
            }),
            UExpr::Var(x, s) => match self.env.consts.get(&x) {
                Some(c) if O::type_of_const(c) == *expected => Ok(c.clone()),
                Some(c) => err(
                    codes::E0202,
                    format!(
                        "constant {x} has type {}, expected {expected}",
                        O::type_of_const(c)
                    ),
                    s,
                ),
                None => err(
                    codes::E0209,
                    format!("`fby` initial value must be a constant, found variable {x}"),
                    s,
                ),
            },
            ref other => err(
                codes::E0209,
                "`fby` initial value must be a constant expression",
                other.span(),
            ),
        }
    }

    // ---- clocks ---------------------------------------------------------

    /// Checks that `e` is well clocked at `ck` (`None` = clock-polymorphic
    /// constant context is not needed: equations always give a concrete
    /// expectation).
    fn check_clock(&self, e: TExprId, ck: &Clock, span: Span) -> EResult<()> {
        match &self.ta[e] {
            TExpr::Const(_) => Ok(()),
            TExpr::Var(x, _) => {
                let (_, cx) = self.env.vars.get(x).expect("vars checked during typing");
                if cx == ck {
                    Ok(())
                } else {
                    err(
                        codes::E0301,
                        format!("variable {x} on clock `{cx}`, expected `{ck}`"),
                        span,
                    )
                }
            }
            TExpr::Unop(_, e1, _) => self.check_clock(*e1, ck, span),
            TExpr::Binop(_, l, r, _) => {
                self.check_clock(*l, ck, span)?;
                self.check_clock(*r, ck, span)
            }
            TExpr::When(e1, x, k) => match ck {
                Clock::On(parent, y, k2) if y == x && k2 == k => {
                    self.check_var_clock(*x, parent, span)?;
                    self.check_clock(*e1, parent, span)
                }
                _ => err(
                    codes::E0301,
                    format!("`… when {x}` used at clock `{ck}`"),
                    span,
                ),
            },
            TExpr::Merge(x, t, f) => {
                self.check_var_clock(*x, ck, span)?;
                self.check_clock(*t, &ck.clone().on(*x, true), span)?;
                self.check_clock(*f, &ck.clone().on(*x, false), span)
            }
            TExpr::If(c, t, f) => {
                self.check_clock(*c, ck, span)?;
                self.check_clock(*t, ck, span)?;
                self.check_clock(*f, ck, span)
            }
            TExpr::Fby(_, e1) => self.check_clock(*e1, ck, span),
            TExpr::Arrow(l, r) => {
                self.check_clock(*l, ck, span)?;
                self.check_clock(*r, ck, span)
            }
            TExpr::Call(_, args, _) => {
                for &a in self.ta.args(*args) {
                    self.check_clock(a, ck, span)?;
                }
                Ok(())
            }
        }
    }

    fn check_var_clock(&self, x: Ident, ck: &Clock, span: Span) -> EResult<()> {
        match self.env.vars.get(&x) {
            Some((_, cx)) if cx == ck => Ok(()),
            Some((_, cx)) => err(
                codes::E0301,
                format!("variable {x} on clock `{cx}`, expected `{ck}`"),
                span,
            ),
            None => err(codes::E0201, format!("unknown variable {x}"), span),
        }
    }
}

fn elab_clock<O: Ops>(ua: &UArena, id: ClockId, vars: &VarMap<O>, span: Span) -> EResult<Clock> {
    match ua.clock(id) {
        UClock::Base => Ok(Clock::Base),
        UClock::On(parent, x, k) => {
            let p = elab_clock::<O>(ua, parent, vars, span)?;
            match vars.get(&x) {
                Some((t, cx)) => {
                    if *t != O::bool_type() {
                        return err(
                            codes::E0302,
                            format!("clock variable {x} has type {t}, expected bool"),
                            span,
                        );
                    }
                    if *cx != p {
                        return err(
                            codes::E0301,
                            format!("clock variable {x} lives on `{cx}`, expected `{p}`"),
                            span,
                        );
                    }
                    Ok(p.on(x, k))
                }
                None => err(codes::E0303, format!("unknown clock variable {x}"), span),
            }
        }
    }
}

/// Scans an expression for node-call targets (for dependency ordering).
fn call_targets(ua: &UArena, e: ExprId, out: &mut Vec<Ident>) {
    match ua[e] {
        UExpr::Call(f, args, _) => {
            out.push(f);
            for &a in ua.args(args) {
                call_targets(ua, a, out);
            }
        }
        UExpr::Lit(..) | UExpr::Var(..) => {}
        UExpr::Unop(_, e1, _) | UExpr::When(e1, _, _, _) | UExpr::Pre(e1, _) => {
            call_targets(ua, e1, out)
        }
        UExpr::Binop(_, l, r, _) | UExpr::Fby(l, r, _) | UExpr::Arrow(l, r, _) => {
            call_targets(ua, l, out);
            call_targets(ua, r, out);
        }
        UExpr::Merge(_, t, f, _) => {
            call_targets(ua, t, out);
            call_targets(ua, f, out);
        }
        UExpr::If(c, t, f, _) => {
            call_targets(ua, c, out);
            call_targets(ua, t, out);
            call_targets(ua, f, out);
        }
    }
}

/// Topologically orders nodes, callees first.
fn order_nodes<O: Ops>(prog: &UProgram, ua: &UArena) -> EResult<Vec<usize>> {
    let mut index: IdentMap<usize> = ident_map_with_capacity(prog.nodes.len());
    index.extend(prog.nodes.iter().enumerate().map(|(i, n)| (n.name, i)));
    if index.len() != prog.nodes.len() {
        for (i, n) in prog.nodes.iter().enumerate() {
            if index[&n.name] != i {
                return err(
                    codes::E0216,
                    format!("duplicate node name {}", n.name),
                    n.span,
                );
            }
        }
    }
    // DFS with cycle detection.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks = vec![Mark::White; prog.nodes.len()];
    let mut order = Vec::with_capacity(prog.nodes.len());
    let mut calls = Vec::new();
    fn visit<O: Ops>(
        i: usize,
        prog: &UProgram,
        ua: &UArena,
        index: &IdentMap<usize>,
        marks: &mut Vec<Mark>,
        order: &mut Vec<usize>,
        calls: &mut Vec<Ident>,
    ) -> EResult<()> {
        match marks[i] {
            Mark::Black => return Ok(()),
            Mark::Grey => {
                return err(
                    codes::E0211,
                    format!(
                        "recursive node instantiation through {}",
                        prog.nodes[i].name
                    ),
                    prog.nodes[i].span,
                )
            }
            Mark::White => {}
        }
        marks[i] = Mark::Grey;
        let base = calls.len();
        for eq in &prog.nodes[i].eqs {
            call_targets(ua, eq.rhs, calls);
        }
        for k in base..calls.len() {
            let f = calls[k];
            if O::type_of_name(f.as_str()).is_some() {
                continue; // a cast, not a node
            }
            if let Some(&j) = index.get(&f) {
                visit::<O>(j, prog, ua, index, marks, order, calls)?;
            }
            // Unknown callees are reported during typing with a position.
        }
        calls.truncate(base);
        marks[i] = Mark::Black;
        order.push(i);
        Ok(())
    }
    for i in 0..prog.nodes.len() {
        visit::<O>(i, prog, ua, &index, &mut marks, &mut order, &mut calls)?;
    }
    Ok(order)
}

fn elab_decls<O: Ops>(ua: &UArena, groups: [&[UDecl]; 3]) -> EResult<ElabDecls<O>> {
    let total = groups.iter().map(|g| g.len()).sum::<usize>();
    // First pass: resolve types (clocks may reference any declared var).
    let mut tys: IdentMap<O::Ty> = ident_map_with_capacity(total);
    for d in groups.iter().flat_map(|g| g.iter()) {
        let ty = match O::type_of_name(d.ty_name.as_str()) {
            Some(t) => t,
            None => return err(codes::E0215, format!("unknown type {}", d.ty_name), d.span),
        };
        if tys.insert(d.name, ty).is_some() {
            return err(
                codes::E0210,
                format!("duplicate declaration of {}", d.name),
                d.span,
            );
        }
    }
    // Second pass: resolve clocks. Clocks may be declared in dependency
    // order (a sampler must be declared with its own clock resolvable);
    // the common case — every clock resolvable in declaration order —
    // completes in one sweep, and only stragglers iterate to fixpoint
    // to allow forward references.
    let mut vars: VarMap<O> = ident_map_with_capacity(total);
    let mut pending: Vec<&UDecl> = Vec::new();
    for d in groups.iter().flat_map(|g| g.iter()) {
        match elab_clock::<O>(ua, d.clock, &vars, d.span) {
            Ok(ck) => {
                vars.insert(d.name, (tys[&d.name].clone(), ck));
            }
            Err(_) => pending.push(d),
        }
    }
    while !pending.is_empty() {
        let before = pending.len();
        let mut next = Vec::new();
        for d in pending {
            match elab_clock::<O>(ua, d.clock, &vars, d.span) {
                Ok(ck) => {
                    vars.insert(d.name, (tys[&d.name].clone(), ck));
                }
                Err(_) => next.push(d),
            }
        }
        if next.len() == before {
            // No progress: report the first real error.
            let d = next[0];
            elab_clock::<O>(ua, d.clock, &vars, d.span)?;
            unreachable!("elab_clock must fail where it failed before");
        }
        pending = next;
    }
    let mk = |g: &[UDecl]| -> Vec<velus_nlustre::ast::VarDecl<O>> {
        g.iter()
            .map(|d| velus_nlustre::ast::VarDecl {
                name: d.name,
                ty: vars[&d.name].0.clone(),
                ck: vars[&d.name].1.clone(),
            })
            .collect()
    };
    let out = [mk(groups[0]), mk(groups[1]), mk(groups[2])];
    Ok((vars, out))
}

fn elab_node<O: Ops>(
    unode: &UNode,
    ua: &UArena,
    ta: &mut TArena<O>,
    consts: &IdentMap<O::Const>,
    sigs: &SigMap<O>,
    arg_stack: &mut Vec<TExprId>,
) -> EResult<TNode<O>> {
    let (vars, [inputs, outputs, locals]) =
        elab_decls::<O>(ua, [&unode.inputs, &unode.outputs, &unode.locals])?;
    // Interface variables live on the base clock (paper's restriction).
    for d in inputs.iter().chain(&outputs) {
        if d.ck != Clock::Base {
            return err(
                codes::E0304,
                format!("interface variable {} must be on the base clock", d.name),
                unode.span,
            );
        }
    }
    if outputs.is_empty() {
        return err(
            codes::E0212,
            format!("node {} has no outputs", unode.name),
            unode.span,
        );
    }

    // Cheap first pass: the typed tree is at most one node per surface
    // node (casts and folds only shrink it), so reserving the surface
    // count keeps the pool from growing mid-node.
    let tstart = ta.num_exprs() as u32;
    ta.exprs.reserve(unode.exprs.len());

    let mut elab = Elab::<O> {
        ua,
        ta,
        env: NodeEnv { vars, consts, sigs },
        arg_stack,
    };

    let mut eqs = Vec::with_capacity(unode.eqs.len());
    let mut defined: Vec<Ident> = Vec::with_capacity(outputs.len() + locals.len());
    for ueq in &unode.eqs {
        // The equation clock comes from the (identical) clocks of the
        // defined variables.
        let mut lhs_ck: Option<Clock> = None;
        for x in &ueq.lhs {
            let (_, cx) = match elab.env.vars.get(x) {
                Some(v) => v.clone(),
                None => return err(codes::E0201, format!("unknown variable {x}"), ueq.span),
            };
            match &lhs_ck {
                None => lhs_ck = Some(cx),
                Some(c) if *c == cx => {}
                Some(c) => {
                    return err(
                        codes::E0305,
                        format!("tuple pattern mixes clocks `{c}` and `{cx}`"),
                        ueq.span,
                    )
                }
            }
            if defined.contains(x) {
                return err(
                    codes::E0205,
                    format!("variable {x} defined twice"),
                    ueq.span,
                );
            }
            if inputs.iter().any(|d| d.name == *x) {
                return err(
                    codes::E0213,
                    format!("input {x} cannot be defined"),
                    ueq.span,
                );
            }
            defined.push(*x);
        }
        let ck = lhs_ck.expect("patterns are non-empty");

        let rhs = if ueq.lhs.len() > 1 {
            // Tuple call.
            match ua[ueq.rhs] {
                UExpr::Call(f, args, s) => {
                    if O::type_of_name(f.as_str()).is_some() {
                        return err(codes::E0214, "a cast returns a single value", s);
                    }
                    let (ins, outs) = match sigs.get(&f) {
                        Some(sig) => sig,
                        None => return err(codes::E0203, format!("unknown node {f}"), s),
                    };
                    if outs.len() != ueq.lhs.len() {
                        return err(
                            codes::E0214,
                            format!(
                                "node {f} has {} outputs, pattern binds {}",
                                outs.len(),
                                ueq.lhs.len()
                            ),
                            s,
                        );
                    }
                    for (x, (oname, oty)) in ueq.lhs.iter().zip(outs) {
                        let (tx, _) = &elab.env.vars[x];
                        if tx != oty {
                            return err(
                                codes::E0202,
                                format!("{x} has type {tx}, output {oname} has type {oty}"),
                                s,
                            );
                        }
                    }
                    let targs = elab.build_args(f, ins, args, s)?;
                    let out_ty = outs[0].1.clone();
                    elab.ta.push(TExpr::Call(f, targs, out_ty))
                }
                ref other => {
                    return err(
                        codes::E0214,
                        "tuple patterns require a node call on the right",
                        other.span(),
                    )
                }
            }
        } else {
            let x = ueq.lhs[0];
            let tx = elab.env.vars[&x].0.clone();
            elab.build(ueq.rhs, &tx)?
        };
        elab.check_clock(rhs, &ck, ueq.span)?;
        eqs.push(TEquation {
            lhs: ueq.lhs.clone(),
            ck,
            rhs,
            span: ueq.span,
        });
    }

    // Every output and local must be defined.
    for d in outputs.iter().chain(&locals) {
        if !defined.contains(&d.name) {
            return err(
                codes::E0206,
                format!("variable {} is never defined", d.name),
                unode.span,
            );
        }
    }

    Ok(TNode {
        name: unode.name,
        inputs,
        outputs,
        locals,
        eqs,
        exprs: TRange {
            start: tstart,
            len: ta.num_exprs() as u32 - tstart,
        },
        span: unode.span,
    })
}

/// Elaborates a surface program: resolves constants, orders nodes,
/// type-checks and clock-checks everything.
///
/// The typed expressions are built into `ta` (cleared first); the
/// returned program's ids index it. Callers that compile repeatedly
/// pass the same arena back in to reuse its pools.
///
/// Returns the typed program and accumulated warnings (elaboration
/// itself currently emits none: the old syntactic `pre` lint moved to
/// the semantic initialization analysis in `velus-analysis`, fed by
/// [`TArena::pre_span`]).
///
/// # Errors
///
/// All typing, clocking and structural errors as positioned diagnostics.
pub fn elaborate<O: Ops>(
    prog: &UProgram,
    ua: &UArena,
    ta: &mut TArena<O>,
) -> Result<(TProgram<O>, Diagnostics), Diagnostics> {
    ta.clear();
    ta.exprs.reserve(ua.num_exprs());
    let mut arg_stack: Vec<TExprId> = Vec::new();

    // Global constants.
    let mut consts: IdentMap<O::Const> = ident_map_with_capacity(prog.consts.len());
    let empty_sigs = SigMap::<O>::default();
    for c in &prog.consts {
        let ty = match O::type_of_name(c.ty_name.as_str()) {
            Some(t) => t,
            None => return err(codes::E0215, format!("unknown type {}", c.ty_name), c.span),
        };
        let value = {
            let mut scratch_ta = TArena::<O>::new();
            let scratch = Elab::<O> {
                ua,
                ta: &mut scratch_ta,
                env: NodeEnv {
                    vars: VarMap::<O>::default(),
                    consts: &consts,
                    sigs: &empty_sigs,
                },
                arg_stack: &mut arg_stack,
            };
            scratch.const_value(c.value, &ty)?
        };
        if consts.insert(c.name, value).is_some() {
            return err(
                codes::E0217,
                format!("duplicate constant {}", c.name),
                c.span,
            );
        }
    }

    let order = order_nodes::<O>(prog, ua)?;
    let mut sigs: SigMap<O> = ident_map_with_capacity(prog.nodes.len());
    let mut nodes = Vec::with_capacity(prog.nodes.len());
    for i in order {
        let tnode = elab_node::<O>(&prog.nodes[i], ua, ta, &consts, &sigs, &mut arg_stack)?;
        sigs.insert(
            tnode.name,
            (
                tnode.inputs.iter().map(|d| d.ty.clone()).collect(),
                tnode
                    .outputs
                    .iter()
                    .map(|d| (d.name, d.ty.clone()))
                    .collect(),
            ),
        );
        nodes.push(tnode);
    }
    Ok((TProgram { nodes }, Diagnostics::new()))
}
