//! Elaboration: typing and clocking of the surface syntax (§2.1).
//!
//! Elaboration rejects programs that are not well typed or well clocked
//! and produces an *annotated* AST ([`TExpr`]) in which every variable and
//! operator application carries its machine type, literals have been
//! resolved to constants of the operator interface, `pre` has been
//! desugared to `fby` of the type's default value (with an initialization
//! lint), and casts have been resolved.
//!
//! Bidirectional typing: literals are type-polymorphic (`PTy::IntLit`,
//! `PTy::FloatLit`) and take their type from context (`0 fby n` gives
//! `0` the type of `n`); unconstrained integer literals default to `int`,
//! float literals to `real`. Clocks are checked against declarations;
//! constants are clock-polymorphic.
//!
//! Nodes may be declared in any order; elaboration topologically orders
//! them (callees first) and rejects recursion — the paper's "nodes are not
//! applied circularly".

use velus_common::{codes, DiagStage, Diagnostic, Diagnostics, Ident, IdentMap, Span};
use velus_nlustre::clock::Clock;
use velus_ops::{Literal, Ops, SurfaceBinOp, SurfaceUnOp};

use crate::ast::{UClock, UDecl, UExpr, UNode, UProgram};

/// A typed expression (surface constructs preserved, annotations added).
#[derive(Debug, Clone, PartialEq)]
pub enum TExpr<O: Ops> {
    /// A constant (literal or global constant, resolved).
    Const(O::Const),
    /// A variable with its type.
    Var(Ident, O::Ty),
    /// Unary operator (including casts), annotated with the result type.
    Unop(O::UnOp, Box<TExpr<O>>, O::Ty),
    /// Binary operator, annotated with the result type.
    Binop(O::BinOp, Box<TExpr<O>>, Box<TExpr<O>>, O::Ty),
    /// Sampling.
    When(Box<TExpr<O>>, Ident, bool),
    /// Merge of complementary streams.
    Merge(Ident, Box<TExpr<O>>, Box<TExpr<O>>),
    /// Multiplexer.
    If(Box<TExpr<O>>, Box<TExpr<O>>, Box<TExpr<O>>),
    /// Initialized delay (the `pre` form has already been desugared).
    Fby(O::Const, Box<TExpr<O>>),
    /// Initialization `e1 -> e2`.
    Arrow(Box<TExpr<O>>, Box<TExpr<O>>),
    /// Node instantiation with the callee's output signature.
    Call(Ident, Vec<TExpr<O>>, Vec<(Ident, O::Ty)>),
}

impl<O: Ops> TExpr<O> {
    /// The type of the expression (first output for calls).
    pub fn ty(&self) -> O::Ty {
        match self {
            TExpr::Const(c) => O::type_of_const(c),
            TExpr::Var(_, ty) | TExpr::Unop(_, _, ty) | TExpr::Binop(_, _, _, ty) => ty.clone(),
            TExpr::When(e, _, _) => e.ty(),
            TExpr::Merge(_, t, _) => t.ty(),
            TExpr::If(_, t, _) => t.ty(),
            TExpr::Fby(_, e) => e.ty(),
            TExpr::Arrow(l, _) => l.ty(),
            TExpr::Call(_, _, outs) => outs[0].1.clone(),
        }
    }
}

/// A typed equation.
#[derive(Debug, Clone, PartialEq)]
pub struct TEquation<O: Ops> {
    /// Defined variables.
    pub lhs: Vec<Ident>,
    /// The (common) clock of the defined variables.
    pub ck: Clock,
    /// Typed right-hand side.
    pub rhs: TExpr<O>,
    /// The source equation's span (threaded into the
    /// [`velus_common::SpanMap`] by normalization so mid-end failures
    /// point back here).
    pub span: Span,
}

/// A typed node.
#[derive(Debug, Clone, PartialEq)]
pub struct TNode<O: Ops> {
    /// Node name.
    pub name: Ident,
    /// Typed, clocked inputs.
    pub inputs: Vec<velus_nlustre::ast::VarDecl<O>>,
    /// Typed, clocked outputs.
    pub outputs: Vec<velus_nlustre::ast::VarDecl<O>>,
    /// Typed, clocked locals.
    pub locals: Vec<velus_nlustre::ast::VarDecl<O>>,
    /// Typed equations.
    pub eqs: Vec<TEquation<O>>,
    /// The node header's span.
    pub span: Span,
}

/// A typed program, nodes in dependency order (callees first).
#[derive(Debug, Clone, PartialEq)]
pub struct TProgram<O: Ops> {
    /// The nodes.
    pub nodes: Vec<TNode<O>>,
}

/// Partial types for literal inference.
#[derive(Debug, Clone, PartialEq)]
enum PTy<O: Ops> {
    Known(O::Ty),
    IntLit,
    FloatLit,
}

/// Callee signatures: name → (input types, named output types).
type SigMap<O> = IdentMap<(Vec<<O as Ops>::Ty>, Vec<(Ident, <O as Ops>::Ty)>)>;

/// Declared variables: name → (type, clock).
type VarMap<O> = IdentMap<(<O as Ops>::Ty, Clock)>;

/// Elaborated declaration groups (inputs, outputs, locals), plus the
/// combined variable environment.
type ElabDecls<O> = (VarMap<O>, [Vec<velus_nlustre::ast::VarDecl<O>>; 3]);

struct NodeEnv<'e, O: Ops> {
    /// Variable name → (type, clock).
    vars: VarMap<O>,
    /// Global constants (shared across nodes, hence borrowed — cloning
    /// them per node made elaboration quadratic in program size).
    consts: &'e IdentMap<O::Const>,
    /// Callee signatures: name → (input types, outputs); borrowed for
    /// the same reason.
    sigs: &'e SigMap<O>,
}

struct Elab<'a, O: Ops> {
    env: NodeEnv<'a, O>,
    warnings: &'a mut Diagnostics,
}

type EResult<T> = Result<T, Diagnostics>;

fn err<T>(code: velus_common::Code, msg: impl Into<String>, span: Span) -> EResult<T> {
    Err(Diagnostics::from(
        Diagnostic::error(code, msg, span).at_stage(DiagStage::Elaborate),
    ))
}

impl<O: Ops> Elab<'_, O> {
    // ---- types ---------------------------------------------------------

    fn unify(&self, a: PTy<O>, b: PTy<O>, span: Span) -> EResult<PTy<O>> {
        use PTy::*;
        match (a, b) {
            (Known(x), Known(y)) if x == y => Ok(Known(x)),
            (Known(x), Known(y)) => err(codes::E0202, format!("type mismatch: {x} vs {y}"), span),
            (IntLit, IntLit) => Ok(IntLit),
            (FloatLit, FloatLit) | (IntLit, FloatLit) | (FloatLit, IntLit) => Ok(FloatLit),
            (IntLit, Known(t)) | (Known(t), IntLit) => {
                if O::const_of_literal(&Literal::Int(0), &t).is_some() {
                    Ok(Known(t))
                } else {
                    err(
                        codes::E0207,
                        format!("integer literal used at type {t}"),
                        span,
                    )
                }
            }
            (FloatLit, Known(t)) | (Known(t), FloatLit) => {
                if O::const_of_literal(&Literal::Float(0.0), &t).is_some() {
                    Ok(Known(t))
                } else {
                    err(
                        codes::E0207,
                        format!("float literal used at type {t}"),
                        span,
                    )
                }
            }
        }
    }

    fn resolve(&self, p: PTy<O>, span: Span) -> EResult<O::Ty> {
        match p {
            PTy::Known(t) => Ok(t),
            PTy::IntLit => O::type_of_name("int").ok_or(()).or_else(|_| {
                err(
                    codes::E0215,
                    "no default integer type in this operator interface",
                    span,
                )
            }),
            PTy::FloatLit => O::type_of_name("real").ok_or(()).or_else(|_| {
                err(
                    codes::E0215,
                    "no default real type in this operator interface",
                    span,
                )
            }),
        }
    }

    fn var_ty(&self, x: Ident, span: Span) -> EResult<PTy<O>> {
        if let Some((t, _)) = self.env.vars.get(&x) {
            return Ok(PTy::Known(t.clone()));
        }
        if let Some(c) = self.env.consts.get(&x) {
            return Ok(PTy::Known(O::type_of_const(c)));
        }
        err(codes::E0201, format!("unknown variable {x}"), span)
    }

    /// Infers a partial type bottom-up (used where no expectation exists).
    fn infer(&self, e: &UExpr) -> EResult<PTy<O>> {
        match e {
            UExpr::Lit(Literal::Int(_), _) => Ok(PTy::IntLit),
            UExpr::Lit(Literal::Float(_), _) => Ok(PTy::FloatLit),
            UExpr::Lit(Literal::Bool(_), _) => Ok(PTy::Known(O::bool_type())),
            UExpr::Var(x, s) => self.var_ty(*x, *s),
            UExpr::Unop(SurfaceUnOp::Not, _, _) => Ok(PTy::Known(O::bool_type())),
            UExpr::Unop(SurfaceUnOp::Neg, e1, _) => self.infer(e1),
            UExpr::Binop(op, l, r, s) => {
                use SurfaceBinOp::*;
                match op {
                    Eq | Ne | Lt | Le | Gt | Ge => Ok(PTy::Known(O::bool_type())),
                    And | Or | Xor => Ok(PTy::Known(O::bool_type())),
                    _ => {
                        let a = self.infer(l)?;
                        let b = self.infer(r)?;
                        self.unify(a, b, *s)
                    }
                }
            }
            UExpr::When(e1, _, _, _) => self.infer(e1),
            UExpr::Merge(_, t, f, s) | UExpr::If(_, t, f, s) => {
                let a = self.infer(t)?;
                let b = self.infer(f)?;
                self.unify(a, b, *s)
            }
            UExpr::Fby(c, e1, s) | UExpr::Arrow(c, e1, s) => {
                let a = self.infer(c)?;
                let b = self.infer(e1)?;
                self.unify(a, b, *s)
            }
            UExpr::Pre(e1, _) => self.infer(e1),
            UExpr::Call(f, args, s) => {
                if O::type_of_name(f.as_str()).is_some() {
                    return Ok(PTy::Known(O::type_of_name(f.as_str()).expect("checked")));
                }
                match self.env.sigs.get(f) {
                    Some((_, outs)) if outs.len() == 1 => Ok(PTy::Known(outs[0].1.clone())),
                    Some((_, outs)) => err(
                        codes::E0214,
                        format!(
                            "node {f} has {} outputs; tuple calls only at equation level",
                            outs.len()
                        ),
                        *s,
                    ),
                    None => {
                        let _ = args;
                        err(codes::E0203, format!("unknown node or type {f}"), *s)
                    }
                }
            }
        }
    }

    /// Builds a typed expression at the expected type.
    ///
    /// `initialized` tracks whether the expression sits under the
    /// right-hand side of an `->` (for the `pre` lint).
    fn build(&mut self, e: &UExpr, expected: &O::Ty, initialized: bool) -> EResult<TExpr<O>> {
        match e {
            UExpr::Lit(lit, s) => match O::const_of_literal(lit, expected) {
                Some(c) => Ok(TExpr::Const(c)),
                None => err(
                    codes::E0207,
                    format!("literal {lit} does not fit type {expected}"),
                    *s,
                ),
            },
            UExpr::Var(x, s) => {
                if let Some((t, _)) = self.env.vars.get(x) {
                    if t == expected {
                        Ok(TExpr::Var(*x, t.clone()))
                    } else {
                        err(
                            codes::E0202,
                            format!("variable {x} has type {t}, expected {expected}"),
                            *s,
                        )
                    }
                } else if let Some(c) = self.env.consts.get(x) {
                    if O::type_of_const(c) == *expected {
                        Ok(TExpr::Const(c.clone()))
                    } else {
                        err(
                            codes::E0202,
                            format!(
                                "constant {x} has type {}, expected {expected}",
                                O::type_of_const(c)
                            ),
                            *s,
                        )
                    }
                } else {
                    err(codes::E0201, format!("unknown variable {x}"), *s)
                }
            }
            UExpr::Unop(sop, e1, s) => {
                let operand_ty = match sop {
                    SurfaceUnOp::Not => O::bool_type(),
                    SurfaceUnOp::Neg => expected.clone(),
                };
                let te = self.build(e1, &operand_ty, initialized)?;
                match O::elab_unop(*sop, &operand_ty) {
                    Some((op, rty)) if rty == *expected => Ok(TExpr::Unop(op, Box::new(te), rty)),
                    Some((_, rty)) => err(
                        codes::E0202,
                        format!("operator {sop} yields {rty}, expected {expected}"),
                        *s,
                    ),
                    None => err(
                        codes::E0208,
                        format!("operator {sop} inapplicable at type {operand_ty}"),
                        *s,
                    ),
                }
            }
            UExpr::Binop(sop, l, r, s) => {
                use SurfaceBinOp::*;
                let operand_ty = match sop {
                    Eq | Ne | Lt | Le | Gt | Ge => {
                        let a = self.infer(l)?;
                        let b = self.infer(r)?;
                        let u = self.unify(a, b, *s)?;
                        self.resolve(u, *s)?
                    }
                    And | Or | Xor => O::bool_type(),
                    _ => expected.clone(),
                };
                let tl = self.build(l, &operand_ty, initialized)?;
                let tr = self.build(r, &operand_ty, initialized)?;
                match O::elab_binop(*sop, &operand_ty, &operand_ty) {
                    Some((op, rty)) if rty == *expected => {
                        Ok(TExpr::Binop(op, Box::new(tl), Box::new(tr), rty))
                    }
                    Some((_, rty)) => err(
                        codes::E0202,
                        format!("operator {sop} yields {rty}, expected {expected}"),
                        *s,
                    ),
                    None => err(
                        codes::E0208,
                        format!("operator {sop} inapplicable at type {operand_ty}"),
                        *s,
                    ),
                }
            }
            UExpr::When(e1, x, k, s) => {
                self.require_bool_var(*x, *s)?;
                let te = self.build(e1, expected, initialized)?;
                Ok(TExpr::When(Box::new(te), *x, *k))
            }
            UExpr::Merge(x, t, f, s) => {
                self.require_bool_var(*x, *s)?;
                let tt = self.build(t, expected, initialized)?;
                let tf = self.build(f, expected, initialized)?;
                Ok(TExpr::Merge(*x, Box::new(tt), Box::new(tf)))
            }
            UExpr::If(c, t, f, _) => {
                let tc = self.build(c, &O::bool_type(), initialized)?;
                let tt = self.build(t, expected, initialized)?;
                let tf = self.build(f, expected, initialized)?;
                Ok(TExpr::If(Box::new(tc), Box::new(tt), Box::new(tf)))
            }
            UExpr::Fby(c, e1, s) => {
                let init = self.const_value(c, expected)?;
                let te = self.build(e1, expected, initialized)?;
                let _ = s;
                Ok(TExpr::Fby(init, Box::new(te)))
            }
            UExpr::Arrow(l, r, _) => {
                let tl = self.build(l, expected, initialized)?;
                let tr = self.build(r, expected, true)?;
                Ok(TExpr::Arrow(Box::new(tl), Box::new(tr)))
            }
            UExpr::Pre(e1, s) => {
                if !initialized {
                    self.warnings.push(
                        Diagnostic::warning(
                            codes::W0001,
                            "`pre` may be read before initialization; consider `e -> pre …`",
                            *s,
                        )
                        .at_stage(DiagStage::Elaborate),
                    );
                }
                let te = self.build(e1, expected, initialized)?;
                Ok(TExpr::Fby(O::default_const(expected), Box::new(te)))
            }
            UExpr::Call(f, args, s) => {
                // Type cast?
                if let Some(to) = O::type_of_name(f.as_str()) {
                    if args.len() != 1 {
                        return err(
                            codes::E0204,
                            format!("cast {f}(…) takes exactly one argument"),
                            *s,
                        );
                    }
                    if to != *expected {
                        return err(
                            codes::E0202,
                            format!("cast to {to} used at type {expected}"),
                            *s,
                        );
                    }
                    let from_p = self.infer(&args[0])?;
                    let from = self.resolve(from_p, *s)?;
                    let te = self.build(&args[0], &from, initialized)?;
                    return match O::elab_cast(&from, &to) {
                        Some(op) => Ok(TExpr::Unop(op, Box::new(te), to)),
                        None => err(codes::E0208, format!("no cast from {from} to {to}"), *s),
                    };
                }
                let (ins, outs) = match self.env.sigs.get(f) {
                    Some(sig) => sig.clone(),
                    None => return err(codes::E0203, format!("unknown node or type {f}"), *s),
                };
                if outs.len() != 1 {
                    return err(
                        codes::E0214,
                        format!(
                            "node {f} has {} outputs; tuple calls only at equation level",
                            outs.len()
                        ),
                        *s,
                    );
                }
                if outs[0].1 != *expected {
                    return err(
                        codes::E0202,
                        format!("node {f} returns {}, expected {expected}", outs[0].1),
                        *s,
                    );
                }
                let targs = self.build_args(f, &ins, args, *s, initialized)?;
                Ok(TExpr::Call(*f, targs, outs))
            }
        }
    }

    fn build_args(
        &mut self,
        f: &Ident,
        ins: &[O::Ty],
        args: &[UExpr],
        span: Span,
        initialized: bool,
    ) -> EResult<Vec<TExpr<O>>> {
        if ins.len() != args.len() {
            return err(
                codes::E0204,
                format!(
                    "node {f} takes {} arguments, {} given",
                    ins.len(),
                    args.len()
                ),
                span,
            );
        }
        args.iter()
            .zip(ins)
            .map(|(a, t)| self.build(a, t, initialized))
            .collect()
    }

    fn require_bool_var(&self, x: Ident, span: Span) -> EResult<()> {
        match self.env.vars.get(&x) {
            Some((t, _)) if *t == O::bool_type() => Ok(()),
            Some((t, _)) => err(
                codes::E0302,
                format!("sampler {x} has type {t}, expected bool"),
                span,
            ),
            None => err(codes::E0201, format!("unknown variable {x}"), span),
        }
    }

    /// Evaluates a constant expression (literal, possibly negated literal,
    /// or global constant) at the expected type.
    fn const_value(&self, e: &UExpr, expected: &O::Ty) -> EResult<O::Const> {
        match e {
            UExpr::Lit(lit, s) => O::const_of_literal(lit, expected).ok_or(()).or_else(|_| {
                err(
                    codes::E0207,
                    format!("literal {lit} does not fit type {expected}"),
                    *s,
                )
            }),
            UExpr::Var(x, s) => match self.env.consts.get(x) {
                Some(c) if O::type_of_const(c) == *expected => Ok(c.clone()),
                Some(c) => err(
                    codes::E0202,
                    format!(
                        "constant {x} has type {}, expected {expected}",
                        O::type_of_const(c)
                    ),
                    *s,
                ),
                None => err(
                    codes::E0209,
                    format!("`fby` initial value must be a constant, found variable {x}"),
                    *s,
                ),
            },
            other => err(
                codes::E0209,
                "`fby` initial value must be a constant expression",
                other.span(),
            ),
        }
    }

    // ---- clocks ---------------------------------------------------------

    /// Checks that `e` is well clocked at `ck` (`None` = clock-polymorphic
    /// constant context is not needed: equations always give a concrete
    /// expectation).
    fn check_clock(&self, e: &TExpr<O>, ck: &Clock, span: Span) -> EResult<()> {
        match e {
            TExpr::Const(_) => Ok(()),
            TExpr::Var(x, _) => {
                let (_, cx) = self.env.vars.get(x).expect("vars checked during typing");
                if cx == ck {
                    Ok(())
                } else {
                    err(
                        codes::E0301,
                        format!("variable {x} on clock `{cx}`, expected `{ck}`"),
                        span,
                    )
                }
            }
            TExpr::Unop(_, e1, _) => self.check_clock(e1, ck, span),
            TExpr::Binop(_, l, r, _) => {
                self.check_clock(l, ck, span)?;
                self.check_clock(r, ck, span)
            }
            TExpr::When(e1, x, k) => match ck {
                Clock::On(parent, y, k2) if y == x && k2 == k => {
                    self.check_var_clock(*x, parent, span)?;
                    self.check_clock(e1, parent, span)
                }
                _ => err(
                    codes::E0301,
                    format!("`… when {x}` used at clock `{ck}`"),
                    span,
                ),
            },
            TExpr::Merge(x, t, f) => {
                self.check_var_clock(*x, ck, span)?;
                self.check_clock(t, &ck.clone().on(*x, true), span)?;
                self.check_clock(f, &ck.clone().on(*x, false), span)
            }
            TExpr::If(c, t, f) => {
                self.check_clock(c, ck, span)?;
                self.check_clock(t, ck, span)?;
                self.check_clock(f, ck, span)
            }
            TExpr::Fby(_, e1) => self.check_clock(e1, ck, span),
            TExpr::Arrow(l, r) => {
                self.check_clock(l, ck, span)?;
                self.check_clock(r, ck, span)
            }
            TExpr::Call(_, args, _) => {
                for a in args {
                    self.check_clock(a, ck, span)?;
                }
                Ok(())
            }
        }
    }

    fn check_var_clock(&self, x: Ident, ck: &Clock, span: Span) -> EResult<()> {
        match self.env.vars.get(&x) {
            Some((_, cx)) if cx == ck => Ok(()),
            Some((_, cx)) => err(
                codes::E0301,
                format!("variable {x} on clock `{cx}`, expected `{ck}`"),
                span,
            ),
            None => err(codes::E0201, format!("unknown variable {x}"), span),
        }
    }
}

fn elab_clock<O: Ops>(uclock: &UClock, vars: &VarMap<O>, span: Span) -> EResult<Clock> {
    match uclock {
        UClock::Base => Ok(Clock::Base),
        UClock::On(parent, x, k) => {
            let p = elab_clock::<O>(parent, vars, span)?;
            match vars.get(x) {
                Some((t, cx)) => {
                    if *t != O::bool_type() {
                        return err(
                            codes::E0302,
                            format!("clock variable {x} has type {t}, expected bool"),
                            span,
                        );
                    }
                    if *cx != p {
                        return err(
                            codes::E0301,
                            format!("clock variable {x} lives on `{cx}`, expected `{p}`"),
                            span,
                        );
                    }
                    Ok(p.on(*x, *k))
                }
                None => err(codes::E0303, format!("unknown clock variable {x}"), span),
            }
        }
    }
}

/// Scans an expression for node-call targets (for dependency ordering).
fn call_targets(e: &UExpr, out: &mut Vec<Ident>) {
    match e {
        UExpr::Call(f, args, _) => {
            out.push(*f);
            for a in args {
                call_targets(a, out);
            }
        }
        UExpr::Lit(..) | UExpr::Var(..) => {}
        UExpr::Unop(_, e1, _) | UExpr::When(e1, _, _, _) | UExpr::Pre(e1, _) => {
            call_targets(e1, out)
        }
        UExpr::Binop(_, l, r, _) | UExpr::Fby(l, r, _) | UExpr::Arrow(l, r, _) => {
            call_targets(l, out);
            call_targets(r, out);
        }
        UExpr::Merge(_, t, f, _) => {
            call_targets(t, out);
            call_targets(f, out);
        }
        UExpr::If(c, t, f, _) => {
            call_targets(c, out);
            call_targets(t, out);
            call_targets(f, out);
        }
    }
}

/// Topologically orders nodes, callees first.
fn order_nodes<O: Ops>(prog: &UProgram) -> EResult<Vec<usize>> {
    let index: IdentMap<usize> = prog
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.name, i))
        .collect();
    if index.len() != prog.nodes.len() {
        for (i, n) in prog.nodes.iter().enumerate() {
            if index[&n.name] != i {
                return err(
                    codes::E0216,
                    format!("duplicate node name {}", n.name),
                    n.span,
                );
            }
        }
    }
    // DFS with cycle detection.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks = vec![Mark::White; prog.nodes.len()];
    let mut order = Vec::new();
    fn visit<O: Ops>(
        i: usize,
        prog: &UProgram,
        index: &IdentMap<usize>,
        marks: &mut Vec<Mark>,
        order: &mut Vec<usize>,
    ) -> EResult<()> {
        match marks[i] {
            Mark::Black => return Ok(()),
            Mark::Grey => {
                return err(
                    codes::E0211,
                    format!(
                        "recursive node instantiation through {}",
                        prog.nodes[i].name
                    ),
                    prog.nodes[i].span,
                )
            }
            Mark::White => {}
        }
        marks[i] = Mark::Grey;
        let mut calls = Vec::new();
        for eq in &prog.nodes[i].eqs {
            call_targets(&eq.rhs, &mut calls);
        }
        for f in calls {
            if O::type_of_name(f.as_str()).is_some() {
                continue; // a cast, not a node
            }
            if let Some(&j) = index.get(&f) {
                visit::<O>(j, prog, index, marks, order)?;
            }
            // Unknown callees are reported during typing with a position.
        }
        marks[i] = Mark::Black;
        order.push(i);
        Ok(())
    }
    for i in 0..prog.nodes.len() {
        visit::<O>(i, prog, &index, &mut marks, &mut order)?;
    }
    Ok(order)
}

fn elab_decls<O: Ops>(groups: [&[UDecl]; 3]) -> EResult<ElabDecls<O>> {
    // First pass: resolve types (clocks may reference any declared var).
    let mut tys: IdentMap<O::Ty> = IdentMap::default();
    for d in groups.iter().flat_map(|g| g.iter()) {
        let ty = match O::type_of_name(d.ty_name.as_str()) {
            Some(t) => t,
            None => return err(codes::E0215, format!("unknown type {}", d.ty_name), d.span),
        };
        if tys.insert(d.name, ty).is_some() {
            return err(
                codes::E0210,
                format!("duplicate declaration of {}", d.name),
                d.span,
            );
        }
    }
    // Second pass: resolve clocks. Clocks may be declared in dependency
    // order (a sampler must be declared with its own clock resolvable);
    // iterate until fixpoint to allow forward references.
    let mut vars: VarMap<O> = VarMap::<O>::default();
    let all: Vec<&UDecl> = groups.iter().flat_map(|g| g.iter()).collect();
    let mut pending: Vec<&UDecl> = all.clone();
    while !pending.is_empty() {
        let before = pending.len();
        let mut next = Vec::new();
        for d in pending {
            match elab_clock::<O>(&d.clock, &vars, d.span) {
                Ok(ck) => {
                    vars.insert(d.name, (tys[&d.name].clone(), ck));
                }
                Err(_) => next.push(d),
            }
        }
        if next.len() == before {
            // No progress: report the first real error.
            let d = next[0];
            elab_clock::<O>(&d.clock, &vars, d.span)?;
            unreachable!("elab_clock must fail where it failed before");
        }
        pending = next;
    }
    let mk = |g: &[UDecl]| -> Vec<velus_nlustre::ast::VarDecl<O>> {
        g.iter()
            .map(|d| velus_nlustre::ast::VarDecl {
                name: d.name,
                ty: vars[&d.name].0.clone(),
                ck: vars[&d.name].1.clone(),
            })
            .collect()
    };
    let out = [mk(groups[0]), mk(groups[1]), mk(groups[2])];
    Ok((vars, out))
}

fn elab_node<O: Ops>(
    unode: &UNode,
    consts: &IdentMap<O::Const>,
    sigs: &SigMap<O>,
    warnings: &mut Diagnostics,
) -> EResult<TNode<O>> {
    let (vars, [inputs, outputs, locals]) =
        elab_decls::<O>([&unode.inputs, &unode.outputs, &unode.locals])?;
    // Interface variables live on the base clock (paper's restriction).
    for d in inputs.iter().chain(&outputs) {
        if d.ck != Clock::Base {
            return err(
                codes::E0304,
                format!("interface variable {} must be on the base clock", d.name),
                unode.span,
            );
        }
    }
    if outputs.is_empty() {
        return err(
            codes::E0212,
            format!("node {} has no outputs", unode.name),
            unode.span,
        );
    }

    let mut elab = Elab::<O> {
        env: NodeEnv { vars, consts, sigs },
        warnings,
    };

    let mut eqs = Vec::new();
    let mut defined: Vec<Ident> = Vec::new();
    for ueq in &unode.eqs {
        // The equation clock comes from the (identical) clocks of the
        // defined variables.
        let mut lhs_ck: Option<Clock> = None;
        for x in &ueq.lhs {
            let (_, cx) = match elab.env.vars.get(x) {
                Some(v) => v.clone(),
                None => return err(codes::E0201, format!("unknown variable {x}"), ueq.span),
            };
            match &lhs_ck {
                None => lhs_ck = Some(cx),
                Some(c) if *c == cx => {}
                Some(c) => {
                    return err(
                        codes::E0305,
                        format!("tuple pattern mixes clocks `{c}` and `{cx}`"),
                        ueq.span,
                    )
                }
            }
            if defined.contains(x) {
                return err(
                    codes::E0205,
                    format!("variable {x} defined twice"),
                    ueq.span,
                );
            }
            if inputs.iter().any(|d| d.name == *x) {
                return err(
                    codes::E0213,
                    format!("input {x} cannot be defined"),
                    ueq.span,
                );
            }
            defined.push(*x);
        }
        let ck = lhs_ck.expect("patterns are non-empty");

        let rhs = if ueq.lhs.len() > 1 {
            // Tuple call.
            match &ueq.rhs {
                UExpr::Call(f, args, s) => {
                    if O::type_of_name(f.as_str()).is_some() {
                        return err(codes::E0214, "a cast returns a single value", *s);
                    }
                    let (ins, outs) = match elab.env.sigs.get(f) {
                        Some(sig) => sig.clone(),
                        None => return err(codes::E0203, format!("unknown node {f}"), *s),
                    };
                    if outs.len() != ueq.lhs.len() {
                        return err(
                            codes::E0214,
                            format!(
                                "node {f} has {} outputs, pattern binds {}",
                                outs.len(),
                                ueq.lhs.len()
                            ),
                            *s,
                        );
                    }
                    for (x, (oname, oty)) in ueq.lhs.iter().zip(&outs) {
                        let (tx, _) = &elab.env.vars[x];
                        if tx != oty {
                            return err(
                                codes::E0202,
                                format!("{x} has type {tx}, output {oname} has type {oty}"),
                                *s,
                            );
                        }
                    }
                    let targs = elab.build_args(f, &ins, args, *s, false)?;
                    TExpr::Call(*f, targs, outs)
                }
                other => {
                    return err(
                        codes::E0214,
                        "tuple patterns require a node call on the right",
                        other.span(),
                    )
                }
            }
        } else {
            let x = ueq.lhs[0];
            let (tx, _) = elab.env.vars[&x].clone();
            elab.build(&ueq.rhs, &tx, false)?
        };
        elab.check_clock(&rhs, &ck, ueq.span)?;
        eqs.push(TEquation {
            lhs: ueq.lhs.clone(),
            ck,
            rhs,
            span: ueq.span,
        });
    }

    // Every output and local must be defined.
    for d in outputs.iter().chain(&locals) {
        if !defined.contains(&d.name) {
            return err(
                codes::E0206,
                format!("variable {} is never defined", d.name),
                unode.span,
            );
        }
    }

    Ok(TNode {
        name: unode.name,
        inputs,
        outputs,
        locals,
        eqs,
        span: unode.span,
    })
}

/// Elaborates a surface program: resolves constants, orders nodes,
/// type-checks and clock-checks everything.
///
/// Returns the typed program and accumulated warnings.
///
/// # Errors
///
/// All typing, clocking and structural errors as positioned diagnostics.
pub fn elaborate<O: Ops>(prog: &UProgram) -> Result<(TProgram<O>, Diagnostics), Diagnostics> {
    let mut warnings = Diagnostics::new();

    // Global constants.
    let mut consts: IdentMap<O::Const> = IdentMap::<O::Const>::default();
    let empty_sigs = SigMap::<O>::default();
    for c in &prog.consts {
        let ty = match O::type_of_name(c.ty_name.as_str()) {
            Some(t) => t,
            None => return err(codes::E0215, format!("unknown type {}", c.ty_name), c.span),
        };
        let value = {
            let scratch = Elab::<O> {
                env: NodeEnv {
                    vars: VarMap::<O>::default(),
                    consts: &consts,
                    sigs: &empty_sigs,
                },
                warnings: &mut warnings,
            };
            scratch.const_value(&c.value, &ty)?
        };
        if consts.insert(c.name, value).is_some() {
            return err(
                codes::E0217,
                format!("duplicate constant {}", c.name),
                c.span,
            );
        }
    }

    let order = order_nodes::<O>(prog)?;
    let mut sigs: SigMap<O> = SigMap::<O>::default();
    let mut nodes = Vec::with_capacity(prog.nodes.len());
    for i in order {
        let tnode = elab_node::<O>(&prog.nodes[i], &consts, &sigs, &mut warnings)?;
        sigs.insert(
            tnode.name,
            (
                tnode.inputs.iter().map(|d| d.ty.clone()).collect(),
                tnode
                    .outputs
                    .iter()
                    .map(|d| (d.name, d.ty.clone()))
                    .collect(),
            ),
        );
        nodes.push(tnode);
    }
    Ok((TProgram { nodes }, warnings))
}
