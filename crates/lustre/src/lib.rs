//! The Lustre front end (PLDI'17 §2.1: parsing, elaboration,
//! normalization).
//!
//! The paper's prototype uses an ocamllex lexer, a Menhir-generated
//! verified parser, and an elaborator that *rejects* programs that are not
//! already in normal form. This crate goes further and implements the full
//! unnormalized surface language, including the classical operators the
//! paper discusses in §2.2 — initialization `->`, uninitialized delay
//! `pre` (desugared to `fby` of the type's default value, with an
//! initialization lint), explicit casts, and global constants — followed
//! by a *normalization* pass to N-Lustre, the pass the paper inherits from
//! earlier verified work \[2, 3\].
//!
//! Pipeline:
//!
//! ```text
//! source ──lex──▶ tokens ──parse──▶ ast (untyped)
//!        ──elab──▶ typed AST (types + clocks checked/inferred)
//!        ──normalize──▶ velus_nlustre::ast::Program (N-Lustre)
//! ```
//!
//! Everything is parametric in the operator interface `O:`[`velus_ops::Ops`];
//! literals, type names and operators are resolved through it.
//!
//! # Examples
//!
//! ```
//! use velus_lustre::compile_to_nlustre;
//! use velus_ops::ClightOps;
//!
//! let src = "
//!   node count(inc: int) returns (n: int)
//!   let
//!     n = 0 -> pre n + inc;
//!   tel
//! ";
//! let (prog, warnings) = compile_to_nlustre::<ClightOps>(src)?;
//! assert_eq!(prog.nodes.len(), 1);
//! # let _ = warnings;
//! # Ok::<(), velus_common::Diagnostics>(())
//! ```

pub mod ast;
pub mod elab;
pub mod lexer;
pub mod normalize;
pub mod parser;

use velus_common::{codes, DiagStage, Diagnostics, PreMarks, SpanMap};
use velus_nlustre::ast::Program;
use velus_ops::Ops;

/// Everything the front end produces: the normalized program, the
/// non-fatal warnings, and the [`SpanMap`] that lets every later stage
/// resolve node/equation context back to source positions.
#[derive(Debug, Clone)]
pub struct Frontend<O: Ops> {
    /// The elaborated, normalized N-Lustre program.
    pub program: Program<O>,
    /// Non-fatal warnings (e.g. the semantic initialization lint for
    /// `pre`, `W0101`), coded and stage-tagged.
    pub warnings: Diagnostics,
    /// Source spans of every node and (defined-variable-keyed)
    /// equation, surviving scheduling's reordering.
    pub spans: SpanMap,
    /// The memory variables normalization introduced for a surface
    /// `pre`, with the `pre`'s span — the input of the initialization
    /// analysis, kept for the full lint pass downstream.
    pub pre_marks: PreMarks,
}

/// Reusable front-end working memory: the token buffer and the surface
/// and typed expression arenas.
///
/// One compile fills the pools; [`FrontendScratch::clear`] (called
/// automatically by [`frontend_with`]) empties them but keeps their
/// capacity, so a caller compiling many programs — the service, the
/// bench harness, the differential campaign — stops allocating once the
/// pools have grown to the largest program seen.
#[derive(Debug)]
pub struct FrontendScratch<O: Ops> {
    /// Token buffer (see [`lexer::lex_into`]).
    pub tokens: Vec<lexer::Token>,
    /// Surface expression/argument/clock pools.
    pub ua: ast::UArena,
    /// Typed expression/argument pools.
    pub ta: elab::TArena<O>,
}

impl<O: Ops> Default for FrontendScratch<O> {
    fn default() -> Self {
        Self::new()
    }
}

impl<O: Ops> FrontendScratch<O> {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        FrontendScratch {
            tokens: Vec::new(),
            ua: ast::UArena::new(),
            ta: elab::TArena::new(),
        }
    }

    /// Empties all pools, keeping capacity.
    pub fn clear(&mut self) {
        self.tokens.clear();
        self.ua.clear();
        self.ta.clear();
    }

    /// Current pool capacities `(tokens, surface exprs, surface args,
    /// surface clocks, typed exprs, typed args)` — exposed so tests can
    /// assert a recycled scratch stops growing.
    pub fn capacities(&self) -> (usize, usize, usize, usize, usize, usize) {
        let (ue, ua, uc) = self.ua.capacities();
        let (te, tg) = self.ta.capacities();
        (self.tokens.capacity(), ue, ua, uc, te, tg)
    }
}

/// Runs the whole front end: lex, parse, elaborate, normalize.
///
/// # Errors
///
/// All syntax, typing and clocking errors, as [`Diagnostics`] with
/// stable codes, originating stages and source positions.
pub fn frontend<O: Ops>(source: &str) -> Result<Frontend<O>, Diagnostics> {
    let mut scratch = FrontendScratch::new();
    frontend_with(source, &mut scratch)
}

/// [`frontend`], but building through caller-owned scratch pools so
/// repeated compiles reuse the token buffer and both arenas.
///
/// # Errors
///
/// Same as [`frontend`].
pub fn frontend_with<O: Ops>(
    source: &str,
    scratch: &mut FrontendScratch<O>,
) -> Result<Frontend<O>, Diagnostics> {
    lexer::lex_into(source, &mut scratch.tokens)?;
    let uprog = parser::parse(&scratch.tokens, source, &mut scratch.ua)?;
    let (typed, mut warnings) = elab::elaborate::<O>(&uprog, &scratch.ua, &mut scratch.ta)?;
    let (program, spans, pre_marks) =
        normalize::normalize::<O>(typed, &scratch.ta).map_err(|e| {
            Diagnostics::from(
                velus_common::Diagnostic::error(
                    codes::E0310,
                    format!("normalization: {e}"),
                    velus_common::Span::DUMMY,
                )
                .at_stage(DiagStage::Normalize),
            )
        })?;
    // The semantic replacement for the old syntactic `pre` lint: warn
    // only when a `pre`'s default value can actually reach an output.
    velus_analysis::init::check_initialization(&program, &pre_marks, &mut warnings);
    Ok(Frontend {
        program,
        warnings,
        spans,
        pre_marks,
    })
}

/// Parses, elaborates and normalizes `source` into an N-Lustre program.
///
/// Returns the program together with non-fatal warnings (e.g. the
/// initialization lint for `pre`). Callers that also need source spans
/// for mid-end diagnostics use [`frontend`].
///
/// # Errors
///
/// All syntax, typing and clocking errors, as [`Diagnostics`] with source
/// positions.
pub fn compile_to_nlustre<O: Ops>(source: &str) -> Result<(Program<O>, Diagnostics), Diagnostics> {
    let f = frontend::<O>(source)?;
    Ok((f.program, f.warnings))
}
