//! The Lustre front end (PLDI'17 §2.1: parsing, elaboration,
//! normalization).
//!
//! The paper's prototype uses an ocamllex lexer, a Menhir-generated
//! verified parser, and an elaborator that *rejects* programs that are not
//! already in normal form. This crate goes further and implements the full
//! unnormalized surface language, including the classical operators the
//! paper discusses in §2.2 — initialization `->`, uninitialized delay
//! `pre` (desugared to `fby` of the type's default value, with an
//! initialization lint), explicit casts, and global constants — followed
//! by a *normalization* pass to N-Lustre, the pass the paper inherits from
//! earlier verified work \[2, 3\].
//!
//! Pipeline:
//!
//! ```text
//! source ──lex──▶ tokens ──parse──▶ ast (untyped)
//!        ──elab──▶ typed AST (types + clocks checked/inferred)
//!        ──normalize──▶ velus_nlustre::ast::Program (N-Lustre)
//! ```
//!
//! Everything is parametric in the operator interface `O:`[`velus_ops::Ops`];
//! literals, type names and operators are resolved through it.
//!
//! # Examples
//!
//! ```
//! use velus_lustre::compile_to_nlustre;
//! use velus_ops::ClightOps;
//!
//! let src = "
//!   node count(inc: int) returns (n: int)
//!   let
//!     n = 0 -> pre n + inc;
//!   tel
//! ";
//! let (prog, warnings) = compile_to_nlustre::<ClightOps>(src)?;
//! assert_eq!(prog.nodes.len(), 1);
//! # let _ = warnings;
//! # Ok::<(), velus_common::Diagnostics>(())
//! ```

pub mod ast;
pub mod elab;
pub mod lexer;
pub mod normalize;
pub mod parser;

use velus_common::{codes, DiagStage, Diagnostics, SpanMap};
use velus_nlustre::ast::Program;
use velus_ops::Ops;

/// Everything the front end produces: the normalized program, the
/// non-fatal warnings, and the [`SpanMap`] that lets every later stage
/// resolve node/equation context back to source positions.
#[derive(Debug, Clone)]
pub struct Frontend<O: Ops> {
    /// The elaborated, normalized N-Lustre program.
    pub program: Program<O>,
    /// Non-fatal warnings (e.g. the initialization lint for `pre`),
    /// coded and stage-tagged.
    pub warnings: Diagnostics,
    /// Source spans of every node and (defined-variable-keyed)
    /// equation, surviving scheduling's reordering.
    pub spans: SpanMap,
}

/// Runs the whole front end: lex, parse, elaborate, normalize.
///
/// # Errors
///
/// All syntax, typing and clocking errors, as [`Diagnostics`] with
/// stable codes, originating stages and source positions.
pub fn frontend<O: Ops>(source: &str) -> Result<Frontend<O>, Diagnostics> {
    let tokens = lexer::lex(source)?;
    let uprog = parser::parse(&tokens, source)?;
    let (typed, warnings) = elab::elaborate::<O>(&uprog)?;
    let (program, spans) = normalize::normalize::<O>(typed).map_err(|e| {
        Diagnostics::from(
            velus_common::Diagnostic::error(
                codes::E0310,
                format!("normalization: {e}"),
                velus_common::Span::DUMMY,
            )
            .at_stage(DiagStage::Normalize),
        )
    })?;
    Ok(Frontend {
        program,
        warnings,
        spans,
    })
}

/// Parses, elaborates and normalizes `source` into an N-Lustre program.
///
/// Returns the program together with non-fatal warnings (e.g. the
/// initialization lint for `pre`). Callers that also need source spans
/// for mid-end diagnostics use [`frontend`].
///
/// # Errors
///
/// All syntax, typing and clocking errors, as [`Diagnostics`] with source
/// positions.
pub fn compile_to_nlustre<O: Ops>(source: &str) -> Result<(Program<O>, Diagnostics), Diagnostics> {
    let f = frontend::<O>(source)?;
    Ok((f.program, f.warnings))
}
