//! The Lustre front end (PLDI'17 §2.1: parsing, elaboration,
//! normalization).
//!
//! The paper's prototype uses an ocamllex lexer, a Menhir-generated
//! verified parser, and an elaborator that *rejects* programs that are not
//! already in normal form. This crate goes further and implements the full
//! unnormalized surface language, including the classical operators the
//! paper discusses in §2.2 — initialization `->`, uninitialized delay
//! `pre` (desugared to `fby` of the type's default value, with an
//! initialization lint), explicit casts, and global constants — followed
//! by a *normalization* pass to N-Lustre, the pass the paper inherits from
//! earlier verified work \[2, 3\].
//!
//! Pipeline:
//!
//! ```text
//! source ──lex──▶ tokens ──parse──▶ ast (untyped)
//!        ──elab──▶ typed AST (types + clocks checked/inferred)
//!        ──normalize──▶ velus_nlustre::ast::Program (N-Lustre)
//! ```
//!
//! Everything is parametric in the operator interface `O:`[`velus_ops::Ops`];
//! literals, type names and operators are resolved through it.
//!
//! # Examples
//!
//! ```
//! use velus_lustre::compile_to_nlustre;
//! use velus_ops::ClightOps;
//!
//! let src = "
//!   node count(inc: int) returns (n: int)
//!   let
//!     n = 0 -> pre n + inc;
//!   tel
//! ";
//! let (prog, warnings) = compile_to_nlustre::<ClightOps>(src)?;
//! assert_eq!(prog.nodes.len(), 1);
//! # let _ = warnings;
//! # Ok::<(), velus_common::Diagnostics>(())
//! ```

pub mod ast;
pub mod elab;
pub mod lexer;
pub mod normalize;
pub mod parser;

use velus_common::Diagnostics;
use velus_nlustre::ast::Program;
use velus_ops::Ops;

/// Parses, elaborates and normalizes `source` into an N-Lustre program.
///
/// Returns the program together with non-fatal warnings (e.g. the
/// initialization lint for `pre`).
///
/// # Errors
///
/// All syntax, typing and clocking errors, as [`Diagnostics`] with source
/// positions.
pub fn compile_to_nlustre<O: Ops>(source: &str) -> Result<(Program<O>, Diagnostics), Diagnostics> {
    let tokens = lexer::lex(source)?;
    let uprog = parser::parse(&tokens, source)?;
    let (typed, warnings) = elab::elaborate::<O>(&uprog)?;
    let prog = normalize::normalize::<O>(typed).map_err(|e| {
        Diagnostics::from(velus_common::Diagnostic::error(
            format!("normalization: {e}"),
            velus_common::Span::DUMMY,
        ))
    })?;
    Ok((prog, warnings))
}
