//! Error-path tests of the front end: every rejection the elaborator is
//! supposed to make, with a usable message and a real source position.

use velus_lustre::compile_to_nlustre;
use velus_ops::ClightOps;

fn err_of(src: &str) -> String {
    match compile_to_nlustre::<ClightOps>(src) {
        Ok(_) => panic!("expected rejection of:\n{src}"),
        Err(d) => d.render(src),
    }
}

#[test]
fn unknown_variable() {
    let e = err_of("node f(x: int) returns (y: int) let y = z; tel");
    assert!(e.contains("unknown variable z"), "{e}");
    assert!(e.contains("error"), "{e}");
}

#[test]
fn unknown_type() {
    let e = err_of("node f(x: quaternion) returns (y: int) let y = 0; tel");
    assert!(e.contains("unknown type quaternion"), "{e}");
}

#[test]
fn type_mismatch_across_equation() {
    let e = err_of("node f(x: int) returns (y: bool) let y = x + 1; tel");
    assert!(
        e.contains("expected bool") || e.contains("yields int"),
        "{e}"
    );
}

#[test]
fn boolean_connectives_reject_integers() {
    // `and` forces both operands to bool; the integer operand is the error.
    let e = err_of("node f(x: int) returns (y: bool) let y = x and true; tel");
    assert!(e.contains("has type int, expected bool"), "{e}");
}

#[test]
fn comparison_operands_must_agree() {
    let e = err_of("node f(x: int; r: real) returns (y: bool) let y = x > r; tel");
    assert!(e.contains("type mismatch"), "{e}");
}

#[test]
fn fby_initial_value_must_be_constant() {
    let e = err_of("node f(x: int) returns (y: int) let y = x fby y; tel");
    assert!(e.contains("must be a constant"), "{e}");
}

#[test]
fn duplicate_definition() {
    let e = err_of("node f(x: int) returns (y: int) let y = x; y = x; tel");
    assert!(e.contains("defined twice"), "{e}");
}

#[test]
fn inputs_cannot_be_defined() {
    let e = err_of("node f(x: int) returns (y: int) let x = 1; y = x; tel");
    assert!(e.contains("input x cannot be defined"), "{e}");
}

#[test]
fn undefined_output() {
    let e = err_of("node f(x: int) returns (y, z: int) let y = x; tel");
    assert!(e.contains("never defined"), "{e}");
}

#[test]
fn recursive_nodes_are_rejected() {
    let e = err_of(
        "node f(x: int) returns (y: int) let y = g(x); tel
         node g(x: int) returns (y: int) let y = f(x); tel",
    );
    assert!(e.contains("recursive node instantiation"), "{e}");
}

#[test]
fn self_recursion_is_rejected() {
    let e = err_of("node f(x: int) returns (y: int) let y = f(x); tel");
    assert!(e.contains("recursive"), "{e}");
}

#[test]
fn arity_mismatch_in_call() {
    let e = err_of(
        "node g(a, b: int) returns (c: int) let c = a + b; tel
         node f(x: int) returns (y: int) let y = g(x); tel",
    );
    assert!(e.contains("takes 2 arguments"), "{e}");
}

#[test]
fn tuple_pattern_requires_matching_outputs() {
    let e = err_of(
        "node g(a: int) returns (b, c: int) let b = a; c = a; tel
         node f(x: int) returns (y: int) var z, w, v: int;
         let (z, w, v) = g(x); y = z; tel",
    );
    assert!(e.contains("2 outputs"), "{e}");
}

#[test]
fn multi_output_call_in_expression_position() {
    let e = err_of(
        "node g(a: int) returns (b, c: int) let b = a; c = a; tel
         node f(x: int) returns (y: int) let y = g(x) + 1; tel",
    );
    assert!(e.contains("tuple calls only at equation level"), "{e}");
}

#[test]
fn sampler_must_be_boolean() {
    let e = err_of("node f(x, k: int) returns (y: int) let y = x when k; tel");
    assert!(e.contains("expected bool"), "{e}");
}

#[test]
fn clock_mismatch_in_operator() {
    let e = err_of(
        "node f(k: bool; x: int) returns (y: int)
         let y = x + (x when k); tel",
    );
    assert!(e.contains("clock"), "{e}");
}

#[test]
fn merge_branches_must_be_complementary() {
    let e = err_of(
        "node f(k: bool; x: int) returns (y: int)
         let y = merge k (x when k) (x when k); tel",
    );
    assert!(e.contains("clock"), "{e}");
}

#[test]
fn interface_variables_live_on_the_base_clock() {
    let e = err_of(
        "node f(k: bool; x: int when k) returns (y: int)
         let y = merge k x (0 when not k); tel",
    );
    assert!(e.contains("base clock"), "{e}");
}

#[test]
fn literal_range_is_checked() {
    let e = err_of("node f() returns (y: int8) let y = 200; tel");
    assert!(e.contains("does not fit"), "{e}");
}

#[test]
fn instantaneous_cycles_fail_scheduling() {
    // The front end accepts this (it is well typed and well clocked);
    // the scheduling pass rejects it. Exercised through the driver.
    let src = "node f(x: int) returns (y: int) var a, b: int;
               let a = b + x; b = a; y = a; tel";
    let prog = compile_to_nlustre::<ClightOps>(src).unwrap().0;
    let mut p = prog;
    let err = velus_nlustre::schedule::schedule_program(&mut p).unwrap_err();
    assert!(matches!(err, velus_nlustre::SemError::SchedulingCycle(..)));
}

#[test]
fn error_positions_point_into_the_source() {
    let src = "node f(x: int) returns (y: int)\nlet y = unknown_var; tel";
    let e = err_of(src);
    // Line 2 of the source.
    assert!(e.starts_with("2:"), "{e}");
}

#[test]
fn casts_are_type_checked() {
    let ok = "node f(r: real) returns (y: int) let y = int(r); tel";
    assert!(compile_to_nlustre::<ClightOps>(ok).is_ok());
    let e = err_of("node f(r: real) returns (y: int) let y = bool(r) + 1; tel");
    assert!(e.contains("cast") || e.contains("bool"), "{e}");
}

#[test]
fn mixed_clock_tuple_patterns_are_rejected() {
    let e = err_of(
        "node g(a: int) returns (b, c: int) let b = a; c = a; tel
         node f(k: bool; x: int) returns (y: int)
         var u: int; v: int when k;
         let (u, v) = g(x); y = u; tel",
    );
    assert!(e.contains("mixes clocks"), "{e}");
}
