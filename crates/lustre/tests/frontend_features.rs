//! Feature tests of the front end: the accepted language beyond the
//! paper's normalized core.

use velus_common::Ident;
use velus_lustre::compile_to_nlustre;
use velus_nlustre::dataflow::run_node;
use velus_nlustre::streams::{SVal, StreamSet};
use velus_ops::{CVal, ClightOps};

fn run_ints(src: &str, node: &str, inputs: Vec<Vec<i32>>, n: usize) -> Vec<Vec<i32>> {
    let (mut prog, _) = compile_to_nlustre::<ClightOps>(src).unwrap();
    velus_nlustre::schedule::schedule_program(&mut prog).unwrap();
    let streams: StreamSet<ClightOps> = inputs
        .into_iter()
        .map(|vs| vs.into_iter().map(|v| SVal::Pres(CVal::int(v))).collect())
        .collect();
    let outs = run_node(&prog, Ident::new(node), &streams, n).unwrap();
    outs.into_iter()
        .map(|s| {
            s.into_iter()
                .map(|v| match v {
                    SVal::Pres(CVal::Int(i)) => i,
                    other => panic!("{other:?}"),
                })
                .collect()
        })
        .collect()
}

#[test]
fn global_constants_fold_into_expressions() {
    let src = "
        const base: int = 100;
        const step: int = 7;
        node f(x: int) returns (y: int)
        let y = base + x * step; tel
    ";
    let outs = run_ints(src, "f", vec![vec![0, 1, 2]], 3);
    assert_eq!(outs[0], vec![100, 107, 114]);
}

#[test]
fn constants_serve_as_fby_initializers() {
    let src = "
        const start: int = 42;
        node f(x: int) returns (y: int)
        let y = start fby (y + x); tel
    ";
    let outs = run_ints(src, "f", vec![vec![1, 1, 1]], 3);
    assert_eq!(outs[0], vec![42, 43, 44]);
}

#[test]
fn function_keyword_is_a_node_synonym() {
    let src = "function f(x: int) returns (y: int) let y = x * 2; tel";
    let (prog, _) = compile_to_nlustre::<ClightOps>(src).unwrap();
    assert_eq!(prog.nodes[0].name, Ident::new("f"));
}

#[test]
fn arrow_and_pre_express_the_classical_idiom() {
    // The classic integrator: n = 0 -> pre n + inc.
    let src = "node f(inc: int) returns (n: int) let n = 0 -> pre n + inc; tel";
    let outs = run_ints(src, "f", vec![vec![5, 5, 5, 5]], 4);
    assert_eq!(outs[0], vec![0, 5, 10, 15]);
}

#[test]
fn sized_integer_types_and_casts() {
    // Wrap-around at int8: 120 + 10 = -126.
    let src = "
        node f(x: int) returns (y: int8)
        let y = int8(x) + int8(10); tel
    ";
    let outs = run_ints(src, "f", vec![vec![120]], 1);
    assert_eq!(outs[0], vec![-126]);
}

#[test]
fn real_arithmetic_round_trips() {
    let src = "
        node f(x: real) returns (y: real)
        let y = (0.0 fby y) + x / 2.0; tel
    ";
    let (mut prog, _) = compile_to_nlustre::<ClightOps>(src).unwrap();
    velus_nlustre::schedule::schedule_program(&mut prog).unwrap();
    let streams: StreamSet<ClightOps> = vec![vec![
        SVal::Pres(CVal::float(1.0)),
        SVal::Pres(CVal::float(3.0)),
    ]];
    let outs = run_node(&prog, Ident::new("f"), &streams, 2).unwrap();
    assert_eq!(outs[0][1], SVal::Pres(CVal::float(2.0)));
}

#[test]
fn nodes_may_be_declared_in_any_order() {
    let src = "
        node top(x: int) returns (y: int) let y = helper(x) + 1; tel
        node helper(a: int) returns (b: int) let b = a * 3; tel
    ";
    let (prog, _) = compile_to_nlustre::<ClightOps>(src).unwrap();
    // Elaboration reorders callees first.
    assert_eq!(prog.nodes[0].name, Ident::new("helper"));
    let outs = run_ints(src, "top", vec![vec![2]], 1);
    assert_eq!(outs[0], vec![7]);
}

#[test]
fn deep_when_chains_type_check() {
    let src = "
        node f(a: bool; x: int) returns (y: int)
        var b: bool when a;
            u: int when a when b;
        let
          b = (x > 0) when a;
          u = (x + 1) when a when b;
          y = merge a (merge b u (0 when a when not b)) (0 when not a);
        tel
    ";
    let (prog, _) = compile_to_nlustre::<ClightOps>(src).unwrap();
    velus_nlustre::clockcheck::check_program_clocks(&prog).unwrap();
}

#[test]
fn whenot_and_when_not_are_interchangeable() {
    for sampler in ["when not k", "whenot k"] {
        let src = format!(
            "node f(k: bool; x: int) returns (y: int)
             let y = merge k (x when k) ((0 - x) {sampler}); tel"
        );
        let outs = run_ints(&src, "f", vec![vec![1, 0, 1], vec![5, 6, 7]], 3);
        assert_eq!(outs[0], vec![5, -6, 7]);
    }
}

#[test]
fn block_comments_nest_and_line_comments_terminate() {
    let src = "
        -- leading comment
        node f(x: int) returns (y: int)
        let
          y = x (* inline (* nested *) comment *) + 1; -- trailing
        tel
    ";
    let outs = run_ints(src, "f", vec![vec![1]], 1);
    assert_eq!(outs[0], vec![2]);
}

#[test]
fn warnings_do_not_fail_compilation() {
    let src = "node f(x: int) returns (y: int) let y = pre x; tel";
    let (_, warnings) = compile_to_nlustre::<ClightOps>(src).unwrap();
    assert_eq!(warnings.len(), 1);
    assert!(!warnings.has_errors());
}
