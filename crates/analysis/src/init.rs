//! Semantic initialization analysis.
//!
//! Replaces the front end's old syntactic `W0001` check. A surface
//! `pre e` desugars to `default fby e`: its value at the first instant
//! is a compiler-synthesized default the programmer never chose. The
//! question the analysis answers, per `pre`, is *can that default reach
//! a node output* — or is it provably masked by an initialization
//! guard (`->`, or a handwritten `if h then … else …` over a
//! `true fby false` flag) before any output observes it?
//!
//! # The lattice
//!
//! Per variable, a [`InitMask`]: a 9-bit set over instants — bits
//! `0..=7` mean "may carry the suspect default at (activation) instant
//! *i*", bit 8 ([`InitMask::TAIL`]) means "at some instant ≥ 8". The
//! join is bitwise or; the lattice is finite, so the fixpoint needs no
//! widening.
//!
//! # Transfer functions
//!
//! One fixpoint runs per marked memory `m` (the [`PreMarks`] the
//! normalizer records; marked memories are rare, so this stays cheap):
//!
//! * the equation defining `m` injects bit 0 and shifts its operand's
//!   mask by one instant (`x = d fby e` holds `e`'s instant-*n* value
//!   at instant *n + 1*);
//! * every other `fby` only shifts — an *explicit* initializer is a
//!   real value, which is exactly what kills the old syntactic false
//!   positives on `c fby e` patterns;
//! * `if h then t else f` and `merge h t f` where `h` is a recognized
//!   *initialization flag* (`true fby false`, or a propagated copy of
//!   one — the shape `->` normalizes to) select `t` only at instant 0
//!   and `f` only afterwards: `(mask(t) & 1) | (mask(f) & !1)`;
//! * operators or the masks of their operands; a suspect *sampling* or
//!   clock variable smears from its first suspect instant onward (a
//!   corrupted guard can mis-route every later value);
//! * node instantiations are conservative: if any argument (or clock)
//!   is suspect, every result is suspect from that instant on.
//!
//! A warning ([`codes::W0101`]) is emitted iff some output's mask is
//! non-empty, pointing at the originating `pre`'s span.

use velus_common::{codes, DiagStage, Diagnostic, Diagnostics, Ident, IdentSet, PreMarks, Span};
use velus_nlustre::ast::{CExpr, Equation, Expr, Node, Program};
use velus_nlustre::clock::Clock;
use velus_ops::Ops;

use crate::fixpoint::{solve, Env, Lattice};

/// The per-variable abstract value: at which instants may this stream
/// carry a `pre`'s synthesized default?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InitMask(pub u16);

impl InitMask {
    /// The "some instant ≥ 8" summary bit.
    pub const TAIL: u16 = 0x100;
    /// All nine bits.
    pub const ALL: u16 = 0x1ff;

    /// The clean mask (never suspect).
    pub const fn clean() -> InitMask {
        InitMask(0)
    }

    /// Whether any instant is suspect.
    pub fn is_suspect(self) -> bool {
        self.0 != 0
    }

    /// Delays the mask by one instant (the effect of `fby`): bit 7
    /// moves into the tail.
    pub fn shift(self) -> InitMask {
        InitMask(((self.0 & 0xff) << 1) | (self.0 & InitMask::TAIL))
    }

    /// From the first suspect instant onward, every instant is suspect
    /// (the summary used for values that cross a node instantiation or
    /// corrupt a sampling decision).
    pub fn smear(self) -> InitMask {
        if self.0 == 0 {
            InitMask(0)
        } else {
            InitMask(InitMask::ALL & !((1u16 << self.0.trailing_zeros()) - 1))
        }
    }

    /// The earliest suspect instant, `None` when clean or tail-only.
    pub fn first_instant(self) -> Option<u32> {
        let head = self.0 & 0xff;
        if head == 0 {
            None
        } else {
            Some(head.trailing_zeros())
        }
    }
}

impl std::ops::BitOr for InitMask {
    type Output = InitMask;
    fn bitor(self, rhs: InitMask) -> InitMask {
        InitMask(self.0 | rhs.0)
    }
}

impl Lattice for InitMask {
    fn bottom() -> InitMask {
        InitMask::clean()
    }
    fn join_with(&mut self, other: &InitMask) -> bool {
        let old = self.0;
        self.0 |= other.0;
        self.0 != old
    }
}

/// The variables of `node` that behave as *initialization flags*: true
/// at the first instant, false ever after. The seed is the structural
/// shape `h = true fby false` (what `->` normalizes to, shared per
/// clock); copies and re-expressions of a flag (`x = h`,
/// `x = if h then true else false`, `x = merge h true false`)
/// propagate until fixpoint.
fn init_flags<O: Ops>(node: &Node<O>) -> IdentSet {
    let is_true = |c: &O::Const| O::as_bool(&O::sem_const(c)) == Some(true);
    let is_false = |c: &O::Const| O::as_bool(&O::sem_const(c)) == Some(false);
    let mut flags = IdentSet::default();
    for eq in &node.eqs {
        if let Equation::Fby {
            x,
            init,
            rhs: Expr::Const(c),
            ..
        } = eq
        {
            if is_true(init) && is_false(c) {
                flags.insert(*x);
            }
        }
    }
    loop {
        let mut grew = false;
        for eq in &node.eqs {
            let Equation::Def { x, rhs, .. } = eq else {
                continue;
            };
            if flags.contains(x) {
                continue;
            }
            let is_flag = match rhs {
                CExpr::Expr(Expr::Var(y, _)) => flags.contains(y),
                CExpr::If(Expr::Var(h, _), t, f) | CExpr::Merge(h, t, f) => {
                    flags.contains(h)
                        && matches!(&**t, CExpr::Expr(Expr::Const(c)) if is_true(c))
                        && matches!(&**f, CExpr::Expr(Expr::Const(c)) if is_false(c))
                }
                _ => false,
            };
            if is_flag {
                flags.insert(*x);
                grew = true;
            }
        }
        if !grew {
            return flags;
        }
    }
}

fn eval_expr<O: Ops>(e: &Expr<O>, env: &Env<InitMask>) -> InitMask {
    match e {
        Expr::Var(x, _) => *env.get(*x),
        Expr::Const(_) => InitMask::clean(),
        Expr::Unop(_, e1, _) => eval_expr(e1, env),
        Expr::Binop(_, e1, e2, _) => eval_expr(e1, env) | eval_expr(e2, env),
        Expr::When(e1, x, _) => eval_expr(e1, env) | env.get(*x).smear(),
    }
}

fn eval_cexpr<O: Ops>(ce: &CExpr<O>, env: &Env<InitMask>, flags: &IdentSet) -> InitMask {
    match ce {
        CExpr::Merge(x, t, f) => {
            let (mt, mf) = (eval_cexpr(t, env, flags), eval_cexpr(f, env, flags));
            if flags.contains(x) {
                InitMask((mt.0 & 1) | (mf.0 & !1))
            } else {
                env.get(*x).smear() | mt | mf
            }
        }
        CExpr::If(c, t, f) => {
            let (mt, mf) = (eval_cexpr(t, env, flags), eval_cexpr(f, env, flags));
            if let Expr::Var(h, _) = c {
                if flags.contains(h) {
                    return InitMask((mt.0 & 1) | (mf.0 & !1));
                }
            }
            eval_expr(c, env).smear() | mt | mf
        }
        CExpr::Expr(e) => eval_expr(e, env),
    }
}

fn clock_mask(ck: &Clock, env: &Env<InitMask>) -> InitMask {
    match ck {
        Clock::Base => InitMask::clean(),
        Clock::On(parent, x, _) => clock_mask(parent, env) | env.get(*x).smear(),
    }
}

/// Runs the analysis for one marked memory of `node` and returns the
/// first suspect output with its mask, if any.
fn suspect_output<O: Ops>(
    node: &Node<O>,
    flags: &IdentSet,
    marked: Ident,
) -> Option<(Ident, InitMask)> {
    let mut env: Env<InitMask> = Env::new();
    solve(node, &mut env, |node, i, env, out| {
        let eq = &node.eqs[i];
        let ck = clock_mask(eq.clock(), env);
        match eq {
            Equation::Def { x, rhs, .. } => out.push((*x, eval_cexpr(rhs, env, flags) | ck)),
            Equation::Fby { x, rhs, .. } => {
                let mut m = eval_expr(rhs, env).shift() | ck;
                if *x == marked {
                    m = m | InitMask(1);
                }
                out.push((*x, m));
            }
            Equation::Call { xs, args, .. } => {
                let mut m = ck;
                for a in args {
                    m = m | eval_expr(a, env);
                }
                let m = m.smear();
                for x in xs {
                    out.push((*x, m));
                }
            }
        }
    });
    node.outputs.iter().find_map(|o| {
        let m = *env.get(o.name);
        m.is_suspect().then_some((o.name, m))
    })
}

/// Checks every marked `pre` of every node of `prog` and appends one
/// [`codes::W0101`] warning (at the `pre`'s own span, stage
/// `analysis`) per `pre` whose default may reach a node output.
pub fn check_initialization<O: Ops>(prog: &Program<O>, marks: &PreMarks, diags: &mut Diagnostics) {
    for node in &prog.nodes {
        let node_marks: Vec<(Ident, Span)> = marks.of_node(node.name).collect();
        if node_marks.is_empty() {
            continue;
        }
        let flags = init_flags(node);
        for (mvar, mspan) in node_marks {
            if let Some((out, mask)) = suspect_output(node, &flags, mvar) {
                let when = match mask.first_instant() {
                    Some(k) => format!("first at instant {k}"),
                    None => "at a later instant".to_string(),
                };
                diags.push(
                    Diagnostic::warning(
                        codes::W0101,
                        format!(
                            "the default value of this `pre` may reach output {out} ({when}); \
                             consider `e -> pre …`"
                        ),
                        mspan,
                    )
                    .at_stage(DiagStage::Analysis),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velus_ops::{CConst, CTy, ClightOps};

    fn ivar(n: &str) -> Expr<ClightOps> {
        Expr::Var(Ident::new(n), CTy::I32)
    }

    fn decl(n: &str, ty: CTy) -> velus_nlustre::ast::VarDecl<ClightOps> {
        velus_nlustre::ast::VarDecl {
            name: Ident::new(n),
            ty,
            ck: Clock::Base,
        }
    }

    fn def(x: &str, rhs: CExpr<ClightOps>) -> Equation<ClightOps> {
        Equation::Def {
            x: Ident::new(x),
            ck: Clock::Base,
            rhs,
        }
    }

    fn fby(x: &str, init: CConst, rhs: Expr<ClightOps>) -> Equation<ClightOps> {
        Equation::Fby {
            x: Ident::new(x),
            ck: Clock::Base,
            init,
            rhs,
        }
    }

    fn node(
        outputs: Vec<velus_nlustre::ast::VarDecl<ClightOps>>,
        locals: Vec<velus_nlustre::ast::VarDecl<ClightOps>>,
        eqs: Vec<Equation<ClightOps>>,
    ) -> Node<ClightOps> {
        Node {
            name: Ident::new("f"),
            inputs: vec![decl("x", CTy::I32)],
            outputs,
            locals,
            eqs,
        }
    }

    fn run(n: &Node<ClightOps>, marked: &[&str]) -> Diagnostics {
        let mut marks = PreMarks::new();
        for m in marked {
            marks.record(n.name, Ident::new(m), Span::new(1, 4));
        }
        let prog = Program::new(vec![n.clone()]);
        let mut d = Diagnostics::new();
        check_initialization(&prog, &marks, &mut d);
        d
    }

    #[test]
    fn masks_shift_and_smear() {
        let m = InitMask(1);
        assert_eq!(m.shift(), InitMask(2));
        assert_eq!(InitMask(0x80).shift(), InitMask(InitMask::TAIL));
        assert_eq!(InitMask(InitMask::TAIL).shift().0, InitMask::TAIL);
        assert_eq!(InitMask(0b100).smear().0, 0x1fc);
        assert_eq!(InitMask(0).smear().0, 0);
        assert_eq!(InitMask(0b110).first_instant(), Some(1));
        assert_eq!(InitMask(InitMask::TAIL).first_instant(), None);
    }

    #[test]
    fn bare_pre_reaching_an_output_warns() {
        // m = default fby x (marked); y = m;
        let n = node(
            vec![decl("y", CTy::I32)],
            vec![decl("m", CTy::I32)],
            vec![
                fby("m", CConst::int(0), ivar("x")),
                def("y", CExpr::Expr(ivar("m"))),
            ],
        );
        let d = run(&n, &["m"]);
        assert_eq!(d.len(), 1);
        let w = d.iter().next().unwrap();
        assert_eq!(w.code, codes::W0101);
        assert_eq!(w.stage, DiagStage::Analysis);
        assert!(w.message.contains("pre"), "{}", w.message);
        assert!(w.message.contains("instant 0"), "{}", w.message);
        assert_eq!(w.span, Span::new(1, 4));
    }

    #[test]
    fn flag_guarded_pre_is_clean() {
        // h = true fby false; m = default fby x (marked);
        // y = if h then 0 else m;   — the arrow shape: provably masked.
        let n = node(
            vec![decl("y", CTy::I32)],
            vec![decl("h", CTy::Bool), decl("m", CTy::I32)],
            vec![
                fby("h", CConst::bool(true), Expr::Const(CConst::bool(false))),
                fby("m", CConst::int(0), ivar("x")),
                def(
                    "y",
                    CExpr::If(
                        Expr::Var(Ident::new("h"), CTy::Bool),
                        Box::new(CExpr::Expr(Expr::Const(CConst::int(0)))),
                        Box::new(CExpr::Expr(ivar("m"))),
                    ),
                ),
            ],
        );
        assert!(run(&n, &["m"]).is_empty());
    }

    #[test]
    fn delayed_leak_through_an_explicit_fby_still_warns() {
        // m = default fby x (marked); y = 0 fby m — the default leaks
        // to y at instant 1 even though y itself is initialized.
        let n = node(
            vec![decl("y", CTy::I32)],
            vec![decl("m", CTy::I32)],
            vec![
                fby("m", CConst::int(0), ivar("x")),
                fby("y", CConst::int(0), ivar("m")),
            ],
        );
        let d = run(&n, &["m"]);
        assert_eq!(d.len(), 1);
        assert!(
            d.iter().next().unwrap().message.contains("instant 1"),
            "{d}"
        );
    }

    #[test]
    fn flag_guard_does_not_mask_a_doubly_delayed_default() {
        // m1 = default fby x (marked); m2 = default fby m1 (marked);
        // h = true fby false; y = if h then 0 else m2 — the guard only
        // masks instant 0, but m1's default reaches y at instant 1.
        let n = node(
            vec![decl("y", CTy::I32)],
            vec![
                decl("h", CTy::Bool),
                decl("m1", CTy::I32),
                decl("m2", CTy::I32),
            ],
            vec![
                fby("h", CConst::bool(true), Expr::Const(CConst::bool(false))),
                fby("m1", CConst::int(0), ivar("x")),
                fby("m2", CConst::int(0), ivar("m1")),
                def(
                    "y",
                    CExpr::If(
                        Expr::Var(Ident::new("h"), CTy::Bool),
                        Box::new(CExpr::Expr(Expr::Const(CConst::int(0)))),
                        Box::new(CExpr::Expr(ivar("m2"))),
                    ),
                ),
            ],
        );
        // m1's run warns (its default reaches y at instant 1 through
        // m2); m2's own run is clean (bit 0 masked by the guard).
        let d = run(&n, &["m1", "m2"]);
        assert_eq!(d.len(), 1, "{d}");
        assert!(d.iter().next().unwrap().message.contains("instant 1"));
    }

    #[test]
    fn propagated_flags_are_recognized() {
        // g = true fby false; h = if g then true else false;
        // y = merge h 0 m — still provably masked.
        let n = node(
            vec![decl("y", CTy::I32)],
            vec![
                decl("g", CTy::Bool),
                decl("h", CTy::Bool),
                decl("m", CTy::I32),
            ],
            vec![
                fby("g", CConst::bool(true), Expr::Const(CConst::bool(false))),
                def(
                    "h",
                    CExpr::If(
                        Expr::Var(Ident::new("g"), CTy::Bool),
                        Box::new(CExpr::Expr(Expr::Const(CConst::bool(true)))),
                        Box::new(CExpr::Expr(Expr::Const(CConst::bool(false)))),
                    ),
                ),
                fby("m", CConst::int(0), ivar("x")),
                def(
                    "y",
                    CExpr::Merge(
                        Ident::new("h"),
                        Box::new(CExpr::Expr(Expr::Const(CConst::int(0)))),
                        Box::new(CExpr::Expr(ivar("m"))),
                    ),
                ),
            ],
        );
        assert!(run(&n, &["m"]).is_empty());
    }
}
