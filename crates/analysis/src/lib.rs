//! Static analyses over scheduled N-Lustre.
//!
//! This crate is the lint layer of the pipeline: a small
//! abstract-interpretation framework (a worklist fixpoint engine
//! parameterized by a [`Lattice`], see [`fixpoint`]) and the analyses
//! built on it:
//!
//! * **initialization** ([`init`]) — a definitely-initialized dataflow
//!   over `fby` chains that tracks where the default value a `pre`
//!   introduces can surface at an output ([`W0101`]); the semantic
//!   replacement for the old syntactic `W0001` check.
//! * **value ranges** ([`range`]) — interval / constant propagation
//!   reporting guaranteed division traps as errors ([`E0110`],
//!   [`E0111`]), possible traps ([`W0102`]), constant `if`/`merge`
//!   conditions with dead branches ([`W0103`]), and equations sampled
//!   on provably-never-active clocks ([`W0106`]).
//! * **liveness / reachability** ([`live`]) — variables no output
//!   transitively reads ([`W0104`]) and nodes never instantiated from
//!   the root ([`W0105`]).
//!
//! All diagnostics carry a registered `W01xx`/`E01xx` code, the
//! `analysis` stage tag and a source span, and surface through the
//! ordinary rendering pipeline (`velus lint`, `--emit lint`).
//! Lint *errors* (the `E011x` guaranteed traps) are claims about every
//! execution and are checked dynamically by the campaign soundness
//! oracle in `velus_testkit::soundness`.
//!
//! [`W0101`]: velus_common::codes::W0101
//! [`W0102`]: velus_common::codes::W0102
//! [`W0103`]: velus_common::codes::W0103
//! [`W0104`]: velus_common::codes::W0104
//! [`W0105`]: velus_common::codes::W0105
//! [`W0106`]: velus_common::codes::W0106
//! [`E0110`]: velus_common::codes::E0110
//! [`E0111`]: velus_common::codes::E0111

#![warn(missing_docs)]

pub mod fixpoint;
pub mod init;
pub mod live;
pub mod range;

pub use fixpoint::{solve, Env, Lattice, WIDEN_AFTER};
pub use init::{check_initialization, InitMask};
pub use live::{check_liveness, live_vars, reachable};
pub use range::{check_ranges, AbsVal};

use velus_common::{Diagnostics, Ident, PreMarks, SpanMap};
use velus_nlustre::ast::Program;
use velus_ops::ClightOps;

/// Runs every analysis of this crate over `prog` rooted at `root` and
/// returns the combined, sorted and deduplicated diagnostics.
///
/// `marks` records which memories the elaborator introduced for `pre`
/// (the initialization analysis only reports those); `spans` maps
/// nodes and defined variables back to source positions.
pub fn lint_program(
    prog: &Program<ClightOps>,
    root: Ident,
    marks: &PreMarks,
    spans: &SpanMap,
) -> Diagnostics {
    let mut diags = Diagnostics::new();
    init::check_initialization(prog, marks, &mut diags);
    range::check_ranges(prog, root, spans, &mut diags);
    live::check_liveness(prog, root, spans, &mut diags);
    diags.sort_dedup();
    diags
}
