//! Liveness and reachability lints: variables no output transitively
//! reads ([`codes::W0104`]) and nodes never instantiated from the root
//! ([`codes::W0105`]).
//!
//! Liveness is a backwards closure per node: the outputs seed the live
//! set, and any equation defining a live variable makes everything it
//! reads — clock variables included — live too. A local that never
//! becomes live is dead weight: its equation still executes (and may
//! allocate state for a `fby`), but nothing observable depends on it.
//!
//! Compiler-introduced names (they contain `#`, which the surface
//! grammar cannot produce) are never reported: the normalizer is free
//! to introduce helper streams that later passes fuse away.

use velus_common::{codes, DiagStage, Diagnostic, Diagnostics, Ident, IdentSet, SpanMap};
use velus_nlustre::ast::{Equation, Node, Program};
use velus_ops::Ops;

/// The nodes transitively instantiated from `root` (on any clock),
/// including `root` itself.
pub fn reachable<O: Ops>(prog: &Program<O>, root: Ident) -> IdentSet {
    let mut seen = IdentSet::default();
    if prog.node(root).is_none() {
        return seen;
    }
    seen.insert(root);
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        let Some(node) = prog.node(n) else { continue };
        for eq in &node.eqs {
            if let Equation::Call { node: callee, .. } = eq {
                if !seen.contains(callee) {
                    seen.insert(*callee);
                    stack.push(*callee);
                }
            }
        }
    }
    seen
}

/// The variables of `node` an output transitively depends on (through
/// data *or* clock reads), outputs included.
pub fn live_vars<O: Ops>(node: &Node<O>) -> IdentSet {
    let mut live = IdentSet::default();
    for o in &node.outputs {
        live.insert(o.name);
    }
    let mut reads: Vec<Ident> = Vec::new();
    let mut changed = true;
    while changed {
        changed = false;
        for eq in &node.eqs {
            if !eq.defined().iter().any(|x| live.contains(x)) {
                continue;
            }
            reads.clear();
            eq.reads_into(&mut reads);
            for &x in &reads {
                if !live.contains(&x) {
                    live.insert(x);
                    changed = true;
                }
            }
        }
    }
    live
}

/// Appends the liveness ([`codes::W0104`]) and reachability
/// ([`codes::W0105`]) lints for `prog` rooted at `root` to `diags`.
pub fn check_liveness<O: Ops>(
    prog: &Program<O>,
    root: Ident,
    spans: &SpanMap,
    diags: &mut Diagnostics,
) {
    let reached = reachable(prog, root);
    for node in &prog.nodes {
        if !reached.contains(&node.name) {
            diags.push(
                Diagnostic::warning(
                    codes::W0105,
                    format!(
                        "node {} is never instantiated from the root node {root}",
                        node.name
                    ),
                    spans.node_span(node.name),
                )
                .at_stage(DiagStage::Analysis),
            );
        }
        let live = live_vars(node);
        for eq in &node.eqs {
            if eq.defined().iter().any(|x| live.contains(x)) {
                continue;
            }
            for &x in eq.defined() {
                if x.as_str().contains('#') {
                    continue; // compiler-introduced helper stream
                }
                diags.push(
                    Diagnostic::warning(
                        codes::W0104,
                        format!("variable {x} is never read by any output of {}", node.name),
                        spans.eq_span(node.name, x),
                    )
                    .at_stage(DiagStage::Analysis),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velus_nlustre::ast::{CExpr, Expr, VarDecl};
    use velus_nlustre::clock::Clock;
    use velus_ops::{CConst, CTy, ClightOps};

    fn decl(n: &str, ty: CTy) -> VarDecl<ClightOps> {
        VarDecl {
            name: Ident::new(n),
            ty,
            ck: Clock::Base,
        }
    }

    fn copy_eq(x: &str, y: &str) -> Equation<ClightOps> {
        Equation::Def {
            x: Ident::new(x),
            ck: Clock::Base,
            rhs: CExpr::Expr(Expr::Var(Ident::new(y), CTy::I32)),
        }
    }

    #[test]
    fn unused_locals_and_unreachable_nodes_are_reported() {
        // helper: reachable; orphan: not. In f, `dead` feeds nothing,
        // and the compiler-shaped `n#tmp` is exempt.
        let orphan = Node::<ClightOps> {
            name: Ident::new("orphan"),
            inputs: vec![decl("x", CTy::I32)],
            outputs: vec![decl("o", CTy::I32)],
            locals: vec![],
            eqs: vec![copy_eq("o", "x")],
        };
        let helper = Node::<ClightOps> {
            name: Ident::new("helper"),
            inputs: vec![decl("x", CTy::I32)],
            outputs: vec![decl("o", CTy::I32)],
            locals: vec![],
            eqs: vec![copy_eq("o", "x")],
        };
        let f = Node::<ClightOps> {
            name: Ident::new("f"),
            inputs: vec![decl("x", CTy::I32)],
            outputs: vec![decl("y", CTy::I32)],
            locals: vec![
                decl("dead", CTy::I32),
                decl("n#tmp", CTy::I32),
                decl("mid", CTy::I32),
            ],
            eqs: vec![
                Equation::Def {
                    x: Ident::new("dead"),
                    ck: Clock::Base,
                    rhs: CExpr::Expr(Expr::Const(CConst::int(1))),
                },
                copy_eq("n#tmp", "x"),
                Equation::Call {
                    xs: vec![Ident::new("mid")],
                    ck: Clock::Base,
                    node: Ident::new("helper"),
                    args: vec![Expr::Var(Ident::new("x"), CTy::I32)],
                },
                copy_eq("y", "mid"),
            ],
        };
        let prog = Program::new(vec![orphan, helper, f]);
        let mut diags = Diagnostics::new();
        check_liveness(&prog, Ident::new("f"), &SpanMap::new(), &mut diags);
        let mut found: Vec<(&str, String)> = diags
            .iter()
            .map(|d| (d.code.id, d.message.clone()))
            .collect();
        found.sort();
        assert_eq!(found.len(), 2, "{diags}");
        assert_eq!(found[0].0, "W0104");
        assert!(found[0].1.contains("dead"));
        assert_eq!(found[1].0, "W0105");
        assert!(found[1].1.contains("orphan"));
    }

    #[test]
    fn clock_reads_keep_variables_live() {
        // k only appears as a clock of y's equation — still live.
        let f = Node::<ClightOps> {
            name: Ident::new("f"),
            inputs: vec![decl("x", CTy::I32), decl("c", CTy::Bool)],
            outputs: vec![VarDecl {
                name: Ident::new("y"),
                ty: CTy::I32,
                ck: Clock::Base.on(Ident::new("k"), true),
            }],
            locals: vec![decl("k", CTy::Bool)],
            eqs: vec![
                copy_eq("k", "c"),
                Equation::Def {
                    x: Ident::new("y"),
                    ck: Clock::Base.on(Ident::new("k"), true),
                    rhs: CExpr::Expr(Expr::When(
                        Box::new(Expr::Var(Ident::new("x"), CTy::I32)),
                        Ident::new("k"),
                        true,
                    )),
                },
            ],
        };
        let prog = Program::new(vec![f]);
        let mut diags = Diagnostics::new();
        check_liveness(&prog, Ident::new("f"), &SpanMap::new(), &mut diags);
        assert!(diags.is_empty(), "{diags}");
    }
}
