//! The worklist fixpoint engine.
//!
//! Every analysis of this crate is an instance of the same scheme: an
//! abstract value per variable (an element of a [`Lattice`]), a
//! *transfer function* per equation mapping the current environment to
//! new abstract values for the variables the equation defines, and a
//! worklist iteration to a fixpoint.
//!
//! # Termination
//!
//! The engine terminates for every monotone transfer function because
//!
//! * environments only grow: new values are *joined* into the old ones,
//!   and an equation is re-queued only when some variable it reads
//!   actually changed;
//! * after [`WIDEN_AFTER`] visits of the same equation, joins are
//!   replaced by [`Lattice::widen_with`], whose contract is that every
//!   chain `x, x ∇ y₁, (x ∇ y₁) ∇ y₂, …` stabilizes in finitely many
//!   steps (finite lattices take `widen = join`; the interval lattice
//!   jumps to ⊤).
//!
//! Equations are seeded in program order. Scheduling has already
//! ordered them write-before-read (the order derived from
//! [`velus_nlustre::deps`]), so the first sweep is effectively a
//! topological pass and non-recursive programs converge in one or two
//! rounds; only `fby` back-edges cause re-queues.

use velus_common::{ident_map_with_capacity, Ident, IdentMap};
use velus_nlustre::ast::Node;
use velus_ops::Ops;

/// A join-semilattice of abstract values.
///
/// The contract the engine relies on:
///
/// * [`Lattice::bottom`] is a least element: `bottom.join_with(x)`
///   makes the receiver equal to `x`;
/// * [`Lattice::join_with`] computes an upper bound in place and
///   reports whether the receiver changed (ascending chains only);
/// * [`Lattice::widen_with`] is an upper bound like `join_with` but
///   with the additional guarantee that repeated widening stabilizes
///   in finitely many steps. Finite-height lattices keep the default
///   (`widen = join`).
pub trait Lattice: Clone + PartialEq {
    /// The least element (no information / unreachable).
    fn bottom() -> Self;

    /// Joins `other` into `self`; returns whether `self` changed.
    fn join_with(&mut self, other: &Self) -> bool;

    /// Widens `self` by `other`; returns whether `self` changed.
    /// Defaults to [`Lattice::join_with`] (correct for finite lattices).
    fn widen_with(&mut self, other: &Self) -> bool {
        self.join_with(other)
    }
}

/// An abstract environment: variable → lattice element, with unmapped
/// variables implicitly at [`Lattice::bottom`].
#[derive(Debug, Clone)]
pub struct Env<L: Lattice> {
    map: IdentMap<L>,
    bottom: L,
}

impl<L: Lattice> Env<L> {
    /// An empty environment (everything at bottom).
    pub fn new() -> Env<L> {
        Env {
            map: IdentMap::default(),
            bottom: L::bottom(),
        }
    }

    /// The abstract value of `x` (bottom when never written).
    pub fn get(&self, x: Ident) -> &L {
        self.map.get(&x).unwrap_or(&self.bottom)
    }

    /// Sets the abstract value of `x` outright (used to seed inputs).
    pub fn set(&mut self, x: Ident, v: L) {
        self.map.insert(x, v);
    }

    /// Joins (or, when `widen`, widens) `v` into the value of `x`;
    /// returns whether the value changed.
    pub fn update(&mut self, x: Ident, v: L, widen: bool) -> bool {
        match self.map.get_mut(&x) {
            Some(cur) => {
                if widen {
                    cur.widen_with(&v)
                } else {
                    cur.join_with(&v)
                }
            }
            None => {
                let changed = v != self.bottom;
                if changed {
                    self.map.insert(x, v);
                }
                changed
            }
        }
    }
}

impl<L: Lattice> Default for Env<L> {
    fn default() -> Env<L> {
        Env::new()
    }
}

/// Number of visits of one equation after which joins become widenings.
pub const WIDEN_AFTER: usize = 8;

/// Runs the worklist iteration over the equations of `node` until the
/// environment stabilizes.
///
/// `transfer` receives the node, the index of the equation to
/// (re-)evaluate and the current environment, and appends the abstract
/// values the equation produces to `out` (one entry per defined
/// variable). The engine joins them into the environment and re-queues
/// every equation that reads a variable whose value changed.
pub fn solve<O: Ops, L: Lattice>(
    node: &Node<O>,
    env: &mut Env<L>,
    mut transfer: impl FnMut(&Node<O>, usize, &Env<L>, &mut Vec<(Ident, L)>),
) {
    let n = node.eqs.len();
    // Variable → indices of the equations that read it (clock variables
    // included), the re-activation index of the worklist.
    let mut readers: IdentMap<Vec<usize>> = ident_map_with_capacity(n);
    let mut reads: Vec<Ident> = Vec::new();
    for (i, eq) in node.eqs.iter().enumerate() {
        reads.clear();
        eq.reads_into(&mut reads);
        for &x in &reads {
            let entry = readers.entry(x).or_default();
            if entry.last() != Some(&i) {
                entry.push(i);
            }
        }
    }

    let mut queue: std::collections::VecDeque<usize> = (0..n).collect();
    let mut queued = vec![true; n];
    let mut visits = vec![0usize; n];
    let mut out: Vec<(Ident, L)> = Vec::new();
    while let Some(i) = queue.pop_front() {
        queued[i] = false;
        visits[i] += 1;
        let widen = visits[i] > WIDEN_AFTER;
        out.clear();
        transfer(node, i, env, &mut out);
        for (x, v) in out.drain(..) {
            if env.update(x, v, widen) {
                if let Some(rs) = readers.get(&x) {
                    for &j in rs {
                        if !queued[j] {
                            queued[j] = true;
                            queue.push_back(j);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velus_nlustre::ast::{CExpr, Equation, Expr, VarDecl};
    use velus_nlustre::clock::Clock;
    use velus_ops::{CConst, CTy, ClightOps};

    /// A one-bit "reached" lattice.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Reach(bool);

    impl Lattice for Reach {
        fn bottom() -> Reach {
            Reach(false)
        }
        fn join_with(&mut self, other: &Reach) -> bool {
            let changed = !self.0 && other.0;
            self.0 |= other.0;
            changed
        }
    }

    fn var(n: &str) -> Expr<ClightOps> {
        Expr::Var(Ident::new(n), CTy::I32)
    }

    #[test]
    fn propagates_through_a_copy_chain_and_a_fby_back_edge() {
        // x = 0 fby z; y = x; z = y;  — the back edge forces a re-queue.
        let node: Node<ClightOps> = Node {
            name: Ident::new("f"),
            inputs: vec![],
            outputs: vec![VarDecl {
                name: Ident::new("z"),
                ty: CTy::I32,
                ck: Clock::Base,
            }],
            locals: vec![],
            eqs: vec![
                Equation::Fby {
                    x: Ident::new("x"),
                    ck: Clock::Base,
                    init: CConst::int(0),
                    rhs: var("z"),
                },
                Equation::Def {
                    x: Ident::new("y"),
                    ck: Clock::Base,
                    rhs: CExpr::Expr(var("x")),
                },
                Equation::Def {
                    x: Ident::new("z"),
                    ck: Clock::Base,
                    rhs: CExpr::Expr(var("y")),
                },
            ],
        };
        let mut env: Env<Reach> = Env::new();
        // Taint the fby: everything downstream must become reached.
        solve(&node, &mut env, |node, i, env, out| match &node.eqs[i] {
            Equation::Fby { x, .. } => out.push((*x, Reach(true))),
            Equation::Def { x, rhs, .. } => {
                let mut v = Reach::bottom();
                for y in rhs.free_vars() {
                    v.join_with(env.get(y));
                }
                out.push((*x, v));
            }
            Equation::Call { .. } => unreachable!(),
        });
        assert_eq!(env.get(Ident::new("x")), &Reach(true));
        assert_eq!(env.get(Ident::new("y")), &Reach(true));
        assert_eq!(env.get(Ident::new("z")), &Reach(true));
    }
}
