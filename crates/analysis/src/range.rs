//! Interval / constant-propagation value-range analysis, plus the
//! lints built on it: division-trap detection ([`codes::E0110`],
//! [`codes::E0111`], [`codes::W0102`]), constant conditions and dead
//! branches ([`codes::W0103`]), and dead-under-clock equations
//! ([`codes::W0106`]).
//!
//! # The lattice
//!
//! Per variable, an [`AbsVal`]: ⊥ (no value seen), an interval
//! `[lo, hi]` of the *signed reading* of an integer or boolean value
//! (`i128` bounds, wide enough for `u64`), or ⊤ (any value — all
//! floats live here). Joins take the convex hull; after
//! [`crate::fixpoint::WIDEN_AFTER`] visits of an equation the join
//! widens straight to ⊤, and readers clamp ⊤ back to the variable's
//! declared type bounds — so the ascending chains are finite and the
//! fixpoint terminates (see the engine docs).
//!
//! # Soundness of the trap verdicts
//!
//! The abstract value of every expression *over-approximates* its
//! concrete values, so:
//!
//! * a divisor interval that excludes `0` (and, for signed types, no
//!   `MIN / -1` combination) proves the division safe — no finding;
//! * a divisor interval exactly `[0, 0]` proves the division traps
//!   whenever it executes. It is reported as a *guaranteed* trap
//!   (`E0110`/`E0111`) only when it provably executes on every step:
//!   the equation is on the base clock, the expression is in
//!   unconditionally-evaluated position (not under an `if`/`merge`
//!   branch the generated code guards), and the enclosing node is the
//!   root or transitively instantiated through base-clock calls.
//!   Anywhere else it degrades to the *possible*-trap warning `W0102`.
//! * everything in between — the analysis cannot exclude the trap but
//!   cannot prove it — is `W0102`. Float-to-integer casts are `W0102`
//!   unconditionally (out-of-range casts trap; float ranges are not
//!   tracked).
//!
//! These are exactly the claims the campaign soundness oracle
//! (`velus_testkit::soundness`) checks against `clight::interp`.
//!
//! Node instantiations are handled with callee-first summaries
//! computed at ⊤ inputs (sound for every call site); `Program::nodes`
//! is already in dependency order.

use velus_common::{codes, DiagStage, Diagnostics, Ident, IdentMap, IdentSet, SpanMap};
use velus_nlustre::ast::{CExpr, Equation, Expr, Program};
use velus_nlustre::clock::Clock;
use velus_ops::{CBinOp, CConst, CTy, CUnOp, CVal, ClightOps, Ops};

use crate::fixpoint::{solve, Env, Lattice};

/// The abstract value of a stream: ⊥, a signed-reading interval, or ⊤.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// No value observed (unreachable / not yet computed).
    Bot,
    /// All values lie in `[lo, hi]` under the type's signed reading.
    Iv(i128, i128),
    /// Any value of the declared type (also: every float).
    Any,
}

impl Lattice for AbsVal {
    fn bottom() -> AbsVal {
        AbsVal::Bot
    }
    fn join_with(&mut self, other: &AbsVal) -> bool {
        let joined = hull(*self, *other);
        let changed = joined != *self;
        *self = joined;
        changed
    }
    fn widen_with(&mut self, other: &AbsVal) -> bool {
        let joined = hull(*self, *other);
        if joined == *self {
            false
        } else {
            // Any growth past the widening threshold jumps to ⊤; the
            // reader clamps back to declared type bounds.
            *self = AbsVal::Any;
            true
        }
    }
}

/// Convex hull of two abstract values.
fn hull(a: AbsVal, b: AbsVal) -> AbsVal {
    match (a, b) {
        (AbsVal::Bot, x) | (x, AbsVal::Bot) => x,
        (AbsVal::Any, _) | (_, AbsVal::Any) => AbsVal::Any,
        (AbsVal::Iv(l1, h1), AbsVal::Iv(l2, h2)) => AbsVal::Iv(l1.min(l2), h1.max(h2)),
    }
}

/// The value bounds of an integer (or boolean) type under its signed
/// reading; `None` for floats.
fn ty_bounds(ty: CTy) -> Option<(i128, i128)> {
    match ty {
        CTy::Bool => Some((0, 1)),
        CTy::I8 => Some((i8::MIN as i128, i8::MAX as i128)),
        CTy::U8 => Some((0, u8::MAX as i128)),
        CTy::I16 => Some((i16::MIN as i128, i16::MAX as i128)),
        CTy::U16 => Some((0, u16::MAX as i128)),
        CTy::I32 => Some((i32::MIN as i128, i32::MAX as i128)),
        CTy::U32 => Some((0, u32::MAX as i128)),
        CTy::I64 => Some((i64::MIN as i128, i64::MAX as i128)),
        CTy::U64 => Some((0, u64::MAX as i128)),
        CTy::F32 | CTy::F64 => None,
    }
}

/// The semantic (signed-reading) value of a constant; `None` for floats.
fn read_const(c: &CConst) -> Option<i128> {
    match (c.ty(), c.val()) {
        (CTy::U32, CVal::Int(n)) => Some((n as u32) as i128),
        (CTy::U64, CVal::Long(n)) => Some((n as u64) as i128),
        (_, v) => v.as_i64().map(|n| n as i128),
    }
}

/// Builds the stored machine value of type `ty` holding the semantic
/// value `v` (assumed within the type's bounds).
fn make_val(ty: CTy, v: i128) -> CVal {
    match ty {
        CTy::I64 => CVal::Long(v as i64),
        CTy::U64 => CVal::Long((v as u64) as i64),
        CTy::U32 => CVal::Int((v as u32) as i32),
        _ => CVal::Int(v as i32),
    }
}

/// The concrete range of `v` at declared type `ty`: clamps ⊤ to the
/// type bounds; `None` for ⊥ or float types.
fn concretize(v: AbsVal, ty: CTy) -> Option<(i128, i128)> {
    match v {
        AbsVal::Bot => None,
        AbsVal::Iv(l, h) => Some((l, h)),
        AbsVal::Any => ty_bounds(ty),
    }
}

/// An interval result wrapped back into the type: in-bounds intervals
/// are kept, anything else (overflow wraps) degrades to full bounds.
fn clamp(ty: CTy, lo: i128, hi: i128) -> AbsVal {
    match ty_bounds(ty) {
        Some((l, h)) if lo >= l && hi <= h => AbsVal::Iv(lo, hi),
        Some((l, h)) => AbsVal::Iv(l, h),
        None => AbsVal::Any,
    }
}

fn of_const(c: &CConst) -> AbsVal {
    match read_const(c) {
        Some(v) => AbsVal::Iv(v, v),
        None => AbsVal::Any,
    }
}

fn eval_var(env: &Env<AbsVal>, x: Ident, ty: CTy) -> AbsVal {
    match *env.get(x) {
        AbsVal::Any => match ty_bounds(ty) {
            Some((l, h)) => AbsVal::Iv(l, h),
            None => AbsVal::Any,
        },
        v => v,
    }
}

/// Folds an operator application with two singleton integer operands
/// through the concrete [`ClightOps`] semantics (exact, wrap-around
/// and all). `None` means the application is undefined (it traps).
fn fold_binop(op: CBinOp, a: i128, ty: CTy, b: i128) -> Option<AbsVal> {
    let v = ClightOps::sem_binop(op, &make_val(ty, a), &ty, &make_val(ty, b), &ty)?;
    let rty = if op.is_comparison() { CTy::Bool } else { ty };
    let c = CConst::new(v, rty)?;
    Some(of_const(&c))
}

fn eval_binop(op: CBinOp, v1: AbsVal, v2: AbsVal, opty: CTy, rty: CTy) -> AbsVal {
    if v1 == AbsVal::Bot || v2 == AbsVal::Bot {
        return AbsVal::Bot;
    }
    if opty.is_float() {
        return if op.is_comparison() {
            AbsVal::Iv(0, 1)
        } else {
            AbsVal::Any
        };
    }
    let Some((l1, h1)) = concretize(v1, opty) else {
        return AbsVal::Any;
    };
    let Some((l2, h2)) = concretize(v2, opty) else {
        return AbsVal::Any;
    };
    if l1 == h1 && l2 == h2 {
        // Exact singleton folding; an undefined application produces no
        // value at all (the trap is reported by the classification
        // walk), hence ⊥.
        return fold_binop(op, l1, opty, l2).unwrap_or(AbsVal::Bot);
    }
    match op {
        CBinOp::Add => clamp(rty, l1 + l2, h1 + h2),
        CBinOp::Sub => clamp(rty, l1 - h2, h1 - l2),
        CBinOp::Mul => {
            let products = [
                l1.checked_mul(l2),
                l1.checked_mul(h2),
                h1.checked_mul(l2),
                h1.checked_mul(h2),
            ];
            if products.iter().any(Option::is_none) {
                clamp(rty, i128::MIN / 2, i128::MAX / 2) // out of every type's bounds
            } else {
                let ps: Vec<i128> = products.iter().map(|p| p.unwrap()).collect();
                clamp(rty, *ps.iter().min().unwrap(), *ps.iter().max().unwrap())
            }
        }
        CBinOp::Div | CBinOp::Mod => match ty_bounds(rty) {
            Some((l, h)) => AbsVal::Iv(l, h),
            None => AbsVal::Any,
        },
        CBinOp::And | CBinOp::Or | CBinOp::Xor => {
            if opty == CTy::Bool {
                AbsVal::Iv(0, 1)
            } else {
                match ty_bounds(rty) {
                    Some((l, h)) => AbsVal::Iv(l, h),
                    None => AbsVal::Any,
                }
            }
        }
        CBinOp::Lt => cmp_result(h1 < l2, l1 >= h2),
        CBinOp::Le => cmp_result(h1 <= l2, l1 > h2),
        CBinOp::Gt => cmp_result(l1 > h2, h1 <= l2),
        CBinOp::Ge => cmp_result(l1 >= h2, h1 < l2),
        CBinOp::Eq => cmp_result(false, h1 < l2 || h2 < l1),
        CBinOp::Ne => cmp_result(h1 < l2 || h2 < l1, false),
    }
}

fn cmp_result(always: bool, never: bool) -> AbsVal {
    if always {
        AbsVal::Iv(1, 1)
    } else if never {
        AbsVal::Iv(0, 0)
    } else {
        AbsVal::Iv(0, 1)
    }
}

fn eval_unop(op: CUnOp, v: AbsVal, opty: CTy, rty: CTy) -> AbsVal {
    if v == AbsVal::Bot {
        return AbsVal::Bot;
    }
    match op {
        CUnOp::Not => match concretize(v, CTy::Bool) {
            Some((l, h)) => AbsVal::Iv(1 - h, 1 - l),
            None => AbsVal::Iv(0, 1),
        },
        CUnOp::Neg => {
            if opty.is_float() {
                return AbsVal::Any;
            }
            match concretize(v, opty) {
                Some((l, h)) => clamp(rty, -h, -l),
                None => AbsVal::Any,
            }
        }
        CUnOp::Cast(to) => {
            if to.is_float() {
                return AbsVal::Any;
            }
            if opty.is_float() {
                // The cast traps rather than wraps when out of range,
                // so when it *does* produce a value it is in bounds.
                return match ty_bounds(to) {
                    Some((l, h)) => AbsVal::Iv(l, h),
                    None => AbsVal::Any,
                };
            }
            match (concretize(v, opty), ty_bounds(to)) {
                (Some((l, h)), Some((tl, th))) if l >= tl && h <= th => AbsVal::Iv(l, h),
                (_, Some((tl, th))) => AbsVal::Iv(tl, th),
                _ => AbsVal::Any,
            }
        }
    }
}

fn eval_expr(e: &Expr<ClightOps>, env: &Env<AbsVal>) -> AbsVal {
    match e {
        Expr::Var(x, ty) => eval_var(env, *x, *ty),
        Expr::Const(c) => of_const(c),
        Expr::Unop(op, e1, rty) => eval_unop(*op, eval_expr(e1, env), e1.ty(), *rty),
        Expr::Binop(op, e1, e2, rty) => {
            eval_binop(*op, eval_expr(e1, env), eval_expr(e2, env), e1.ty(), *rty)
        }
        Expr::When(e1, _, _) => eval_expr(e1, env),
    }
}

fn eval_cexpr(ce: &CExpr<ClightOps>, env: &Env<AbsVal>) -> AbsVal {
    match ce {
        CExpr::Merge(x, t, f) => match eval_var(env, *x, CTy::Bool) {
            AbsVal::Iv(1, 1) => eval_cexpr(t, env),
            AbsVal::Iv(0, 0) => eval_cexpr(f, env),
            AbsVal::Bot => AbsVal::Bot,
            _ => hull(eval_cexpr(t, env), eval_cexpr(f, env)),
        },
        CExpr::If(c, t, f) => match eval_expr(c, env) {
            AbsVal::Iv(1, 1) => eval_cexpr(t, env),
            AbsVal::Iv(0, 0) => eval_cexpr(f, env),
            AbsVal::Bot => AbsVal::Bot,
            _ => hull(eval_cexpr(t, env), eval_cexpr(f, env)),
        },
        CExpr::Expr(e) => eval_expr(e, env),
    }
}

/// The nodes that provably execute on *every* step of `root`: the root
/// itself plus the closure over base-clock instantiations.
fn definitely_active(prog: &Program<ClightOps>, root: Ident) -> IdentSet {
    let mut active = IdentSet::default();
    if prog.node(root).is_none() {
        return active;
    }
    active.insert(root);
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        let Some(node) = prog.node(n) else { continue };
        for eq in &node.eqs {
            if let Equation::Call {
                ck, node: callee, ..
            } = eq
            {
                if *ck == Clock::Base && !active.contains(callee) {
                    active.insert(*callee);
                    stack.push(*callee);
                }
            }
        }
    }
    active
}

/// The classification context of an expression position.
#[derive(Clone, Copy)]
struct Ctx {
    /// The enclosing node executes on every step of the root.
    node_active: bool,
    /// The equation is on the base clock (no run-time clock guard).
    base_clock: bool,
    /// The position is evaluated whenever the equation is (not under a
    /// conditionally-executed `if`/`merge` branch).
    unconditional: bool,
}

impl Ctx {
    fn guaranteed(self) -> bool {
        self.node_active && self.base_clock && self.unconditional
    }
    fn conditional(self) -> Ctx {
        Ctx {
            unconditional: false,
            ..self
        }
    }
}

struct Classifier<'a> {
    env: &'a Env<AbsVal>,
    node: Ident,
    spans: &'a SpanMap,
    diags: &'a mut Diagnostics,
}

impl Classifier<'_> {
    fn report(&mut self, code: velus_common::Code, var: Ident, message: String) {
        let span = self.spans.eq_span(self.node, var);
        self.diags
            .push(velus_common::Diagnostic::new(code, message, span).at_stage(DiagStage::Analysis));
    }

    fn classify_expr(&mut self, e: &Expr<ClightOps>, var: Ident, ctx: Ctx) {
        match e {
            Expr::Var(..) | Expr::Const(_) => {}
            Expr::Unop(op, e1, _) => {
                if let CUnOp::Cast(to) = op {
                    if e1.ty().is_float() && !to.is_float() {
                        self.report(
                            codes::W0102,
                            var,
                            format!(
                                "cast from {} to {to} traps when the value is out of range",
                                e1.ty()
                            ),
                        );
                    }
                }
                self.classify_expr(e1, var, ctx);
            }
            Expr::Binop(op, e1, e2, rty) => {
                if matches!(op, CBinOp::Div | CBinOp::Mod) && rty.is_integer() {
                    self.classify_division(*op, e1, e2, *rty, var, ctx);
                }
                self.classify_expr(e1, var, ctx);
                self.classify_expr(e2, var, ctx);
            }
            Expr::When(e1, _, _) => self.classify_expr(e1, var, ctx),
        }
    }

    fn classify_division(
        &mut self,
        op: CBinOp,
        e1: &Expr<ClightOps>,
        e2: &Expr<ClightOps>,
        ty: CTy,
        var: Ident,
        ctx: Ctx,
    ) {
        let (Some(n), Some(d)) = (
            concretize(eval_expr(e1, self.env), ty),
            concretize(eval_expr(e2, self.env), ty),
        ) else {
            return; // ⊥ operand: the position never produces a value
        };
        let min = ty_bounds(ty).map(|(l, _)| l).unwrap_or(0);
        let overflow_possible =
            ty.is_signed() && n.0 <= min && min <= n.1 && d.0 <= -1 && -1 <= d.1;
        if d == (0, 0) {
            if ctx.guaranteed() {
                self.report(
                    codes::E0110,
                    var,
                    format!("divisor of `{op}` is always zero: this division traps on every run"),
                );
            } else {
                self.report(
                    codes::W0102,
                    var,
                    format!("divisor of `{op}` is always zero: this division traps if evaluated"),
                );
            }
        } else if ty.is_signed() && n == (min, min) && d == (-1, -1) {
            if ctx.guaranteed() {
                self.report(
                    codes::E0111,
                    var,
                    format!("`{min} {op} -1` overflows: this division traps on every run"),
                );
            } else {
                self.report(
                    codes::W0102,
                    var,
                    format!("`{min} {op} -1` overflows: this division traps if evaluated"),
                );
            }
        } else if d.0 <= 0 && 0 <= d.1 {
            self.report(
                codes::W0102,
                var,
                format!("divisor of `{op}` may be zero: this division can trap at runtime"),
            );
        } else if overflow_possible {
            self.report(
                codes::W0102,
                var,
                format!("`{op}` may compute `{min} {op} -1` and trap at runtime"),
            );
        }
    }

    fn classify_cexpr(&mut self, ce: &CExpr<ClightOps>, var: Ident, ctx: Ctx) {
        match ce {
            CExpr::Merge(x, t, f) => match eval_var(self.env, *x, CTy::Bool) {
                AbsVal::Iv(1, 1) => {
                    self.report(
                        codes::W0103,
                        var,
                        format!("merge scrutinee {x} is always true: the false branch is dead"),
                    );
                    self.classify_cexpr(t, var, ctx);
                }
                AbsVal::Iv(0, 0) => {
                    self.report(
                        codes::W0103,
                        var,
                        format!("merge scrutinee {x} is always false: the true branch is dead"),
                    );
                    self.classify_cexpr(f, var, ctx);
                }
                _ => {
                    self.classify_cexpr(t, var, ctx.conditional());
                    self.classify_cexpr(f, var, ctx.conditional());
                }
            },
            CExpr::If(c, t, f) => {
                self.classify_expr(c, var, ctx);
                match eval_expr(c, self.env) {
                    AbsVal::Iv(1, 1) => {
                        self.report(
                            codes::W0103,
                            var,
                            format!("condition `{c}` is always true: the else branch is dead"),
                        );
                        self.classify_cexpr(t, var, ctx);
                    }
                    AbsVal::Iv(0, 0) => {
                        self.report(
                            codes::W0103,
                            var,
                            format!("condition `{c}` is always false: the then branch is dead"),
                        );
                        self.classify_cexpr(f, var, ctx);
                    }
                    _ => {
                        self.classify_cexpr(t, var, ctx.conditional());
                        self.classify_cexpr(f, var, ctx.conditional());
                    }
                }
            }
            CExpr::Expr(e) => self.classify_expr(e, var, ctx),
        }
    }

    /// Whether the equation's clock is provably never true; reports
    /// [`codes::W0106`] if so.
    fn classify_clock(&mut self, ck: &Clock, var: Ident, full: &Clock) -> bool {
        match ck {
            Clock::Base => false,
            Clock::On(parent, x, pol) => {
                if self.classify_clock(parent, var, full) {
                    return true;
                }
                let dead = match eval_var(self.env, *x, CTy::Bool) {
                    AbsVal::Iv(0, 0) => *pol,
                    AbsVal::Iv(1, 1) => !*pol,
                    _ => false,
                };
                if dead {
                    self.report(
                        codes::W0106,
                        var,
                        format!("equation is sampled on `{full}`, which is provably never active"),
                    );
                }
                dead
            }
        }
    }
}

/// Runs the value-range analysis over every node of `prog` (callees
/// first, with ⊤-input summaries at instantiations) and appends the
/// range-based lints to `diags`.
pub fn check_ranges(
    prog: &Program<ClightOps>,
    root: Ident,
    spans: &SpanMap,
    diags: &mut Diagnostics,
) {
    let active = definitely_active(prog, root);
    let mut summaries: IdentMap<Vec<AbsVal>> = IdentMap::default();
    for node in &prog.nodes {
        let mut env: Env<AbsVal> = Env::new();
        for d in &node.inputs {
            env.set(d.name, AbsVal::Any);
        }
        solve(node, &mut env, |node, i, env, out| match &node.eqs[i] {
            Equation::Def { x, rhs, .. } => out.push((*x, eval_cexpr(rhs, env))),
            Equation::Fby { x, init, rhs, .. } => {
                out.push((*x, hull(of_const(init), eval_expr(rhs, env))));
            }
            Equation::Call {
                xs, node: callee, ..
            } => match summaries.get(callee) {
                Some(outs) => {
                    for (x, v) in xs.iter().zip(outs) {
                        out.push((*x, *v));
                    }
                }
                None => {
                    for x in xs {
                        out.push((*x, AbsVal::Any));
                    }
                }
            },
        });
        summaries.insert(
            node.name,
            node.outputs.iter().map(|o| *env.get(o.name)).collect(),
        );

        let mut cl = Classifier {
            env: &env,
            node: node.name,
            spans,
            diags,
        };
        for eq in &node.eqs {
            let var = eq.defined()[0];
            if cl.classify_clock(eq.clock(), var, eq.clock()) {
                continue; // never active: nothing inside can run (or trap)
            }
            let ctx = Ctx {
                node_active: active.contains(&node.name),
                base_clock: *eq.clock() == Clock::Base,
                unconditional: true,
            };
            match eq {
                Equation::Def { rhs, .. } => cl.classify_cexpr(rhs, var, ctx),
                Equation::Fby { rhs, .. } => cl.classify_expr(rhs, var, ctx),
                Equation::Call { args, .. } => {
                    for a in args {
                        cl.classify_expr(a, var, ctx);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velus_nlustre::ast::{Node, VarDecl};

    fn ivar(n: &str) -> Expr<ClightOps> {
        Expr::Var(Ident::new(n), CTy::I32)
    }

    fn decl(n: &str, ty: CTy) -> VarDecl<ClightOps> {
        VarDecl {
            name: Ident::new(n),
            ty,
            ck: Clock::Base,
        }
    }

    fn binop(op: CBinOp, l: Expr<ClightOps>, r: Expr<ClightOps>) -> Expr<ClightOps> {
        Expr::Binop(op, Box::new(l), Box::new(r), CTy::I32)
    }

    fn single_node(
        inputs: Vec<VarDecl<ClightOps>>,
        outputs: Vec<VarDecl<ClightOps>>,
        locals: Vec<VarDecl<ClightOps>>,
        eqs: Vec<Equation<ClightOps>>,
    ) -> Program<ClightOps> {
        Program::new(vec![Node {
            name: Ident::new("f"),
            inputs,
            outputs,
            locals,
            eqs,
        }])
    }

    fn lint(prog: &Program<ClightOps>) -> Diagnostics {
        let mut d = Diagnostics::new();
        check_ranges(prog, Ident::new("f"), &SpanMap::new(), &mut d);
        d
    }

    fn codes_of(d: &Diagnostics) -> Vec<&'static str> {
        d.iter().map(|x| x.code.id).collect()
    }

    #[test]
    fn division_by_constant_zero_is_a_guaranteed_trap() {
        let prog = single_node(
            vec![decl("x", CTy::I32)],
            vec![decl("y", CTy::I32)],
            vec![],
            vec![Equation::Def {
                x: Ident::new("y"),
                ck: Clock::Base,
                rhs: CExpr::Expr(binop(CBinOp::Div, ivar("x"), Expr::Const(CConst::int(0)))),
            }],
        );
        assert_eq!(codes_of(&lint(&prog)), vec!["E0110"]);
    }

    #[test]
    fn min_over_minus_one_is_a_guaranteed_trap() {
        let prog = single_node(
            vec![],
            vec![decl("y", CTy::I32)],
            vec![],
            vec![Equation::Def {
                x: Ident::new("y"),
                ck: Clock::Base,
                rhs: CExpr::Expr(binop(
                    CBinOp::Div,
                    Expr::Const(CConst::int(i32::MIN)),
                    Expr::Const(CConst::int(-1)),
                )),
            }],
        );
        assert_eq!(codes_of(&lint(&prog)), vec!["E0111"]);
    }

    #[test]
    fn division_by_an_input_is_a_possible_trap() {
        let prog = single_node(
            vec![decl("x", CTy::I32), decl("d", CTy::I32)],
            vec![decl("y", CTy::I32)],
            vec![],
            vec![Equation::Def {
                x: Ident::new("y"),
                ck: Clock::Base,
                rhs: CExpr::Expr(binop(CBinOp::Div, ivar("x"), ivar("d"))),
            }],
        );
        assert_eq!(codes_of(&lint(&prog)), vec!["W0102"]);
    }

    #[test]
    fn division_by_a_provably_nonzero_range_is_clean() {
        // d = if c then 2 else 7; y = x / d — the hull [2, 7] excludes 0.
        let prog = single_node(
            vec![decl("x", CTy::I32), decl("c", CTy::Bool)],
            vec![decl("y", CTy::I32)],
            vec![decl("d", CTy::I32)],
            vec![
                Equation::Def {
                    x: Ident::new("d"),
                    ck: Clock::Base,
                    rhs: CExpr::If(
                        Expr::Var(Ident::new("c"), CTy::Bool),
                        Box::new(CExpr::Expr(Expr::Const(CConst::int(2)))),
                        Box::new(CExpr::Expr(Expr::Const(CConst::int(7)))),
                    ),
                },
                Equation::Def {
                    x: Ident::new("y"),
                    ck: Clock::Base,
                    rhs: CExpr::Expr(binop(CBinOp::Div, ivar("x"), ivar("d"))),
                },
            ],
        );
        assert!(lint(&prog).is_empty(), "{}", lint(&prog));
    }

    #[test]
    fn zero_divisor_under_a_branch_degrades_to_a_warning() {
        // y = if c then x / 0 else 0 — the generated code only
        // evaluates the division when c holds, so no guaranteed claim.
        let prog = single_node(
            vec![decl("x", CTy::I32), decl("c", CTy::Bool)],
            vec![decl("y", CTy::I32)],
            vec![],
            vec![Equation::Def {
                x: Ident::new("y"),
                ck: Clock::Base,
                rhs: CExpr::If(
                    Expr::Var(Ident::new("c"), CTy::Bool),
                    Box::new(CExpr::Expr(binop(
                        CBinOp::Div,
                        ivar("x"),
                        Expr::Const(CConst::int(0)),
                    ))),
                    Box::new(CExpr::Expr(Expr::Const(CConst::int(0)))),
                ),
            }],
        );
        assert_eq!(codes_of(&lint(&prog)), vec!["W0102"]);
    }

    #[test]
    fn constant_conditions_and_dead_clocks_are_reported() {
        // k = false; z = (x when k) — dead under clock; y = if true …
        let prog = single_node(
            vec![decl("x", CTy::I32)],
            vec![decl("y", CTy::I32)],
            vec![
                decl("k", CTy::Bool),
                VarDecl {
                    name: Ident::new("z"),
                    ty: CTy::I32,
                    ck: Clock::Base.on(Ident::new("k"), true),
                },
            ],
            vec![
                Equation::Def {
                    x: Ident::new("k"),
                    ck: Clock::Base,
                    rhs: CExpr::Expr(Expr::Const(CConst::bool(false))),
                },
                Equation::Def {
                    x: Ident::new("z"),
                    ck: Clock::Base.on(Ident::new("k"), true),
                    rhs: CExpr::Expr(Expr::When(Box::new(ivar("x")), Ident::new("k"), true)),
                },
                Equation::Def {
                    x: Ident::new("y"),
                    ck: Clock::Base,
                    rhs: CExpr::If(
                        Expr::Const(CConst::bool(true)),
                        Box::new(CExpr::Expr(ivar("x"))),
                        Box::new(CExpr::Expr(Expr::Const(CConst::int(0)))),
                    ),
                },
            ],
        );
        let mut found = codes_of(&lint(&prog));
        found.sort();
        assert_eq!(found, vec!["W0103", "W0106"]);
    }

    #[test]
    fn counter_widening_terminates_and_stays_possible() {
        // c = 0 fby (c + 1); y = x / c — c's range widens to the full
        // type, so the division is a possible (not guaranteed) trap.
        let prog = single_node(
            vec![decl("x", CTy::I32)],
            vec![decl("y", CTy::I32)],
            vec![decl("c", CTy::I32)],
            vec![
                Equation::Fby {
                    x: Ident::new("c"),
                    ck: Clock::Base,
                    init: CConst::int(0),
                    rhs: binop(CBinOp::Add, ivar("c"), Expr::Const(CConst::int(1))),
                },
                Equation::Def {
                    x: Ident::new("y"),
                    ck: Clock::Base,
                    rhs: CExpr::Expr(binop(CBinOp::Div, ivar("x"), ivar("c"))),
                },
            ],
        );
        assert_eq!(codes_of(&lint(&prog)), vec!["W0102"]);
    }

    #[test]
    fn unreachable_node_guarantees_degrade() {
        // g contains a certain trap but is never instantiated from f.
        let g = Node {
            name: Ident::new("g"),
            inputs: vec![],
            outputs: vec![decl("o", CTy::I32)],
            locals: vec![],
            eqs: vec![Equation::Def {
                x: Ident::new("o"),
                ck: Clock::Base,
                rhs: CExpr::Expr(binop(
                    CBinOp::Div,
                    Expr::Const(CConst::int(1)),
                    Expr::Const(CConst::int(0)),
                )),
            }],
        };
        let f = Node {
            name: Ident::new("f"),
            inputs: vec![decl("x", CTy::I32)],
            outputs: vec![decl("y", CTy::I32)],
            locals: vec![],
            eqs: vec![Equation::Def {
                x: Ident::new("y"),
                ck: Clock::Base,
                rhs: CExpr::Expr(ivar("x")),
            }],
        };
        let prog = Program::new(vec![g, f]);
        let d = lint(&prog);
        assert_eq!(codes_of(&d), vec!["W0102"], "{d}");
    }

    #[test]
    fn interval_arithmetic_helpers() {
        assert_eq!(ty_bounds(CTy::U64), Some((0, u64::MAX as i128)));
        assert_eq!(read_const(&CConst::int(-3)), Some(-3));
        assert_eq!(
            fold_binop(CBinOp::Add, i32::MAX as i128, CTy::I32, 1),
            Some(AbsVal::Iv(i32::MIN as i128, i32::MIN as i128))
        );
        assert_eq!(fold_binop(CBinOp::Div, 1, CTy::I32, 0), None);
        assert_eq!(clamp(CTy::I8, -1, 300), AbsVal::Iv(-128, 127));
        assert_eq!(clamp(CTy::I8, -1, 5), AbsVal::Iv(-1, 5));
        assert_eq!(
            eval_binop(
                CBinOp::Lt,
                AbsVal::Iv(0, 3),
                AbsVal::Iv(5, 9),
                CTy::I32,
                CTy::Bool
            ),
            AbsVal::Iv(1, 1)
        );
    }
}
