//! The observability substrate of the Vélus serving stack.
//!
//! Three dependency-free building blocks, usable by any crate in the
//! workspace (and by the offline vendored build — nothing here touches
//! the network or the allocator beyond plain `std` collections):
//!
//! * [`hist`] — **mergeable log-linear histograms**: exact counts over
//!   the full run, bounded memory, lock-free recording through
//!   [`hist::ShardedHistogram`], percentiles (p50…p999) within a ~3%
//!   relative error. Shards merge associatively, so per-worker
//!   recorders combine into one distribution at snapshot time.
//! * [`trace`] — **structured tracing**: per-request trace IDs, an
//!   enter/exit span model with parent links recorded into bounded
//!   per-worker ring buffers, a thread-local request scope so deep
//!   layers record spans without any API threading, a **flight
//!   recorder** retaining the complete span trees of the slowest (and
//!   over-threshold) requests, and Chrome trace-event JSON emission
//!   (loadable in Perfetto / `chrome://tracing`).
//! * [`prom`] — **Prometheus text exposition**: a hand-rolled writer
//!   for counters/gauges/summaries plus a minimal format checker used
//!   by CI to gate emitted metrics dumps.
//!
//! The serving layer (`velus-server`) builds its statistics on [`hist`]
//! and opens a [`trace::RequestScope`] per request; the pass framework
//! (`velus` core) records one span per pipeline pass through the
//! thread-local scope. When no scope is active every tracing call is a
//! single thread-local read — cheap enough to leave compiled in.

#![warn(missing_docs)]

pub mod hist;
pub mod prom;
pub mod trace;

pub use hist::{Histogram, ShardedHistogram};
pub use prom::PromWriter;
pub use trace::{FlightRecord, Recorder, RecorderConfig, TraceData, TraceEvent};
