//! Prometheus text-format exposition, hand-rolled like the rest of the
//! workspace's serializers.
//!
//! [`PromWriter`] produces the classic text format — `# HELP` / `# TYPE`
//! headers followed by `name{label="value"} 1234` samples — which is
//! what a `/stats` endpoint will serve and what `velus batch
//! --metrics-out` writes today. [`check`] is the matching minimal
//! validator CI pipes those dumps through: it verifies line shape,
//! label quoting, numeric sample values, and that every sample's
//! metric family was declared by a preceding `# TYPE` line.

use std::fmt::Write as _;

/// Incremental writer for the Prometheus text exposition format.
///
/// ```
/// let mut w = velus_obs::PromWriter::new("velus");
/// w.header("requests_total", "Requests accepted.", "counter");
/// w.sample("requests_total", &[("kind", "c")], 3.0);
/// let text = w.finish();
/// assert!(text.contains("velus_requests_total{kind=\"c\"} 3"));
/// velus_obs::prom::check(&text).unwrap();
/// ```
#[derive(Debug)]
pub struct PromWriter {
    prefix: &'static str,
    out: String,
}

impl PromWriter {
    /// A writer whose metric names are all prefixed `"{prefix}_"`.
    pub fn new(prefix: &'static str) -> PromWriter {
        PromWriter {
            prefix,
            out: String::with_capacity(4096),
        }
    }

    /// Writes the `# HELP` and `# TYPE` headers for a metric family.
    /// `kind` is the Prometheus type: `counter`, `gauge`, `summary`.
    pub fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {}_{name} {help}", self.prefix);
        let _ = writeln!(self.out, "# TYPE {}_{name} {kind}", self.prefix);
    }

    /// Writes one sample line. Labels are `(name, value)` pairs; values
    /// are escaped per the format (backslash, quote, newline).
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let _ = write!(self.out, "{}_{name}", self.prefix);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"");
                for c in v.chars() {
                    match c {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            self.out.push('}');
        }
        if value.fract() == 0.0 && value.abs() < 9e15 {
            let _ = writeln!(self.out, " {}", value as i64);
        } else {
            let _ = writeln!(self.out, " {value}");
        }
    }

    /// Finishes and returns the rendered exposition body.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Minimal validator for the Prometheus text format, used by CI to
/// gate `--metrics-out` dumps. Checks that every non-comment line is
/// `name{label="value",…} number`, that metric names are legal, that
/// label values close their quotes, and that each sample's family was
/// declared by a preceding `# TYPE` line.
pub fn check(text: &str) -> Result<(), String> {
    let mut declared: Vec<&str> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or(format!("line {n}: TYPE without a name"))?;
            let kind = parts
                .next()
                .ok_or(format!("line {n}: TYPE without a kind"))?;
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {n}: unknown metric type {kind:?}"));
            }
            declared.push(name);
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = match line.find(['{', ' ']) {
            Some(i) if line.as_bytes()[i] == b'{' => {
                let close = find_label_close(&line[i..])
                    .ok_or(format!("line {n}: unterminated label set"))?;
                let after = &line[i + close + 1..];
                (
                    &line[..i],
                    check_labels(&line[i + 1..i + close], n).map(|()| after)?,
                )
            }
            Some(i) => (&line[..i], &line[i..]),
            None => return Err(format!("line {n}: sample without a value")),
        };
        if name_part.is_empty()
            || !name_part
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name_part.starts_with(|c: char| c.is_ascii_digit())
        {
            return Err(format!("line {n}: bad metric name {name_part:?}"));
        }
        let declares = |d: &&str| {
            name_part == *d
                || name_part
                    .strip_prefix(*d)
                    .is_some_and(|s| matches!(s, "_sum" | "_count" | "_bucket"))
        };
        if !declared.iter().any(declares) {
            return Err(format!(
                "line {n}: sample {name_part:?} has no preceding # TYPE"
            ));
        }
        let value = value_part.trim();
        if value.is_empty() || value.parse::<f64>().is_err() {
            return Err(format!("line {n}: bad sample value {value:?}"));
        }
    }
    if declared.is_empty() {
        return Err("no metric families declared".to_string());
    }
    Ok(())
}

/// Index of the `}` closing a label set starting at `s[0] == '{'`,
/// skipping over quoted label values (with backslash escapes).
fn find_label_close(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate().skip(1) {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_quotes => escaped = true,
            b'"' => in_quotes = !in_quotes,
            b'}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn check_labels(body: &str, lineno: usize) -> Result<(), String> {
    if body.is_empty() {
        return Ok(());
    }
    // Split on commas outside quotes.
    let mut start = 0;
    let mut in_quotes = false;
    let mut escaped = false;
    let mut pairs = Vec::new();
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                pairs.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    pairs.push(&body[start..]);
    for pair in pairs {
        let Some((k, v)) = pair.split_once('=') else {
            return Err(format!("line {lineno}: label without '=': {pair:?}"));
        };
        if k.is_empty() || !k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("line {lineno}: bad label name {k:?}"));
        }
        if !(v.len() >= 2 && v.starts_with('"') && v.ends_with('"')) {
            return Err(format!("line {lineno}: unquoted label value {v:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_output_passes_the_checker() {
        let mut w = PromWriter::new("velus");
        w.header(
            "requests_total",
            "Requests accepted by the service.",
            "counter",
        );
        w.sample("requests_total", &[], 42.0);
        w.sample("requests_total", &[("kind", "c"), ("class", "source")], 7.0);
        w.header("queue_depth", "Requests waiting for a worker.", "gauge");
        w.sample("queue_depth", &[], 0.0);
        w.header("latency_seconds", "Request latency quantiles.", "summary");
        w.sample("latency_seconds", &[("quantile", "0.99")], 0.001_234);
        w.sample("latency_seconds_sum", &[], 1.5);
        w.sample("latency_seconds_count", &[], 12.0);
        let text = w.finish();
        check(&text).expect("writer output must validate");
        assert!(text.contains("velus_requests_total{kind=\"c\",class=\"source\"} 7"));
        assert!(text.contains("# TYPE velus_queue_depth gauge"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut w = PromWriter::new("t");
        w.header("m", "h", "counter");
        w.sample("m", &[("path", "a\"b\\c")], 1.0);
        let text = w.finish();
        assert!(text.contains("t_m{path=\"a\\\"b\\\\c\"} 1"));
        check(&text).expect("escaped labels must validate");
    }

    #[test]
    fn checker_rejects_malformed_dumps() {
        assert!(check("").is_err(), "empty dump declares nothing");
        assert!(check("velus_x 1\n").is_err(), "sample without TYPE");
        assert!(
            check("# TYPE velus_x counter\nvelus_x{a=b} 1\n").is_err(),
            "unquoted label"
        );
        assert!(
            check("# TYPE velus_x counter\nvelus_x oops\n").is_err(),
            "non-numeric value"
        );
        assert!(
            check("# TYPE velus_x widget\nvelus_x 1\n").is_err(),
            "unknown type"
        );
        assert!(
            check("# TYPE velus_x counter\nvelus_x{a=\"b\" 1\n").is_err(),
            "unterminated labels"
        );
        assert!(check("# TYPE velus_x counter\nvelus_x{a=\"b\"} 1\n").is_ok());
    }
}
