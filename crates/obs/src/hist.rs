//! Mergeable log-linear histograms.
//!
//! The recorder of the serving layer's latency statistics. Values
//! (nanoseconds, bytes — any `u64`) are counted into buckets whose
//! width grows geometrically: each power-of-two octave is split into
//! [`SUBBUCKETS`] linear sub-buckets, so a recorded value lands in a
//! bucket whose width is at most 1/16 of its magnitude. That yields
//!
//! * **exact counts over the full run** — nothing is sampled or
//!   windowed; `count` and `sum` are exact, and a percentile's rank is
//!   exact (only the reported *value* is quantized to its bucket, a
//!   ≤ ~3.2% relative error);
//! * **bounded memory** — [`BUCKETS`] `u64` slots (< 8 KiB) regardless
//!   of how many samples are recorded;
//! * **associative merging** — bucket counts add, so per-worker shards
//!   (or per-run snapshots) combine into one distribution in any
//!   order, which is what lets recording be lock-free.
//!
//! [`Histogram`] is the plain single-writer form (benches, snapshots);
//! [`ShardedHistogram`] wraps per-thread shards of atomic buckets for
//! concurrent recording with no locks on the hot path.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Linear sub-buckets per power-of-two octave (16 → bucket width ≤ 1/16
/// of the value's magnitude).
pub const SUBBUCKETS: u64 = 1 << SUB_BITS;
const SUB_BITS: u32 = 4;

/// Total bucket count: values `0..SUBBUCKETS` get exact unit buckets,
/// then 16 sub-buckets per octave up to `u64::MAX`.
pub const BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) * SUBBUCKETS as usize;

/// The bucket index a value is counted under (monotone in `v`).
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUBBUCKETS {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let sub = (v >> (exp - SUB_BITS)) - SUBBUCKETS;
    ((exp - SUB_BITS + 1) as usize * SUBBUCKETS as usize) + sub as usize
}

/// The smallest value that maps to bucket `i` (inverse of [`bucket_of`]
/// on bucket lower bounds).
#[inline]
fn bucket_low(i: usize) -> u64 {
    let i = i as u64;
    if i < SUBBUCKETS {
        return i;
    }
    let exp = i / SUBBUCKETS - 1 + SUB_BITS as u64;
    let sub = i % SUBBUCKETS;
    (SUBBUCKETS + sub) << (exp - SUB_BITS as u64)
}

/// A representative value for bucket `i`: its midpoint (exact for the
/// unit buckets). This is what percentile queries report.
#[inline]
fn bucket_mid(i: usize) -> u64 {
    let low = bucket_low(i);
    if (i as u64) < SUBBUCKETS {
        return low;
    }
    let width = bucket_low(i + 1).saturating_sub(low).max(1);
    low + (width - 1) / 2
}

/// A single-writer log-linear histogram. See the module docs for the
/// bucketing scheme.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0u64; BUCKETS]
                .into_boxed_slice()
                .try_into()
                .expect("BUCKETS length"),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Counts one value.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Adds every count of `other` into `self` (associative and
    /// commutative: any merge order yields the same histogram).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values (exact).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (exact, saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value, 0 when empty (exact).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded value, 0 when empty (exact).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Arithmetic mean, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The nearest-rank percentile: the representative value of the
    /// bucket holding the smallest recorded value with at least `pct`
    /// percent of samples at or below it. `pct` may be fractional
    /// (`99.9` for p999); 0 on an empty histogram. The rank is exact;
    /// the value is bucket-quantized (≤ ~3.2% relative error), and
    /// clamped into the exact observed `[min, max]` range.
    pub fn percentile(&self, pct: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let pct = pct.clamp(0.0, 100.0);
        // Nearest rank: ceil(pct/100 * count), at least 1.
        let rank = ((pct / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// A histogram of atomic buckets: many threads may record concurrently;
/// reads (snapshots) are racy-but-monotone, which is all statistics
/// need.
struct AtomicHistogram {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> AtomicHistogram {
        AtomicHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn merge_into(&self, out: &mut Histogram) {
        for (a, b) in out.counts.iter_mut().zip(self.counts.iter()) {
            *a += b.load(Ordering::Relaxed);
        }
        out.count += self.count.load(Ordering::Relaxed);
        out.sum = out.sum.saturating_add(self.sum.load(Ordering::Relaxed));
        out.min = out.min.min(self.min.load(Ordering::Relaxed));
        out.max = out.max.max(self.max.load(Ordering::Relaxed));
    }
}

/// The small distinct-per-thread index used to spread recording threads
/// over shards (assigned once per thread, process-wide).
fn thread_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static INDEX: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    INDEX.with(|i| *i)
}

/// A lock-free concurrent histogram: per-worker shards of atomic
/// buckets, merged into one [`Histogram`] at snapshot time. Recording
/// is a handful of relaxed atomic adds on the recording thread's own
/// shard — no mutex, no allocation, no cross-thread contention beyond
/// incidental shard collisions.
pub struct ShardedHistogram {
    shards: Box<[AtomicHistogram]>,
}

impl Default for ShardedHistogram {
    fn default() -> ShardedHistogram {
        ShardedHistogram::new(8)
    }
}

impl ShardedHistogram {
    /// A histogram with `shards` shards (clamped to at least 1, rounded
    /// up to a power of two so shard selection is a mask).
    pub fn new(shards: usize) -> ShardedHistogram {
        let n = shards.max(1).next_power_of_two();
        ShardedHistogram {
            shards: (0..n).map(|_| AtomicHistogram::new()).collect(),
        }
    }

    /// Counts one value into the calling thread's shard.
    pub fn record(&self, v: u64) {
        let shard = thread_index() & (self.shards.len() - 1);
        self.shards[shard].record(v);
    }

    /// Merges every shard into one point-in-time [`Histogram`].
    /// Concurrent recording keeps going; the snapshot is consistent
    /// enough for statistics (counts never go backwards).
    pub fn snapshot(&self) -> Histogram {
        let mut out = Histogram::new();
        for shard in self.shards.iter() {
            shard.merge_into(&mut out);
        }
        out
    }
}

impl std::fmt::Debug for ShardedHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedHistogram")
            .field("shards", &self.shards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_self_inverse() {
        let mut last = 0usize;
        for v in [0u64, 1, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= last, "bucket_of must be monotone at {v}");
            assert!(bucket_low(b) <= v, "low({b}) > {v}");
            if b + 1 < BUCKETS {
                assert!(bucket_low(b + 1) > v, "v {v} beyond bucket {b}");
            }
            last = b;
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), 7);
        assert_eq!(h.percentile(100.0), 15);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.count(), 16);
        assert_eq!(h.sum(), 120);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.percentile(99.9), 0);
        assert_eq!((h.count(), h.sum(), h.min(), h.max()), (0, 0, 0, 0));
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn percentiles_stay_within_relative_error() {
        let mut h = Histogram::new();
        let values: Vec<u64> = (1..=10_000u64).map(|k| k * 997).collect();
        for &v in &values {
            h.record(v);
        }
        for pct in [50.0, 95.0, 99.0, 99.9] {
            let rank = ((pct / 100.0 * values.len() as f64).ceil() as usize).max(1);
            let oracle = values[rank - 1];
            let est = h.percentile(pct);
            let err = (est as f64 - oracle as f64).abs() / oracle as f64;
            assert!(err <= 0.035, "p{pct}: est {est} oracle {oracle} err {err}");
        }
    }

    #[test]
    fn merge_is_associative() {
        let chunks: [&[u64]; 3] = [&[1, 5, 500], &[2, 1 << 30, 77], &[0, 0, 12_345]];
        let hist_of = |values: &[&[u64]]| {
            let mut h = Histogram::new();
            for chunk in values {
                for &v in *chunk {
                    h.record(v);
                }
            }
            h
        };
        let all = hist_of(&chunks);
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) == recording everything into one.
        let mut left = hist_of(&[chunks[0]]);
        left.merge(&hist_of(&[chunks[1]]));
        left.merge(&hist_of(&[chunks[2]]));
        let mut right = hist_of(&[chunks[1]]);
        right.merge(&hist_of(&[chunks[2]]));
        let mut a = hist_of(&[chunks[0]]);
        a.merge(&right);
        assert!(left == all && a == all);
    }

    #[test]
    fn sharded_recording_merges_across_threads() {
        let h = std::sync::Arc::new(ShardedHistogram::new(4));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for k in 0..1000u64 {
                        h.record(t * 1000 + k);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count(), 4000);
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max(), 3999);
    }
}
