//! Structured tracing with a flight recorder.
//!
//! The model is a classic enter/exit span tree per request:
//!
//! * a [`Recorder`] owns the clock epoch, allocates trace and span
//!   IDs, and collects finished events into bounded per-thread ring
//!   buffers (oldest events drop first; the drop count is reported);
//! * the serving layer opens a [`RequestScope`] on the worker thread
//!   that executes a request — the scope installs itself in
//!   thread-local storage, so *any* code running under it can record
//!   spans through the free functions [`span`], [`enter`]/[`exit`],
//!   [`instant`] and [`complete`] without an API handle being threaded
//!   through call signatures;
//! * when no scope is active every free function is a single
//!   thread-local read and returns immediately, so instrumented code
//!   costs nothing measurable outside a traced run;
//! * at scope drop the request's whole event buffer is flushed into
//!   the thread's ring in one short lock, and the **flight recorder**
//!   decides whether to retain the complete span tree (slowest-N
//!   requests, plus any over a configured threshold) as a
//!   [`FlightRecord`] that can explain a tail-latency outlier after
//!   the fact.
//!
//! [`Recorder::drain`] returns the ring contents as [`TraceData`],
//! whose [`TraceData::chrome_json`] renders Chrome trace-event JSON
//! loadable in Perfetto or `chrome://tracing`. Worker-thread spans
//! become `B`/`E` duration events (strict nesting holds because a
//! worker runs one request at a time); cross-thread intervals such as
//! queue wait are recorded via [`complete`] and emitted as async
//! `b`/`e` pairs keyed by trace ID, so they never fake-enclose an
//! unrelated request that happens to share the worker lane.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How many over-threshold span trees the flight recorder keeps before
/// it stops adding new ones (the slowest-N list is independent).
const OVER_CAP: usize = 32;

/// Tuning knobs for a [`Recorder`].
#[derive(Clone, Debug)]
pub struct RecorderConfig {
    /// Capacity of each per-thread event ring (events, not bytes).
    /// When a ring is full its oldest events are dropped and counted.
    pub ring_cap: usize,
    /// How many slowest request span trees the flight recorder retains.
    pub slowest: usize,
    /// Requests at least this slow are retained regardless of rank.
    pub slow_threshold_ns: Option<u64>,
}

impl Default for RecorderConfig {
    fn default() -> RecorderConfig {
        RecorderConfig {
            ring_cap: 65_536,
            slowest: 4,
            slow_threshold_ns: None,
        }
    }
}

/// What a [`TraceEvent`] marks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (its `Exit` closes it).
    Enter,
    /// The innermost open span closed.
    Exit,
    /// A point-in-time marker inside the current span.
    Instant,
    /// A pre-measured interval (e.g. queue wait) recorded after the
    /// fact; `ts_ns` is its start.
    Complete {
        /// Interval length in nanoseconds.
        dur_ns: u64,
    },
}

/// One recorded event. Timestamps are nanoseconds since the owning
/// [`Recorder`]'s epoch; `span`/`parent` IDs are recorder-unique
/// (0 means "no parent").
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// What this event marks.
    pub kind: EventKind,
    /// Static event name (pass name, phase name, …).
    pub name: &'static str,
    /// Nanoseconds since the recorder epoch.
    pub ts_ns: u64,
    /// The request's trace ID.
    pub trace: u64,
    /// This event's span ID (0 for instants).
    pub span: u64,
    /// The enclosing span's ID, 0 at the root.
    pub parent: u64,
    /// Logical thread lane the event was recorded on.
    pub tid: u64,
    /// Free-form label (request name, cache-probe outcome, …).
    pub arg: Option<String>,
}

struct Ring {
    cap: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Ring {
    fn push_bulk(&mut self, events: Vec<TraceEvent>) {
        for ev in events {
            if self.events.len() == self.cap {
                self.events.pop_front();
                self.dropped += 1;
            }
            self.events.push_back(ev);
        }
    }
}

#[derive(Default)]
struct Flight {
    slowest: Vec<FlightRecord>,
    over: Vec<FlightRecord>,
}

struct Inner {
    serial: usize,
    epoch: Instant,
    config: RecorderConfig,
    rings: Mutex<Vec<Arc<Mutex<Ring>>>>,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    flight: Mutex<Flight>,
}

/// The owner of a tracing session: clock epoch, ID allocation, event
/// rings and the flight recorder. Cheap to clone (it is a handle).
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("ring_cap", &self.inner.config.ring_cap)
            .field("slowest", &self.inner.config.slowest)
            .finish()
    }
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new(RecorderConfig::default())
    }
}

static RECORDER_SERIAL: AtomicUsize = AtomicUsize::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static SCOPE: RefCell<Option<ScopeState>> = const { RefCell::new(None) };
    static RINGS: RefCell<Vec<(usize, Arc<Mutex<Ring>>)>> = const { RefCell::new(Vec::new()) };
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn current_tid() -> u64 {
    TID.with(|t| *t)
}

struct ScopeState {
    inner: Arc<Inner>,
    trace: u64,
    label: String,
    tid: u64,
    start_ns: u64,
    stack: Vec<u64>,
    events: Vec<TraceEvent>,
    prev: Option<Box<ScopeState>>,
}

impl ScopeState {
    fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }
}

impl Recorder {
    /// A recorder with the given configuration.
    pub fn new(config: RecorderConfig) -> Recorder {
        Recorder {
            inner: Arc::new(Inner {
                serial: RECORDER_SERIAL.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                config,
                rings: Mutex::new(Vec::new()),
                next_trace: AtomicU64::new(1),
                next_span: AtomicU64::new(1),
                flight: Mutex::new(Flight::default()),
            }),
        }
    }

    /// Nanoseconds since this recorder's epoch (the timebase of every
    /// event it records).
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// Allocates a fresh trace ID. Use when an ID must exist before
    /// the request reaches its worker (e.g. to key the queue-wait
    /// interval), then pass it to [`Recorder::scope_with`].
    pub fn new_trace(&self) -> u64 {
        self.inner.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    /// Opens a request scope with a fresh trace ID on the calling
    /// thread. See [`Recorder::scope_with`].
    pub fn scope(&self, label: &str) -> RequestScope {
        let trace = self.new_trace();
        self.scope_with(label, trace)
    }

    /// Opens a request scope on the calling thread: installs the
    /// thread-local context the free tracing functions record into and
    /// opens the root `request` span. The scope ends (flushes its
    /// events, closes unbalanced spans, consults the flight recorder)
    /// when the returned guard drops.
    pub fn scope_with(&self, label: &str, trace: u64) -> RequestScope {
        let tid = current_tid();
        let start_ns = self.now_ns();
        let root = self.inner.next_span.fetch_add(1, Ordering::Relaxed);
        let mut state = ScopeState {
            inner: Arc::clone(&self.inner),
            trace,
            label: label.to_string(),
            tid,
            start_ns,
            stack: vec![root],
            events: Vec::with_capacity(64),
            prev: None,
        };
        state.events.push(TraceEvent {
            kind: EventKind::Enter,
            name: "request",
            ts_ns: start_ns,
            trace,
            span: root,
            parent: 0,
            tid,
            arg: Some(label.to_string()),
        });
        SCOPE.with(|s| {
            let mut slot = s.borrow_mut();
            state.prev = slot.take().map(Box::new);
            *slot = Some(state);
        });
        RequestScope {
            trace,
            _not_send: std::marker::PhantomData,
        }
    }

    /// Takes every buffered event out of the rings (clearing them) and
    /// returns them as one [`TraceData`], sorted by timestamp.
    pub fn drain(&self) -> TraceData {
        let mut events = Vec::new();
        let mut dropped = 0;
        let rings = self.inner.rings.lock().unwrap();
        for ring in rings.iter() {
            let mut ring = ring.lock().unwrap();
            events.extend(ring.events.drain(..));
            dropped += std::mem::take(&mut ring.dropped);
        }
        drop(rings);
        events.sort_by_key(|e| e.ts_ns);
        TraceData { events, dropped }
    }

    /// The flight recorder's retained span trees: the slowest requests
    /// first (descending duration), then any over-threshold requests
    /// not already included.
    pub fn flight(&self) -> Vec<FlightRecord> {
        let fl = self.inner.flight.lock().unwrap();
        let mut out: Vec<FlightRecord> = fl.slowest.iter().rev().cloned().collect();
        for rec in &fl.over {
            if !out.iter().any(|r| r.trace == rec.trace) {
                out.push(rec.clone());
            }
        }
        out
    }
}

impl Inner {
    fn ring_for_current_thread(self: &Arc<Inner>) -> Arc<Mutex<Ring>> {
        RINGS.with(|rings| {
            let mut rings = rings.borrow_mut();
            if let Some((_, ring)) = rings.iter().find(|(serial, _)| *serial == self.serial) {
                return Arc::clone(ring);
            }
            let ring = Arc::new(Mutex::new(Ring {
                cap: self.config.ring_cap.max(1),
                events: VecDeque::new(),
                dropped: 0,
            }));
            self.rings.lock().unwrap().push(Arc::clone(&ring));
            rings.push((self.serial, Arc::clone(&ring)));
            ring
        })
    }

    fn retain_flight(&self, state: &ScopeState, dur_ns: u64) {
        let over = self.config.slow_threshold_ns.is_some_and(|t| dur_ns >= t);
        let mut fl = self.flight.lock().unwrap();
        let ranks = self.config.slowest > 0
            && (fl.slowest.len() < self.config.slowest
                || fl.slowest.first().is_some_and(|m| dur_ns > m.dur_ns));
        if !over && !ranks {
            return;
        }
        let rec = FlightRecord {
            label: state.label.clone(),
            trace: state.trace,
            start_ns: state.start_ns,
            dur_ns,
            events: state.events.clone(),
        };
        if over && fl.over.len() < OVER_CAP {
            fl.over.push(rec.clone());
        }
        if ranks {
            if fl.slowest.len() == self.config.slowest {
                fl.slowest.remove(0);
            }
            fl.slowest.push(rec);
            fl.slowest.sort_by_key(|r| r.dur_ns);
        }
    }
}

/// Guard for an active request scope; dropping it closes the request's
/// span tree and flushes it to the recorder. Not `Send` — it must drop
/// on the thread that opened it.
pub struct RequestScope {
    trace: u64,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl RequestScope {
    /// The trace ID of the request this scope covers.
    pub fn trace(&self) -> u64 {
        self.trace
    }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        let state = SCOPE.with(|s| s.borrow_mut().take());
        let Some(mut state) = state else { return };
        let now = state.now_ns();
        while let Some(span) = state.stack.pop() {
            state.events.push(TraceEvent {
                kind: EventKind::Exit,
                name: "",
                ts_ns: now,
                trace: state.trace,
                span,
                parent: 0,
                tid: state.tid,
                arg: None,
            });
        }
        let dur_ns = now.saturating_sub(state.start_ns);
        state.inner.retain_flight(&state, dur_ns);
        let ring = state.inner.ring_for_current_thread();
        let events = std::mem::take(&mut state.events);
        ring.lock().unwrap().push_bulk(events);
        if let Some(prev) = state.prev.take() {
            SCOPE.with(|s| *s.borrow_mut() = Some(*prev));
        }
    }
}

/// An open span handle returned by [`enter`]; pass it to [`exit`].
/// The zero token (no active scope) is inert.
#[derive(Copy, Clone, Debug)]
pub struct SpanToken(u64);

/// Opens a span under the current request scope. No-op (returns the
/// inert token) when the thread has no active scope.
pub fn enter(name: &'static str) -> SpanToken {
    SCOPE.with(|s| {
        let mut slot = s.borrow_mut();
        let Some(state) = slot.as_mut() else {
            return SpanToken(0);
        };
        let span = state.inner.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = state.stack.last().copied().unwrap_or(0);
        let ev = TraceEvent {
            kind: EventKind::Enter,
            name,
            ts_ns: state.now_ns(),
            trace: state.trace,
            span,
            parent,
            tid: state.tid,
            arg: None,
        };
        state.stack.push(span);
        state.events.push(ev);
        SpanToken(span)
    })
}

/// Closes the span opened by [`enter`], along with any still-open
/// spans nested inside it. No-op on the inert token or when the span
/// was already closed.
pub fn exit(token: SpanToken) {
    if token.0 == 0 {
        return;
    }
    SCOPE.with(|s| {
        let mut slot = s.borrow_mut();
        let Some(state) = slot.as_mut() else { return };
        if !state.stack.contains(&token.0) {
            return;
        }
        let now = state.now_ns();
        while let Some(span) = state.stack.pop() {
            state.events.push(TraceEvent {
                kind: EventKind::Exit,
                name: "",
                ts_ns: now,
                trace: state.trace,
                span,
                parent: 0,
                tid: state.tid,
                arg: None,
            });
            if span == token.0 {
                break;
            }
        }
    });
}

/// RAII form of [`enter`]/[`exit`]: the span closes when the guard
/// drops.
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard { token: enter(name) }
}

/// Guard returned by [`span`]; closes its span on drop.
pub struct SpanGuard {
    token: SpanToken,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        exit(self.token);
    }
}

/// Records a point-in-time marker inside the current span (cache-probe
/// outcome, scheduling decision, …). No-op without an active scope;
/// guard allocating `arg` values behind [`active`] on hot paths.
pub fn instant(name: &'static str, arg: Option<String>) {
    SCOPE.with(|s| {
        let mut slot = s.borrow_mut();
        let Some(state) = slot.as_mut() else { return };
        let ev = TraceEvent {
            kind: EventKind::Instant,
            name,
            ts_ns: state.now_ns(),
            trace: state.trace,
            span: 0,
            parent: state.stack.last().copied().unwrap_or(0),
            tid: state.tid,
            arg,
        };
        state.events.push(ev);
    });
}

/// Records a pre-measured interval (queue wait, remote I/O) that
/// started at `start_ns` on some *other* thread's clock lane. Emitted
/// as an async event in Chrome JSON so it cannot fake-enclose spans on
/// this worker's lane. No-op without an active scope.
pub fn complete(name: &'static str, start_ns: u64, dur_ns: u64) {
    SCOPE.with(|s| {
        let mut slot = s.borrow_mut();
        let Some(state) = slot.as_mut() else { return };
        let ev = TraceEvent {
            kind: EventKind::Complete { dur_ns },
            name,
            ts_ns: start_ns,
            trace: state.trace,
            span: 0,
            parent: state.stack.first().copied().unwrap_or(0),
            tid: state.tid,
            arg: None,
        };
        state.events.push(ev);
    });
}

/// Whether the calling thread currently has an active request scope.
pub fn active() -> bool {
    SCOPE.with(|s| s.borrow().is_some())
}

/// Everything drained out of a recorder's rings: the events plus how
/// many older events the bounded rings had to drop.
#[derive(Clone, Debug, Default)]
pub struct TraceData {
    /// The recorded events, sorted by timestamp.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring-buffer bounds before this drain.
    pub dropped: u64,
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_ts_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

impl TraceData {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the events as Chrome trace-event JSON (an array of
    /// event objects), loadable in Perfetto or `chrome://tracing`.
    /// Span enter/exit become `B`/`E` duration events on the worker's
    /// lane; [`EventKind::Complete`] intervals become async `b`/`e`
    /// pairs keyed by trace ID; instants become `i` events.
    pub fn chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 96);
        out.push('[');
        let mut first = true;
        let mut sep = |out: &mut String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push('\n');
        };
        let mut tids: Vec<u64> = self.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"lane-{tid}\"}}}}"
            );
        }
        for ev in &self.events {
            match &ev.kind {
                EventKind::Enter => {
                    sep(&mut out);
                    out.push_str("{\"name\":\"");
                    json_escape_into(&mut out, ev.name);
                    let _ = write!(out, "\",\"ph\":\"B\",\"pid\":1,\"tid\":{},\"ts\":", ev.tid);
                    push_ts_us(&mut out, ev.ts_ns);
                    let _ = write!(
                        out,
                        ",\"args\":{{\"trace\":{},\"span\":{},\"parent\":{}",
                        ev.trace, ev.span, ev.parent
                    );
                    if let Some(arg) = &ev.arg {
                        out.push_str(",\"label\":\"");
                        json_escape_into(&mut out, arg);
                        out.push('"');
                    }
                    out.push_str("}}");
                }
                EventKind::Exit => {
                    sep(&mut out);
                    let _ = write!(out, "{{\"ph\":\"E\",\"pid\":1,\"tid\":{},\"ts\":", ev.tid);
                    push_ts_us(&mut out, ev.ts_ns);
                    out.push('}');
                }
                EventKind::Instant => {
                    sep(&mut out);
                    out.push_str("{\"name\":\"");
                    json_escape_into(&mut out, ev.name);
                    let _ = write!(
                        out,
                        "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":",
                        ev.tid
                    );
                    push_ts_us(&mut out, ev.ts_ns);
                    if let Some(arg) = &ev.arg {
                        out.push_str(",\"args\":{\"label\":\"");
                        json_escape_into(&mut out, arg);
                        out.push_str("\"}");
                    }
                    out.push('}');
                }
                EventKind::Complete { dur_ns } => {
                    sep(&mut out);
                    out.push_str("{\"name\":\"");
                    json_escape_into(&mut out, ev.name);
                    let _ = write!(
                        out,
                        "\",\"cat\":\"async\",\"ph\":\"b\",\"id\":{},\"pid\":1,\"tid\":{},\"ts\":",
                        ev.trace, ev.tid
                    );
                    push_ts_us(&mut out, ev.ts_ns);
                    out.push('}');
                    sep(&mut out);
                    out.push_str("{\"name\":\"");
                    json_escape_into(&mut out, ev.name);
                    let _ = write!(
                        out,
                        "\",\"cat\":\"async\",\"ph\":\"e\",\"id\":{},\"pid\":1,\"tid\":{},\"ts\":",
                        ev.trace, ev.tid
                    );
                    push_ts_us(&mut out, ev.ts_ns.saturating_add(*dur_ns));
                    out.push('}');
                }
            }
        }
        out.push_str("\n]\n");
        out
    }
}

/// A complete retained span tree for one request, kept by the flight
/// recorder because the request ranked among the slowest (or crossed
/// the slow threshold).
#[derive(Clone, Debug)]
pub struct FlightRecord {
    /// The request label the scope was opened with.
    pub label: String,
    /// The request's trace ID.
    pub trace: u64,
    /// Request start, nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Total request duration in nanoseconds.
    pub dur_ns: u64,
    /// The request's full event sequence, in recording order.
    pub events: Vec<TraceEvent>,
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl FlightRecord {
    /// Renders the span tree as an indented text dump: one line per
    /// span with its duration, instants as `·` markers, async
    /// intervals as `~` lines.
    pub fn render_tree(&self) -> String {
        use std::collections::HashMap;
        let mut close: HashMap<u64, u64> = HashMap::new();
        for ev in &self.events {
            if matches!(ev.kind, EventKind::Exit) {
                close.insert(ev.span, ev.ts_ns);
            }
        }
        let mut out = format!(
            "trace {} \"{}\" — {}\n",
            self.trace,
            self.label,
            fmt_ns(self.dur_ns)
        );
        let mut depth = 0usize;
        for ev in &self.events {
            let indent = "  ".repeat(depth);
            match &ev.kind {
                EventKind::Enter => {
                    let dur = close
                        .get(&ev.span)
                        .map(|end| end.saturating_sub(ev.ts_ns))
                        .unwrap_or(0);
                    let label = ev.arg.as_deref().unwrap_or("");
                    if label.is_empty() {
                        let _ = writeln!(out, "{indent}{} {}", ev.name, fmt_ns(dur));
                    } else {
                        let _ = writeln!(out, "{indent}{} [{}] {}", ev.name, label, fmt_ns(dur));
                    }
                    depth += 1;
                }
                EventKind::Exit => depth = depth.saturating_sub(1),
                EventKind::Instant => {
                    let label = ev.arg.as_deref().unwrap_or("");
                    if label.is_empty() {
                        let _ = writeln!(out, "{indent}· {}", ev.name);
                    } else {
                        let _ = writeln!(out, "{indent}· {} [{}]", ev.name, label);
                    }
                }
                EventKind::Complete { dur_ns } => {
                    let _ = writeln!(out, "{indent}~ {} {}", ev.name, fmt_ns(*dur_ns));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_functions_are_inert_without_a_scope() {
        assert!(!active());
        let token = enter("orphan");
        exit(token);
        instant("orphan", None);
        complete("orphan", 0, 10);
        let _g = span("orphan");
    }

    #[test]
    fn scope_records_balanced_nested_spans() {
        let rec = Recorder::new(RecorderConfig::default());
        {
            let _scope = rec.scope("job-a");
            let outer = enter("outer");
            {
                let _inner = span("inner");
                instant("probe", Some("hit".into()));
            }
            exit(outer);
        }
        let data = rec.drain();
        assert_eq!(data.dropped, 0);
        let enters: Vec<_> = data
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Enter))
            .collect();
        let exits = data
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Exit))
            .count();
        assert_eq!(enters.len(), 3, "request + outer + inner");
        assert_eq!(enters.len(), exits, "every enter must have an exit");
        // Parent links: request ← outer ← inner.
        let request = enters.iter().find(|e| e.name == "request").unwrap();
        let outer = enters.iter().find(|e| e.name == "outer").unwrap();
        let inner = enters.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(request.parent, 0);
        assert_eq!(outer.parent, request.span);
        assert_eq!(inner.parent, outer.span);
        // Chrome output is non-empty and bracketed.
        let json = data.chrome_json();
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"B\"") && json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
    }

    #[test]
    fn unbalanced_spans_are_closed_at_scope_end() {
        let rec = Recorder::default();
        {
            let _scope = rec.scope("leaky");
            let _ = enter("never-exited");
        }
        let data = rec.drain();
        let enters = data
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Enter))
            .count();
        let exits = data
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Exit))
            .count();
        assert_eq!(enters, exits);
    }

    #[test]
    fn complete_intervals_become_async_pairs() {
        let rec = Recorder::default();
        {
            let _scope = rec.scope("queued");
            complete("queue-wait", 5, 1000);
        }
        let json = rec.drain().chrome_json();
        assert!(json.contains("\"ph\":\"b\"") && json.contains("\"ph\":\"e\""));
    }

    #[test]
    fn flight_recorder_keeps_the_slowest_requests() {
        let rec = Recorder::new(RecorderConfig {
            slowest: 2,
            ..RecorderConfig::default()
        });
        for k in 0..4u64 {
            let _scope = rec.scope(&format!("job-{k}"));
            // Busy-wait a strictly increasing amount so job-3 is slowest.
            let target = rec.now_ns() + (k + 1) * 200_000;
            while rec.now_ns() < target {
                std::hint::spin_loop();
            }
        }
        let flight = rec.flight();
        assert_eq!(flight.len(), 2);
        assert_eq!(flight[0].label, "job-3");
        assert!(flight[0].dur_ns >= flight[1].dur_ns);
        let tree = flight[0].render_tree();
        assert!(tree.contains("request [job-3]"));
    }

    #[test]
    fn ring_capacity_bounds_memory_and_counts_drops() {
        let rec = Recorder::new(RecorderConfig {
            ring_cap: 8,
            ..RecorderConfig::default()
        });
        for k in 0..10 {
            let _scope = rec.scope(&format!("r{k}"));
        }
        let data = rec.drain();
        assert!(data.events.len() <= 8);
        assert!(data.dropped >= 12, "10 scopes × 2 events − 8 kept");
    }
}
