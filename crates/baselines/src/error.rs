//! Errors of the baseline compilers.

use std::fmt;

use velus_nlustre::SemError;
use velus_obc::ObcError;

/// An error from a baseline compilation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// A dataflow-level failure (scheduling, well-formedness).
    Sem(SemError),
    /// An Obc-level failure.
    Obc(ObcError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Sem(e) => write!(f, "{e}"),
            BaselineError::Obc(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<SemError> for BaselineError {
    fn from(e: SemError) -> BaselineError {
        BaselineError::Sem(e)
    }
}

impl From<ObcError> for BaselineError {
    fn from(e: ObcError) -> BaselineError {
        BaselineError::Obc(e)
    }
}
