//! The Lustre v6-style translation: delays as separate stateful
//! functions.
//!
//! "The estimated WCETs for the Lustre v6 generated code only become
//! competitive when inlining is enabled because Lustre v6 implements
//! operators, like pre and −>, using separate functions" (§5).
//!
//! Each `fby` equation compiles to a pair of method calls on an auxiliary
//! per-type class — `get` reads the delayed value (handling the first
//! instant through an internal flag, i.e. the fused `->`/`pre` pair), and
//! `set` stores the next one:
//!
//! ```text
//! class lv6$fby$int {
//!   memory first: bool;  memory m: int;
//!   (y: int) get(i: int) = if state(first) then y := i else y := state(m)
//!   () set(v: int)       = state(m) := v; state(first) := false
//!   () reset()           = state(first) := true
//! }
//! ```
//!
//! All `get`s run at the top of `step` (delayed values must be available
//! to every reader), the `set`s sit where the `fby` equations were
//! scheduled. No fusion is applied, matching the modular v6 scheme.

use velus_common::{Ident, IdentMap};
use velus_nlustre::ast::{CExpr, Equation, Expr, Node, Program};
use velus_nlustre::clock::Clock;
use velus_obc::ast::{reset_name, step_name, Class, Method, ObcExpr, ObcProgram, Stmt};
use velus_ops::Ops;

use crate::BaselineError;

fn get_name() -> Ident {
    Ident::new("get")
}

fn set_name() -> Ident {
    Ident::new("set")
}

/// The auxiliary class implementing delays at type `ty`.
fn fby_class_name<O: Ops>(ty: &O::Ty) -> Ident {
    Ident::new(&format!("lv6$fby${ty}"))
}

fn make_fby_class<O: Ops>(ty: &O::Ty) -> Class<O> {
    let first = Ident::new("first");
    let m = Ident::new("m");
    let y = Ident::new("y");
    let i = Ident::new("i");
    let v = Ident::new("v");
    let bool_ty = O::bool_type();
    let tt = O::const_of_literal(&velus_ops::Literal::Bool(true), &bool_ty)
        .expect("boolean constants exist");
    let ff = O::const_of_literal(&velus_ops::Literal::Bool(false), &bool_ty)
        .expect("boolean constants exist");
    Class {
        name: fby_class_name::<O>(ty),
        memories: vec![(first, bool_ty.clone()), (m, ty.clone())],
        instances: vec![],
        methods: vec![
            Method {
                name: get_name(),
                inputs: vec![(i, ty.clone())],
                outputs: vec![(y, ty.clone())],
                locals: vec![],
                body: Stmt::If(
                    ObcExpr::State(first, bool_ty.clone()),
                    Box::new(Stmt::Assign(y, ObcExpr::Var(i, ty.clone()))),
                    Box::new(Stmt::Assign(y, ObcExpr::State(m, ty.clone()))),
                ),
            },
            Method {
                name: set_name(),
                inputs: vec![(v, ty.clone())],
                outputs: vec![],
                locals: vec![],
                body: Stmt::seq(
                    Stmt::AssignSt(m, ObcExpr::Var(v, ty.clone())),
                    Stmt::AssignSt(first, ObcExpr::Const(ff)),
                ),
            },
            Method {
                name: reset_name(),
                inputs: vec![],
                outputs: vec![],
                locals: vec![],
                body: Stmt::AssignSt(first, ObcExpr::Const(tt)),
            },
        ],
    }
}

/// Per-node context (no memories: every variable is a step local).
struct Ctx<O: Ops> {
    types: IdentMap<O::Ty>,
}

impl<O: Ops> Ctx<O> {
    fn var(&self, x: Ident) -> Result<ObcExpr<O>, BaselineError> {
        let ty = self
            .types
            .get(&x)
            .cloned()
            .ok_or(velus_obc::ObcError::UnboundVariable(x))?;
        Ok(ObcExpr::Var(x, ty))
    }

    fn trexp(&self, e: &Expr<O>) -> Result<ObcExpr<O>, BaselineError> {
        Ok(match e {
            Expr::Const(c) => ObcExpr::Const(c.clone()),
            Expr::Var(x, _) => self.var(*x)?,
            Expr::When(e1, _, _) => self.trexp(e1)?,
            Expr::Unop(op, e1, ty) => ObcExpr::Unop(*op, Box::new(self.trexp(e1)?), ty.clone()),
            Expr::Binop(op, l, r, ty) => ObcExpr::Binop(
                *op,
                Box::new(self.trexp(l)?),
                Box::new(self.trexp(r)?),
                ty.clone(),
            ),
        })
    }

    fn trcexp(&self, x: Ident, ce: &CExpr<O>) -> Result<Stmt<O>, BaselineError> {
        Ok(match ce {
            CExpr::Merge(y, t, f) => Stmt::If(
                self.var(*y)?,
                Box::new(self.trcexp(x, t)?),
                Box::new(self.trcexp(x, f)?),
            ),
            CExpr::If(c, t, f) => Stmt::If(
                self.trexp(c)?,
                Box::new(self.trcexp(x, t)?),
                Box::new(self.trcexp(x, f)?),
            ),
            CExpr::Expr(e) => Stmt::Assign(x, self.trexp(e)?),
        })
    }

    fn ctrl(&self, ck: &Clock, s: Stmt<O>) -> Result<Stmt<O>, BaselineError> {
        match ck {
            Clock::Base => Ok(s),
            Clock::On(parent, x, polarity) => {
                let guarded = if *polarity {
                    Stmt::If(self.var(*x)?, Box::new(s), Box::new(Stmt::Skip))
                } else {
                    Stmt::If(self.var(*x)?, Box::new(Stmt::Skip), Box::new(s))
                };
                self.ctrl(parent, guarded)
            }
        }
    }
}

fn delay_instance(x: Ident) -> Ident {
    Ident::new(&format!("{x}$d"))
}

fn translate_node_v6<O: Ops>(node: &Node<O>) -> Result<Class<O>, BaselineError> {
    let mut types: IdentMap<O::Ty> = IdentMap::<O::Ty>::default();
    for d in node.inputs.iter().chain(&node.outputs).chain(&node.locals) {
        types.insert(d.name, d.ty.clone());
    }
    let ctx = Ctx::<O> { types };

    let mut instances: Vec<(Ident, Ident)> = Vec::new();
    let mut gets: Vec<Stmt<O>> = Vec::new();
    let mut body: Vec<Stmt<O>> = Vec::new();
    let mut resets: Vec<Stmt<O>> = Vec::new();

    for eq in &node.eqs {
        match eq {
            Equation::Fby { x, ck, init, .. } => {
                let ty = ctx.types[x].clone();
                let cls = fby_class_name::<O>(&ty);
                let inst = delay_instance(*x);
                instances.push((inst, cls));
                // x := fby.get(init), available to all readers.
                gets.push(ctx.ctrl(
                    ck,
                    Stmt::Call {
                        results: vec![*x],
                        class: cls,
                        instance: inst,
                        method: get_name(),
                        args: vec![ObcExpr::Const(init.clone())],
                    },
                )?);
                resets.push(Stmt::Call {
                    results: vec![],
                    class: cls,
                    instance: inst,
                    method: reset_name(),
                    args: vec![],
                });
            }
            Equation::Call { xs, node: f, .. } => {
                instances.push((xs[0], *f));
                resets.push(Stmt::Call {
                    results: vec![],
                    class: *f,
                    instance: xs[0],
                    method: reset_name(),
                    args: vec![],
                });
            }
            Equation::Def { .. } => {}
        }
    }

    for eq in &node.eqs {
        let s = match eq {
            Equation::Def { x, ck, rhs } => ctx.ctrl(ck, ctx.trcexp(*x, rhs)?)?,
            Equation::Fby { x, ck, rhs, .. } => {
                let ty = ctx.types[x].clone();
                ctx.ctrl(
                    ck,
                    Stmt::Call {
                        results: vec![],
                        class: fby_class_name::<O>(&ty),
                        instance: delay_instance(*x),
                        method: set_name(),
                        args: vec![ctx.trexp(rhs)?],
                    },
                )?
            }
            Equation::Call {
                xs,
                ck,
                node: f,
                args,
            } => {
                let args = args
                    .iter()
                    .map(|a| ctx.trexp(a))
                    .collect::<Result<Vec<_>, _>>()?;
                ctx.ctrl(
                    ck,
                    Stmt::Call {
                        results: xs.clone(),
                        class: *f,
                        instance: xs[0],
                        method: step_name(),
                        args,
                    },
                )?
            }
        };
        body.push(s);
    }

    let step = Method {
        name: step_name(),
        inputs: node.inputs.iter().map(|d| (d.name, d.ty.clone())).collect(),
        outputs: node
            .outputs
            .iter()
            .map(|d| (d.name, d.ty.clone()))
            .collect(),
        locals: node.locals.iter().map(|d| (d.name, d.ty.clone())).collect(),
        body: Stmt::seq_all(gets.into_iter().chain(body)),
    };
    let reset = Method {
        name: reset_name(),
        inputs: vec![],
        outputs: vec![],
        locals: vec![],
        body: Stmt::seq_all(resets),
    };
    Ok(Class {
        name: node.name,
        memories: vec![],
        instances,
        methods: vec![step, reset],
    })
}

/// Translates a scheduled N-Lustre program in the Lustre v6 style: every
/// delay becomes `get`/`set` calls on auxiliary classes, no memories in
/// node classes, no fusion.
///
/// # Errors
///
/// Unbound variables (ruled out by the front-end checks).
pub fn translate_v6<O: Ops>(prog: &Program<O>) -> Result<ObcProgram<O>, BaselineError> {
    // Collect the delay types used anywhere, to emit each helper once.
    let mut delay_types: Vec<O::Ty> = Vec::new();
    for node in &prog.nodes {
        for eq in &node.eqs {
            if let Equation::Fby { x, .. } = eq {
                let ty = node
                    .decl(*x)
                    .map(|d| d.ty.clone())
                    .ok_or(velus_obc::ObcError::UnboundVariable(*x))?;
                if !delay_types.contains(&ty) {
                    delay_types.push(ty);
                }
            }
        }
    }
    let mut classes: Vec<Class<O>> = delay_types
        .iter()
        .map(|ty| make_fby_class::<O>(ty))
        .collect();
    for node in &prog.nodes {
        classes.push(translate_node_v6(node)?);
    }
    Ok(ObcProgram { classes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use velus_obc::sem::run_class;
    use velus_obc::typecheck;
    use velus_ops::{CVal, ClightOps};

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    fn compile_v6(src: &str) -> ObcProgram<ClightOps> {
        let prog = velus_lustre::compile_to_nlustre::<ClightOps>(src)
            .unwrap()
            .0;
        crate::lustre_v6_obc(&prog).unwrap()
    }

    #[test]
    fn delays_become_auxiliary_instances() {
        let obc = compile_v6(
            "node f(x: int) returns (y: int)
             let y = 0 fby (y + x); tel",
        );
        // lv6$fby$int helper class + node class.
        assert!(obc
            .classes
            .iter()
            .any(|c| c.name.as_str().starts_with("lv6$fby$")));
        let f = obc.class(id("f")).unwrap();
        assert!(f.memories.is_empty());
        assert!(!f.instances.is_empty());
        typecheck::check_program(&obc).unwrap();
    }

    #[test]
    fn v6_semantics_matches_standard_translation() {
        let src = "node counter(ini, inc: int; res: bool) returns (n: int)
                   let
                     n = if (true fby false) or res then ini else (0 fby n) + inc;
                   tel";
        let prog = velus_lustre::compile_to_nlustre::<ClightOps>(src)
            .unwrap()
            .0;
        let mut scheduled = prog.clone();
        velus_nlustre::schedule::schedule_program(&mut scheduled).unwrap();
        let standard = velus_obc::translate::translate_program(&scheduled).unwrap();
        let v6 = crate::lustre_v6_obc(&prog).unwrap();

        let inputs: Vec<Option<Vec<CVal>>> = (0..8)
            .map(|i| Some(vec![CVal::int(100), CVal::int(i), CVal::bool(i == 5)]))
            .collect();
        let a = run_class(&standard, id("counter"), &inputs).unwrap();
        let b = run_class(&v6, id("counter"), &inputs).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn heptagon_semantics_matches_standard_translation() {
        let src = "node f(c: bool; a, b: int) returns (y: int)
                   let y = (0 fby y) + (if c then a * 2 else b - 1); tel";
        let prog = velus_lustre::compile_to_nlustre::<ClightOps>(src)
            .unwrap()
            .0;
        let mut scheduled = prog.clone();
        velus_nlustre::schedule::schedule_program(&mut scheduled).unwrap();
        let standard = velus_obc::translate::translate_program(&scheduled).unwrap();
        let hept = crate::heptagon_obc(&prog).unwrap();
        typecheck::check_program(&hept).unwrap();

        let inputs: Vec<Option<Vec<CVal>>> = (0..8)
            .map(|i| Some(vec![CVal::bool(i % 3 == 0), CVal::int(i), CVal::int(-i)]))
            .collect();
        let a = run_class(&standard, id("f"), &inputs).unwrap();
        let b = run_class(&hept, id("f"), &inputs).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn v6_code_is_larger() {
        let src = "node f(x: int) returns (y: int)
                   let y = (0 fby y) + x; tel";
        let prog = velus_lustre::compile_to_nlustre::<ClightOps>(src)
            .unwrap()
            .0;
        let mut scheduled = prog.clone();
        velus_nlustre::schedule::schedule_program(&mut scheduled).unwrap();
        let standard = velus_obc::translate::translate_program(&scheduled).unwrap();
        let v6 = crate::lustre_v6_obc(&prog).unwrap();
        let count = |p: &ObcProgram<ClightOps>| {
            p.classes
                .iter()
                .flat_map(|c| &c.methods)
                .map(|m| m.body.size())
                .sum::<usize>()
        };
        assert!(count(&v6) > count(&standard));
    }
}
