//! Re-normalization to one operator per equation.
//!
//! Heptagon and Lustre v6 both re-normalize programs so that every
//! equation applies at most one operator (§5). Two consequences matter
//! for worst-case execution time:
//!
//! * every intermediate result becomes a named variable (more
//!   temporaries, hence register pressure), and
//! * a multiplexer's branches become *separate equations computed
//!   unconditionally*, with the `if` reduced to a value selection —
//!   "costly for nested conditional statements" under a compiler that
//!   does not if-convert.
//!
//! The output is ordinary N-Lustre: it re-validates under the same type
//! and clock checkers and runs under the same semantics (the dataflow
//! semantics computes mux branches unconditionally anyway; differential
//! tests in the workspace exercise exactly this equivalence).

use velus_common::FreshGen;
use velus_nlustre::ast::{CExpr, Equation, Expr, Node, Program, VarDecl};
use velus_nlustre::clock::Clock;
use velus_ops::Ops;

struct R<O: Ops> {
    fresh: FreshGen,
    locals: Vec<VarDecl<O>>,
    eqs: Vec<Equation<O>>,
}

impl<O: Ops> R<O> {
    fn define(&mut self, prefix: &str, ty: O::Ty, ck: &Clock, rhs: CExpr<O>) -> Expr<O> {
        let x = self.fresh.fresh(prefix);
        self.locals.push(VarDecl {
            name: x,
            ty: ty.clone(),
            ck: ck.clone(),
        });
        self.eqs.push(Equation::Def {
            x,
            ck: ck.clone(),
            rhs,
        });
        Expr::Var(x, ty)
    }

    /// Reduces `e` to an atom: a variable, a constant, or a sampling of
    /// an atom.
    fn atomize(&mut self, e: &Expr<O>, ck: &Clock) -> Expr<O> {
        match e {
            Expr::Var(..) | Expr::Const(..) => e.clone(),
            Expr::When(e1, x, k) => {
                let parent = match ck {
                    Clock::On(p, _, _) => p.as_ref().clone(),
                    Clock::Base => Clock::Base,
                };
                Expr::When(Box::new(self.atomize(e1, &parent)), *x, *k)
            }
            compound => {
                let ty = compound.ty();
                let one_op = self.flatten(compound, ck);
                self.define("t", ty, ck, CExpr::Expr(one_op))
            }
        }
    }

    /// Reduces `e` to at most one operator over atoms.
    fn flatten(&mut self, e: &Expr<O>, ck: &Clock) -> Expr<O> {
        match e {
            Expr::Unop(op, e1, ty) => Expr::Unop(*op, Box::new(self.atomize(e1, ck)), ty.clone()),
            Expr::Binop(op, l, r, ty) => Expr::Binop(
                *op,
                Box::new(self.atomize(l, ck)),
                Box::new(self.atomize(r, ck)),
                ty.clone(),
            ),
            other => self.atomize(other, ck),
        }
    }

    /// Re-normalizes a control expression: merge structure is preserved
    /// (its branches live on sub-clocks), muxes become value selections
    /// over unconditionally computed atoms.
    fn cexpr(&mut self, ce: &CExpr<O>, ck: &Clock) -> CExpr<O> {
        match ce {
            CExpr::Merge(x, t, f) => CExpr::Merge(
                *x,
                Box::new(self.cexpr(t, &ck.clone().on(*x, true))),
                Box::new(self.cexpr(f, &ck.clone().on(*x, false))),
            ),
            CExpr::If(c, t, f) => {
                let c = self.atomize(c, ck);
                let t = self.branch_atom(t, ck);
                let f = self.branch_atom(f, ck);
                CExpr::If(c, Box::new(CExpr::Expr(t)), Box::new(CExpr::Expr(f)))
            }
            CExpr::Expr(e) => CExpr::Expr(self.flatten(e, ck)),
        }
    }

    /// Computes a mux branch into an atom (unconditionally active).
    fn branch_atom(&mut self, ce: &CExpr<O>, ck: &Clock) -> Expr<O> {
        match ce {
            CExpr::Expr(e) => self.atomize(e, ck),
            nested => {
                let ty = nested.ty();
                let rhs = self.cexpr(nested, ck);
                self.define("b", ty, ck, rhs)
            }
        }
    }
}

fn renorm_node<O: Ops>(node: &Node<O>) -> Node<O> {
    let mut r = R::<O> {
        fresh: FreshGen::new("hp"),
        locals: Vec::new(),
        eqs: Vec::new(),
    };
    let mut eqs = Vec::new();
    for eq in &node.eqs {
        match eq {
            Equation::Def { x, ck, rhs } => {
                let rhs = r.cexpr(rhs, ck);
                eqs.push(Equation::Def {
                    x: *x,
                    ck: ck.clone(),
                    rhs,
                });
            }
            Equation::Fby { x, ck, init, rhs } => {
                let rhs = r.atomize(rhs, ck);
                eqs.push(Equation::Fby {
                    x: *x,
                    ck: ck.clone(),
                    init: init.clone(),
                    rhs,
                });
            }
            Equation::Call {
                xs,
                ck,
                node: f,
                args,
            } => {
                let args = args.iter().map(|a| r.atomize(a, ck)).collect();
                eqs.push(Equation::Call {
                    xs: xs.clone(),
                    ck: ck.clone(),
                    node: *f,
                    args,
                });
            }
        }
    }
    eqs.extend(r.eqs);
    let mut locals = node.locals.clone();
    locals.extend(r.locals);
    Node {
        name: node.name,
        inputs: node.inputs.clone(),
        outputs: node.outputs.clone(),
        locals,
        eqs,
    }
}

/// Re-normalizes every node of a program to one operator per equation.
/// The result is unscheduled; callers re-run scheduling.
pub fn renormalize<O: Ops>(prog: &Program<O>) -> Program<O> {
    Program::new(prog.nodes.iter().map(renorm_node).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use velus_common::Ident;
    use velus_nlustre::schedule::schedule_program;
    use velus_nlustre::streams::SVal;
    use velus_nlustre::{clockcheck, dataflow, typecheck};
    use velus_ops::{CVal, ClightOps};

    fn compile(src: &str) -> Program<ClightOps> {
        velus_lustre::compile_to_nlustre::<ClightOps>(src)
            .unwrap()
            .0
    }

    #[test]
    fn splits_nested_operators() {
        let prog = compile(
            "node f(a, b, c: int) returns (y: int)
             let y = a + b * c - 1; tel",
        );
        let renormed = renormalize(&prog);
        let node = &renormed.nodes[0];
        // y = t1 - 1; t1 = a + t2; t2 = b * c  (3 equations)
        assert!(node.eqs.len() >= 3, "{node}");
        typecheck::check_program(&renormed).unwrap();
        clockcheck::check_program_clocks(&renormed).unwrap();
    }

    #[test]
    fn muxes_become_value_selections() {
        let prog = compile(
            "node f(c: bool; a, b: int) returns (y: int)
             let y = if c then a + 1 else b - 1; tel",
        );
        let renormed = renormalize(&prog);
        let node = &renormed.nodes[0];
        // Both branch computations are their own (unconditional) equations.
        let defs = node
            .eqs
            .iter()
            .filter(|e| matches!(e, Equation::Def { .. }))
            .count();
        assert!(defs >= 3, "{node}");
    }

    #[test]
    fn semantics_is_preserved() {
        let prog = compile(
            "node counter(ini, inc: int; res: bool) returns (n: int)
             let
               n = if (true fby false) or res then ini else (0 fby n) + inc;
             tel",
        );
        let mut renormed = renormalize(&prog);
        schedule_program(&mut renormed).unwrap();
        let name = Ident::new("counter");
        let inputs: Vec<Vec<SVal<ClightOps>>> = vec![
            (0..6).map(|_| SVal::Pres(CVal::int(3))).collect(),
            (0..6).map(|i| SVal::Pres(CVal::int(i))).collect(),
            (0..6).map(|i| SVal::Pres(CVal::bool(i == 4))).collect(),
        ];
        let a = dataflow::run_node(&prog, name, &inputs, 6).unwrap();
        let b = dataflow::run_node(&renormed, name, &inputs, 6).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn merges_keep_their_clock_structure() {
        let prog = compile(
            "node f(x: bool; v: int) returns (o: int)
             var s: int when x;
             let
               s = (v + 1) when x;
               o = merge x s ((0 fby o) when not x);
             tel",
        );
        let renormed = renormalize(&prog);
        typecheck::check_program(&renormed).unwrap();
        clockcheck::check_program_clocks(&renormed).unwrap();
        let node = &renormed.nodes[0];
        assert!(node.eqs.iter().any(|e| matches!(
            e,
            Equation::Def {
                rhs: CExpr::Merge(..),
                ..
            }
        )));
    }
}
