//! Baseline code generators reproducing the compilation schemes the paper
//! compares against in Fig. 12 (§5).
//!
//! The paper explains the measured differences by two mechanisms, which
//! these baselines implement over the *same* N-Lustre front end and the
//! *same* Clight back end as the main pipeline:
//!
//! * **Heptagon 1.03** — "Both Heptagon and Lustre (automatically)
//!   re-normalize the code to have one operator per equation, which can
//!   be costly for nested conditional statements". [`heptagon_obc`] first
//!   applies [`renorm`]'s one-operator-per-equation pass (muxes become
//!   value selections whose branches are computed unconditionally), then
//!   runs the standard translation and fusion.
//! * **Lustre v6** — "Lustre v6 implements operators, like pre and −>,
//!   using separate functions". [`lustre_v6_obc`] compiles every delay to
//!   a pair of calls (`get`/`set`) on a per-type auxiliary class with its
//!   own state, after the same re-normalization, and applies no fusion.

pub mod lustre_v6;
pub mod renorm;

mod error;

pub use error::BaselineError;

use velus_nlustre::ast::Program;
use velus_nlustre::schedule::schedule_program;
use velus_obc::ast::ObcProgram;
use velus_obc::fusion::fuse_program;
use velus_obc::translate::translate_program;
use velus_ops::Ops;

/// The baseline compilation schemes, as first-class values — callers
/// (the Fig. 12 harness, the service's baseline-diff artifact) iterate
/// [`BaselineScheme::ALL`] instead of hard-coding the pair of functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineScheme {
    /// Heptagon 1.03-style: re-normalize, translate, fuse.
    Heptagon,
    /// Lustre v6-style: re-normalize, delays as auxiliary-class calls,
    /// no fusion.
    LustreV6,
}

impl BaselineScheme {
    /// Both schemes, in the paper's column order.
    pub const ALL: [BaselineScheme; 2] = [BaselineScheme::Heptagon, BaselineScheme::LustreV6];

    /// A short stable name for tables.
    pub fn name(self) -> &'static str {
        match self {
            BaselineScheme::Heptagon => "heptagon",
            BaselineScheme::LustreV6 => "lustre-v6",
        }
    }

    /// Compiles `prog` to Obc under this scheme.
    ///
    /// # Errors
    ///
    /// Scheduling cycles or translation failures.
    pub fn compile<O: Ops>(self, prog: &Program<O>) -> Result<ObcProgram<O>, BaselineError> {
        match self {
            BaselineScheme::Heptagon => heptagon_obc(prog),
            BaselineScheme::LustreV6 => lustre_v6_obc(prog),
        }
    }
}

/// Compiles `prog` to Obc the way Heptagon would: re-normalized to one
/// operator per equation (muxes as value selections), then the standard
/// clock-directed translation with fusion.
///
/// # Errors
///
/// Scheduling cycles or translation failures.
pub fn heptagon_obc<O: Ops>(prog: &Program<O>) -> Result<ObcProgram<O>, BaselineError> {
    let mut renormed = renorm::renormalize(prog);
    schedule_program(&mut renormed)?;
    let obc = translate_program(&renormed)?;
    Ok(fuse_program(&obc))
}

/// Compiles `prog` to Obc the way Lustre v6 would: re-normalized, each
/// delay implemented by `get`/`set` calls on an auxiliary stateful class,
/// no fusion.
///
/// # Errors
///
/// Scheduling cycles or translation failures.
pub fn lustre_v6_obc<O: Ops>(prog: &Program<O>) -> Result<ObcProgram<O>, BaselineError> {
    let mut renormed = renorm::renormalize(prog);
    schedule_program(&mut renormed)?;
    lustre_v6::translate_v6(&renormed)
}
