//! Baseline code generators reproducing the compilation schemes the paper
//! compares against in Fig. 12 (§5).
//!
//! The paper explains the measured differences by two mechanisms, which
//! these baselines implement over the *same* N-Lustre front end and the
//! *same* Clight back end as the main pipeline:
//!
//! * **Heptagon 1.03** — "Both Heptagon and Lustre (automatically)
//!   re-normalize the code to have one operator per equation, which can
//!   be costly for nested conditional statements". [`heptagon_obc`] first
//!   applies [`renorm`]'s one-operator-per-equation pass (muxes become
//!   value selections whose branches are computed unconditionally), then
//!   runs the standard translation and fusion.
//! * **Lustre v6** — "Lustre v6 implements operators, like pre and −>,
//!   using separate functions". [`lustre_v6_obc`] compiles every delay to
//!   a pair of calls (`get`/`set`) on a per-type auxiliary class with its
//!   own state, after the same re-normalization, and applies no fusion.

pub mod lustre_v6;
pub mod renorm;

mod error;

pub use error::BaselineError;

use velus_nlustre::ast::Program;
use velus_nlustre::schedule::schedule_program;
use velus_obc::ast::ObcProgram;
use velus_obc::fusion::fuse_program;
use velus_obc::translate::translate_program;
use velus_ops::Ops;

/// Compiles `prog` to Obc the way Heptagon would: re-normalized to one
/// operator per equation (muxes as value selections), then the standard
/// clock-directed translation with fusion.
///
/// # Errors
///
/// Scheduling cycles or translation failures.
pub fn heptagon_obc<O: Ops>(prog: &Program<O>) -> Result<ObcProgram<O>, BaselineError> {
    let mut renormed = renorm::renormalize(prog);
    schedule_program(&mut renormed)?;
    let obc = translate_program(&renormed)?;
    Ok(fuse_program(&obc))
}

/// Compiles `prog` to Obc the way Lustre v6 would: re-normalized, each
/// delay implemented by `get`/`set` calls on an auxiliary stateful class,
/// no fusion.
///
/// # Errors
///
/// Scheduling cycles or translation failures.
pub fn lustre_v6_obc<O: Ops>(prog: &Program<O>) -> Result<ObcProgram<O>, BaselineError> {
    let mut renormed = renorm::renormalize(prog);
    schedule_program(&mut renormed)?;
    lustre_v6::translate_v6(&renormed)
}
