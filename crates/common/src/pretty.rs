//! A minimal indentation-aware code writer.
//!
//! Used by the C pretty-printer and the IR dump routines. The writer keeps
//! an indentation level; [`Printer::line`] emits a fully indented line and
//! [`Printer::block`] runs a closure one level deeper.
//!
//! # Examples
//!
//! ```
//! use velus_common::pretty::Printer;
//!
//! let mut p = Printer::new();
//! p.line("if (x) {");
//! p.block(|p| p.line("y = 1;"));
//! p.line("}");
//! assert_eq!(p.finish(), "if (x) {\n  y = 1;\n}\n");
//! ```

/// Indentation-aware text accumulator.
#[derive(Debug, Default)]
pub struct Printer {
    buf: String,
    indent: usize,
    width: usize,
}

impl Printer {
    /// Creates a printer indenting by two spaces.
    pub fn new() -> Printer {
        Printer::with_indent(2)
    }

    /// Creates a printer indenting by `width` spaces per level.
    pub fn with_indent(width: usize) -> Printer {
        Printer {
            buf: String::new(),
            indent: 0,
            width,
        }
    }

    /// Emits one indented line followed by a newline.
    pub fn line(&mut self, text: impl AsRef<str>) {
        let text = text.as_ref();
        if text.is_empty() {
            self.buf.push('\n');
            return;
        }
        for _ in 0..self.indent * self.width {
            self.buf.push(' ');
        }
        self.buf.push_str(text);
        self.buf.push('\n');
    }

    /// Emits one indented line from preformatted [`std::fmt::Arguments`],
    /// streaming straight into the accumulator: `p.line_args(
    /// format_args!("{x} := {e};"))` renders without the intermediate
    /// `String` that `p.line(format!(…))` would allocate.
    pub fn line_args(&mut self, args: std::fmt::Arguments<'_>) {
        use std::fmt::Write as _;
        for _ in 0..self.indent * self.width {
            self.buf.push(' ');
        }
        self.buf
            .write_fmt(args)
            .expect("writing to a String cannot fail");
        self.buf.push('\n');
    }

    /// Emits a blank line.
    pub fn blank(&mut self) {
        self.buf.push('\n');
    }

    /// Runs `f` with the indentation level increased by one.
    pub fn block<R>(&mut self, f: impl FnOnce(&mut Printer) -> R) -> R {
        self.indent += 1;
        let r = f(self);
        self.indent -= 1;
        r
    }

    /// Returns the accumulated text.
    pub fn finish(self) -> String {
        self.buf
    }

    /// Borrow of the accumulated text so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting() {
        let mut p = Printer::new();
        p.line("a");
        p.block(|p| {
            p.line("b");
            p.block(|p| p.line("c"));
        });
        p.line("d");
        assert_eq!(p.finish(), "a\n  b\n    c\nd\n");
    }

    #[test]
    fn empty_lines_are_not_indented() {
        let mut p = Printer::new();
        p.block(|p| {
            p.line("");
            p.blank();
        });
        assert_eq!(p.finish(), "\n\n");
    }
}
