//! One shared parser for CLI enumeration flags.
//!
//! The workspace grew five hand-rolled `FromStr -> Result<_, String>`
//! token parsers (artifact kinds, WCET models, schedule policies, cost
//! models, IR stages), each with its own error wording. This module
//! replaces their bodies with one helper that:
//!
//! * matches the token against a `(spelling, value)` table,
//! * on failure emits a **coded usage diagnostic** ([`codes::E0901`])
//!   listing the accepted spellings,
//! * and adds a *did-you-mean* suggestion when the token is within a
//!   small edit distance of an accepted spelling.
//!
//! [`codes::E0901`]: crate::codes::E0901

use crate::diag::{codes, Diagnostic};
use crate::span::Span;

/// Parses one enumeration token against a spelling table.
///
/// `what` names the flag domain for the message (e.g. `"WCET model"`).
/// The error string is the rendering of a [`codes::E0901`] diagnostic,
/// so `FromStr` implementations can return it directly.
///
/// # Examples
///
/// ```
/// use velus_common::parse_enum_flag;
///
/// let table = [("fifo", 0), ("cost", 1)];
/// assert_eq!(parse_enum_flag("schedule", "cost", &table), Ok(1));
/// let err = parse_enum_flag("schedule", "cosst", &table).unwrap_err();
/// assert!(err.contains("[E0901]") && err.contains("did you mean `cost`"), "{err}");
/// ```
///
/// # Errors
///
/// Any token not in the table.
pub fn parse_enum_flag<T: Clone>(
    what: &str,
    input: &str,
    options: &[(&str, T)],
) -> Result<T, String> {
    if let Some((_, value)) = options.iter().find(|(name, _)| *name == input) {
        return Ok(value.clone());
    }
    let spellings: Vec<&str> = options.iter().map(|(name, _)| *name).collect();
    let mut message = format!(
        "unknown {what} `{input}` (expected {})",
        spellings.join("|")
    );
    if let Some(best) = suggest(input, &spellings) {
        message.push_str(&format!("; did you mean `{best}`?"));
    }
    Err(Diagnostic::error(codes::E0901, message, Span::DUMMY).to_string())
}

/// The closest accepted spelling, if it is close enough to be a likely
/// typo (edit distance at most 1 for short tokens, one third of the
/// token's length otherwise).
fn suggest<'a>(input: &str, options: &[&'a str]) -> Option<&'a str> {
    let budget = (input.len() / 3).max(1);
    options
        .iter()
        .map(|o| (edit_distance(input, o), *o))
        .filter(|(d, _)| *d <= budget)
        .min_by_key(|(d, _)| *d)
        .map(|(_, o)| o)
}

/// Levenshtein distance (two-row dynamic program; tokens are short).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE: [(&str, u8); 3] = [("cc", 0), ("gcc", 1), ("gcci", 2)];

    #[test]
    fn exact_tokens_parse() {
        assert_eq!(parse_enum_flag("model", "gcci", &TABLE), Ok(2));
    }

    #[test]
    fn unknown_tokens_get_a_coded_message_with_options() {
        let err = parse_enum_flag("model", "clang", &TABLE).unwrap_err();
        assert!(err.starts_with("error[E0901]"), "{err}");
        assert!(err.contains("cc|gcc|gcci"), "{err}");
    }

    #[test]
    fn near_misses_get_a_suggestion() {
        let err = parse_enum_flag("model", "gci", &TABLE).unwrap_err();
        assert!(err.contains("did you mean `"), "{err}");
        // A wildly different token gets no suggestion.
        let err = parse_enum_flag("model", "mips-backend", &TABLE).unwrap_err();
        assert!(!err.contains("did you mean"), "{err}");
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("fifo", "fido"), 1);
        assert_eq!(edit_distance("cost", "fifo"), 4);
    }
}
