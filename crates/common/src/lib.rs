//! Shared compiler infrastructure for the Velus-rs workspace.
//!
//! This crate provides the small, dependency-free substrate that every
//! other crate in the reproduction builds on:
//!
//! * [`Ident`] — cheap, copyable, interned identifiers with a global
//!   interner (the usual compiler pattern; comparison and hashing are on a
//!   `u32` symbol, not on string contents),
//! * [`Span`] / [`Loc`] — byte-offset source spans and their resolution to
//!   line/column positions,
//! * [`Diagnostic`] / [`Diagnostics`] — structured compiler errors and
//!   warnings: stable codes ([`codes`]), originating stages
//!   ([`DiagStage`]), primary spans plus labeled notes, caret and JSON
//!   renderings; [`SpanMap`] threads source spans past elaboration so
//!   mid-end failures resolve to real equations, [`ToDiagnostics`]
//!   converts layer error types, and [`FailureReport`] is the flattened
//!   machine-readable form the serving layer ships,
//! * [`IdentMap`] / [`IdentSet`] / [`IdentScratch`] / [`DenseBitSet`] —
//!   the allocation-light identifier collections of the compile hot
//!   path (an Fx-style mixer over the already-interned `u32` keys and
//!   the reusable scratch-buffer pattern for `*_into` traversals),
//! * [`pretty`] — a minimal indentation-aware code writer used by the C
//!   pretty-printer and the IR dumpers.
//!
//! # Examples
//!
//! ```
//! use velus_common::Ident;
//!
//! let a = Ident::new("speed");
//! let b = Ident::new("speed");
//! assert_eq!(a, b);
//! assert_eq!(a.as_str(), "speed");
//! ```

#![warn(missing_docs)]

mod diag;
mod flags;
mod ident;
mod identmap;
pub mod pretty;
mod span;

pub use diag::{
    codes, json_escape, Code, DiagRecord, DiagStage, Diagnostic, Diagnostics, FailureReport, Note,
    RetryClass, Severity, ToDiagnostics,
};
pub use flags::parse_enum_flag;
pub use ident::{FreshGen, Ident};
pub use identmap::{
    ident_map_with_capacity, ident_set_with_capacity, BuildIdentHasher, DenseBitSet, IdentHasher,
    IdentMap, IdentScratch, IdentSet,
};
pub use span::{Loc, NodeSpans, PreMarks, Span, SpanMap, Spanned};

/// Runs `f` on a thread with a `stack_mb`-MiB stack and returns its
/// result.
///
/// The demand-driven dataflow interpreter and the recursive-descent
/// passes recurse proportionally to program depth; deeply nested
/// instance trees (e.g. the industrial-scale workload) need more than
/// the 2 MiB default of spawned threads. The `velus` CLI and the heavy
/// tests wrap their entry points with this.
///
/// # Panics
///
/// Propagates panics from `f` and panics if the thread cannot be
/// spawned.
pub fn with_stack<T: Send>(stack_mb: usize, f: impl FnOnce() -> T + Send) -> T {
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .stack_size(stack_mb * 1024 * 1024)
            .spawn_scoped(scope, f)
            .expect("spawn big-stack worker")
            .join()
            .unwrap_or_else(|e| std::panic::resume_unwind(e))
    })
}
