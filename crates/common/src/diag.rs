//! Structured diagnostics.
//!
//! All compiler passes report failures through [`Diagnostics`], which
//! implements [`std::error::Error`] and renders with source positions when
//! a source text is supplied.

use std::fmt;

use crate::span::{Loc, Span};

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A non-fatal observation (e.g. a possibly uninitialized `pre`).
    Warning,
    /// A fatal elaboration or compilation failure.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// A single compiler message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Fatal or not.
    pub severity: Severity,
    /// Human-readable explanation, lowercase, no trailing period.
    pub message: String,
    /// Source region the message refers to; [`Span::DUMMY`] when unknown.
    pub span: Span,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
        }
    }

    /// Renders the diagnostic against `source` (for line/column info).
    pub fn render(&self, source: &str) -> String {
        if self.span.is_dummy() {
            format!("{}: {}", self.severity, self.message)
        } else {
            let loc = Loc::of_offset(source, self.span.start);
            format!("{loc}: {}: {}", self.severity, self.message)
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.severity, self.message)
    }
}

/// A non-empty collection of diagnostics, used as the error type of every
/// fallible compiler pass.
///
/// # Examples
///
/// ```
/// use velus_common::{Diagnostic, Diagnostics, Span};
///
/// let errs = Diagnostics::from(Diagnostic::error("unknown variable x", Span::new(4, 5)));
/// assert!(errs.has_errors());
/// assert_eq!(errs.to_string(), "error: unknown variable x");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Creates an empty accumulator.
    ///
    /// An empty `Diagnostics` must not be returned as an error; use
    /// [`Diagnostics::into_result`] to convert an accumulator into a
    /// `Result`.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Adds one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Records an error message.
    pub fn error(&mut self, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::error(message, span));
    }

    /// Records a warning message.
    pub fn warning(&mut self, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::warning(message, span));
    }

    /// Whether any diagnostic is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Whether there are no diagnostics at all.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Iterates over the diagnostics in emission order.
    pub fn iter(&self) -> std::slice::Iter<'_, Diagnostic> {
        self.items.iter()
    }

    /// Turns the accumulator into `Ok(value)` when no *errors* were
    /// recorded, and `Err(self)` otherwise. Warnings do not fail the pass.
    pub fn into_result<T>(self, value: T) -> Result<T, Diagnostics> {
        if self.has_errors() {
            Err(self)
        } else {
            Ok(value)
        }
    }

    /// Renders all diagnostics against `source`, one per line.
    pub fn render(&self, source: &str) -> String {
        self.items
            .iter()
            .map(|d| d.render(source))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl From<Diagnostic> for Diagnostics {
    fn from(d: Diagnostic) -> Diagnostics {
        Diagnostics { items: vec![d] }
    }
}

impl Extend<Diagnostic> for Diagnostics {
    fn extend<I: IntoIterator<Item = Diagnostic>>(&mut self, iter: I) {
        self.items.extend(iter);
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostics {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn into_result_fails_only_on_errors() {
        let mut d = Diagnostics::new();
        assert_eq!(d.clone().into_result(1), Ok(1));
        d.warning("just a warning", Span::DUMMY);
        assert_eq!(d.clone().into_result(2), Ok(2));
        d.error("boom", Span::DUMMY);
        assert!(d.into_result(3).is_err());
    }

    #[test]
    fn render_includes_position() {
        let src = "a\nbcd";
        let d = Diagnostic::error("bad thing", Span::new(2, 3));
        assert_eq!(d.render(src), "2:1: error: bad thing");
    }

    #[test]
    fn display_is_nonempty() {
        let mut d = Diagnostics::new();
        d.error("first", Span::DUMMY);
        d.warning("second", Span::DUMMY);
        let s = d.to_string();
        assert!(s.contains("first") && s.contains("second"));
    }
}
