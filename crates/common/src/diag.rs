//! Structured diagnostics.
//!
//! Every fallible pass of the pipeline reports failures through
//! [`Diagnostics`]: a collection of [`Diagnostic`]s, each carrying a
//! **stable code** ([`Code`], `E0xxx` for errors / `W0xxx` for
//! warnings), a [`Severity`], the **originating stage** ([`DiagStage`]),
//! a primary [`Span`] and any number of labeled [`Note`]s.
//!
//! Two renderings are provided:
//!
//! * [`Diagnostics::render_human`] — the caret form, resolving spans to
//!   line/column against the source text;
//! * [`Diagnostics::render_json`] — a hand-rolled (serde-free, offline)
//!   machine-readable form with the same information.
//!
//! Layers whose error types predate this model ([`SemError`],
//! `ObcError`, `ClightError`, …) implement [`ToDiagnostics`]: given a
//! [`SpanMap`](crate::SpanMap) recorded by the elaborator, they resolve
//! their node/variable context back to real source spans.
//!
//! [`SemError`]: trait.ToDiagnostics.html

use std::fmt;

use crate::span::{Loc, Span, SpanMap};

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A non-fatal observation (e.g. a possibly uninitialized `pre`).
    Warning,
    /// A fatal elaboration or compilation failure.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// A stable diagnostic code: `E0xxx` for errors, `W0xxx` for warnings.
///
/// Codes are the machine-readable identity of a failure class: they
/// survive message rewording, key the service's per-code failure
/// counters, and are listed in `docs/ARCHITECTURE.md`. All codes live
/// in the [`codes`] registry; ranges are allocated per layer (see the
/// registry docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Code {
    /// The stable identifier, e.g. `"E0201"`.
    pub id: &'static str,
    /// A short human title, e.g. `"unknown variable"`.
    pub title: &'static str,
}

impl Code {
    /// The severity the code's letter implies (`W…` → warning).
    pub fn severity(self) -> Severity {
        if self.id.starts_with('W') {
            Severity::Warning
        } else {
            Severity::Error
        }
    }

    /// Whether a failure under this code is worth retrying. Most
    /// registered codes describe a property of the *source program* —
    /// resubmitting the same input fails the same way. The exceptions
    /// are environmental: [`codes::E0000`] (an uncategorized internal
    /// failure) and the `E08xx` serving-layer conditions that clear on
    /// their own — overload shedding ([`codes::E0801`]), an expired
    /// deadline ([`codes::E0802`]), a worker that missed its shutdown
    /// ack ([`codes::E0804`]), and a draining service
    /// ([`codes::E0805`]). Quarantine ([`codes::E0803`]) is *not*
    /// transient: the input earned its spot by panicking repeatedly,
    /// and resubmitting it is rejected the same way until the
    /// quarantine entry ages out.
    pub fn retry_class(self) -> RetryClass {
        match self.id {
            "E0000" | "E0801" | "E0802" | "E0804" | "E0805" => RetryClass::Transient,
            _ => RetryClass::Source,
        }
    }
}

/// Whether retrying a failed request can possibly succeed. Surfaced as
/// the `class` label on the service's per-code failure counters so
/// dashboards can separate "bad input" from "bad day".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetryClass {
    /// Deterministic: the failure is inherent to the source program.
    Source,
    /// Environmental: a retry of the identical request may succeed
    /// (worker panic, lost result, uncategorized internal error).
    Transient,
}

impl RetryClass {
    /// The lowercase label value used in metrics (`"source"` /
    /// `"transient"`).
    pub fn label(self) -> &'static str {
        match self {
            RetryClass::Source => "source",
            RetryClass::Transient => "transient",
        }
    }
}

impl fmt::Display for RetryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id)
    }
}

macro_rules! code_registry {
    ($($(#[$m:meta])* $name:ident = ($id:literal, $title:literal);)*) => {
        $($(#[$m])* pub const $name: Code = Code { id: $id, title: $title };)*
        /// Every registered code, in id order (a docs and test aid).
        pub const ALL: &[Code] = &[$($name),*];
    };
}

/// The code registry. Ranges, by layer:
///
/// | range   | layer                                         |
/// |---------|-----------------------------------------------|
/// | `E00xx` | uncategorized / internal                      |
/// | `E01xx` | lexing and parsing                            |
/// | `E02xx` | elaboration: types and structure              |
/// | `E03xx` | elaboration: clocks; normalization            |
/// | `E04xx` | dataflow layer (`SemError`)                   |
/// | `E05xx` | Obc layer (`ObcError`)                        |
/// | `E06xx` | Clight layer (`ClightError`)                  |
/// | `E07xx` | translation validation and analyses           |
/// | `E08xx` | serving layer: admission, deadlines, drain    |
/// | `E09xx` | usage: CLI flags, roots, service requests     |
/// | `W00xx` | warnings (legacy syntactic checks)            |
/// | `W01xx` | lint warnings (`velus-analysis`)              |
///
/// Within `E01xx`, `E0101`–`E0109` belong to lexing/parsing and
/// `E0110`–`E0119` to the semantic lint analyses (guaranteed-trap
/// errors found by `velus-analysis`).
///
/// To add a code: pick the next free id in the owning layer's range,
/// register it here with a short title, construct diagnostics with it,
/// and document it in `docs/ARCHITECTURE.md`.
pub mod codes {
    use super::Code;

    code_registry! {
        /// A failure that predates the coded model (only the generic
        /// [`FromDisplay`](super::FailureReport::from_message) path may
        /// produce it; pipeline failures must use a real code).
        E0000 = ("E0000", "uncategorized failure");

        // -- lexing / parsing ------------------------------------------
        /// An input character no token starts with.
        E0101 = ("E0101", "unexpected character");
        /// A `(* … *)` comment that never closes.
        E0102 = ("E0102", "unterminated comment");
        /// The parser met a token that fits no production.
        E0103 = ("E0103", "syntax error");
        /// A specific token was required and something else was found.
        E0104 = ("E0104", "expected token");
        /// A numeric literal that does not scan.
        E0105 = ("E0105", "malformed literal");

        // -- semantic lint errors (velus-analysis) ---------------------
        /// An integer division or modulo whose divisor is provably
        /// always zero on an always-active equation: the program traps
        /// on every execution.
        E0110 = ("E0110", "guaranteed division by zero");
        /// An integer division provably `MIN / -1` (signed overflow) on
        /// an always-active equation: the program traps on every
        /// execution.
        E0111 = ("E0111", "guaranteed division overflow");

        // -- elaboration: types and structure --------------------------
        /// A variable (or constant) name that is not in scope.
        E0201 = ("E0201", "unknown variable");
        /// Two types that were required to agree do not.
        E0202 = ("E0202", "type mismatch");
        /// A callee that is neither a node nor a type name.
        E0203 = ("E0203", "unknown node or type");
        /// A call with the wrong number of arguments or results.
        E0204 = ("E0204", "wrong arity");
        /// A variable defined by more than one equation.
        E0205 = ("E0205", "duplicate definition");
        /// An output or local with no defining equation.
        E0206 = ("E0206", "undefined variable");
        /// A literal outside its expected type's range.
        E0207 = ("E0207", "literal out of range");
        /// An operator applied at a type it has no meaning for.
        E0208 = ("E0208", "operator inapplicable");
        /// A `fby` initial value that is not a constant expression.
        E0209 = ("E0209", "fby needs a constant");
        /// Two declarations of the same variable in one node.
        E0210 = ("E0210", "duplicate declaration");
        /// Nodes instantiated circularly.
        E0211 = ("E0211", "recursive node");
        /// A node declared with an empty `returns` list.
        E0212 = ("E0212", "node has no outputs");
        /// An equation defining one of the node's inputs.
        E0213 = ("E0213", "input cannot be defined");
        /// A tuple pattern that does not match the callee's outputs.
        E0214 = ("E0214", "tuple pattern mismatch");
        /// A type name the operator interface does not know.
        E0215 = ("E0215", "unknown type");
        /// Two nodes with the same name.
        E0216 = ("E0216", "duplicate node");
        /// Two global constants with the same name.
        E0217 = ("E0217", "duplicate constant");

        // -- elaboration: clocks; normalization ------------------------
        /// An expression or variable on the wrong clock.
        E0301 = ("E0301", "clock mismatch");
        /// A sampling/merge variable that is not boolean.
        E0302 = ("E0302", "sampler not boolean");
        /// A clock annotation naming an unknown variable.
        E0303 = ("E0303", "unknown clock variable");
        /// A node interface variable on a sub-clock.
        E0304 = ("E0304", "interface must be on the base clock");
        /// A tuple pattern binding variables of different clocks.
        E0305 = ("E0305", "tuple pattern mixes clocks");
        /// Normalization met an invariant elaboration should have
        /// established (an internal error, kept loud).
        E0310 = ("E0310", "normalization inconsistency");

        // -- dataflow layer (SemError) ---------------------------------
        /// A read of a variable no equation defines.
        E0401 = ("E0401", "undefined variable");
        /// An instantiation of a node that does not exist.
        E0402 = ("E0402", "unknown node");
        /// The demand-driven evaluation looped.
        E0403 = ("E0403", "causality loop");
        /// An operator outside its domain (e.g. division by zero).
        E0404 = ("E0404", "undefined operation");
        /// A clocking inconsistency surfaced at run time.
        E0405 = ("E0405", "clock inconsistency");
        /// A typing violation surfaced at run time.
        E0406 = ("E0406", "type inconsistency");
        /// Mismatched input arity or length supplied to a node.
        E0407 = ("E0407", "input mismatch");
        /// The equations of a node cannot be scheduled.
        E0408 = ("E0408", "dependency cycle");
        /// A schedule that fails the validated checker.
        E0409 = ("E0409", "invalid schedule");
        /// A structural well-formedness violation.
        E0410 = ("E0410", "malformed program");

        // -- Obc layer -------------------------------------------------
        /// A local read before being assigned.
        E0501 = ("E0501", "unbound variable");
        /// A state read with no memory cell.
        E0502 = ("E0502", "unbound state");
        /// A class name that does not resolve.
        E0503 = ("E0503", "unknown class");
        /// A method name that does not resolve in its class.
        E0504 = ("E0504", "unknown method");
        /// An operator outside its domain.
        E0505 = ("E0505", "undefined operation");
        /// A method call with the wrong arity.
        E0506 = ("E0506", "arity mismatch");
        /// An Obc typing violation.
        E0507 = ("E0507", "type error");
        /// A structural violation in a class.
        E0508 = ("E0508", "malformed class");
        /// `MemCorres` failed between semantic and run-time memories.
        E0509 = ("E0509", "memory correspondence violated");

        // -- Clight layer ----------------------------------------------
        /// An unknown struct in a layout query.
        E0601 = ("E0601", "unknown struct");
        /// An unknown field of a struct.
        E0602 = ("E0602", "unknown field");
        /// An unknown function.
        E0603 = ("E0603", "unknown function");
        /// An out-of-bounds, misaligned or dead-block access.
        E0604 = ("E0604", "memory error");
        /// A read of uninitialized memory or an unset temporary.
        E0605 = ("E0605", "uninitialized read");
        /// An operator outside its domain.
        E0606 = ("E0606", "undefined operation");
        /// A value of the wrong shape.
        E0607 = ("E0607", "value error");
        /// A volatile load past the end of the input prefix.
        E0608 = ("E0608", "input exhausted");
        /// A violated separation assertion.
        E0609 = ("E0609", "separation assertion failed");
        /// A malformed program reached the interpreter or generator.
        E0610 = ("E0610", "malformed program");

        // -- validation / analyses -------------------------------------
        /// A translation-validation mismatch: the stages disagree.
        E0701 = ("E0701", "validation mismatch");
        /// A method violating the `Fusible` invariant.
        E0702 = ("E0702", "fusible invariant violated");
        /// A WCET analysis failure.
        E0703 = ("E0703", "analysis failure");

        // -- serving layer ---------------------------------------------
        /// The service shed the request: its admission queue (or cost
        /// budget) was full. Transient — retry after backing off.
        E0801 = ("E0801", "service overloaded");
        /// The request's deadline expired before compilation finished
        /// (in queue or at a pass boundary). Transient — the same input
        /// can succeed on a less loaded service.
        E0802 = ("E0802", "deadline exceeded");
        /// The input's digest is quarantined after repeated panics;
        /// the request was rejected without compiling. Source-classed:
        /// resubmitting the same input keeps failing.
        E0803 = ("E0803", "input quarantined");
        /// A worker thread failed to acknowledge shutdown within the
        /// configured timeout (it is likely wedged in a job).
        E0804 = ("E0804", "worker shutdown timeout");
        /// The service is draining: admission is closed and in-flight
        /// work is being finished or cancelled.
        E0805 = ("E0805", "service draining");

        // -- usage -----------------------------------------------------
        /// An invalid flag or enumeration token.
        E0901 = ("E0901", "invalid flag value");
        /// A requested root node that does not exist.
        E0902 = ("E0902", "unknown root node");
        /// A program with no nodes at all.
        E0903 = ("E0903", "empty program");
        /// A generic CLI/service usage error.
        E0904 = ("E0904", "usage error");

        // -- warnings --------------------------------------------------
        /// A `pre` that may be read before initialization (the legacy
        /// syntactic check; superseded by the semantic [`W0101`] and no
        /// longer emitted by the front end, but kept registered for
        /// stability of the code space).
        W0001 = ("W0001", "possibly uninitialized pre");

        // -- lint warnings (velus-analysis) ----------------------------
        /// A `pre` whose default value may reach a node output before
        /// any real value does (semantic initialization analysis).
        W0101 = ("W0101", "possibly uninitialized pre");
        /// An integer division or modulo whose divisor *may* be zero
        /// (or `MIN / -1`) for some execution the value-range analysis
        /// cannot exclude.
        W0102 = ("W0102", "possible division trap");
        /// An `if`/`merge` condition that is provably always true or
        /// always false: one branch is dead.
        W0103 = ("W0103", "constant condition");
        /// A variable (and its defining equation) that no node output
        /// transitively reads.
        W0104 = ("W0104", "unused variable");
        /// A node that the root node never (transitively) instantiates.
        W0105 = ("W0105", "unreachable node");
        /// An equation sampled on a clock that is provably never true:
        /// it never produces a value.
        W0106 = ("W0106", "dead under clock");
    }

    /// The codes the `velus-analysis` lint layer can emit, in id order —
    /// the key space of the service's per-code lint counters.
    pub const LINT_CODES: &[Code] = &[E0110, E0111, W0101, W0102, W0103, W0104, W0105, W0106];

    /// The retry class of a failure-counter key. Registered codes map
    /// through [`Code::retry_class`]; keys that are not registered
    /// codes (the service's pseudo-codes for worker panics and lost
    /// results) are environmental, hence transient.
    pub fn retry_class_of(id: &str) -> super::RetryClass {
        match ALL.iter().find(|c| c.id == id) {
            Some(code) => code.retry_class(),
            None => super::RetryClass::Transient,
        }
    }
}

/// The pipeline stage a diagnostic originated from.
///
/// Producers stamp the stage they know ([`Diagnostic::at_stage`]);
/// boundaries that know better than `Unknown` — the `PassManager`, the
/// front-end driver — fill the rest with
/// [`Diagnostics::tag_stage`], so every failure that crosses a public
/// API carries a concrete stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DiagStage {
    /// Not yet attributed (never escapes a pipeline boundary).
    #[default]
    Unknown,
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
    /// Typing and clocking of the surface program.
    Elaborate,
    /// Normalization to N-Lustre.
    Normalize,
    /// Re-checking the elaborator's postconditions.
    Check,
    /// Scheduling plus the validated schedule check.
    Schedule,
    /// Translation to Obc plus its re-checks.
    Translate,
    /// The fusion optimization plus its re-checks.
    Fuse,
    /// Clight generation.
    Generate,
    /// Printing the C translation unit.
    Emit,
    /// WCET/baseline analyses over the generated code.
    Analysis,
    /// The translation-validation harness.
    Validate,
    /// CLI / service request handling.
    Driver,
}

impl DiagStage {
    /// The stable lowercase name (used in renderings and JSON).
    pub fn name(self) -> &'static str {
        match self {
            DiagStage::Unknown => "unknown",
            DiagStage::Lex => "lex",
            DiagStage::Parse => "parse",
            DiagStage::Elaborate => "elaborate",
            DiagStage::Normalize => "normalize",
            DiagStage::Check => "check",
            DiagStage::Schedule => "schedule",
            DiagStage::Translate => "translate",
            DiagStage::Fuse => "fuse",
            DiagStage::Generate => "generate",
            DiagStage::Emit => "emit",
            DiagStage::Analysis => "analysis",
            DiagStage::Validate => "validate",
            DiagStage::Driver => "driver",
        }
    }
}

impl fmt::Display for DiagStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A labeled secondary location attached to a [`Diagnostic`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Note {
    /// The label, lowercase, no trailing period.
    pub message: String,
    /// Where it points; [`Span::DUMMY`] for position-less remarks.
    pub span: Span,
}

/// A single compiler message: code, severity, stage, message, primary
/// span, and labeled notes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Fatal or not (always agrees with `code.severity()`).
    pub severity: Severity,
    /// The stable code.
    pub code: Code,
    /// The pipeline stage the diagnostic originated from.
    pub stage: DiagStage,
    /// Human-readable explanation, lowercase, no trailing period.
    pub message: String,
    /// Source region the message refers to; [`Span::DUMMY`] when unknown.
    pub span: Span,
    /// Secondary labeled locations.
    pub notes: Vec<Note>,
}

impl Diagnostic {
    /// Creates a diagnostic; the severity comes from the code's letter.
    pub fn new(code: Code, message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: code.severity(),
            code,
            stage: DiagStage::Unknown,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Creates an error diagnostic (the code must be an `E…` code).
    pub fn error(code: Code, message: impl Into<String>, span: Span) -> Diagnostic {
        debug_assert_eq!(code.severity(), Severity::Error, "{code} is not an error");
        Diagnostic::new(code, message, span)
    }

    /// Creates a warning diagnostic (the code must be a `W…` code).
    pub fn warning(code: Code, message: impl Into<String>, span: Span) -> Diagnostic {
        debug_assert_eq!(
            code.severity(),
            Severity::Warning,
            "{code} is not a warning"
        );
        Diagnostic::new(code, message, span)
    }

    /// Stamps the originating stage.
    #[must_use]
    pub fn at_stage(mut self, stage: DiagStage) -> Diagnostic {
        self.stage = stage;
        self
    }

    /// Attaches a labeled note.
    #[must_use]
    pub fn with_note(mut self, message: impl Into<String>, span: Span) -> Diagnostic {
        self.notes.push(Note {
            message: message.into(),
            span,
        });
        self
    }

    /// Renders the diagnostic on one line against `source` (line/column
    /// resolved, no caret block — see [`Diagnostic::render_pretty`]).
    pub fn render(&self, source: &str) -> String {
        if self.span.is_dummy() {
            format!("{}[{}]: {}", self.severity, self.code, self.message)
        } else {
            let loc = Loc::of_offset(source, self.span.start);
            format!("{loc}: {}[{}]: {}", self.severity, self.code, self.message)
        }
    }

    /// Renders the caret form against `source`:
    ///
    /// ```text
    /// error[E0201]: unknown variable z (elaborate)
    ///  --> 2:9
    ///   |
    /// 2 | let y = z; tel
    ///   |         ^
    ///   = note: …
    /// ```
    pub fn render_pretty(&self, source: &str) -> String {
        let mut out = format!("{}[{}]: {}", self.severity, self.code, self.message);
        if self.stage != DiagStage::Unknown {
            out.push_str(&format!(" ({})", self.stage));
        }
        out.push('\n');
        if !self.span.is_dummy() {
            let loc = Loc::of_offset(source, self.span.start);
            out.push_str(&format!(" --> {loc}\n"));
            if let Some(line) = source.lines().nth(loc.line as usize - 1) {
                let gutter = loc.line.to_string();
                let pad = " ".repeat(gutter.len());
                out.push_str(&format!("{pad} |\n{gutter} | {line}\n{pad} | "));
                // `loc.col` is a *byte* column; pad and clamp in
                // displayed characters so the caret lands under the
                // right glyph on lines with multi-byte characters.
                let lead = line
                    .get(..(loc.col as usize - 1).min(line.len()))
                    .unwrap_or(line);
                let rest_chars = line[lead.len()..].chars().count();
                let span_chars = source
                    .get(self.span.start as usize..self.span.end as usize)
                    .map_or(1, |s| s.chars().count());
                let width = span_chars.max(1).min(rest_chars.max(1));
                out.push_str(&" ".repeat(lead.chars().count()));
                out.push_str(&"^".repeat(width));
                out.push('\n');
            }
        }
        for note in &self.notes {
            if note.span.is_dummy() {
                out.push_str(&format!("  = note: {}\n", note.message));
            } else {
                let loc = Loc::of_offset(source, note.span.start);
                out.push_str(&format!("  = note: {} (at {loc})\n", note.message));
            }
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

/// A non-empty collection of diagnostics, used as the error type of every
/// fallible compiler pass.
///
/// # Examples
///
/// ```
/// use velus_common::{codes, Diagnostic, Diagnostics, Span};
///
/// let errs = Diagnostics::from(Diagnostic::error(
///     codes::E0201,
///     "unknown variable x",
///     Span::new(4, 5),
/// ));
/// assert!(errs.has_errors());
/// assert_eq!(errs.to_string(), "error[E0201]: unknown variable x");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Creates an empty accumulator.
    ///
    /// An empty `Diagnostics` must not be returned as an error; use
    /// [`Diagnostics::into_result`] to convert an accumulator into a
    /// `Result`.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Adds one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Records an error message.
    pub fn error(&mut self, code: Code, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::error(code, message, span));
    }

    /// Records a warning message.
    pub fn warning(&mut self, code: Code, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::warning(code, message, span));
    }

    /// Whether any diagnostic is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Whether there are no diagnostics at all.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Iterates over the diagnostics in emission order.
    pub fn iter(&self) -> std::slice::Iter<'_, Diagnostic> {
        self.items.iter()
    }

    /// Stamps `stage` on every diagnostic that is still
    /// [`DiagStage::Unknown`] — the boundary-tagging half of the stage
    /// contract (producers that know a finer stage keep it).
    pub fn tag_stage(&mut self, stage: DiagStage) {
        for d in &mut self.items {
            if d.stage == DiagStage::Unknown {
                d.stage = stage;
            }
        }
    }

    /// [`Diagnostics::tag_stage`], by value.
    #[must_use]
    pub fn tagged(mut self, stage: DiagStage) -> Diagnostics {
        self.tag_stage(stage);
        self
    }

    /// Sorts by source position (then code, then message) and removes
    /// exact duplicates — the presentation order of the human and JSON
    /// renderings. The message participates in the key so equal
    /// diagnostics become adjacent (and thus dedupable) even when a
    /// different message lands on the same span.
    pub fn sort_dedup(&mut self) {
        // Dummy spans (start == end == 0) sort first as a group.
        self.items.sort_by(Diagnostics::order);
        self.items.dedup();
    }

    fn order(a: &Diagnostic, b: &Diagnostic) -> std::cmp::Ordering {
        (a.span.start, a.span.end, a.code.id, a.message.as_str()).cmp(&(
            b.span.start,
            b.span.end,
            b.code.id,
            b.message.as_str(),
        ))
    }

    /// The presentation order as borrowed references — what the
    /// renderers iterate, so they never deep-clone every message and
    /// note just to sort.
    fn sorted_view(&self) -> Vec<&Diagnostic> {
        let mut items: Vec<&Diagnostic> = self.items.iter().collect();
        items.sort_by(|a, b| Diagnostics::order(a, b));
        items.dedup_by(|a, b| a == b);
        items
    }

    /// Turns the accumulator into `Ok(value)` when no *errors* were
    /// recorded, and `Err(self)` otherwise. Warnings do not fail the pass.
    pub fn into_result<T>(self, value: T) -> Result<T, Diagnostics> {
        if self.has_errors() {
            Err(self)
        } else {
            Ok(value)
        }
    }

    /// Renders all diagnostics against `source`, one per line.
    pub fn render(&self, source: &str) -> String {
        self.items
            .iter()
            .map(|d| d.render(source))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Renders the caret form of every diagnostic against `source`
    /// (deduplicated, position-ordered).
    pub fn render_human(&self, source: &str) -> String {
        let blocks: Vec<String> = self
            .sorted_view()
            .into_iter()
            .map(|d| d.render_pretty(source))
            .collect();
        blocks.join("\n")
    }

    /// Renders the machine-readable JSON form against `source`
    /// (deduplicated, position-ordered). Hand-rolled — no serde, works
    /// offline; the schema is documented in `docs/ARCHITECTURE.md`.
    pub fn render_json(&self, source: &str) -> String {
        let sorted = self.sorted_view();
        let mut out = String::with_capacity(256);
        out.push_str("{\"diagnostics\":[");
        for (i, d) in sorted.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_diag_json(&mut out, d, source);
        }
        let errors = sorted
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        out.push_str(&format!(
            "],\"errors\":{},\"warnings\":{}}}",
            errors,
            sorted.len() - errors
        ));
        out
    }
}

fn render_span_json(out: &mut String, span: Span, source: &str) {
    // Position-less diagnostics keep line/col 0, the same convention as
    // [`DiagRecord`] — a concrete 1:1 would be a false location.
    let (line, col) = if span.is_dummy() {
        (0, 0)
    } else {
        let loc = Loc::of_offset(source, span.start);
        (loc.line, loc.col)
    };
    out.push_str(&format!(
        "{{\"start\":{},\"end\":{},\"line\":{},\"col\":{}}}",
        span.start, span.end, line, col
    ));
}

fn render_diag_json(out: &mut String, d: &Diagnostic, source: &str) {
    out.push_str(&format!(
        "{{\"code\":\"{}\",\"severity\":\"{}\",\"stage\":\"{}\",\"message\":\"{}\",\"span\":",
        d.code,
        d.severity,
        d.stage,
        json_escape(&d.message)
    ));
    render_span_json(out, d.span, source);
    out.push_str(",\"notes\":[");
    for (i, n) in d.notes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"message\":\"{}\",\"span\":",
            json_escape(&n.message)
        ));
        render_span_json(out, n.span, source);
        out.push('}');
    }
    out.push_str("]}");
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl From<Diagnostic> for Diagnostics {
    fn from(d: Diagnostic) -> Diagnostics {
        Diagnostics { items: vec![d] }
    }
}

impl Extend<Diagnostic> for Diagnostics {
    fn extend<I: IntoIterator<Item = Diagnostic>>(&mut self, iter: I) {
        self.items.extend(iter);
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostics {}

/// Conversion of a layer's error type into structured diagnostics.
///
/// The [`SpanMap`] is the bridge back to the source: errors that carry
/// node/variable context (a scheduling cycle's witness, a typing
/// violation's equation) resolve it to the span the elaborator recorded
/// for the corresponding source equation.
pub trait ToDiagnostics {
    /// Converts the error, resolving node/variable context against
    /// `spans`. The result is non-empty and every diagnostic carries a
    /// stable code; stages may be left [`DiagStage::Unknown`] for the
    /// calling boundary to fill ([`Diagnostics::tag_stage`]).
    fn to_diagnostics(&self, spans: &SpanMap) -> Diagnostics;
}

impl ToDiagnostics for Diagnostics {
    fn to_diagnostics(&self, _spans: &SpanMap) -> Diagnostics {
        self.clone()
    }
}

/// One flattened, self-contained diagnostic record: everything a
/// serving layer needs without retaining the source text (line/column
/// are pre-resolved).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagRecord {
    /// The stable code id (`"E0408"`).
    pub code: &'static str,
    /// Fatal or not.
    pub severity: Severity,
    /// The originating stage's stable name.
    pub stage: &'static str,
    /// The human-readable message.
    pub message: String,
    /// 1-based line of the primary span (0 when position-less).
    pub line: u32,
    /// 1-based column of the primary span (0 when position-less).
    pub col: u32,
}

impl DiagRecord {
    /// Flattens one diagnostic, resolving its span against `source`.
    pub fn of(d: &Diagnostic, source: &str) -> DiagRecord {
        let (line, col) = if d.span.is_dummy() {
            (0, 0)
        } else {
            let loc = Loc::of_offset(source, d.span.start);
            (loc.line, loc.col)
        };
        DiagRecord {
            code: d.code.id,
            severity: d.severity,
            stage: d.stage.name(),
            message: d.message.clone(),
            line,
            col,
        }
    }
}

impl DiagRecord {
    /// Appends the record's JSON object to `out` — the single place the
    /// flattened-record schema is spelled (used by
    /// [`FailureReport::render_json`] and the CLI's report artifact).
    pub fn render_json_into(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"stage\":\"{}\",\"message\":\"{}\",\"line\":{},\"col\":{}}}",
            self.code,
            self.severity,
            self.stage,
            json_escape(&self.message),
            self.line,
            self.col
        ));
    }
}

impl fmt::Display for DiagRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{}:{}: {}[{}]: {}",
                self.line, self.col, self.severity, self.code, self.message
            )
        } else {
            write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
        }
    }
}

/// The structured payload of a failed (or warned-about) compilation:
/// the flattened diagnostic records, self-contained and cheap to ship
/// across the service boundary. This is what `velus-server` stores in
/// `ServiceError::Compile` in place of an opaque `Display` string.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FailureReport {
    /// The records, most significant first (presentation order of the
    /// originating [`Diagnostics`]).
    pub diagnostics: Vec<DiagRecord>,
}

impl FailureReport {
    /// Flattens a set of diagnostics against its source text
    /// (presentation-ordered, deduplicated; borrows — no deep clone).
    pub fn from_diagnostics(diags: &Diagnostics, source: &str) -> FailureReport {
        FailureReport {
            diagnostics: diags
                .sorted_view()
                .into_iter()
                .map(|d| DiagRecord::of(d, source))
                .collect(),
        }
    }

    /// A single-record report for error types that predate the coded
    /// model (code `E0000`); real pipeline failures never take this
    /// path.
    pub fn from_message(message: impl Into<String>) -> FailureReport {
        FailureReport {
            diagnostics: vec![DiagRecord {
                code: codes::E0000.id,
                severity: Severity::Error,
                stage: DiagStage::Unknown.name(),
                message: message.into(),
                line: 0,
                col: 0,
            }],
        }
    }

    /// The distinct codes present, in record order.
    pub fn codes(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::with_capacity(self.diagnostics.len());
        for r in &self.diagnostics {
            if !out.contains(&r.code) {
                out.push(r.code);
            }
        }
        out
    }

    /// The first record's code, if any (the failure's headline).
    pub fn primary_code(&self) -> Option<&'static str> {
        self.diagnostics.first().map(|r| r.code)
    }

    /// Renders the report as a JSON object (same hand-rolled dialect as
    /// [`Diagnostics::render_json`]).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, r) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            r.render_json_into(&mut out);
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for FailureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

impl std::error::Error for FailureReport {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn into_result_fails_only_on_errors() {
        let mut d = Diagnostics::new();
        assert_eq!(d.clone().into_result(1), Ok(1));
        d.warning(codes::W0001, "just a warning", Span::DUMMY);
        assert_eq!(d.clone().into_result(2), Ok(2));
        d.error(codes::E0201, "boom", Span::DUMMY);
        assert!(d.into_result(3).is_err());
    }

    #[test]
    fn render_includes_position_and_code() {
        let src = "a\nbcd";
        let d = Diagnostic::error(codes::E0201, "bad thing", Span::new(2, 3));
        assert_eq!(d.render(src), "2:1: error[E0201]: bad thing");
    }

    #[test]
    fn severity_follows_the_code_letter() {
        assert_eq!(codes::E0408.severity(), Severity::Error);
        assert_eq!(codes::W0001.severity(), Severity::Warning);
        let d = Diagnostic::new(codes::W0001, "w", Span::DUMMY);
        assert_eq!(d.severity, Severity::Warning);
    }

    #[test]
    fn retry_class_separates_source_from_environment() {
        assert_eq!(codes::E0201.retry_class(), RetryClass::Source);
        assert_eq!(codes::E0000.retry_class(), RetryClass::Transient);
        assert_eq!(codes::retry_class_of("E0202"), RetryClass::Source);
        assert_eq!(codes::retry_class_of("panic"), RetryClass::Transient);
        // The serving-layer conditions: environmental except quarantine.
        assert_eq!(codes::E0801.retry_class(), RetryClass::Transient);
        assert_eq!(codes::E0802.retry_class(), RetryClass::Transient);
        assert_eq!(codes::E0803.retry_class(), RetryClass::Source);
        assert_eq!(codes::E0804.retry_class(), RetryClass::Transient);
        assert_eq!(codes::E0805.retry_class(), RetryClass::Transient);
        assert_eq!(RetryClass::Source.label(), "source");
        assert_eq!(RetryClass::Transient.to_string(), "transient");
    }

    #[test]
    fn registry_ids_are_unique_and_well_formed() {
        for (i, a) in codes::ALL.iter().enumerate() {
            assert!(
                a.id.len() == 5 && (a.id.starts_with('E') || a.id.starts_with('W')),
                "{}",
                a.id
            );
            for b in &codes::ALL[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
    }

    #[test]
    fn sort_dedup_orders_by_position_and_removes_duplicates() {
        let mut d = Diagnostics::new();
        d.error(codes::E0202, "later", Span::new(10, 12));
        d.error(codes::E0201, "earlier", Span::new(2, 3));
        d.error(codes::E0202, "later", Span::new(10, 12));
        d.sort_dedup();
        assert_eq!(d.len(), 2);
        assert_eq!(d.iter().next().unwrap().message, "earlier");
    }

    #[test]
    fn tag_stage_fills_only_unknown() {
        let mut d = Diagnostics::new();
        d.push(Diagnostic::error(codes::E0101, "lexed", Span::DUMMY).at_stage(DiagStage::Lex));
        d.error(codes::E0408, "cycle", Span::DUMMY);
        d.tag_stage(DiagStage::Schedule);
        let stages: Vec<DiagStage> = d.iter().map(|x| x.stage).collect();
        assert_eq!(stages, vec![DiagStage::Lex, DiagStage::Schedule]);
    }

    #[test]
    fn pretty_rendering_draws_a_caret() {
        let src = "node f() returns (y: int)\nlet y = z; tel";
        // `z` is at offset 34.
        let z = src.find("z;").unwrap() as u32;
        let d = Diagnostic::error(codes::E0201, "unknown variable z", Span::new(z, z + 1))
            .at_stage(DiagStage::Elaborate);
        let pretty = d.render_pretty(src);
        assert!(pretty.contains("error[E0201]: unknown variable z (elaborate)"));
        assert!(pretty.contains(" --> 2:9"), "{pretty}");
        assert!(pretty.contains("2 | let y = z; tel"), "{pretty}");
        let caret_line = pretty.lines().last().unwrap();
        assert_eq!(caret_line.trim_end(), "  |         ^", "{pretty}");
    }

    #[test]
    fn json_rendering_is_escaped_and_complete() {
        let src = "x";
        let d = Diagnostics::from(
            Diagnostic::error(codes::E0202, "got \"int\"\nexpected bool", Span::new(0, 1))
                .at_stage(DiagStage::Check)
                .with_note("declared here", Span::new(0, 1)),
        );
        let json = d.render_json(src);
        assert!(json.contains("\"code\":\"E0202\""), "{json}");
        assert!(json.contains("\\\"int\\\"\\nexpected"), "{json}");
        assert!(json.contains("\"stage\":\"check\""), "{json}");
        assert!(
            json.contains("\"notes\":[{\"message\":\"declared here\""),
            "{json}"
        );
        assert!(json.ends_with("\"errors\":1,\"warnings\":0}"), "{json}");
    }

    #[test]
    fn json_keeps_dummy_spans_position_less() {
        // Same convention as DiagRecord: line/col 0, never a false 1:1.
        let d = Diagnostics::from(Diagnostic::error(
            codes::E0902,
            "no node named g",
            Span::DUMMY,
        ));
        let json = d.render_json("node f() returns (y: int) let y = 0; tel");
        assert!(
            json.contains("\"span\":{\"start\":0,\"end\":0,\"line\":0,\"col\":0}"),
            "{json}"
        );
    }

    #[test]
    fn pretty_caret_lands_on_multibyte_lines() {
        // `é` is two bytes: the caret must still sit under the marked
        // character, padding in displayed characters.
        let src = "-- é é
let y = é;";
        let at = src.rfind('é').unwrap() as u32;
        let d = Diagnostic::error(
            codes::E0101,
            "unexpected character `é`",
            Span::new(at, at + 2),
        );
        let pretty = d.render_pretty(src);
        let caret_line = pretty.lines().last().unwrap();
        assert_eq!(caret_line, "  |         ^", "{pretty}");
    }

    #[test]
    fn failure_report_flattens_and_counts_codes() {
        let src = "a = b;";
        let mut diags = Diagnostics::new();
        diags.error(codes::E0408, "dependency cycle in node f", Span::new(0, 1));
        diags.error(codes::E0408, "dependency cycle in node g", Span::new(4, 5));
        let report = FailureReport::from_diagnostics(&diags.tagged(DiagStage::Schedule), src);
        assert_eq!(report.diagnostics.len(), 2);
        assert_eq!(report.primary_code(), Some("E0408"));
        assert_eq!(report.codes(), vec!["E0408"]);
        assert_eq!(report.diagnostics[0].line, 1);
        assert!(report.to_string().contains("error[E0408]"));
        assert!(report.render_json().starts_with("{\"diagnostics\":["));
    }

    #[test]
    fn display_is_nonempty() {
        let mut d = Diagnostics::new();
        d.error(codes::E0201, "first", Span::DUMMY);
        d.warning(codes::W0001, "second", Span::DUMMY);
        let s = d.to_string();
        assert!(s.contains("first") && s.contains("second"));
    }
}
