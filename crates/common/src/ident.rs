//! Interned identifiers.
//!
//! Identifiers occur everywhere in the compiler — in every AST, in every
//! environment, as keys of every map. Interning makes them `Copy`,
//! comparable and hashable in O(1), which keeps the IRs compact and the
//! interpreters fast. Interned strings are leaked; a compiler's identifier
//! population is bounded by its input, so this is the standard trade-off.
//!
//! # Concurrency
//!
//! The interner is shared by every thread of the batch compilation
//! service, so its locking is on the hot path of parallel compilation.
//! Two mechanisms keep it off the profile:
//!
//! * **Sharding.** The intern table is striped into [`NUM_SHARDS`]
//!   independent shards selected by a hash of the name; two workers
//!   interning different names almost never contend on the same lock.
//!   An [`Ident`] remains a `u32`: the shard number lives in the high
//!   [`SHARD_BITS`] bits and the within-shard index in the low bits.
//! * **Lock-free reads.** [`Ident::as_str`] never takes a lock. Each
//!   shard resolves indices through an append-only symbol table built
//!   from [`OnceLock`] cells (a fixed spine of geometrically growing
//!   buckets), so a read is a handful of atomic loads — it cannot block
//!   behind a writer, and it cannot deadlock against a thread that is
//!   interning.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Number of bits of an [`Ident`] that encode the shard.
const SHARD_BITS: u32 = 4;
/// Number of intern shards (16): enough to make same-shard collisions
/// between a handful of worker threads rare, small enough that the
/// static footprint stays trivial.
const NUM_SHARDS: usize = 1 << SHARD_BITS;
/// Bits left for the within-shard index.
const INDEX_BITS: u32 = 32 - SHARD_BITS;
/// Largest within-shard index (≈268M identifiers per shard).
const MAX_INDEX: u32 = (1 << INDEX_BITS) - 1;

/// Entries in the first symbol-table bucket; bucket `b` holds
/// `FIRST_BUCKET << b` entries, so the spine below covers the full
/// index space with [`NUM_BUCKETS`] buckets.
const FIRST_BUCKET: usize = 1 << 10;
const NUM_BUCKETS: usize = (INDEX_BITS - 10 + 1) as usize;

/// An interned identifier.
///
/// Two `Ident`s are equal iff they were created from equal strings.
/// `Ord` follows the underlying string order so that sorted dumps are
/// deterministic and human-readable.
///
/// # Examples
///
/// ```
/// use velus_common::Ident;
///
/// let x = Ident::new("x");
/// assert_eq!(x.to_string(), "x");
/// assert!(Ident::new("a") < Ident::new("b"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ident(u32);

/// The append-only symbol table of one shard: a fixed spine of lazily
/// allocated buckets whose sizes double, each slot written exactly once.
///
/// `OnceLock` gives the required publication for free: `set` is a
/// release store, `get` an acquire load, so a reader that obtained an
/// index (by any means — the index only exists because some `intern`
/// call returned it) observes the fully written string. Reads are
/// lock-free: two `OnceLock::get`s and a slice index.
struct SymbolTable {
    buckets: [OnceLock<Box<[OnceLock<&'static str>]>>; NUM_BUCKETS],
}

/// Splits a flat index into its (bucket, offset) coordinates. Bucket
/// `b` covers indices `[FIRST_BUCKET·(2^b − 1), FIRST_BUCKET·(2^{b+1} − 1))`.
fn locate(index: usize) -> (usize, usize) {
    let n = index / FIRST_BUCKET + 1;
    let bucket = (usize::BITS - 1 - n.leading_zeros()) as usize;
    let start = FIRST_BUCKET * ((1 << bucket) - 1);
    (bucket, index - start)
}

impl SymbolTable {
    fn new() -> SymbolTable {
        SymbolTable {
            buckets: std::array::from_fn(|_| OnceLock::new()),
        }
    }

    /// Reads slot `index`. Lock-free; panics if the slot was never
    /// published (impossible for an index taken from a real `Ident`).
    fn get(&self, index: usize) -> &'static str {
        let (bucket, offset) = locate(index);
        let slots = self.buckets[bucket].get().expect("symbol bucket exists");
        slots[offset].get().expect("symbol slot published")
    }

    /// Publishes `name` at slot `index`. Called with the shard's intern
    /// lock held, so slots are filled in order and exactly once.
    fn publish(&self, index: usize, name: &'static str) {
        let (bucket, offset) = locate(index);
        let slots = self.buckets[bucket].get_or_init(|| {
            (0..FIRST_BUCKET << bucket)
                .map(|_| OnceLock::new())
                .collect()
        });
        slots[offset]
            .set(name)
            .expect("symbol slot written exactly once");
    }
}

/// One intern shard: the name→index map behind a mutex (writers only)
/// and the index→name table readable without any lock.
struct Shard {
    intern: Mutex<HashMap<&'static str, u32>>,
    symbols: SymbolTable,
}

fn shards() -> &'static [Shard; NUM_SHARDS] {
    static SHARDS: OnceLock<[Shard; NUM_SHARDS]> = OnceLock::new();
    SHARDS.get_or_init(|| {
        std::array::from_fn(|_| Shard {
            intern: Mutex::new(HashMap::new()),
            symbols: SymbolTable::new(),
        })
    })
}

/// FNV-1a over the name selects the shard; deterministic, so equal
/// names always land in the same shard and interning stays idempotent.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // The multiply mixes poorly into the low bits; take high ones.
    (h >> (64 - SHARD_BITS)) as usize
}

impl Ident {
    /// Interns `name` and returns its identifier.
    pub fn new(name: &str) -> Ident {
        let shard_index = shard_of(name);
        let shard = &shards()[shard_index];
        let mut intern = shard.intern.lock().expect("identifier interner poisoned");
        if let Some(&index) = intern.get(name) {
            return Ident::encode(shard_index, index);
        }
        let index = u32::try_from(intern.len()).expect("interner overflow");
        assert!(index <= MAX_INDEX, "interner shard overflow");
        let stored: &'static str = Box::leak(name.to_owned().into_boxed_str());
        shard.symbols.publish(index as usize, stored);
        intern.insert(stored, index);
        Ident::encode(shard_index, index)
    }

    fn encode(shard: usize, index: u32) -> Ident {
        Ident(((shard as u32) << INDEX_BITS) | index)
    }

    /// Returns the identifier's string contents.
    ///
    /// Lock-free: resolves through the shard's append-only symbol table
    /// with atomic loads only, so it never blocks behind (or deadlocks
    /// against) a thread that is interning.
    pub fn as_str(self) -> &'static str {
        let shard = &shards()[(self.0 >> INDEX_BITS) as usize];
        shard.symbols.get((self.0 & MAX_INDEX) as usize)
    }

    /// Builds the derived identifier `self` + `suffix`.
    ///
    /// Used by compilation passes that manufacture names from source names,
    /// e.g. `tracker` ↦ `tracker$step`.
    pub fn suffixed(self, suffix: &str) -> Ident {
        Ident::new(&format!("{}{}", self.as_str(), suffix))
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ident({})", self.as_str())
    }
}

impl PartialOrd for Ident {
    fn partial_cmp(&self, other: &Ident) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ident {
    fn cmp(&self, other: &Ident) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Ident {
        Ident::new(s)
    }
}

/// A generator of fresh identifiers that cannot collide with source names.
///
/// Freshness is obtained by embedding a `$` (which the Lustre lexer rejects
/// in source identifiers) and a monotone counter.
///
/// # Examples
///
/// ```
/// use velus_common::FreshGen;
///
/// let mut gen = FreshGen::new("norm");
/// let a = gen.fresh("v");
/// let b = gen.fresh("v");
/// assert_ne!(a, b);
/// assert!(a.as_str().starts_with("v$norm"));
/// ```
#[derive(Debug, Clone)]
pub struct FreshGen {
    tag: String,
    next: u32,
}

impl FreshGen {
    /// Creates a generator whose names embed the pass tag `tag`.
    pub fn new(tag: &str) -> FreshGen {
        FreshGen {
            tag: tag.to_owned(),
            next: 0,
        }
    }

    /// Returns a fresh identifier with the given human-readable `prefix`.
    pub fn fresh(&mut self, prefix: &str) -> Ident {
        let n = self.next;
        self.next += 1;
        Ident::new(&format!("{prefix}${}{n}", self.tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        assert_eq!(Ident::new("foo"), Ident::new("foo"));
        assert_ne!(Ident::new("foo"), Ident::new("bar"));
    }

    #[test]
    fn as_str_round_trips() {
        for name in ["a", "tracker", "state$0", "日本語"] {
            assert_eq!(Ident::new(name).as_str(), name);
        }
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let i = Ident::new("n");
        assert_eq!(format!("{i}"), "n");
        assert_eq!(format!("{i:?}"), "Ident(n)");
    }

    #[test]
    fn order_follows_strings() {
        let mut v = vec![Ident::new("z"), Ident::new("a"), Ident::new("m")];
        v.sort();
        let names: Vec<_> = v.into_iter().map(|i| i.as_str()).collect();
        assert_eq!(names, ["a", "m", "z"]);
    }

    #[test]
    fn fresh_names_are_distinct_and_tagged() {
        let mut g = FreshGen::new("t");
        let names: Vec<_> = (0..100).map(|_| g.fresh("x")).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert!(names.iter().all(|n| n.as_str().contains('$')));
    }

    #[test]
    fn suffixed_builds_derived_names() {
        assert_eq!(Ident::new("f").suffixed("$step").as_str(), "f$step");
    }

    #[test]
    fn locate_covers_the_index_space_contiguously() {
        let mut expected_start = 0usize;
        for bucket in 0..NUM_BUCKETS {
            let size = FIRST_BUCKET << bucket;
            assert_eq!(locate(expected_start), (bucket, 0));
            assert_eq!(locate(expected_start + size - 1), (bucket, size - 1));
            expected_start += size;
        }
        // The spine reaches past the densest shard the encoding allows.
        assert!(expected_start > MAX_INDEX as usize);
    }

    #[test]
    fn idents_from_distinct_shards_stay_distinct() {
        // Enough names that several shards are certainly populated; every
        // round-trip must still be exact and idempotent.
        let names: Vec<String> = (0..512).map(|k| format!("shard_probe_{k}")).collect();
        let idents: Vec<Ident> = names.iter().map(|n| Ident::new(n)).collect();
        for (name, id) in names.iter().zip(&idents) {
            assert_eq!(id.as_str(), name.as_str());
            assert_eq!(Ident::new(name), *id);
        }
        let mut dedup = idents.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), idents.len());
    }
}
