//! Interned identifiers.
//!
//! Identifiers occur everywhere in the compiler — in every AST, in every
//! environment, as keys of every map. Interning makes them `Copy`,
//! comparable and hashable in O(1), which keeps the IRs compact and the
//! interpreters fast. Interned strings are leaked; a compiler's identifier
//! population is bounded by its input, so this is the standard trade-off.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned identifier.
///
/// Two `Ident`s are equal iff they were created from equal strings.
/// `Ord` follows the underlying string order so that sorted dumps are
/// deterministic and human-readable.
///
/// # Examples
///
/// ```
/// use velus_common::Ident;
///
/// let x = Ident::new("x");
/// assert_eq!(x.to_string(), "x");
/// assert!(Ident::new("a") < Ident::new("b"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ident(u32);

struct Interner {
    names: Vec<&'static str>,
    table: HashMap<&'static str, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            table: HashMap::new(),
        })
    })
}

impl Ident {
    /// Interns `name` and returns its identifier.
    pub fn new(name: &str) -> Ident {
        let mut i = interner().lock().expect("identifier interner poisoned");
        if let Some(&sym) = i.table.get(name) {
            return Ident(sym);
        }
        let sym = u32::try_from(i.names.len()).expect("interner overflow");
        let stored: &'static str = Box::leak(name.to_owned().into_boxed_str());
        i.names.push(stored);
        i.table.insert(stored, sym);
        Ident(sym)
    }

    /// Returns the identifier's string contents.
    pub fn as_str(self) -> &'static str {
        let i = interner().lock().expect("identifier interner poisoned");
        i.names[self.0 as usize]
    }

    /// Builds the derived identifier `self` + `suffix`.
    ///
    /// Used by compilation passes that manufacture names from source names,
    /// e.g. `tracker` ↦ `tracker$step`.
    pub fn suffixed(self, suffix: &str) -> Ident {
        Ident::new(&format!("{}{}", self.as_str(), suffix))
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ident({})", self.as_str())
    }
}

impl PartialOrd for Ident {
    fn partial_cmp(&self, other: &Ident) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ident {
    fn cmp(&self, other: &Ident) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Ident {
        Ident::new(s)
    }
}

/// A generator of fresh identifiers that cannot collide with source names.
///
/// Freshness is obtained by embedding a `$` (which the Lustre lexer rejects
/// in source identifiers) and a monotone counter.
///
/// # Examples
///
/// ```
/// use velus_common::FreshGen;
///
/// let mut gen = FreshGen::new("norm");
/// let a = gen.fresh("v");
/// let b = gen.fresh("v");
/// assert_ne!(a, b);
/// assert!(a.as_str().starts_with("v$norm"));
/// ```
#[derive(Debug, Clone)]
pub struct FreshGen {
    tag: String,
    next: u32,
}

impl FreshGen {
    /// Creates a generator whose names embed the pass tag `tag`.
    pub fn new(tag: &str) -> FreshGen {
        FreshGen {
            tag: tag.to_owned(),
            next: 0,
        }
    }

    /// Returns a fresh identifier with the given human-readable `prefix`.
    pub fn fresh(&mut self, prefix: &str) -> Ident {
        let n = self.next;
        self.next += 1;
        Ident::new(&format!("{prefix}${}{n}", self.tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        assert_eq!(Ident::new("foo"), Ident::new("foo"));
        assert_ne!(Ident::new("foo"), Ident::new("bar"));
    }

    #[test]
    fn as_str_round_trips() {
        for name in ["a", "tracker", "state$0", "日本語"] {
            assert_eq!(Ident::new(name).as_str(), name);
        }
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let i = Ident::new("n");
        assert_eq!(format!("{i}"), "n");
        assert_eq!(format!("{i:?}"), "Ident(n)");
    }

    #[test]
    fn order_follows_strings() {
        let mut v = vec![Ident::new("z"), Ident::new("a"), Ident::new("m")];
        v.sort();
        let names: Vec<_> = v.into_iter().map(|i| i.as_str()).collect();
        assert_eq!(names, ["a", "m", "z"]);
    }

    #[test]
    fn fresh_names_are_distinct_and_tagged() {
        let mut g = FreshGen::new("t");
        let names: Vec<_> = (0..100).map(|_| g.fresh("x")).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert!(names.iter().all(|n| n.as_str().contains('$')));
    }

    #[test]
    fn suffixed_builds_derived_names() {
        assert_eq!(Ident::new("f").suffixed("$step").as_str(), "f$step");
    }
}
