//! Allocation-light identifier collections for the compile hot path.
//!
//! Every pass keeps per-node environments keyed by [`Ident`]. An `Ident`
//! is already an interned `u32`, so hashing it with the standard
//! library's default SipHash — designed to resist hash-flooding from
//! untrusted keys — is pure overhead: the interner has already
//! collapsed the untrusted strings into small dense integers. The
//! aliases here swap SipHash for an FxHash-style multiply-rotate mixer
//! (one rotate, one xor, one multiply per word), which profiles
//! measurably faster across `elab`, the checkers, scheduling and
//! translation while keeping the exact `HashMap`/`HashSet` API.
//!
//! The second half of the hot-path convention lives next to the IRs:
//! traversal APIs are provided in `*_into(&mut Vec<Ident>)` form so one
//! scratch buffer ([`IdentScratch`]) can serve a whole pass instead of
//! allocating a fresh `Vec` per equation. [`DenseBitSet`] is the
//! matching allocation-light *seen* set for passes that work over small
//! dense index spaces (equation numbers, not interned symbols).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

use crate::Ident;

/// The Fx multiply constant (the golden-ratio-derived mixer used by
/// rustc's FxHash). Quality is plenty for interner-dense keys.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style hasher for keys that are already small dense
/// integers (interned [`Ident`]s). Not hash-flooding resistant — do not
/// use it for maps keyed by untrusted byte strings.
#[derive(Default, Clone)]
pub struct IdentHasher(u64);

impl IdentHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for IdentHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(u64::from(b));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// The [`std::hash::BuildHasher`] for [`IdentMap`]/[`IdentSet`].
pub type BuildIdentHasher = BuildHasherDefault<IdentHasher>;

/// A `HashMap` keyed by interned identifiers with the cheap Fx mixer.
///
/// Drop-in for `HashMap<Ident, T>`: construct with
/// [`IdentMap::default`] or [`ident_map_with_capacity`].
pub type IdentMap<T> = HashMap<Ident, T, BuildIdentHasher>;

/// A `HashSet` of interned identifiers with the cheap Fx mixer.
pub type IdentSet = HashSet<Ident, BuildIdentHasher>;

/// An empty [`IdentMap`] with room for `capacity` entries.
pub fn ident_map_with_capacity<T>(capacity: usize) -> IdentMap<T> {
    HashMap::with_capacity_and_hasher(capacity, BuildIdentHasher::default())
}

/// An empty [`IdentSet`] with room for `capacity` entries.
pub fn ident_set_with_capacity(capacity: usize) -> IdentSet {
    HashSet::with_capacity_and_hasher(capacity, BuildIdentHasher::default())
}

/// A reusable scratch buffer for the `*_into` traversal APIs
/// (`Equation::reads_into`, `Expr::free_vars_into`, `Clock::vars_into`).
///
/// A pass hoists one `IdentScratch` and calls [`IdentScratch::start`]
/// per equation: the buffer is cleared but its capacity is retained, so
/// a whole pass performs O(1) traversal allocations instead of one per
/// equation.
///
/// # Examples
///
/// ```
/// use velus_common::{Ident, IdentScratch};
///
/// let mut scratch = IdentScratch::new();
/// for _ in 0..3 {
///     let buf = scratch.start();
///     buf.push(Ident::new("x"));
///     assert_eq!(buf.len(), 1);
/// }
/// ```
#[derive(Debug, Default)]
pub struct IdentScratch {
    buf: Vec<Ident>,
}

impl IdentScratch {
    /// An empty scratch buffer.
    pub fn new() -> IdentScratch {
        IdentScratch::default()
    }

    /// Clears the buffer (keeping its capacity) and hands it out for
    /// one traversal.
    #[inline]
    pub fn start(&mut self) -> &mut Vec<Ident> {
        self.buf.clear();
        &mut self.buf
    }
}

/// A reusable bitset over a small dense index space (equation indices,
/// graph nodes — not interned symbols, whose index space is global).
///
/// [`DenseBitSet::reset`] reuses the backing words across rounds, so a
/// pass that needs a fresh *seen* set per node touches the allocator
/// only when a node is larger than every previous one.
///
/// # Examples
///
/// ```
/// use velus_common::DenseBitSet;
///
/// let mut seen = DenseBitSet::new();
/// seen.reset(100);
/// assert!(seen.insert(42));
/// assert!(!seen.insert(42));
/// assert!(seen.contains(42));
/// ```
#[derive(Debug, Default, Clone)]
pub struct DenseBitSet {
    words: Vec<u64>,
}

impl DenseBitSet {
    /// An empty bitset (call [`DenseBitSet::reset`] before use).
    pub fn new() -> DenseBitSet {
        DenseBitSet::default()
    }

    /// Clears the set and ensures capacity for indices `0..len`.
    pub fn reset(&mut self, len: usize) {
        let words = len.div_ceil(64);
        self.words.clear();
        self.words.resize(words, 0);
    }

    /// Whether `i` is in the set. Indices beyond the reset length are
    /// simply absent.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Inserts `i`, returning `true` if it was not yet present.
    ///
    /// # Panics
    ///
    /// Panics if `i` is beyond the length given to the last `reset`.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        let fresh = *w & bit == 0;
        *w |= bit;
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_map_round_trips() {
        let mut m: IdentMap<i32> = IdentMap::default();
        for k in 0..200 {
            m.insert(Ident::new(&format!("imap_{k}")), k);
        }
        for k in 0..200 {
            assert_eq!(m.get(&Ident::new(&format!("imap_{k}"))), Some(&k));
        }
        assert_eq!(m.len(), 200);
    }

    #[test]
    fn ident_set_deduplicates() {
        let mut s: IdentSet = IdentSet::default();
        assert!(s.insert(Ident::new("dup")));
        assert!(!s.insert(Ident::new("dup")));
        assert!(s.contains(&Ident::new("dup")));
    }

    #[test]
    fn capacity_constructors() {
        let m: IdentMap<u8> = ident_map_with_capacity(32);
        assert!(m.capacity() >= 32);
        let s: IdentSet = ident_set_with_capacity(32);
        assert!(s.capacity() >= 32);
    }

    #[test]
    fn scratch_reuses_capacity() {
        let mut scratch = IdentScratch::new();
        scratch
            .start()
            .extend((0..64).map(|k| Ident::new(&format!("s{k}"))));
        let cap = scratch.buf.capacity();
        let buf = scratch.start();
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn bitset_reset_clears() {
        let mut b = DenseBitSet::new();
        b.reset(130);
        assert!(b.insert(129));
        b.reset(130);
        assert!(!b.contains(129));
        assert!(b.insert(129));
        assert!(!b.contains(4096));
    }

    #[test]
    fn hasher_distributes_dense_keys() {
        // Sanity: consecutive u32 keys do not collapse to one bucket
        // pattern (catches a broken mixer).
        use std::hash::BuildHasher;
        let bh = BuildIdentHasher::default();
        let mut lows = HashSet::new();
        for n in 0u32..256 {
            lows.insert(bh.hash_one(n) & 0xff);
        }
        assert!(lows.len() > 128, "only {} distinct low bytes", lows.len());
    }
}
