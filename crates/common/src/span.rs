//! Source locations.

use std::fmt;

/// A half-open byte range `[start, end)` into a source file.
///
/// # Examples
///
/// ```
/// use velus_common::Span;
///
/// let s = Span::new(3, 7);
/// assert_eq!(s.len(), 4);
/// assert!(Span::DUMMY.is_dummy());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// The span used for synthesized nodes with no source position.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// Creates a span from byte offsets.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: u32, end: u32) -> Span {
        assert!(end >= start, "span end before start");
        Span { start, end }
    }

    /// Length of the span in bytes.
    pub fn len(self) -> u32 {
        self.end - self.start
    }

    /// Whether the span is empty.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Whether this is the dummy (no-position) span.
    pub fn is_dummy(self) -> bool {
        self == Span::DUMMY
    }

    /// Smallest span covering both `self` and `other`.
    ///
    /// A dummy operand is absorbed by the other span.
    pub fn merge(self, other: Span) -> Span {
        if self.is_dummy() {
            return other;
        }
        if other.is_dummy() {
            return self;
        }
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// A 1-based line/column position resolved from a [`Span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Loc {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl Loc {
    /// Resolves a byte `offset` within `source` to a line/column position.
    pub fn of_offset(source: &str, offset: u32) -> Loc {
        let upto = &source[..(offset as usize).min(source.len())];
        let line = upto.bytes().filter(|&b| b == b'\n').count() as u32 + 1;
        let col = match upto.rfind('\n') {
            Some(i) => (upto.len() - i) as u32,
            None => upto.len() as u32 + 1,
        };
        Loc { line, col }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A value paired with the source span it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Spanned<T> {
    /// The wrapped value.
    pub node: T,
    /// Where it appeared in the source.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Pairs `node` with `span`.
    pub fn new(node: T, span: Span) -> Spanned<T> {
        Spanned { node, span }
    }

    /// Maps the wrapped value, keeping the span.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Spanned<U> {
        Spanned {
            node: f(self.node),
            span: self.span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.merge(b), Span::new(2, 9));
        assert_eq!(b.merge(a), Span::new(2, 9));
    }

    #[test]
    fn merge_absorbs_dummy() {
        let a = Span::new(2, 5);
        assert_eq!(a.merge(Span::DUMMY), a);
        assert_eq!(Span::DUMMY.merge(a), a);
    }

    #[test]
    fn loc_resolution() {
        let src = "node f()\nreturns ();\nlet tel";
        assert_eq!(Loc::of_offset(src, 0), Loc { line: 1, col: 1 });
        assert_eq!(Loc::of_offset(src, 5), Loc { line: 1, col: 6 });
        assert_eq!(Loc::of_offset(src, 9), Loc { line: 2, col: 1 });
        assert_eq!(Loc::of_offset(src, 10), Loc { line: 2, col: 2 });
    }

    #[test]
    fn loc_clamps_past_end() {
        let l = Loc::of_offset("ab", 100);
        assert_eq!(l.line, 1);
    }

    #[test]
    #[should_panic(expected = "span end before start")]
    fn invalid_span_panics() {
        let _ = Span::new(5, 2);
    }
}
