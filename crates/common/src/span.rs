//! Source locations.

use std::fmt;

/// A half-open byte range `[start, end)` into a source file.
///
/// # Examples
///
/// ```
/// use velus_common::Span;
///
/// let s = Span::new(3, 7);
/// assert_eq!(s.len(), 4);
/// assert!(Span::DUMMY.is_dummy());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// The span used for synthesized nodes with no source position.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// Creates a span from byte offsets.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: u32, end: u32) -> Span {
        assert!(end >= start, "span end before start");
        Span { start, end }
    }

    /// Length of the span in bytes.
    pub fn len(self) -> u32 {
        self.end - self.start
    }

    /// Whether the span is empty.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Whether this is the dummy (no-position) span.
    pub fn is_dummy(self) -> bool {
        self == Span::DUMMY
    }

    /// Smallest span covering both `self` and `other`.
    ///
    /// A dummy operand is absorbed by the other span.
    pub fn merge(self, other: Span) -> Span {
        if self.is_dummy() {
            return other;
        }
        if other.is_dummy() {
            return self;
        }
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// A 1-based line/column position resolved from a [`Span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Loc {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl Loc {
    /// Resolves a byte `offset` within `source` to a line/column position.
    pub fn of_offset(source: &str, offset: u32) -> Loc {
        let upto = &source[..(offset as usize).min(source.len())];
        let line = upto.bytes().filter(|&b| b == b'\n').count() as u32 + 1;
        let col = match upto.rfind('\n') {
            Some(i) => (upto.len() - i) as u32,
            None => upto.len() as u32 + 1,
        };
        Loc { line, col }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A value paired with the source span it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Spanned<T> {
    /// The wrapped value.
    pub node: T,
    /// Where it appeared in the source.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Pairs `node` with `span`.
    pub fn new(node: T, span: Span) -> Spanned<T> {
        Spanned { node, span }
    }

    /// Maps the wrapped value, keeping the span.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Spanned<U> {
        Spanned {
            node: f(self.node),
            span: self.span,
        }
    }
}

/// Source spans of one elaborated node: the header plus one span per
/// defined variable (each normalized equation defines at least one
/// variable, so keying by defined variable survives scheduling's
/// reordering and normalization's fresh equations alike).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeSpans {
    /// The node header's span.
    pub span: Span,
    /// Defined variable → span of the source equation it came from
    /// (fresh variables inherit the span of the equation they were
    /// extracted from).
    pub eqs: crate::IdentMap<Span>,
}

/// The elaborator's record of where every node and equation came from.
///
/// This is what lets mid-end failures — a scheduling cycle, a typing
/// violation found by a re-check, a translation-validation mismatch —
/// point back at real source equations long after the surface AST (and
/// its spans) are gone. The map rides alongside the N-Lustre program
/// through scheduling and beyond; lookups are by node and defined
/// variable, both of which every later IR still knows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanMap {
    nodes: crate::IdentMap<NodeSpans>,
}

impl SpanMap {
    /// An empty map (every lookup yields [`Span::DUMMY`]).
    pub fn new() -> SpanMap {
        SpanMap::default()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records a node header span.
    pub fn record_node(&mut self, node: crate::Ident, span: Span) {
        self.nodes.entry(node).or_default().span = span;
    }

    /// Inserts a whole node's spans at once (the normalizer builds the
    /// per-node map with the right capacity and hands it over — cheaper
    /// than growing through `record_eq` on the compile hot path).
    pub fn insert_node(&mut self, node: crate::Ident, spans: NodeSpans) {
        self.nodes.insert(node, spans);
    }

    /// Records the source span of the equation defining `var` in `node`.
    pub fn record_eq(&mut self, node: crate::Ident, var: crate::Ident, span: Span) {
        self.nodes.entry(node).or_default().eqs.insert(var, span);
    }

    /// The header span of `node`; [`Span::DUMMY`] when unrecorded.
    pub fn node_span(&self, node: crate::Ident) -> Span {
        self.nodes.get(&node).map_or(Span::DUMMY, |n| n.span)
    }

    /// The span of the equation defining `var` in `node`, falling back
    /// to the node header, then to [`Span::DUMMY`].
    pub fn eq_span(&self, node: crate::Ident, var: crate::Ident) -> Span {
        match self.nodes.get(&node) {
            Some(n) => n.eqs.get(&var).copied().unwrap_or(n.span),
            None => Span::DUMMY,
        }
    }

    /// The span of the equation defining `var`, searched in `node` when
    /// given, otherwise across every recorded node (first hit wins —
    /// good enough for diagnostics on errors that lost their node
    /// context).
    pub fn var_span(&self, node: Option<crate::Ident>, var: crate::Ident) -> Span {
        match node {
            Some(n) => self.eq_span(n, var),
            None => self
                .nodes
                .values()
                .find_map(|n| n.eqs.get(&var).copied())
                .unwrap_or(Span::DUMMY),
        }
    }
}

/// The normalizer's record of which memory (`fby`) variables were
/// introduced by desugaring a surface `pre` — as opposed to an explicit
/// `c fby e`, whose initial value the programmer chose.
///
/// The semantic initialization analysis (`velus-analysis`) treats only
/// these memories as suspect at the first instant: an explicit `fby`
/// initializer is a real value, while a `pre`'s synthesized default may
/// leak to an output before any real value does. Each mark keeps the
/// span of the originating `pre` token so the warning points at the
/// source construct, not at a compiler-generated equation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PreMarks {
    nodes: crate::IdentMap<crate::IdentMap<Span>>,
}

impl PreMarks {
    /// An empty table (no `pre` anywhere).
    pub fn new() -> PreMarks {
        PreMarks::default()
    }

    /// Whether no marks were recorded at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.values().all(|vars| vars.is_empty())
    }

    /// Records that memory variable `var` of `node` came from a `pre`
    /// whose token occupied `span`.
    pub fn record(&mut self, node: crate::Ident, var: crate::Ident, span: Span) {
        self.nodes.entry(node).or_default().insert(var, span);
    }

    /// The marks of `node`: memory variable → span of the originating
    /// `pre`. Empty for nodes with no marks.
    pub fn of_node(&self, node: crate::Ident) -> impl Iterator<Item = (crate::Ident, Span)> + '_ {
        self.nodes
            .get(&node)
            .into_iter()
            .flat_map(|vars| vars.iter().map(|(v, s)| (*v, *s)))
    }

    /// The span of the `pre` that introduced `var` in `node`, if any.
    pub fn get(&self, node: crate::Ident, var: crate::Ident) -> Option<Span> {
        self.nodes
            .get(&node)
            .and_then(|vars| vars.get(&var))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pre_marks_record_and_lookup() {
        let mut m = PreMarks::new();
        assert!(m.is_empty());
        let (f, v) = (crate::Ident::new("f"), crate::Ident::new("n#fby"));
        m.record(f, v, Span::new(3, 6));
        assert!(!m.is_empty());
        assert_eq!(m.get(f, v), Some(Span::new(3, 6)));
        assert_eq!(m.get(v, f), None);
        assert_eq!(m.of_node(f).collect::<Vec<_>>(), vec![(v, Span::new(3, 6))]);
    }

    #[test]
    fn span_map_survives_reordering_lookups() {
        let mut m = SpanMap::new();
        let (f, x, y) = (
            crate::Ident::new("f"),
            crate::Ident::new("x"),
            crate::Ident::new("y"),
        );
        m.record_node(f, Span::new(0, 4));
        m.record_eq(f, x, Span::new(10, 20));
        assert_eq!(m.eq_span(f, x), Span::new(10, 20));
        // Unrecorded variables fall back to the node header…
        assert_eq!(m.eq_span(f, y), Span::new(0, 4));
        // …and unrecorded nodes to the dummy span.
        assert_eq!(m.eq_span(y, x), Span::DUMMY);
        // Node-less lookup searches every node.
        assert_eq!(m.var_span(None, x), Span::new(10, 20));
        assert_eq!(m.var_span(None, y), Span::DUMMY);
    }

    #[test]
    fn merge_covers_both() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.merge(b), Span::new(2, 9));
        assert_eq!(b.merge(a), Span::new(2, 9));
    }

    #[test]
    fn merge_absorbs_dummy() {
        let a = Span::new(2, 5);
        assert_eq!(a.merge(Span::DUMMY), a);
        assert_eq!(Span::DUMMY.merge(a), a);
    }

    #[test]
    fn loc_resolution() {
        let src = "node f()\nreturns ();\nlet tel";
        assert_eq!(Loc::of_offset(src, 0), Loc { line: 1, col: 1 });
        assert_eq!(Loc::of_offset(src, 5), Loc { line: 1, col: 6 });
        assert_eq!(Loc::of_offset(src, 9), Loc { line: 2, col: 1 });
        assert_eq!(Loc::of_offset(src, 10), Loc { line: 2, col: 2 });
    }

    #[test]
    fn loc_clamps_past_end() {
        let l = Loc::of_offset("ab", 100);
        assert_eq!(l.line, 1);
    }

    #[test]
    #[should_panic(expected = "span end before start")]
    fn invalid_span_panics() {
        let _ = Span::new(5, 2);
    }
}
