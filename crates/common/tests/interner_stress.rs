//! Concurrency tests of the sharded identifier interner: idempotence
//! under racing interns of overlapping name sets, and the regression
//! guarantee that the lock-free `as_str` read path cannot block behind
//! (or deadlock against) concurrent interning.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use velus_common::Ident;

/// N threads intern overlapping name sets simultaneously; every thread
/// must observe the same `Ident` for the same name (idempotence across
/// shards), and every ident must round-trip through `as_str`.
#[test]
fn racing_interns_of_overlapping_sets_agree() {
    const THREADS: usize = 8;
    const NAMES: usize = 600;
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                // Each thread walks the shared name set from a different
                // offset so the racing inserts spread over all shards.
                (0..NAMES)
                    .map(|k| {
                        let name = format!("stress_{}", (k + t * 97) % NAMES);
                        (name.clone(), Ident::new(&name))
                    })
                    .collect::<Vec<(String, Ident)>>()
            })
        })
        .collect();

    let mut seen: HashMap<String, Ident> = HashMap::new();
    for handle in handles {
        for (name, id) in handle.join().expect("stress thread") {
            assert_eq!(id.as_str(), name, "round-trip failed");
            match seen.get(&name) {
                Some(prev) => assert_eq!(*prev, id, "interning of {name} not idempotent"),
                None => {
                    seen.insert(name, id);
                }
            }
        }
    }
    assert_eq!(seen.len(), NAMES);
}

/// Regression test for the old global-mutex interner: `as_str` must make
/// progress while another thread continuously interns fresh names. The
/// read path is lock-free, so the readers finish even though the writer
/// holds its shard's intern lock essentially all the time.
#[test]
fn as_str_is_not_blocked_by_concurrent_interning() {
    const READERS: usize = 4;
    let idents: Vec<Ident> = (0..64).map(|k| Ident::new(&format!("warm_{k}"))).collect();
    let stop = Arc::new(AtomicBool::new(false));

    // Writer: intern fresh names as fast as possible for the whole test.
    let writer = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut k = 0u64;
            while !stop.load(Ordering::Relaxed) {
                Ident::new(&format!("churn_{k}"));
                k += 1;
            }
            k
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let idents = idents.clone();
            thread::spawn(move || {
                let deadline = Instant::now() + Duration::from_millis(200);
                let mut reads = 0u64;
                while Instant::now() < deadline {
                    for (k, id) in idents.iter().enumerate() {
                        assert_eq!(id.as_str(), format!("warm_{k}"));
                        reads += 1;
                    }
                }
                reads
            })
        })
        .collect();

    for reader in readers {
        let reads = reader.join().expect("reader thread finishes: no deadlock");
        assert!(reads > 0);
    }
    stop.store(true, Ordering::Relaxed);
    let interned = writer.join().expect("writer thread");
    assert!(interned > 0, "the writer must actually have been interning");
}
