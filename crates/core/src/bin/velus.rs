//! The `velus` command-line compiler.
//!
//! ```text
//! velus compile FILE [--node NAME] [-o OUT.c] [--stdio]
//!               [--emit KINDS]                            emit artifacts (default: C)
//! velus check   FILE                                      elaborate + schedule only
//! velus run     FILE [--node NAME] --steps N              interpret (dataflow semantics)
//! velus validate FILE [--node NAME] --steps N             full translation validation
//! velus wcet    FILE [--node NAME] [--model cc|gcc|gcci]  WCET estimate of step
//! velus lint    FILE [--node NAME]                        static-analysis lint findings
//! velus dump    FILE [--node NAME] [--ir nlustre|snlustre|obc|obc-fused]
//! velus batch   DIR [--workers N] [--passes N] [--stdio]
//!               [--cache-cap N] [--sched fifo|cost]
//!               [--emit KINDS] [--trace-out FILE]
//!               [--metrics-out FILE] [--slow-trace-ms N]
//!               [--deadline-ms N] [--queue-cap N]
//!               [--retries N] [--drain-ms N]              batch-compile a directory
//! ```
//!
//! `--emit KINDS` is a comma-separated artifact set: `c`,
//! `wcet[:cc|gcc|gcci]`, `baseline`, `nlustre`, `snlustre`, `obc`,
//! `obc-fused`, `report`, `lint`. A plain `wcet` uses `--model`. Only
//! the pipeline stages the set needs are run: `--emit wcet` never
//! prints C, `--emit nlustre` stops after the front-end checks;
//! `--emit report` serves the per-program validation/diagnostics report
//! as JSON, `--emit lint` the static-analysis findings (initialization,
//! value ranges, liveness, dead clocks) as JSON.
//!
//! `lint` runs only the front end, scheduling, and the `velus-analysis`
//! pass, prints every finding (caret rendering, or one JSON object
//! with `--error-format json`), and exits nonzero exactly when an
//! error-severity finding — a guaranteed runtime trap — is present.
//!
//! `--error-format human|json` (every command) selects how failures are
//! rendered: `human` draws carets against the source on stderr, `json`
//! prints one machine-readable diagnostics object on stdout. Every
//! diagnostic carries a stable `E…`/`W…` code and its originating
//! pipeline stage.
//!
//! `run` reads one instant of whitespace-separated input values per line
//! from stdin (`true`/`false` for booleans) and prints the outputs.
//!
//! `batch` sweeps `DIR` for `.lus` files (the root node of each file is
//! its stem), compiles them on the compilation service's worker pool,
//! and prints a per-file table plus service statistics (including
//! per-artifact-kind rows). With two or more passes (the default), later
//! passes exercise the per-kind artifact cache and every artifact is
//! checked byte-for-byte against the cold pass. `--cache-cap N` bounds
//! the artifact cache to N entries (LRU eviction; evicted programs
//! recompile and re-verify on later passes) and `--sched cost` submits
//! each pass longest-predicted-first instead of FIFO, shortening the
//! makespan of skewed batches.
//!
//! The robustness flags drive the serving layer's fault tolerance:
//! `--deadline-ms N` gives every request an N ms deadline (expiry —
//! while queued or at a pass boundary — fails that request with the
//! coded `E0802`); `--queue-cap N` bounds admission (excess requests
//! are shed with `E0801` instead of queueing unboundedly); `--retries
//! N` re-runs transiently-failed requests up to N times with
//! decorrelated-jitter backoff; `--drain-ms N` gracefully drains the
//! service after the batch (admission closes, stragglers are cancelled
//! cooperatively by the deadline) and prints the drain report.
//!
//! The observability flags thread the batch through `velus-obs`:
//! `--trace-out FILE` records every request as a span tree (queue wait,
//! scheduling, cache probe, each pipeline pass, artifact handling) and
//! writes Chrome trace-event JSON loadable in Perfetto;
//! `--metrics-out FILE` writes the closing statistics snapshot in the
//! Prometheus text format; `--slow-trace-ms N` additionally retains the
//! complete span tree of every request slower than N ms in the flight
//! recorder (the slowest request's tree is always printed).

use std::io::Read;
use std::process::ExitCode;

use velus::{compile, validate::default_inputs, ArtifactKind, TestIo, VelusError, WcetModelKind};
use velus_common::{codes, DiagStage, Diagnostic, Diagnostics, SpanMap, ToDiagnostics};
use velus_nlustre::streams::{SVal, StreamSet};
use velus_ops::{ClightOps, Literal, Ops};

struct Args {
    cmd: String,
    file: Option<String>,
    node: Option<String>,
    out: Option<String>,
    steps: usize,
    stdio: bool,
    model: String,
    ir: String,
    emit: Option<String>,
    workers: usize,
    passes: usize,
    cache_cap: Option<usize>,
    sched: String,
    error_format: ErrorFormat,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    slow_trace_ms: Option<u64>,
    deadline_ms: Option<u64>,
    queue_cap: Option<usize>,
    retries: u32,
    drain_ms: Option<u64>,
}

/// How CLI failures are rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ErrorFormat {
    /// Caret rendering against the source, on stderr.
    Human,
    /// One machine-readable JSON diagnostics object, on stdout.
    Json,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().ok_or_else(usage)?;
    let mut parsed = Args {
        cmd,
        file: None,
        node: None,
        out: None,
        steps: 32,
        stdio: false,
        model: "cc".to_owned(),
        ir: "snlustre".to_owned(),
        emit: None,
        workers: 0,
        passes: 2,
        cache_cap: None,
        sched: "fifo".to_owned(),
        error_format: ErrorFormat::Human,
        trace_out: None,
        metrics_out: None,
        slow_trace_ms: None,
        deadline_ms: None,
        queue_cap: None,
        retries: 0,
        drain_ms: None,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--node" => parsed.node = Some(args.next().ok_or("missing value for --node")?),
            "-o" | "--output" => parsed.out = Some(args.next().ok_or("missing value for -o")?),
            "--steps" => {
                parsed.steps = args
                    .next()
                    .ok_or("missing value for --steps")?
                    .parse()
                    .map_err(|_| "invalid --steps value")?
            }
            "--stdio" => parsed.stdio = true,
            "--model" => parsed.model = args.next().ok_or("missing value for --model")?,
            "--ir" => parsed.ir = args.next().ok_or("missing value for --ir")?,
            "--emit" => parsed.emit = Some(args.next().ok_or("missing value for --emit")?),
            "--workers" => {
                parsed.workers = args
                    .next()
                    .ok_or("missing value for --workers")?
                    .parse()
                    .map_err(|_| "invalid --workers value")?
            }
            "--passes" => {
                parsed.passes = args
                    .next()
                    .ok_or("missing value for --passes")?
                    .parse::<usize>()
                    .map_err(|_| "invalid --passes value")?
                    .max(1)
            }
            "--cache-cap" => {
                parsed.cache_cap = Some(
                    args.next()
                        .ok_or("missing value for --cache-cap")?
                        .parse()
                        .map_err(|_| "invalid --cache-cap value")?,
                )
            }
            "--sched" => parsed.sched = args.next().ok_or("missing value for --sched")?,
            "--trace-out" => {
                parsed.trace_out = Some(args.next().ok_or("missing value for --trace-out")?)
            }
            "--metrics-out" => {
                parsed.metrics_out = Some(args.next().ok_or("missing value for --metrics-out")?)
            }
            "--slow-trace-ms" => {
                parsed.slow_trace_ms = Some(
                    args.next()
                        .ok_or("missing value for --slow-trace-ms")?
                        .parse()
                        .map_err(|_| "invalid --slow-trace-ms value")?,
                )
            }
            "--deadline-ms" => {
                parsed.deadline_ms = Some(
                    args.next()
                        .ok_or("missing value for --deadline-ms")?
                        .parse()
                        .map_err(|_| "invalid --deadline-ms value")?,
                )
            }
            "--queue-cap" => {
                parsed.queue_cap = Some(
                    args.next()
                        .ok_or("missing value for --queue-cap")?
                        .parse()
                        .map_err(|_| "invalid --queue-cap value")?,
                )
            }
            "--retries" => {
                parsed.retries = args
                    .next()
                    .ok_or("missing value for --retries")?
                    .parse()
                    .map_err(|_| "invalid --retries value")?
            }
            "--drain-ms" => {
                parsed.drain_ms = Some(
                    args.next()
                        .ok_or("missing value for --drain-ms")?
                        .parse()
                        .map_err(|_| "invalid --drain-ms value")?,
                )
            }
            "--error-format" => {
                let value = args.next().ok_or("missing value for --error-format")?;
                parsed.error_format = velus_common::parse_enum_flag(
                    "error format",
                    &value,
                    &[("human", ErrorFormat::Human), ("json", ErrorFormat::Json)],
                )?;
            }
            other if parsed.file.is_none() && !other.starts_with('-') => {
                parsed.file = Some(other.to_owned())
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(parsed)
}

fn usage() -> String {
    "usage: velus <compile|check|run|validate|wcet|lint|dump> FILE [options]
       velus batch DIR [--workers N] [--passes N] [--stdio] [--cache-cap N] [--sched fifo|cost] [--emit KINDS]
                       [--trace-out FILE] [--metrics-out FILE] [--slow-trace-ms N]
                       [--deadline-ms N] [--queue-cap N] [--retries N] [--drain-ms N]
options: --node NAME, -o OUT.c, --steps N, --stdio, --model cc|gcc|gcci,
         --ir nlustre|snlustre|obc|obc-fused, --error-format human|json,
         --emit c,wcet[:cc|gcc|gcci],baseline,nlustre,snlustre,obc,obc-fused,report,lint,
         --trace-out FILE (Chrome trace JSON), --metrics-out FILE (Prometheus text),
         --slow-trace-ms N (flight-record requests slower than N ms),
         --deadline-ms N (per-request deadline, E0802 on expiry),
         --queue-cap N (admission bound, E0801 when shed),
         --retries N (transient-failure retry budget),
         --drain-ms N (graceful drain after the batch)"
        .to_owned()
}

/// Parses the `--emit` list; a plain `wcet` token takes its model from
/// `--model`. Token parsing and deduplication are the library's
/// (`velus_server::parse_artifact_kinds`) — the CLI only substitutes
/// the `--model` default in first.
fn parse_emit(list: &str, default_model: WcetModelKind) -> Result<Vec<ArtifactKind>, String> {
    let with_model: Vec<String> = list
        .split(',')
        .map(|token| {
            let token = token.trim();
            if token == "wcet" {
                format!("wcet:{}", default_model.name())
            } else {
                token.to_owned()
            }
        })
        .collect();
    velus_server::parse_artifact_kinds(&with_model.join(","))
}

/// Renders failure diagnostics per `--error-format`. Human mode returns
/// the caret rendering (for stderr); JSON mode prints the machine-
/// readable object on stdout and returns an empty message (`main`
/// prints nothing for empty messages, so stdout stays clean for pipes).
fn emit_error(diags: &Diagnostics, source: &str, format: ErrorFormat) -> String {
    match format {
        ErrorFormat::Human => diags.render_human(source),
        ErrorFormat::Json => {
            println!("{}", diags.render_json(source));
            String::new()
        }
    }
}

/// Prints warnings (stderr in both formats: stdout carries artifacts).
fn emit_warnings(warnings: &Diagnostics, source: &str, format: ErrorFormat) {
    if warnings.is_empty() {
        return;
    }
    match format {
        ErrorFormat::Human => eprint!("{}", warnings.render_human(source)),
        ErrorFormat::Json => eprintln!("{}", warnings.render_json(source)),
    }
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Parses one instant of inputs (one whitespace-separated value per
/// declared input).
fn parse_instant(
    line: &str,
    decls: &[velus_nlustre::ast::VarDecl<ClightOps>],
) -> Result<Vec<velus_ops::CVal>, String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() != decls.len() {
        return Err(format!(
            "expected {} values, found {}",
            decls.len(),
            tokens.len()
        ));
    }
    tokens
        .iter()
        .zip(decls)
        .map(|(t, d)| {
            let lit = if *t == "true" {
                Literal::Bool(true)
            } else if *t == "false" {
                Literal::Bool(false)
            } else if t.contains('.') || t.contains('e') {
                Literal::Float(t.parse().map_err(|_| format!("bad float `{t}`"))?)
            } else {
                Literal::Int(t.parse().map_err(|_| format!("bad integer `{t}`"))?)
            };
            ClightOps::const_of_literal(&lit, &d.ty)
                .map(|c| c.val())
                .ok_or(format!("value `{t}` does not fit type {}", d.ty))
        })
        .collect()
}

fn run_batch(args: &Args) -> Result<(), String> {
    use velus::service::{service, ServiceConfig, ServiceError};
    use velus::{CompileOptions, CompileRequest, IoMode};

    let dir = args.file.as_deref().ok_or_else(usage)?;
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "lus"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .lus files in {dir}"));
    }

    let default_model: WcetModelKind = args.model.parse()?;
    let kinds = match args.emit.as_deref() {
        Some(list) => parse_emit(list, default_model)?,
        None => vec![ArtifactKind::CCode],
    };
    let options = CompileOptions::for_kinds(kinds.clone()).with_io(if args.stdio {
        IoMode::Stdio
    } else {
        IoMode::Volatile
    });
    let requests: Vec<CompileRequest> = files
        .iter()
        .map(|path| {
            let stem = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            let source = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let mut req = CompileRequest::new(&stem, source)
                .with_root(&stem)
                .with_options(options.clone());
            if let Some(ms) = args.deadline_ms {
                req = req.with_deadline_ms(ms);
            }
            Ok(req)
        })
        .collect::<Result<_, String>>()?;

    let mut config = ServiceConfig::default();
    if args.workers != 0 {
        config.workers = args.workers;
    }
    // --cache-cap bounds the artifact cache (entries); evictions are
    // reported in the closing statistics table.
    config.cache.max_entries = args.cache_cap;
    config.schedule = args.sched.parse()?;
    // Robustness knobs: a bounded admission queue sheds excess load
    // with E0801, and transient failures are retried up to the budget.
    config.admission.queue_cap = args.queue_cap;
    config.retry = velus_server::RetryPolicy::with_budget(args.retries);
    // Any observability flag turns the tracing recorder on; without
    // them the batch runs entirely trace-free.
    let tracing = args.trace_out.is_some() || args.slow_trace_ms.is_some();
    if tracing || args.metrics_out.is_some() {
        config.recorder = Some(velus::Recorder::new(velus::RecorderConfig {
            slow_threshold_ns: args.slow_trace_ms.map(|ms| ms * 1_000_000),
            ..velus::RecorderConfig::default()
        }));
    }
    let svc = service(config);
    // In JSON error mode stdout is reserved for the machine-readable
    // failure reports; the human table goes to stderr.
    let json_errors = args.error_format == ErrorFormat::Json;
    macro_rules! say {
        ($($arg:tt)*) => {
            if json_errors {
                eprintln!($($arg)*);
            } else {
                println!($($arg)*);
            }
        };
    }
    let emit_list: Vec<String> = kinds.iter().map(|k| k.to_string()).collect();
    say!(
        "batch: {} programs from {dir}, {} workers, {} pass(es), {} scheduling, emit {}{}",
        requests.len(),
        svc.worker_count(),
        args.passes,
        args.sched,
        emit_list.join(","),
        match args.cache_cap {
            Some(cap) => format!(", cache cap {cap}"),
            None => String::new(),
        }
    );

    let mut failed = 0usize;
    // Per (program, kind): the cold pass's rendered artifact, checked
    // byte-for-byte against every later pass.
    let mut cold: Vec<Option<Vec<String>>> = vec![None; requests.len()];
    for pass in 0..args.passes {
        let report = svc.compile_batch(requests.clone());
        say!(
            "\npass {}: {} ok, {} failed, {} cache hits, {:.1} programs/s",
            pass + 1,
            report.ok_count(),
            report.err_count(),
            report.hit_count(),
            report.throughput()
        );
        say!(
            "{:<22} {:>8} {:>6} {:>12} {:>10}",
            "program",
            "status",
            "cache",
            "latency",
            "bytes"
        );
        for (k, item) in report.items.iter().enumerate() {
            let (status, cache, bytes) = match &item.result {
                Ok(artifacts) => {
                    let hits = artifacts.iter().filter(|a| a.cache_hit).count();
                    let cache = if hits == artifacts.len() {
                        "hit".to_owned()
                    } else if hits == 0 {
                        "miss".to_owned()
                    } else {
                        format!("{hits}/{}", artifacts.len())
                    };
                    let total: usize = artifacts.iter().map(|a| a.artifact.estimated_bytes()).sum();
                    ("ok", cache, total.to_string())
                }
                Err(_) => ("error", "-".to_owned(), "-".to_owned()),
            };
            say!(
                "{:<22} {:>8} {:>6} {:>12} {:>10}",
                item.name,
                status,
                cache,
                format!("{:.2?}", item.latency),
                bytes
            );
            // Front-end warnings surface (once, when the pipeline
            // actually ran) instead of being dropped.
            for w in &item.warnings {
                eprintln!("{}: {w}", item.name);
            }
            match &item.result {
                Ok(artifacts) => {
                    let rendered: Vec<String> =
                        artifacts.iter().map(|a| a.artifact.render()).collect();
                    match &cold[k] {
                        None => cold[k] = Some(rendered),
                        Some(cold_rendered) => {
                            for (i, (was, now)) in cold_rendered.iter().zip(&rendered).enumerate() {
                                if was != now {
                                    return Err(format!(
                                        "{}: warm pass produced a different `{}` artifact \
                                         than the cold pass",
                                        item.name, artifacts[i].kind
                                    ));
                                }
                            }
                        }
                    }
                }
                Err(ServiceError::Compile { report, .. }) => match args.error_format {
                    ErrorFormat::Human => eprintln!("{}: {report}", item.name),
                    // One attributed object per failing program, on the
                    // cold pass only (failures are never cached, so
                    // later passes would just duplicate the stream).
                    ErrorFormat::Json if pass == 0 => {
                        let body = report.render_json();
                        println!(
                            "{{\"program\":\"{}\",{}",
                            velus_common::json_escape(&item.name),
                            &body[1..]
                        );
                    }
                    ErrorFormat::Json => {}
                },
                Err(other) => eprintln!("{}: {other}", item.name),
            }
            if item.result.is_err() && pass == 0 {
                failed += 1;
            }
        }
        if pass > 0 && report.hit_count() == report.items.len() {
            say!("warm pass: every artifact served from cache, byte-identical output");
        }
    }

    // --drain-ms: graceful shutdown rehearsal — admission closes, any
    // stragglers are cancelled cooperatively by the deadline, and the
    // drain report lands in the stats below (`drains` counter).
    if let Some(ms) = args.drain_ms {
        let report = svc.drain(std::time::Duration::from_millis(ms));
        say!("\n{report}");
    }
    say!("\nservice statistics:\n{}", svc.stats());
    if let Some(rec) = svc.recorder() {
        if let Some(path) = &args.trace_out {
            let data = rec.drain();
            if data.dropped > 0 {
                eprintln!(
                    "trace: {} events dropped by bounded ring buffers",
                    data.dropped
                );
            }
            std::fs::write(path, data.chrome_json())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            say!("trace written to {path} (open in Perfetto / chrome://tracing)");
        }
        // The flight recorder explains the tail: the slowest request's
        // span tree (and any over --slow-trace-ms) as an indented dump.
        let flight = rec.flight();
        if let Some(slowest) = flight.first() {
            say!(
                "\nslowest request (flight recorder):\n{}",
                slowest.render_tree()
            );
        }
        if let Some(threshold) = args.slow_trace_ms {
            let over: Vec<&str> = flight
                .iter()
                .filter(|r| r.dur_ns >= threshold * 1_000_000)
                .map(|r| r.label.as_str())
                .collect();
            say!(
                "flight recorder: {} request(s) over {threshold} ms{}{}",
                over.len(),
                if over.is_empty() { "" } else { ": " },
                over.join(", ")
            );
        }
    }
    if let Some(path) = &args.metrics_out {
        std::fs::write(path, svc.stats().render_prometheus())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        say!("metrics written to {path} (Prometheus text format)");
    }
    if failed > 0 {
        // In JSON mode the failures were already printed as attributed
        // objects on stdout; the empty sentinel keeps the exit code
        // nonzero without appending a spurious summary object.
        return Err(if json_errors {
            String::new()
        } else {
            format!("{failed} program(s) failed to compile")
        });
    }
    Ok(())
}

fn main_inner() -> Result<(), String> {
    let args = parse_args()?;
    let result = dispatch(&args);
    // Usage failures (flag parse errors, unreadable files) reach here
    // as pre-rendered strings; in JSON mode they must honor the stdout
    // contract like every other failure. Already-emitted JSON errors
    // arrive as empty strings and pass through untouched.
    match (args.error_format, result) {
        (ErrorFormat::Json, Err(msg)) if !msg.is_empty() => {
            println!("{}", usage_json(&msg));
            Err(String::new())
        }
        (_, result) => result,
    }
}

/// Wraps a pre-rendered usage error as a diagnostics JSON object. The
/// coded flag parsers prefix their rendering with `error[EXXXX]: `;
/// that code is recovered, anything else is the generic usage code.
fn usage_json(msg: &str) -> String {
    let (code, message) = match msg.strip_prefix("error[").and_then(|rest| {
        let (id, m) = rest.split_once("]: ")?;
        velus_common::codes::ALL
            .iter()
            .find(|c| c.id == id)
            .map(|c| (*c, m))
    }) {
        Some((code, m)) => (code, m.to_owned()),
        None => (codes::E0904, msg.to_owned()),
    };
    Diagnostics::from(
        Diagnostic::new(code, message, velus_common::Span::DUMMY).at_stage(DiagStage::Driver),
    )
    .render_json("")
}

fn dispatch(args: &Args) -> Result<(), String> {
    if args.cmd == "batch" {
        return run_batch(args);
    }
    let file = args.file.as_deref().ok_or_else(usage)?;
    let source = read_file(file)?;
    let node = args.node.as_deref();

    let error_format = args.error_format;
    let render_err = |e: VelusError| -> String {
        emit_error(&e.to_diagnostics(&SpanMap::new()), &source, error_format)
    };

    match args.cmd.as_str() {
        "check" => {
            let c = compile(&source, node).map_err(render_err)?;
            emit_warnings(&c.warnings, &source, error_format);
            println!(
                "ok: {} nodes, {} equations, root {}",
                c.snlustre.nodes.len(),
                c.snlustre.equation_count(),
                c.root
            );
            Ok(())
        }
        "compile" => {
            let io = if args.stdio {
                TestIo::Stdio
            } else {
                TestIo::Volatile
            };
            let kinds = match args.emit.as_deref() {
                Some(list) => parse_emit(list, args.model.parse()?)?,
                None => vec![ArtifactKind::CCode],
            };
            if args.out.is_some() && !kinds.contains(&ArtifactKind::CCode) {
                return Err("-o needs the `c` artifact kind in --emit".to_owned());
            }
            // The staged pipeline runs (and re-validates) only the
            // stages the requested artifact set needs.
            let mut observe = |_, _| {};
            let mut staged = velus::StagedPipeline::from_source(&source, node, &mut observe)
                .map_err(render_err)?;
            emit_warnings(staged.warnings(), &source, error_format);
            let artifacts =
                velus::artifacts::produce(&mut staged, &kinds, io, &source).map_err(render_err)?;
            let mut to_stdout = String::new();
            for (kind, artifact) in &artifacts {
                // The C artifact honors `-o`; everything else (and C
                // without `-o`) goes to stdout, with headers once more
                // than one artifact is printed.
                if *kind == ArtifactKind::CCode {
                    if let Some(path) = &args.out {
                        std::fs::write(path, artifact.render())
                            .map_err(|e| format!("cannot write {path}: {e}"))?;
                        continue;
                    }
                }
                if artifacts.len() > 1 {
                    to_stdout.push_str(&format!("== {kind} ==\n"));
                }
                to_stdout.push_str(&artifact.render());
            }
            print!("{to_stdout}");
            Ok(())
        }
        "dump" => {
            use velus_server::IrStageKind;
            // The coded parser (E0901 + did-you-mean), shared with the
            // `--emit` tokens.
            let stage: IrStageKind = args.ir.parse()?;
            let c = compile(&source, node).map_err(render_err)?;
            match stage {
                IrStageKind::NLustre => println!("{}", c.nlustre),
                IrStageKind::SnLustre => println!("{}", c.snlustre),
                IrStageKind::Obc => println!("{}", c.obc),
                IrStageKind::ObcFused => println!("{}", c.obc_fused),
            }
            Ok(())
        }
        "run" => {
            let c = compile(&source, node).map_err(render_err)?;
            let root = c.snlustre.node(c.root).expect("root exists");
            let inputs_decl = root.inputs.clone();
            let mut text = String::new();
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| e.to_string())?;
            let mut streams: StreamSet<ClightOps> = vec![Vec::new(); inputs_decl.len()];
            let mut count = 0usize;
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                let vals = parse_instant(line, &inputs_decl)?;
                for (k, v) in vals.into_iter().enumerate() {
                    streams[k].push(SVal::Pres(v));
                }
                count += 1;
            }
            let outs = velus_nlustre::dataflow::run_node(&c.snlustre, c.root, &streams, count)
                .map_err(|e| {
                    let diags = e.to_diagnostics(&c.spans).tagged(DiagStage::Validate);
                    emit_error(&diags, &source, error_format)
                })?;
            for i in 0..count {
                let row: Vec<String> = outs.iter().map(|s| format!("{}", s[i])).collect();
                println!("{}", row.join(" "));
            }
            Ok(())
        }
        "validate" => {
            let c = compile(&source, node).map_err(render_err)?;
            let inputs = default_inputs(&c, args.steps);
            let report = velus::validate_with_report(&c, &inputs, args.steps).map_err(|e| {
                let diags = e.to_diagnostics(&c.spans).tagged(DiagStage::Validate);
                emit_error(&diags, &source, error_format)
            })?;
            println!(
                "validated {} instants: {} MemCorres checks, {} staterep checks, {} trace events",
                report.instants,
                report.memcorres_checks,
                report.staterep_checks,
                report.trace_events
            );
            Ok(())
        }
        "lint" => {
            // Front end + scheduling + the analysis pass; the back half
            // of the pipeline never runs.
            let mut observe = |_, _| {};
            let mut staged = velus::StagedPipeline::from_source(&source, node, &mut observe)
                .map_err(render_err)?;
            let findings = staged.lint().map_err(render_err)?.clone();
            drop(staged);
            match error_format {
                ErrorFormat::Json => println!("{}", findings.render_json(&source)),
                ErrorFormat::Human if findings.is_empty() => println!("ok: no lint findings"),
                ErrorFormat::Human => print!("{}", findings.render_human(&source)),
            }
            let errors = findings
                .iter()
                .filter(|f| f.severity == velus_common::Severity::Error)
                .count();
            if errors > 0 {
                // Findings are already on stdout; in human mode add a
                // one-line verdict, in JSON mode exit nonzero quietly.
                return Err(match error_format {
                    ErrorFormat::Human => {
                        format!("{errors} error-severity lint finding(s) (guaranteed traps)")
                    }
                    ErrorFormat::Json => String::new(),
                });
            }
            Ok(())
        }
        "wcet" => {
            let model: velus_wcet::CostModel = args.model.parse()?;
            // The staged pipeline stops after Clight generation — WCET
            // analysis never prints C.
            let mut observe = |_, _| {};
            let mut staged = velus::StagedPipeline::from_source(&source, node, &mut observe)
                .map_err(render_err)?;
            let root = staged.root();
            let root_span = staged.spans().node_span(root);
            let cycles = velus_wcet::wcet_step(staged.clight().map_err(render_err)?, root, model)
                .map_err(|e| {
                // The same E0703/analysis/root-span conversion the
                // `--emit wcet` artifact path applies — one place.
                let err = velus::artifacts::analysis_err(root_span, e.to_string());
                emit_error(&err.to_diagnostics(&SpanMap::new()), &source, error_format)
            })?;
            println!("{root} step: {cycles} cycles ({})", args.model);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn main() -> ExitCode {
    // Deeply nested programs make the reference interpreter recurse
    // deeply; give it room (see `velus_common::with_stack`).
    match velus_common::with_stack(256, main_inner) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            // JSON-mode failures were already printed on stdout and
            // surface here as an empty message: exit nonzero, quietly.
            if !msg.is_empty() {
                eprintln!("{msg}");
            }
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod usage_json_tests {
    use super::*;

    #[test]
    fn recovers_the_code_from_coded_flag_errors() {
        // parse_enum_flag renders through Diagnostic's Display; this
        // locks the `error[EXXXX]: ` prefix usage_json scrapes — if the
        // one-line format ever changes, this fails instead of every
        // coded usage error silently degrading to E0904.
        let msg =
            velus_common::parse_enum_flag::<u8>("thing", "bogus", &[("real", 1)]).unwrap_err();
        let json = usage_json(&msg);
        assert!(json.contains("\"code\":\"E0901\""), "{json}");
        assert!(
            !json.contains("error[E0901]"),
            "prefix must be stripped: {json}"
        );
    }

    #[test]
    fn uncoded_messages_fall_back_to_the_generic_usage_code() {
        let json = usage_json("cannot read nope.lus: not found");
        assert!(json.contains("\"code\":\"E0904\""), "{json}");
    }
}
