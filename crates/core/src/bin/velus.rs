//! The `velus` command-line compiler.
//!
//! ```text
//! velus compile FILE [--node NAME] [-o OUT.c] [--stdio]   emit C
//! velus check   FILE                                      elaborate + schedule only
//! velus run     FILE [--node NAME] --steps N              interpret (dataflow semantics)
//! velus validate FILE [--node NAME] --steps N             full translation validation
//! velus wcet    FILE [--node NAME] [--model cc|gcc|gcci]  WCET estimate of step
//! velus dump    FILE [--node NAME] [--ir nlustre|snlustre|obc|obc-fused]
//! ```
//!
//! `run` reads one instant of whitespace-separated input values per line
//! from stdin (`true`/`false` for booleans) and prints the outputs.

use std::io::Read;
use std::process::ExitCode;

use velus::{compile, emit_c, validate::default_inputs, TestIo, VelusError};
use velus_nlustre::streams::{StreamSet, SVal};
use velus_ops::{ClightOps, Literal, Ops};

struct Args {
    cmd: String,
    file: Option<String>,
    node: Option<String>,
    out: Option<String>,
    steps: usize,
    stdio: bool,
    model: String,
    ir: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().ok_or_else(usage)?;
    let mut parsed = Args {
        cmd,
        file: None,
        node: None,
        out: None,
        steps: 32,
        stdio: false,
        model: "cc".to_owned(),
        ir: "snlustre".to_owned(),
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--node" => parsed.node = Some(args.next().ok_or("missing value for --node")?),
            "-o" | "--output" => parsed.out = Some(args.next().ok_or("missing value for -o")?),
            "--steps" => {
                parsed.steps = args
                    .next()
                    .ok_or("missing value for --steps")?
                    .parse()
                    .map_err(|_| "invalid --steps value")?
            }
            "--stdio" => parsed.stdio = true,
            "--model" => parsed.model = args.next().ok_or("missing value for --model")?,
            "--ir" => parsed.ir = args.next().ok_or("missing value for --ir")?,
            other if parsed.file.is_none() && !other.starts_with('-') => {
                parsed.file = Some(other.to_owned())
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(parsed)
}

fn usage() -> String {
    "usage: velus <compile|check|run|validate|wcet|dump> FILE [options]
options: --node NAME, -o OUT.c, --steps N, --stdio, --model cc|gcc|gcci, --ir nlustre|snlustre|obc|obc-fused"
        .to_owned()
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Parses one instant of inputs (one whitespace-separated value per
/// declared input).
fn parse_instant(
    line: &str,
    decls: &[velus_nlustre::ast::VarDecl<ClightOps>],
) -> Result<Vec<velus_ops::CVal>, String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() != decls.len() {
        return Err(format!(
            "expected {} values, found {}",
            decls.len(),
            tokens.len()
        ));
    }
    tokens
        .iter()
        .zip(decls)
        .map(|(t, d)| {
            let lit = if *t == "true" {
                Literal::Bool(true)
            } else if *t == "false" {
                Literal::Bool(false)
            } else if t.contains('.') || t.contains('e') {
                Literal::Float(t.parse().map_err(|_| format!("bad float `{t}`"))?)
            } else {
                Literal::Int(t.parse().map_err(|_| format!("bad integer `{t}`"))?)
            };
            ClightOps::const_of_literal(&lit, &d.ty)
                .map(|c| c.val())
                .ok_or(format!("value `{t}` does not fit type {}", d.ty))
        })
        .collect()
}

fn main_inner() -> Result<(), String> {
    let args = parse_args()?;
    let file = args.file.as_deref().ok_or_else(usage)?;
    let source = read_file(file)?;
    let node = args.node.as_deref();

    let render_err = |e: VelusError| -> String {
        match e {
            VelusError::Front(d) => d.render(&source),
            other => other.to_string(),
        }
    };

    match args.cmd.as_str() {
        "check" => {
            let c = compile(&source, node).map_err(render_err)?;
            for w in c.warnings.iter() {
                eprintln!("{}", w.render(&source));
            }
            println!(
                "ok: {} nodes, {} equations, root {}",
                c.snlustre.nodes.len(),
                c.snlustre.equation_count(),
                c.root
            );
            Ok(())
        }
        "compile" => {
            let c = compile(&source, node).map_err(render_err)?;
            for w in c.warnings.iter() {
                eprintln!("{}", w.render(&source));
            }
            let io = if args.stdio { TestIo::Stdio } else { TestIo::Volatile };
            let code = emit_c(&c, io);
            match &args.out {
                Some(path) => std::fs::write(path, code)
                    .map_err(|e| format!("cannot write {path}: {e}"))?,
                None => print!("{code}"),
            }
            Ok(())
        }
        "dump" => {
            let c = compile(&source, node).map_err(render_err)?;
            match args.ir.as_str() {
                "nlustre" => println!("{}", c.nlustre),
                "snlustre" => println!("{}", c.snlustre),
                "obc" => println!("{}", c.obc),
                "obc-fused" => println!("{}", c.obc_fused),
                other => return Err(format!("unknown IR `{other}`")),
            }
            Ok(())
        }
        "run" => {
            let c = compile(&source, node).map_err(render_err)?;
            let root = c.snlustre.node(c.root).expect("root exists");
            let inputs_decl = root.inputs.clone();
            let mut text = String::new();
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| e.to_string())?;
            let mut streams: StreamSet<ClightOps> = vec![Vec::new(); inputs_decl.len()];
            let mut count = 0usize;
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                let vals = parse_instant(line, &inputs_decl)?;
                for (k, v) in vals.into_iter().enumerate() {
                    streams[k].push(SVal::Pres(v));
                }
                count += 1;
            }
            let outs = velus_nlustre::dataflow::run_node(&c.snlustre, c.root, &streams, count)
                .map_err(|e| e.to_string())?;
            for i in 0..count {
                let row: Vec<String> = outs.iter().map(|s| format!("{}", s[i])).collect();
                println!("{}", row.join(" "));
            }
            Ok(())
        }
        "validate" => {
            let c = compile(&source, node).map_err(render_err)?;
            let inputs = default_inputs(&c, args.steps);
            let report = velus::validate_with_report(&c, &inputs, args.steps)
                .map_err(render_err)?;
            println!(
                "validated {} instants: {} MemCorres checks, {} staterep checks, {} trace events",
                report.instants,
                report.memcorres_checks,
                report.staterep_checks,
                report.trace_events
            );
            Ok(())
        }
        "wcet" => {
            let c = compile(&source, node).map_err(render_err)?;
            let model = match args.model.as_str() {
                "cc" => velus_wcet::CostModel::CompCert,
                "gcc" => velus_wcet::CostModel::Gcc,
                "gcci" => velus_wcet::CostModel::GccInline,
                other => return Err(format!("unknown model `{other}` (cc|gcc|gcci)")),
            };
            let cycles = velus_wcet::wcet_step(&c.clight, c.root, model)
                .map_err(|e| e.to_string())?;
            println!("{} step: {cycles} cycles ({})", c.root, args.model);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn main() -> ExitCode {
    // Deeply nested programs make the reference interpreter recurse
    // deeply; give it room (see `velus_common::with_stack`).
    match velus_common::with_stack(256, main_inner) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
