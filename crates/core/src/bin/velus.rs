//! The `velus` command-line compiler.
//!
//! ```text
//! velus compile FILE [--node NAME] [-o OUT.c] [--stdio]   emit C
//! velus check   FILE                                      elaborate + schedule only
//! velus run     FILE [--node NAME] --steps N              interpret (dataflow semantics)
//! velus validate FILE [--node NAME] --steps N             full translation validation
//! velus wcet    FILE [--node NAME] [--model cc|gcc|gcci]  WCET estimate of step
//! velus dump    FILE [--node NAME] [--ir nlustre|snlustre|obc|obc-fused]
//! velus batch   DIR [--workers N] [--passes N] [--stdio]
//!               [--cache-cap N] [--sched fifo|cost]       batch-compile a directory
//! ```
//!
//! `run` reads one instant of whitespace-separated input values per line
//! from stdin (`true`/`false` for booleans) and prints the outputs.
//!
//! `batch` sweeps `DIR` for `.lus` files (the root node of each file is
//! its stem), compiles them on the compilation service's worker pool,
//! and prints a per-file table plus service statistics. With two or more
//! passes (the default), later passes exercise the artifact cache and
//! the emitted C is checked byte-for-byte against the cold pass.
//! `--cache-cap N` bounds the artifact cache to N entries (LRU
//! eviction; evicted programs recompile and re-verify on later passes)
//! and `--sched cost` submits each pass longest-predicted-first instead
//! of FIFO, shortening the makespan of skewed batches.

use std::io::Read;
use std::process::ExitCode;

use velus::{compile, emit_c, validate::default_inputs, TestIo, VelusError};
use velus_nlustre::streams::{SVal, StreamSet};
use velus_ops::{ClightOps, Literal, Ops};

struct Args {
    cmd: String,
    file: Option<String>,
    node: Option<String>,
    out: Option<String>,
    steps: usize,
    stdio: bool,
    model: String,
    ir: String,
    workers: usize,
    passes: usize,
    cache_cap: Option<usize>,
    sched: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().ok_or_else(usage)?;
    let mut parsed = Args {
        cmd,
        file: None,
        node: None,
        out: None,
        steps: 32,
        stdio: false,
        model: "cc".to_owned(),
        ir: "snlustre".to_owned(),
        workers: 0,
        passes: 2,
        cache_cap: None,
        sched: "fifo".to_owned(),
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--node" => parsed.node = Some(args.next().ok_or("missing value for --node")?),
            "-o" | "--output" => parsed.out = Some(args.next().ok_or("missing value for -o")?),
            "--steps" => {
                parsed.steps = args
                    .next()
                    .ok_or("missing value for --steps")?
                    .parse()
                    .map_err(|_| "invalid --steps value")?
            }
            "--stdio" => parsed.stdio = true,
            "--model" => parsed.model = args.next().ok_or("missing value for --model")?,
            "--ir" => parsed.ir = args.next().ok_or("missing value for --ir")?,
            "--workers" => {
                parsed.workers = args
                    .next()
                    .ok_or("missing value for --workers")?
                    .parse()
                    .map_err(|_| "invalid --workers value")?
            }
            "--passes" => {
                parsed.passes = args
                    .next()
                    .ok_or("missing value for --passes")?
                    .parse::<usize>()
                    .map_err(|_| "invalid --passes value")?
                    .max(1)
            }
            "--cache-cap" => {
                parsed.cache_cap = Some(
                    args.next()
                        .ok_or("missing value for --cache-cap")?
                        .parse()
                        .map_err(|_| "invalid --cache-cap value")?,
                )
            }
            "--sched" => parsed.sched = args.next().ok_or("missing value for --sched")?,
            other if parsed.file.is_none() && !other.starts_with('-') => {
                parsed.file = Some(other.to_owned())
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(parsed)
}

fn usage() -> String {
    "usage: velus <compile|check|run|validate|wcet|dump> FILE [options]
       velus batch DIR [--workers N] [--passes N] [--stdio] [--cache-cap N] [--sched fifo|cost]
options: --node NAME, -o OUT.c, --steps N, --stdio, --model cc|gcc|gcci, --ir nlustre|snlustre|obc|obc-fused"
        .to_owned()
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Parses one instant of inputs (one whitespace-separated value per
/// declared input).
fn parse_instant(
    line: &str,
    decls: &[velus_nlustre::ast::VarDecl<ClightOps>],
) -> Result<Vec<velus_ops::CVal>, String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() != decls.len() {
        return Err(format!(
            "expected {} values, found {}",
            decls.len(),
            tokens.len()
        ));
    }
    tokens
        .iter()
        .zip(decls)
        .map(|(t, d)| {
            let lit = if *t == "true" {
                Literal::Bool(true)
            } else if *t == "false" {
                Literal::Bool(false)
            } else if t.contains('.') || t.contains('e') {
                Literal::Float(t.parse().map_err(|_| format!("bad float `{t}`"))?)
            } else {
                Literal::Int(t.parse().map_err(|_| format!("bad integer `{t}`"))?)
            };
            ClightOps::const_of_literal(&lit, &d.ty)
                .map(|c| c.val())
                .ok_or(format!("value `{t}` does not fit type {}", d.ty))
        })
        .collect()
}

fn run_batch(args: &Args) -> Result<(), String> {
    use velus::service::{service, ServiceConfig, ServiceError};
    use velus::{CompileOptions, CompileRequest, IoMode};

    let dir = args.file.as_deref().ok_or_else(usage)?;
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "lus"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .lus files in {dir}"));
    }

    let options = CompileOptions {
        io: if args.stdio {
            IoMode::Stdio
        } else {
            IoMode::Volatile
        },
    };
    let requests: Vec<CompileRequest> = files
        .iter()
        .map(|path| {
            let stem = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            let source = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            Ok(CompileRequest::new(&stem, source)
                .with_root(&stem)
                .with_options(options))
        })
        .collect::<Result<_, String>>()?;

    let mut config = ServiceConfig::default();
    if args.workers != 0 {
        config.workers = args.workers;
    }
    // --cache-cap bounds the artifact cache (entries); evictions are
    // reported in the closing statistics table.
    config.cache.max_entries = args.cache_cap;
    config.schedule = args.sched.parse()?;
    let svc = service(config);
    println!(
        "batch: {} programs from {dir}, {} workers, {} pass(es), {} scheduling{}",
        requests.len(),
        svc.worker_count(),
        args.passes,
        args.sched,
        match args.cache_cap {
            Some(cap) => format!(", cache cap {cap}"),
            None => String::new(),
        }
    );

    let mut failed = 0usize;
    let mut cold_c: Vec<Option<String>> = vec![None; requests.len()];
    for pass in 0..args.passes {
        let report = svc.compile_batch(requests.clone());
        println!(
            "\npass {}: {} ok, {} failed, {} cache hits, {:.1} programs/s",
            pass + 1,
            report.ok_count(),
            report.err_count(),
            report.hit_count(),
            report.throughput()
        );
        println!(
            "{:<22} {:>8} {:>6} {:>12} {:>10}",
            "program", "status", "cache", "latency", "C bytes"
        );
        for (k, item) in report.items.iter().enumerate() {
            let (status, bytes) = match &item.result {
                Ok(artifact) => ("ok", artifact.c_code.len().to_string()),
                Err(_) => ("error", "-".to_owned()),
            };
            println!(
                "{:<22} {:>8} {:>6} {:>12} {:>10}",
                item.name,
                status,
                if item.cache_hit { "hit" } else { "miss" },
                format!("{:.2?}", item.latency),
                bytes
            );
            match &item.result {
                Ok(artifact) => match &cold_c[k] {
                    None => cold_c[k] = Some(artifact.c_code.clone()),
                    Some(cold) if *cold == artifact.c_code => {}
                    Some(_) => {
                        return Err(format!(
                            "{}: warm pass emitted different C than the cold pass",
                            item.name
                        ))
                    }
                },
                Err(ServiceError::Compile(e)) => eprintln!("{}: {e}", item.name),
                Err(other) => eprintln!("{}: {other}", item.name),
            }
            if item.result.is_err() && pass == 0 {
                failed += 1;
            }
        }
        if pass > 0 && report.hit_count() == report.items.len() {
            println!("warm pass: every artifact served from cache, byte-identical C");
        }
    }

    println!("\nservice statistics:\n{}", svc.stats());
    if failed > 0 {
        return Err(format!("{failed} program(s) failed to compile"));
    }
    Ok(())
}

fn main_inner() -> Result<(), String> {
    let args = parse_args()?;
    if args.cmd == "batch" {
        return run_batch(&args);
    }
    let file = args.file.as_deref().ok_or_else(usage)?;
    let source = read_file(file)?;
    let node = args.node.as_deref();

    let render_err = |e: VelusError| -> String {
        match e {
            VelusError::Front(d) => d.render(&source),
            other => other.to_string(),
        }
    };

    match args.cmd.as_str() {
        "check" => {
            let c = compile(&source, node).map_err(render_err)?;
            for w in c.warnings.iter() {
                eprintln!("{}", w.render(&source));
            }
            println!(
                "ok: {} nodes, {} equations, root {}",
                c.snlustre.nodes.len(),
                c.snlustre.equation_count(),
                c.root
            );
            Ok(())
        }
        "compile" => {
            let c = compile(&source, node).map_err(render_err)?;
            for w in c.warnings.iter() {
                eprintln!("{}", w.render(&source));
            }
            let io = if args.stdio {
                TestIo::Stdio
            } else {
                TestIo::Volatile
            };
            let code = emit_c(&c, io);
            match &args.out {
                Some(path) => {
                    std::fs::write(path, code).map_err(|e| format!("cannot write {path}: {e}"))?
                }
                None => print!("{code}"),
            }
            Ok(())
        }
        "dump" => {
            let c = compile(&source, node).map_err(render_err)?;
            match args.ir.as_str() {
                "nlustre" => println!("{}", c.nlustre),
                "snlustre" => println!("{}", c.snlustre),
                "obc" => println!("{}", c.obc),
                "obc-fused" => println!("{}", c.obc_fused),
                other => return Err(format!("unknown IR `{other}`")),
            }
            Ok(())
        }
        "run" => {
            let c = compile(&source, node).map_err(render_err)?;
            let root = c.snlustre.node(c.root).expect("root exists");
            let inputs_decl = root.inputs.clone();
            let mut text = String::new();
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| e.to_string())?;
            let mut streams: StreamSet<ClightOps> = vec![Vec::new(); inputs_decl.len()];
            let mut count = 0usize;
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                let vals = parse_instant(line, &inputs_decl)?;
                for (k, v) in vals.into_iter().enumerate() {
                    streams[k].push(SVal::Pres(v));
                }
                count += 1;
            }
            let outs = velus_nlustre::dataflow::run_node(&c.snlustre, c.root, &streams, count)
                .map_err(|e| e.to_string())?;
            for i in 0..count {
                let row: Vec<String> = outs.iter().map(|s| format!("{}", s[i])).collect();
                println!("{}", row.join(" "));
            }
            Ok(())
        }
        "validate" => {
            let c = compile(&source, node).map_err(render_err)?;
            let inputs = default_inputs(&c, args.steps);
            let report =
                velus::validate_with_report(&c, &inputs, args.steps).map_err(render_err)?;
            println!(
                "validated {} instants: {} MemCorres checks, {} staterep checks, {} trace events",
                report.instants,
                report.memcorres_checks,
                report.staterep_checks,
                report.trace_events
            );
            Ok(())
        }
        "wcet" => {
            let c = compile(&source, node).map_err(render_err)?;
            let model = match args.model.as_str() {
                "cc" => velus_wcet::CostModel::CompCert,
                "gcc" => velus_wcet::CostModel::Gcc,
                "gcci" => velus_wcet::CostModel::GccInline,
                other => return Err(format!("unknown model `{other}` (cc|gcc|gcci)")),
            };
            let cycles =
                velus_wcet::wcet_step(&c.clight, c.root, model).map_err(|e| e.to_string())?;
            println!("{} step: {cycles} cycles ({})", c.root, args.model);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn main() -> ExitCode {
    // Deeply nested programs make the reference interpreter recurse
    // deeply; give it room (see `velus_common::with_stack`).
    match velus_common::with_stack(256, main_inner) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
