//! The unified error type of the compiler driver.

use std::fmt;

use velus_common::{codes, DiagStage, Diagnostic, Diagnostics, Span, SpanMap, ToDiagnostics};
use velus_nlustre::SemError;
use velus_obc::ObcError;

/// Any failure of the pipeline or of translation validation.
///
/// Every variant converts to coded, stage-tagged, span-carrying
/// [`Diagnostics`] through [`ToDiagnostics`]; the pass framework
/// performs that conversion at the stage boundary (so errors escaping
/// the [`StagedPipeline`](crate::StagedPipeline) are already
/// [`VelusError::Diag`] with resolved spans), and the raw layer
/// variants remain for callers that drive the layers directly.
#[derive(Debug)]
pub enum VelusError {
    /// Front-end failures (syntax, typing, clocking) with positions.
    Front(Diagnostics),
    /// Dataflow-level failures (scheduling, semantics).
    Sem(SemError),
    /// Obc-level failures.
    Obc(ObcError),
    /// Clight-level failures.
    Clight(velus_clight::ClightError),
    /// A translation-validation mismatch: the stages disagree.
    Validation(String),
    /// I/O or usage errors from the CLI.
    Usage(String),
    /// A failure already resolved to structured diagnostics (stable
    /// code, originating stage, source span) — what the staged pipeline
    /// returns for every mid-end failure.
    Diag(Diagnostics),
}

impl VelusError {
    /// Resolves the error into structured diagnostics at `stage`: layer
    /// errors convert through their [`ToDiagnostics`] impls with spans
    /// looked up in `spans`, and diagnostics whose producers did not
    /// know their stage are tagged with `stage`.
    #[must_use]
    pub fn into_structured(self, spans: &SpanMap, stage: DiagStage) -> VelusError {
        let mut diags = self.to_diagnostics(spans);
        diags.tag_stage(stage);
        diags.sort_dedup();
        VelusError::Diag(diags)
    }

    /// The structured diagnostics of the error (see [`ToDiagnostics`]).
    pub fn diagnostics(&self, spans: &SpanMap) -> Diagnostics {
        self.to_diagnostics(spans)
    }
}

impl ToDiagnostics for VelusError {
    fn to_diagnostics(&self, spans: &SpanMap) -> Diagnostics {
        match self {
            VelusError::Front(d) | VelusError::Diag(d) => d.clone(),
            VelusError::Sem(e) => e.to_diagnostics(spans),
            VelusError::Obc(e) => e.to_diagnostics(spans),
            VelusError::Clight(e) => e.to_diagnostics(spans),
            // Validation failures leave the stage open: the pass
            // manager tags re-check failures with their pass, and the
            // standalone validation harness tags `Validate`.
            VelusError::Validation(m) => Diagnostics::from(Diagnostic::error(
                codes::E0701,
                format!("validation failed: {m}"),
                Span::DUMMY,
            )),
            VelusError::Usage(m) => Diagnostics::from(
                Diagnostic::error(codes::E0904, m.clone(), Span::DUMMY).at_stage(DiagStage::Driver),
            ),
        }
    }
}

impl fmt::Display for VelusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VelusError::Front(d) | VelusError::Diag(d) => write!(f, "{d}"),
            VelusError::Sem(e) => write!(f, "{e}"),
            VelusError::Obc(e) => write!(f, "{e}"),
            VelusError::Clight(e) => write!(f, "{e}"),
            VelusError::Validation(m) => write!(f, "validation failed: {m}"),
            VelusError::Usage(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for VelusError {}

impl From<Diagnostics> for VelusError {
    fn from(d: Diagnostics) -> VelusError {
        VelusError::Front(d)
    }
}

impl From<SemError> for VelusError {
    fn from(e: SemError) -> VelusError {
        VelusError::Sem(e)
    }
}

impl From<ObcError> for VelusError {
    fn from(e: ObcError) -> VelusError {
        VelusError::Obc(e)
    }
}

impl From<velus_clight::ClightError> for VelusError {
    fn from(e: velus_clight::ClightError) -> VelusError {
        VelusError::Clight(e)
    }
}
