//! The unified error type of the compiler driver.

use std::fmt;

use velus_common::Diagnostics;
use velus_nlustre::SemError;
use velus_obc::ObcError;

/// Any failure of the pipeline or of translation validation.
#[derive(Debug)]
pub enum VelusError {
    /// Front-end failures (syntax, typing, clocking) with positions.
    Front(Diagnostics),
    /// Dataflow-level failures (scheduling, semantics).
    Sem(SemError),
    /// Obc-level failures.
    Obc(ObcError),
    /// Clight-level failures.
    Clight(velus_clight::ClightError),
    /// A translation-validation mismatch: the stages disagree.
    Validation(String),
    /// I/O or usage errors from the CLI.
    Usage(String),
}

impl fmt::Display for VelusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VelusError::Front(d) => write!(f, "{d}"),
            VelusError::Sem(e) => write!(f, "{e}"),
            VelusError::Obc(e) => write!(f, "{e}"),
            VelusError::Clight(e) => write!(f, "{e}"),
            VelusError::Validation(m) => write!(f, "validation failed: {m}"),
            VelusError::Usage(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for VelusError {}

impl From<Diagnostics> for VelusError {
    fn from(d: Diagnostics) -> VelusError {
        VelusError::Front(d)
    }
}

impl From<SemError> for VelusError {
    fn from(e: SemError) -> VelusError {
        VelusError::Sem(e)
    }
}

impl From<ObcError> for VelusError {
    fn from(e: ObcError) -> VelusError {
        VelusError::Obc(e)
    }
}

impl From<velus_clight::ClightError> for VelusError {
    fn from(e: velus_clight::ClightError) -> VelusError {
        VelusError::Clight(e)
    }
}
