//! The staged pass framework: the paper's compiler as a composition of
//! named, typed passes.
//!
//! The paper presents the compiler as a chain of proved passes
//! (elaborate → schedule → translate → fuse → generate); this module
//! makes that composition first-class instead of a hand-rolled driver
//! body. Each pass is a [`Pass`] implementation with
//!
//! * a **typed input and output** (the IRs flow through the type system,
//!   so passes cannot be composed out of order),
//! * a **re-validation hook** ([`Pass::revalidate`]) — the paper proves
//!   each pass's postcondition once; this reproduction re-checks it
//!   after every run, and the hook is where that check lives,
//! * **observation built in**: the [`PassManager`] wraps every run and
//!   reports start/end/fail events to a [`PassSink`] (borrowed as a
//!   [`StageObserver`]), which is what the compilation service's
//!   per-stage statistics *and* its per-pass trace spans are built
//!   from — one hook, two consumers.
//!
//! [`StagedPipeline`] composes the passes **on demand**: each IR is
//! computed (and re-validated) the first time something asks for it and
//! memoized afterwards, so a request that only needs the front half of
//! the pipeline — a WCET report, an N-Lustre dump — never pays for the
//! back half. `compile`/`compile_timed` in [`crate::pipeline`] are thin
//! wrappers that force every stage.

use std::time::Instant;

use velus_clight::printer::TestIo;
use velus_common::{codes, DiagStage, Diagnostic, Diagnostics, Ident, PreMarks, Span, SpanMap};
use velus_nlustre::ast::Program;
use velus_nlustre::{clockcheck, typecheck};
use velus_obc::ast::ObcProgram;
use velus_obc::fusion::{fuse_program, fusible};
use velus_ops::ClightOps;
use velus_server::{CancelReason, CancelToken, Stage};

use crate::VelusError;

/// The event sink of the pass framework: stage timing *and* tracing
/// observe pass execution through this one hook.
///
/// [`PassManager`] calls [`pass_start`](PassSink::pass_start) before a
/// pass body runs, then exactly one of [`pass_end`](PassSink::pass_end)
/// (success, with the wall-clock duration covering the pass body *and*
/// its re-validation hook — validation is part of the pass, not an
/// optional extra) or [`pass_fail`](PassSink::pass_fail) (so a tracing
/// sink can close the pass's span without recording a timing sample;
/// failed passes have never contributed to the stage statistics).
///
/// Every `FnMut(Stage, Duration)` closure is a `PassSink` that only
/// listens to `pass_end` — the historical timing-observer shape — so
/// `&mut closure` still coerces to a [`StageObserver`].
pub trait PassSink {
    /// The named pass is about to run.
    fn pass_start(&mut self, stage: Stage, name: &'static str) {
        let _ = (stage, name);
    }

    /// The pass and its re-validation succeeded, taking `dur`.
    fn pass_end(&mut self, stage: Stage, dur: std::time::Duration) {
        let _ = (stage, dur);
    }

    /// The pass (or its re-validation) failed.
    fn pass_fail(&mut self, stage: Stage, name: &'static str) {
        let _ = (stage, name);
    }
}

impl<F: FnMut(Stage, std::time::Duration)> PassSink for F {
    fn pass_end(&mut self, stage: Stage, dur: std::time::Duration) {
        self(stage, dur)
    }
}

/// A borrowed pass-event sink, threaded through the pipeline
/// constructors. Plain timing closures coerce here unchanged; richer
/// sinks (the service's tracing + stats sink) implement [`PassSink`]
/// directly.
pub type StageObserver<'a> = &'a mut dyn PassSink;

/// The diagnostic stage a statistics [`Stage`] maps to, for the stage
/// tag the pass manager stamps on every failure.
pub fn diag_stage(stage: Stage) -> DiagStage {
    match stage {
        Stage::Frontend => DiagStage::Elaborate,
        Stage::Check => DiagStage::Check,
        Stage::Schedule => DiagStage::Schedule,
        Stage::Translate => DiagStage::Translate,
        Stage::Fuse => DiagStage::Fuse,
        Stage::Generate => DiagStage::Generate,
        Stage::Emit => DiagStage::Emit,
        Stage::Analysis => DiagStage::Analysis,
    }
}

/// One named, typed compiler pass.
///
/// The lifetime parameter lets a pass borrow its input (e.g.
/// translation reads the scheduled program without consuming it).
pub trait Pass<'a> {
    /// What the pass consumes.
    type Input: 'a;
    /// What the pass produces.
    type Output;

    /// The statistics stage this pass reports under.
    const STAGE: Stage;
    /// A short stable name (used in diagnostics and docs).
    const NAME: &'static str;

    /// Runs the transformation.
    ///
    /// # Errors
    ///
    /// Any failure of the pass itself (the untrusted half).
    fn run(&self, input: Self::Input) -> Result<Self::Output, VelusError>;

    /// Re-checks the pass's postcondition on its output (the validated
    /// half — the paper's proof obligation, executed). The default is a
    /// no-op for passes whose output needs no separate check.
    ///
    /// # Errors
    ///
    /// A violated postcondition, reported as a validation failure.
    fn revalidate(&self, output: &Self::Output) -> Result<(), VelusError> {
        let _ = output;
        Ok(())
    }
}

/// The coded form of a cancelled compilation: the serving layer's
/// deadline (`E0802`) or drain (`E0805`) condition, stamped as a driver
/// diagnostic so it flows through the same structured failure path as
/// any compile error.
fn cancelled(reason: CancelReason) -> VelusError {
    let (code, msg) = match reason {
        CancelReason::Deadline => (codes::E0802, "request deadline exceeded during compilation"),
        CancelReason::Shutdown => (codes::E0805, "compilation cancelled: service draining"),
    };
    VelusError::Diag(Diagnostics::from(
        Diagnostic::error(code, msg, Span::DUMMY).at_stage(DiagStage::Driver),
    ))
}

/// Runs passes, re-validating and timing each one, and — when built
/// with [`PassManager::with_cancel`] — honoring cooperative
/// cancellation at every pass boundary: a request whose deadline
/// expired (or whose service is draining) stops before the next pass
/// instead of running the pipeline to completion for nobody.
pub struct PassManager<'o> {
    observe: StageObserver<'o>,
    cancel: Option<&'o CancelToken>,
}

impl<'o> PassManager<'o> {
    /// A manager reporting stage durations to `observe`.
    pub fn new(observe: StageObserver<'o>) -> PassManager<'o> {
        PassManager {
            observe,
            cancel: None,
        }
    }

    /// A manager that additionally checks `cancel` before each pass.
    pub fn with_cancel(observe: StageObserver<'o>, cancel: &'o CancelToken) -> PassManager<'o> {
        PassManager {
            observe,
            cancel: Some(cancel),
        }
    }

    /// Runs one pass: transformation, then re-validation, timing both.
    ///
    /// Failures leave this method **structured**: the layer error is
    /// converted to coded diagnostics ([`VelusError::Diag`]), its
    /// node/equation context resolved to source spans through `spans`,
    /// and every diagnostic that does not already know a finer stage is
    /// tagged with this pass's stage.
    ///
    /// # Errors
    ///
    /// The pass's own failure, its postcondition check, or the coded
    /// cancellation condition (`E0802`/`E0805`) when the manager's
    /// token fired — checked *before* the pass starts, so no observer
    /// events are emitted for a pass that never ran.
    pub fn run<'a, P: Pass<'a>>(
        &mut self,
        pass: &P,
        input: P::Input,
        spans: &SpanMap,
    ) -> Result<P::Output, VelusError> {
        if let Some(reason) = self.cancel.and_then(|t| t.state()) {
            return Err(cancelled(reason));
        }
        self.observe.pass_start(P::STAGE, P::NAME);
        let start = Instant::now();
        let result = pass.run(input).and_then(|output| {
            pass.revalidate(&output)?;
            Ok(output)
        });
        match result {
            Ok(output) => {
                self.observe.pass_end(P::STAGE, start.elapsed());
                Ok(output)
            }
            Err(e) => {
                self.observe.pass_fail(P::STAGE, P::NAME);
                Err(e.into_structured(spans, diag_stage(P::STAGE)))
            }
        }
    }
}

/// The pass names in pipeline order (documentation and test aid).
pub const PASS_ORDER: [&str; 7] = [
    ElaboratePass::NAME,
    CheckPass::NAME,
    SchedulePass::NAME,
    TranslatePass::NAME,
    FusePass::NAME,
    GeneratePass::NAME,
    EmitPass::NAME,
];

/// Input of the front end: source text plus the optional root override.
#[derive(Debug, Clone, Copy)]
pub struct FrontendInput<'a> {
    /// The Lustre source text.
    pub source: &'a str,
    /// The requested root node name, if any.
    pub root: Option<&'a str>,
}

/// Output of the front end: the elaborated program, the resolved root,
/// the front-end warnings, and the source spans of every node and
/// equation (what lets later stages report real positions).
#[derive(Debug, Clone)]
pub struct Elaborated {
    /// Elaborated, normalized, unscheduled N-Lustre.
    pub nlustre: Program<ClightOps>,
    /// The resolved root node.
    pub root: Ident,
    /// Front-end warnings (e.g. the initialization lint).
    pub warnings: Diagnostics,
    /// Node/equation source spans recorded by the elaborator.
    pub spans: SpanMap,
    /// The memory variables normalization introduced for surface `pre`s
    /// (the initialization analysis's input).
    pub pre_marks: PreMarks,
}

/// Picks the default root node: a node never instantiated by another
/// (the program's sink); ties broken towards the last one declared.
fn default_root(prog: &Program<ClightOps>) -> Option<Ident> {
    let called: velus_common::IdentSet = prog
        .nodes
        .iter()
        .flat_map(|node| &node.eqs)
        .filter_map(|eq| match eq {
            velus_nlustre::ast::Equation::Call { node: f, .. } => Some(*f),
            _ => None,
        })
        .collect();
    prog.nodes
        .iter()
        .rev()
        .map(|n| n.name)
        .find(|n| !called.contains(n))
        .or_else(|| prog.nodes.last().map(|n| n.name))
}

/// Parse, elaborate, and normalize to N-Lustre; resolve the root.
pub struct ElaboratePass;

thread_local! {
    /// Per-thread front-end scratch (token buffer + both expression
    /// arenas), recycled across compiles so a long-running service or
    /// bench loop stops allocating front-end working memory once the
    /// pools fit the largest program seen.
    static FRONTEND_SCRATCH: std::cell::RefCell<velus_lustre::FrontendScratch<ClightOps>> =
        std::cell::RefCell::new(velus_lustre::FrontendScratch::new());
}

impl<'a> Pass<'a> for ElaboratePass {
    type Input = FrontendInput<'a>;
    type Output = Elaborated;

    const STAGE: Stage = Stage::Frontend;
    const NAME: &'static str = "elaborate";

    fn run(&self, input: FrontendInput<'a>) -> Result<Elaborated, VelusError> {
        // Fall back to one-shot scratch if the thread-local is already
        // borrowed (a compile re-entered from inside a compile).
        let front = FRONTEND_SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut scratch) => velus_lustre::frontend_with::<ClightOps>(input.source, &mut scratch),
            Err(_) => velus_lustre::frontend::<ClightOps>(input.source),
        })?;
        let (nlustre, warnings, spans, pre_marks) =
            (front.program, front.warnings, front.spans, front.pre_marks);
        let root = match input.root {
            Some(r) => {
                let root = Ident::new(r);
                if nlustre.node(root).is_none() {
                    return Err(unknown_root(root));
                }
                root
            }
            None => default_root(&nlustre).ok_or_else(|| {
                VelusError::Diag(Diagnostics::from(
                    Diagnostic::error(codes::E0903, "program has no nodes", Span::DUMMY)
                        .at_stage(DiagStage::Driver),
                ))
            })?,
        };
        Ok(Elaborated {
            nlustre,
            root,
            warnings,
            spans,
            pre_marks,
        })
    }
}

/// The coded form of "no node named `root`".
fn unknown_root(root: Ident) -> VelusError {
    VelusError::Diag(Diagnostics::from(
        Diagnostic::error(codes::E0902, format!("no node named {root}"), Span::DUMMY)
            .at_stage(DiagStage::Driver),
    ))
}

/// Re-check the elaborator's postconditions (typing and clocking) on an
/// already-elaborated program. The transformation is the identity; the
/// checks *are* the pass.
pub struct CheckPass;

impl Pass<'_> for CheckPass {
    type Input = Program<ClightOps>;
    type Output = Program<ClightOps>;

    const STAGE: Stage = Stage::Check;
    const NAME: &'static str = "check";

    fn run(&self, input: Program<ClightOps>) -> Result<Program<ClightOps>, VelusError> {
        Ok(input)
    }

    fn revalidate(&self, output: &Program<ClightOps>) -> Result<(), VelusError> {
        typecheck::check_program(output)?;
        clockcheck::check_program_clocks(output)?;
        Ok(())
    }
}

/// Schedule the equations (untrusted heuristic); re-validation runs the
/// paper's schedule checker plus the typing/clocking preservation
/// checks.
pub struct SchedulePass;

impl Pass<'_> for SchedulePass {
    type Input = Program<ClightOps>;
    type Output = Program<ClightOps>;

    const STAGE: Stage = Stage::Schedule;
    const NAME: &'static str = "schedule";

    fn run(&self, mut input: Program<ClightOps>) -> Result<Program<ClightOps>, VelusError> {
        velus_nlustre::schedule::schedule_program(&mut input)?;
        Ok(input)
    }

    fn revalidate(&self, output: &Program<ClightOps>) -> Result<(), VelusError> {
        for node in &output.nodes {
            velus_nlustre::deps::check_schedule(node)?;
        }
        typecheck::check_program(output)?;
        clockcheck::check_program_clocks(output)?;
        Ok(())
    }
}

/// Checks that every method of every class is `Fusible` — the paper's
/// invariant that translation establishes and fusion preserves.
fn check_fusible(prog: &ObcProgram<ClightOps>, stage: &str) -> Result<(), VelusError> {
    for class in &prog.classes {
        for m in &class.methods {
            if !fusible(&m.body) {
                return Err(VelusError::Validation(format!(
                    "{stage} method {}.{} is not Fusible",
                    class.name, m.name
                )));
            }
        }
    }
    Ok(())
}

/// Translate scheduled SN-Lustre to Obc; re-validation re-checks Obc
/// typing and the `Fusible` postcondition.
pub struct TranslatePass;

impl<'a> Pass<'a> for TranslatePass {
    type Input = &'a Program<ClightOps>;
    type Output = ObcProgram<ClightOps>;

    const STAGE: Stage = Stage::Translate;
    const NAME: &'static str = "translate";

    fn run(&self, input: &'a Program<ClightOps>) -> Result<ObcProgram<ClightOps>, VelusError> {
        Ok(velus_obc::translate::translate_program(input)?)
    }

    fn revalidate(&self, output: &ObcProgram<ClightOps>) -> Result<(), VelusError> {
        velus_obc::typecheck::check_program(output)?;
        check_fusible(output, "translated")
    }
}

/// The fusion optimization; re-validation checks preservation of typing
/// and `Fusible`.
pub struct FusePass;

impl<'a> Pass<'a> for FusePass {
    type Input = &'a ObcProgram<ClightOps>;
    type Output = ObcProgram<ClightOps>;

    const STAGE: Stage = Stage::Fuse;
    const NAME: &'static str = "fuse";

    fn run(&self, input: &'a ObcProgram<ClightOps>) -> Result<ObcProgram<ClightOps>, VelusError> {
        Ok(fuse_program(input))
    }

    fn revalidate(&self, output: &ObcProgram<ClightOps>) -> Result<(), VelusError> {
        velus_obc::typecheck::check_program(output)?;
        check_fusible(output, "fused")
    }
}

/// Input of Clight generation: the fused Obc plus the root class.
#[derive(Debug, Clone, Copy)]
pub struct GenerateInput<'a> {
    /// The fused Obc program.
    pub obc_fused: &'a ObcProgram<ClightOps>,
    /// The root class to build the simulation `main` for.
    pub root: Ident,
}

/// Generate Clight (with the simulation `main` for the root).
pub struct GeneratePass;

impl<'a> Pass<'a> for GeneratePass {
    type Input = GenerateInput<'a>;
    type Output = velus_clight::ast::Program;

    const STAGE: Stage = Stage::Generate;
    const NAME: &'static str = "generate";

    fn run(&self, input: GenerateInput<'a>) -> Result<velus_clight::ast::Program, VelusError> {
        Ok(velus_clight::generate::generate(
            input.obc_fused,
            input.root,
        )?)
    }
}

/// Input of emission: the Clight program plus the I/O rendering mode.
#[derive(Debug, Clone, Copy)]
pub struct EmitInput<'a> {
    /// The generated Clight.
    pub clight: &'a velus_clight::ast::Program,
    /// How the I/O boundary is rendered.
    pub io: TestIo,
}

/// Print the Clight as a compilable C translation unit.
pub struct EmitPass;

impl<'a> Pass<'a> for EmitPass {
    type Input = EmitInput<'a>;
    type Output = String;

    const STAGE: Stage = Stage::Emit;
    const NAME: &'static str = "emit";

    fn run(&self, input: EmitInput<'a>) -> Result<String, VelusError> {
        Ok(velus_clight::printer::print_program(input.clight, input.io))
    }
}

/// Input of the lint pass: the scheduled program plus everything the
/// analyses resolve findings through.
#[derive(Debug, Clone, Copy)]
pub struct LintInput<'a> {
    /// The scheduled program to analyze.
    pub program: &'a Program<ClightOps>,
    /// The root node (reachability/activity start from it).
    pub root: Ident,
    /// Where normalization put each surface `pre`'s memory.
    pub pre_marks: &'a PreMarks,
    /// Node/equation spans the findings anchor to.
    pub spans: &'a SpanMap,
}

/// The static-analysis lint pass (`velus-analysis`): initialization,
/// value ranges, liveness, dead clocks. Off the main compilation chain
/// — it runs only when a lint artifact (or `velus lint`) asks for it,
/// and its findings never fail the compilation.
pub struct LintPass;

impl<'a> Pass<'a> for LintPass {
    type Input = LintInput<'a>;
    type Output = Diagnostics;

    const STAGE: Stage = Stage::Analysis;
    const NAME: &'static str = "lint";

    fn run(&self, input: LintInput<'a>) -> Result<Diagnostics, VelusError> {
        Ok(velus_analysis::lint_program(
            input.program,
            input.root,
            input.pre_marks,
            input.spans,
        ))
    }
}

/// The pipeline composed on demand: each stage runs (and re-validates)
/// the first time it is requested and is memoized afterwards.
///
/// This is the engine behind both the classic whole-pipeline API
/// ([`crate::compile`] forces every stage) and the multi-artifact
/// service (a WCET-only request forces stages up to Clight generation
/// and never runs emission; an N-Lustre dump stops after the checks).
pub struct StagedPipeline<'o> {
    pm: PassManager<'o>,
    nlustre: Program<ClightOps>,
    root: Ident,
    warnings: Diagnostics,
    spans: SpanMap,
    pre_marks: PreMarks,
    snlustre: Option<Program<ClightOps>>,
    obc: Option<ObcProgram<ClightOps>>,
    obc_fused: Option<ObcProgram<ClightOps>>,
    clight: Option<velus_clight::ast::Program>,
    lint: Option<Diagnostics>,
}

impl<'o> StagedPipeline<'o> {
    /// Elaborates `source` and prepares the staged pipeline (the
    /// `Frontend` and `Check` stages run here).
    ///
    /// # Errors
    ///
    /// Front-end diagnostics, an unknown root, or a failed postcondition
    /// re-check.
    pub fn from_source(
        source: &str,
        root: Option<&str>,
        observe: StageObserver<'o>,
    ) -> Result<StagedPipeline<'o>, VelusError> {
        Self::from_source_with(source, root, observe, None)
    }

    /// [`StagedPipeline::from_source`] with an optional cancellation
    /// token, checked at every pass boundary for the pipeline's whole
    /// life (later on-demand stages included).
    ///
    /// # Errors
    ///
    /// Front-end diagnostics, an unknown root, a failed postcondition
    /// re-check, or the coded cancellation condition.
    pub fn from_source_with(
        source: &str,
        root: Option<&str>,
        observe: StageObserver<'o>,
        cancel: Option<&'o CancelToken>,
    ) -> Result<StagedPipeline<'o>, VelusError> {
        let mut pm = match cancel {
            Some(token) => PassManager::with_cancel(observe, token),
            None => PassManager::new(observe),
        };
        let elaborated = pm.run(
            &ElaboratePass,
            FrontendInput { source, root },
            &SpanMap::new(),
        )?;
        Self::from_elaborated(elaborated, pm)
    }

    /// Starts from an already-elaborated program (used by benchmarks and
    /// generated workloads that skip the parser). The `Check` stage runs
    /// here.
    ///
    /// # Errors
    ///
    /// An unknown root or failed elaborator postconditions.
    pub fn from_program(
        nlustre: Program<ClightOps>,
        root: Ident,
        warnings: Diagnostics,
        observe: StageObserver<'o>,
    ) -> Result<StagedPipeline<'o>, VelusError> {
        if nlustre.node(root).is_none() {
            return Err(unknown_root(root));
        }
        Self::from_elaborated(
            Elaborated {
                nlustre,
                root,
                warnings,
                spans: SpanMap::new(),
                pre_marks: PreMarks::new(),
            },
            PassManager::new(observe),
        )
    }

    fn from_elaborated(
        elaborated: Elaborated,
        mut pm: PassManager<'o>,
    ) -> Result<StagedPipeline<'o>, VelusError> {
        let nlustre = pm.run(&CheckPass, elaborated.nlustre, &elaborated.spans)?;
        Ok(StagedPipeline {
            pm,
            nlustre,
            root: elaborated.root,
            warnings: elaborated.warnings,
            spans: elaborated.spans,
            pre_marks: elaborated.pre_marks,
            snlustre: None,
            obc: None,
            obc_fused: None,
            clight: None,
            lint: None,
        })
    }

    /// The resolved root node.
    pub fn root(&self) -> Ident {
        self.root
    }

    /// The node/equation source spans recorded by the elaborator (empty
    /// when the pipeline started from an already-elaborated program).
    pub fn spans(&self) -> &SpanMap {
        &self.spans
    }

    /// The front-end warnings.
    pub fn warnings(&self) -> &Diagnostics {
        &self.warnings
    }

    /// The elaborated, unscheduled N-Lustre (always available).
    pub fn nlustre(&self) -> &Program<ClightOps> {
        &self.nlustre
    }

    /// The scheduled SN-Lustre, scheduling on first demand.
    ///
    /// # Errors
    ///
    /// Scheduling failures or a failed schedule re-check.
    pub fn snlustre(&mut self) -> Result<&Program<ClightOps>, VelusError> {
        if self.snlustre.is_none() {
            let scheduled = self
                .pm
                .run(&SchedulePass, self.nlustre.clone(), &self.spans)?;
            self.snlustre = Some(scheduled);
        }
        Ok(self.snlustre.as_ref().expect("just scheduled"))
    }

    /// The translated (unfused) Obc, translating on first demand.
    ///
    /// # Errors
    ///
    /// Translation failures or failed typing/`Fusible` re-checks.
    pub fn obc(&mut self) -> Result<&ObcProgram<ClightOps>, VelusError> {
        if self.obc.is_none() {
            self.snlustre()?;
            let obc = self.pm.run(
                &TranslatePass,
                self.snlustre.as_ref().expect("scheduled"),
                &self.spans,
            )?;
            self.obc = Some(obc);
        }
        Ok(self.obc.as_ref().expect("just translated"))
    }

    /// The fused Obc, fusing on first demand.
    ///
    /// # Errors
    ///
    /// Failed preservation re-checks.
    pub fn obc_fused(&mut self) -> Result<&ObcProgram<ClightOps>, VelusError> {
        if self.obc_fused.is_none() {
            self.obc()?;
            let fused = self.pm.run(
                &FusePass,
                self.obc.as_ref().expect("translated"),
                &self.spans,
            )?;
            self.obc_fused = Some(fused);
        }
        Ok(self.obc_fused.as_ref().expect("just fused"))
    }

    /// The generated Clight, generating on first demand.
    ///
    /// # Errors
    ///
    /// Generation failures.
    pub fn clight(&mut self) -> Result<&velus_clight::ast::Program, VelusError> {
        if self.clight.is_none() {
            self.obc_fused()?;
            let clight = self.pm.run(
                &GeneratePass,
                GenerateInput {
                    obc_fused: self.obc_fused.as_ref().expect("fused"),
                    root: self.root,
                },
                &self.spans,
            )?;
            self.clight = Some(clight);
        }
        Ok(self.clight.as_ref().expect("just generated"))
    }

    /// The full static-analysis lint findings, analyzing on first
    /// demand (forcing scheduling first — the analyses run over the
    /// scheduled program). Findings never fail the compilation: a
    /// guaranteed trap is an `E`-severity *finding*, surfaced through
    /// the lint artifact and `velus lint`, not a compile error.
    ///
    /// # Errors
    ///
    /// Scheduling failures (the lint pass itself is total).
    pub fn lint(&mut self) -> Result<&Diagnostics, VelusError> {
        if self.lint.is_none() {
            self.snlustre()?;
            let findings = self.pm.run(
                &LintPass,
                LintInput {
                    program: self.snlustre.as_ref().expect("scheduled"),
                    root: self.root,
                    pre_marks: &self.pre_marks,
                    spans: &self.spans,
                },
                &self.spans,
            )?;
            self.lint = Some(findings);
        }
        Ok(self.lint.as_ref().expect("just linted"))
    }

    /// The lint findings, if [`StagedPipeline::lint`] already ran
    /// (`None` otherwise — this never forces the analysis).
    pub fn lint_cached(&self) -> Option<&Diagnostics> {
        self.lint.as_ref()
    }

    /// Prints the C translation unit (forcing generation first). The
    /// `Emit` stage is timed per call — only requests that actually need
    /// C pay for (and report) it.
    ///
    /// # Errors
    ///
    /// Any failure of the forced stages.
    pub fn emit(&mut self, io: TestIo) -> Result<String, VelusError> {
        self.clight()?;
        self.pm.run(
            &EmitPass,
            EmitInput {
                clight: self.clight.as_ref().expect("generated"),
                io,
            },
            &self.spans,
        )
    }

    /// Forces every stage and returns the classic whole-pipeline result.
    ///
    /// # Errors
    ///
    /// Any stage failure.
    pub fn into_compiled(mut self) -> Result<crate::pipeline::Compiled, VelusError> {
        self.clight()?;
        Ok(crate::pipeline::Compiled {
            nlustre: self.nlustre,
            snlustre: self.snlustre.expect("forced"),
            obc: self.obc.expect("forced"),
            obc_fused: self.obc_fused.expect("forced"),
            clight: self.clight.expect("forced"),
            root: self.root,
            warnings: self.warnings,
            spans: self.spans,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = "
        node counter(ini, inc: int; res: bool) returns (n: int)
        let
          n = if (true fby false) or res then ini else (0 fby n) + inc;
        tel
    ";

    #[test]
    fn staged_pipeline_is_lazy_and_memoizing() {
        let mut stages: Vec<Stage> = Vec::new();
        let mut observe = |stage: Stage, _dur: std::time::Duration| stages.push(stage);
        let mut staged = StagedPipeline::from_source(COUNTER, None, &mut observe).unwrap();
        let _ = staged.snlustre().unwrap();
        let _ = staged.snlustre().unwrap(); // memoized: no second report
        let _ = staged.obc_fused().unwrap(); // forces translate then fuse
        drop(staged);
        assert_eq!(
            stages,
            vec![
                Stage::Frontend,
                Stage::Check,
                Stage::Schedule,
                Stage::Translate,
                Stage::Fuse,
            ]
        );
    }

    #[test]
    fn pass_names_are_stable() {
        assert_eq!(
            PASS_ORDER,
            [
                "elaborate",
                "check",
                "schedule",
                "translate",
                "fuse",
                "generate",
                "emit"
            ]
        );
    }

    #[test]
    fn a_cancelled_token_stops_the_pipeline_at_a_pass_boundary() {
        // A live token compiles normally…
        let token = CancelToken::unbounded();
        let mut observe = |_: Stage, _: std::time::Duration| {};
        let mut staged =
            StagedPipeline::from_source_with(COUNTER, None, &mut observe, Some(&token)).unwrap();
        let _ = staged.snlustre().unwrap();
        // …until it fires: the next demanded stage refuses to run and
        // surfaces the drain code, with no observer events for the
        // never-started pass.
        token.cancel();
        let mut events = 0usize;
        // Rebuild with a counting observer on the already-fired token:
        // even the first pass refuses.
        let mut count = |_: Stage, _: std::time::Duration| events += 1;
        let err = StagedPipeline::from_source_with(COUNTER, None, &mut count, Some(&token))
            .err()
            .expect("cancelled before elaboration");
        let diags = velus_common::ToDiagnostics::to_diagnostics(&err, &SpanMap::new());
        assert_eq!(diags.iter().next().unwrap().code, codes::E0805);
        assert_eq!(events, 0, "no stage ran, none was observed");
        // An expired deadline reports E0802 instead.
        let expired = CancelToken::with_deadline(std::time::Instant::now());
        let mut observe = |_: Stage, _: std::time::Duration| {};
        let err = StagedPipeline::from_source_with(COUNTER, None, &mut observe, Some(&expired))
            .err()
            .expect("deadline already expired");
        let diags = velus_common::ToDiagnostics::to_diagnostics(&err, &SpanMap::new());
        assert_eq!(diags.iter().next().unwrap().code, codes::E0802);
    }

    #[test]
    fn revalidation_rejects_a_corrupted_schedule() {
        // A program whose equations are deliberately mis-ordered fails
        // the schedule *checker* even though each pass alone succeeds:
        // run the checker directly on an unscheduled two-equation node
        // with a forward dependency.
        let src = "
            node f(x: int) returns (y: int)
            var a: int;
            let
              y = a + 1;
              a = x + 1;
            tel
        ";
        let (prog, _) = velus_lustre::compile_to_nlustre::<ClightOps>(src).unwrap();
        // The schedule checker on the *unscheduled* program must reject
        // the order above (y reads a before a is defined).
        let ok = prog
            .nodes
            .iter()
            .try_for_each(velus_nlustre::deps::check_schedule);
        assert!(ok.is_err(), "mis-ordered equations must fail the checker");
        // And the SchedulePass both fixes and re-validates it.
        let mut observe = |_: Stage, _: std::time::Duration| {};
        let mut pm = PassManager::new(&mut observe);
        let scheduled = pm.run(&SchedulePass, prog, &SpanMap::new()).unwrap();
        scheduled
            .nodes
            .iter()
            .try_for_each(velus_nlustre::deps::check_schedule)
            .unwrap();
    }
}
