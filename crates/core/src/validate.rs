//! Translation validation: the paper's end-to-end theorem as a runtime
//! check over a finite input prefix.
//!
//! The PLDI'17 theorem states that for a node `f` with dataflow semantics
//! `G ⊢node f(xs, ys)`, the generated assembly produces an infinite trace
//! bisimilar to `⟨VLoad(xs(n)) · VStore(ys(n))⟩`. Without a proof
//! assistant we *check* the chain on executions:
//!
//! 1. the dataflow semantics of the unscheduled and the scheduled program
//!    agree (scheduling preserves semantics);
//! 2. the exposed-memory semantics (§3.2) produces the same outputs, and
//!    materializes the memory tree `M`;
//! 3. the translated Obc — unfused and fused — produces the same outputs
//!    under `reset(); step()*`, with `MemCorres_n(M, mem)` (Fig. 7)
//!    asserted before every step (Lemma 1's invariant);
//! 4. the generated Clight produces the same outputs when driven step by
//!    step, with the `staterep` separation assertion (Fig. 11) checked
//!    between the Obc memory and the Clight block memory at every
//!    boundary (the `match_states` invariant);
//! 5. a fresh Clight machine running the generated `main` produces
//!    exactly the volatile trace `⟨VLoad · VStore⟩` of the dataflow
//!    streams.
//!
//! Any disagreement is reported as [`VelusError::Validation`] naming the
//! stage and instant.

use velus_clight::generate::{main_fn_name, method_fn_name, vol_in_name};
use velus_clight::interp::{Event, Machine, RVal};
use velus_clight::sep::staterep;
use velus_common::Ident;
use velus_nlustre::memory::Memory;
use velus_nlustre::msem::MSem;
use velus_nlustre::streams::{SVal, StreamSet};
use velus_obc::ast::{reset_name, step_name};
use velus_obc::memcorres::check_memcorres;
use velus_obc::sem::call_method;
use velus_ops::{CVal, ClightOps, Ops};

use crate::pipeline::Compiled;
use crate::VelusError;

/// Statistics from a successful validation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationReport {
    /// Number of instants checked.
    pub instants: usize,
    /// Number of `MemCorres` assertions checked.
    pub memcorres_checks: usize,
    /// Number of `staterep` separation assertions checked.
    pub staterep_checks: usize,
    /// Number of volatile events compared.
    pub trace_events: usize,
}

/// One oracle pair of the differential chain: each variant names a
/// comparison the theorem requires to agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OracleId {
    /// Unscheduled vs scheduled dataflow semantics.
    Scheduling,
    /// Exposed-memory semantics vs dataflow outputs.
    MemorySemantics,
    /// The `MemCorres_n(M, mem)` invariant between the memory-semantics
    /// tree and the Obc memory (Fig. 7).
    MemCorres,
    /// Unfused Obc execution vs dataflow outputs.
    ObcUnfused,
    /// Fused Obc execution vs dataflow outputs.
    ObcFused,
    /// The `staterep` separation assertion between the Obc memory and
    /// the Clight block memory (Fig. 11).
    StateRep,
    /// Step-driven Clight execution vs dataflow outputs.
    Clight,
    /// The generated `main`'s volatile event trace vs
    /// `⟨VLoad(xs(n)) · VStore(ys(n))⟩`.
    VolatileTrace,
}

impl OracleId {
    /// Every oracle, in chain order.
    pub const ALL: [OracleId; 8] = [
        OracleId::Scheduling,
        OracleId::MemorySemantics,
        OracleId::MemCorres,
        OracleId::ObcUnfused,
        OracleId::ObcFused,
        OracleId::StateRep,
        OracleId::Clight,
        OracleId::VolatileTrace,
    ];

    /// The oracle's stable human-readable name (also the JSON token the
    /// campaign records use).
    pub fn name(self) -> &'static str {
        match self {
            OracleId::Scheduling => "scheduling",
            OracleId::MemorySemantics => "memory semantics",
            OracleId::MemCorres => "memcorres",
            OracleId::ObcUnfused => "obc",
            OracleId::ObcFused => "obc (fused)",
            OracleId::StateRep => "staterep",
            OracleId::Clight => "clight",
            OracleId::VolatileTrace => "volatile trace",
        }
    }
}

impl std::fmt::Display for OracleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured divergence: which oracle pair disagreed, where, and what
/// each side produced — the machine-readable form the campaign runner
/// shrinks against and serializes, replacing the old flat error string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleDivergence {
    /// The disagreeing oracle pair.
    pub oracle: OracleId,
    /// The first disagreeing instant.
    pub instant: usize,
    /// The output stream index, when the disagreement is per-output.
    pub output: Option<usize>,
    /// The reference side (the dataflow semantics / expected value).
    pub left: String,
    /// The implementation side (the later stage's value).
    pub right: String,
}

impl OracleDivergence {
    fn at(oracle: OracleId, instant: usize, left: String, right: String) -> OracleDivergence {
        OracleDivergence {
            oracle,
            instant,
            output: None,
            left,
            right,
        }
    }

    fn output(mut self, k: usize) -> OracleDivergence {
        self.output = Some(k);
        self
    }
}

impl std::fmt::Display for OracleDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} disagrees at instant {}: ",
            self.oracle.name(),
            self.instant
        )?;
        if let Some(k) = self.output {
            write!(f, "output {k}: ")?;
        }
        write!(f, "{} vs {}", self.left, self.right)
    }
}

/// The structured result of running the full oracle set: the checked
/// statistics plus the first divergence, if any. Semantic failures (a
/// generated program applying an operator outside its domain — the
/// theorem is vacuous there) are *not* divergences and stay errors of
/// [`run_oracles`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleReport {
    /// Number of instants checked before stopping.
    pub instants: usize,
    /// Number of `MemCorres` assertions checked.
    pub memcorres_checks: usize,
    /// Number of `staterep` separation assertions checked.
    pub staterep_checks: usize,
    /// Number of volatile events compared.
    pub trace_events: usize,
    /// The first disagreement of the chain, if any. `None` means every
    /// oracle pair agreed on the whole prefix.
    pub divergence: Option<OracleDivergence>,
}

impl OracleReport {
    fn new(instants: usize) -> OracleReport {
        OracleReport {
            instants,
            memcorres_checks: 0,
            staterep_checks: 0,
            trace_events: 0,
            divergence: None,
        }
    }

    /// Whether every oracle pair agreed.
    pub fn agreed(&self) -> bool {
        self.divergence.is_none()
    }

    fn diverged(mut self, d: OracleDivergence) -> OracleReport {
        self.divergence = Some(d);
        self
    }
}

/// Reads the (present) value of stream `s` at instant `i`.
fn value_at(s: &[SVal<ClightOps>], i: usize) -> Result<CVal, VelusError> {
    match s.get(i) {
        Some(SVal::Pres(v)) => Ok(*v),
        Some(SVal::Abs) => Err(VelusError::Validation(format!(
            "validation requires all-present inputs (absent at instant {i})"
        ))),
        None => Err(VelusError::Validation(format!(
            "input stream shorter than {i} instants"
        ))),
    }
}

/// Extracts the (present) values of instant `i` from a stream set into
/// `out` — the scratch-buffer form: the validation loops run this once
/// per instant per semantic model, so one hoisted buffer replaces a
/// fresh `Vec<CVal>` per instant per stream set.
fn values_at_into(
    inputs: &StreamSet<ClightOps>,
    i: usize,
    out: &mut Vec<CVal>,
) -> Result<(), VelusError> {
    out.clear();
    out.reserve(inputs.len());
    for s in inputs {
        out.push(value_at(s, i)?);
    }
    Ok(())
}

/// Runs the full oracle set on `n` instants of `inputs` and reports the
/// result structurally: statistics plus the first [`OracleDivergence`],
/// if any. The chain stops at the first divergence (later oracles would
/// compare against an already-disagreeing reference).
///
/// # Errors
///
/// Semantic failures only: the source program has no dataflow semantics
/// on these inputs (e.g. an operator applied outside its domain), the
/// theorem is vacuous, and no comparison is possible. A *disagreement*
/// between two stages is not an error — it is the payload of the
/// returned report.
pub fn run_oracles(
    c: &Compiled,
    inputs: &StreamSet<ClightOps>,
    n: usize,
) -> Result<OracleReport, VelusError> {
    let root = c.root;
    let node = c
        .snlustre
        .node(root)
        .ok_or_else(|| VelusError::Usage(format!("no node named {root}")))?;
    let mut rep = OracleReport::new(n);

    // 1. Dataflow semantics, unscheduled and scheduled.
    let df = velus_nlustre::dataflow::run_node(&c.nlustre, root, inputs, n)?;
    let df_sched = velus_nlustre::dataflow::run_node(&c.snlustre, root, inputs, n)?;
    if let Some(d) = velus_first_divergence(&df, &df_sched) {
        return Ok(
            rep.diverged(OracleDivergence::at(OracleId::Scheduling, d.1, d.2, d.3).output(d.0))
        );
    }

    // 2. Exposed-memory semantics.
    let mut msem = MSem::new(&c.snlustre, root)?.recording();
    let ms_out = msem.run(inputs, n)?;
    if let Some(d) = velus_first_divergence(&df, &ms_out) {
        return Ok(rep
            .diverged(OracleDivergence::at(OracleId::MemorySemantics, d.1, d.2, d.3).output(d.0)));
    }
    let mtrace = msem.trace();

    // 3. Obc, unfused and fused, with MemCorres at every boundary.
    let mut obc_mem_boundaries: Vec<Memory<CVal>> = Vec::with_capacity(n + 1);
    let mut vals: Vec<CVal> = Vec::with_capacity(inputs.len());
    for (oracle, obc) in [
        (OracleId::ObcUnfused, &c.obc),
        (OracleId::ObcFused, &c.obc_fused),
    ] {
        let record = oracle == OracleId::ObcFused;
        let mut mem = Memory::new();
        call_method(obc, root, &mut mem, reset_name(), &[])?;
        // `i` is an instant, used against several indexed structures at
        // once — a range loop reads better than nested enumerates.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            if let Err(e) = check_memcorres(&c.snlustre, node, mtrace, i, &mem) {
                return Ok(rep.diverged(OracleDivergence::at(
                    OracleId::MemCorres,
                    i,
                    "MemCorres(M, mem)".to_owned(),
                    e.to_string(),
                )));
            }
            rep.memcorres_checks += 1;
            if record {
                obc_mem_boundaries.push(mem.clone());
            }
            values_at_into(inputs, i, &mut vals)?;
            let outs = call_method(obc, root, &mut mem, step_name(), &vals)?;
            for (k, v) in outs.iter().enumerate() {
                match &df[k][i] {
                    SVal::Pres(expected) if expected == v => {}
                    other => {
                        return Ok(rep.diverged(
                            OracleDivergence::at(oracle, i, format!("{other}"), v.to_string())
                                .output(k),
                        ))
                    }
                }
            }
        }
        if record {
            obc_mem_boundaries.push(mem.clone());
        }
    }

    // 4. Clight, driven step by step, with staterep at every boundary.
    {
        let mut machine = Machine::new(&c.clight)?;
        let selfb = machine.alloc_struct(root)?;
        machine.call(method_fn_name(root, reset_name()), &[RVal::Ptr(selfb, 0)])?;
        let step_m = c
            .obc_fused
            .class(root)
            .and_then(|k| k.method(step_name()))
            .ok_or_else(|| VelusError::Validation("missing step method".to_owned()))?
            .clone();
        let multi = step_m.outputs.len() >= 2;
        let out_struct = velus_clight::generate::out_struct_name(root, step_name());
        let outb = if multi {
            Some(machine.alloc_struct(out_struct)?)
        } else {
            None
        };
        for i in 0..n {
            let assertion = staterep(
                &machine.layouts,
                &c.obc_fused,
                root,
                &obc_mem_boundaries[i],
                selfb,
                0,
            )?;
            if let Err(e) = assertion.check(&machine.mem) {
                return Ok(rep.diverged(OracleDivergence::at(
                    OracleId::StateRep,
                    i,
                    "staterep(mem, blocks)".to_owned(),
                    e.to_string(),
                )));
            }
            rep.staterep_checks += 1;

            values_at_into(inputs, i, &mut vals)?;
            let mut args = vec![RVal::Ptr(selfb, 0)];
            if let Some(b) = outb {
                args.push(RVal::Ptr(b, 0));
            }
            args.extend(vals.iter().copied().map(RVal::Scalar));
            let ret = machine.call(method_fn_name(root, step_name()), &args)?;

            // Collect the outputs.
            let outs: Vec<CVal> = if multi {
                let b = outb.expect("allocated above");
                step_m
                    .outputs
                    .iter()
                    .map(|(o, oty)| {
                        let off = machine.layouts.field_offset(out_struct, *o)?;
                        machine.mem.load(*oty, b, off)
                    })
                    .collect::<Result<_, _>>()?
            } else {
                match ret {
                    Some(RVal::Scalar(v)) => vec![v],
                    None => vec![],
                    Some(RVal::Ptr(..)) => {
                        return Ok(rep.diverged(OracleDivergence::at(
                            OracleId::Clight,
                            i,
                            "a scalar step result".to_owned(),
                            "a pointer".to_owned(),
                        )))
                    }
                }
            };
            for (k, v) in outs.iter().enumerate() {
                match &df[k][i] {
                    SVal::Pres(expected) if expected == v => {}
                    other => {
                        return Ok(rep.diverged(
                            OracleDivergence::at(
                                OracleId::Clight,
                                i,
                                format!("{other}"),
                                v.to_string(),
                            )
                            .output(k),
                        ))
                    }
                }
            }
        }
        // Final boundary.
        let assertion = staterep(
            &machine.layouts,
            &c.obc_fused,
            root,
            &obc_mem_boundaries[n],
            selfb,
            0,
        )?;
        if let Err(e) = assertion.check(&machine.mem) {
            return Ok(rep.diverged(OracleDivergence::at(
                OracleId::StateRep,
                n,
                "staterep(mem, blocks)".to_owned(),
                e.to_string(),
            )));
        }
        rep.staterep_checks += 1;
    }

    // 5. The generated main's volatile trace.
    {
        let mut machine = Machine::new(&c.clight)?;
        let decls: Vec<(Ident, _)> = node.inputs.iter().map(|d| (d.name, d.ty)).collect();
        if decls.is_empty() {
            machine.push_inputs(
                vol_in_name(Ident::new("tick")),
                (0..n).map(|_| CVal::bool(true)),
            );
        }
        for (k, (name, _)) in decls.iter().enumerate() {
            let stream: Vec<CVal> = (0..n)
                .map(|i| value_at(&inputs[k], i))
                .collect::<Result<_, _>>()?;
            machine.push_inputs(vol_in_name(*name), stream);
        }
        machine.run_main(main_fn_name())?;

        // Build the expected trace.
        let mut expected: Vec<Event> = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            if decls.is_empty() {
                expected.push(Event::Load(
                    vol_in_name(Ident::new("tick")),
                    CVal::bool(true),
                ));
            }
            values_at_into(inputs, i, &mut vals)?;
            for ((name, _), v) in decls.iter().zip(&vals) {
                expected.push(Event::Load(vol_in_name(*name), *v));
            }
            for (k, d) in node.outputs.iter().enumerate() {
                match &df[k][i] {
                    SVal::Pres(v) => expected.push(Event::Store(
                        velus_clight::generate::vol_out_name(d.name),
                        *v,
                    )),
                    SVal::Abs => {
                        return Ok(rep.diverged(
                            OracleDivergence::at(
                                OracleId::VolatileTrace,
                                i,
                                "a present root output".to_owned(),
                                "absent".to_owned(),
                            )
                            .output(k),
                        ))
                    }
                }
            }
        }
        if machine.trace != expected {
            let at = machine
                .trace
                .iter()
                .zip(&expected)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| machine.trace.len().min(expected.len()));
            let got = velus_clight::interp::render_trace(&machine.trace);
            let want = velus_clight::interp::render_trace(&expected);
            return Ok(rep.diverged(OracleDivergence::at(
                OracleId::VolatileTrace,
                at,
                format!("trace:\n{want}"),
                format!("trace:\n{got}"),
            )));
        }
        rep.trace_events = expected.len();
    }

    Ok(rep)
}

/// Locates the first disagreement between two stream sets (stream index,
/// instant, left rendering, right rendering) — a local helper so the
/// dataflow-vs-dataflow oracles report positions, not just booleans.
fn velus_first_divergence(
    a: &StreamSet<ClightOps>,
    b: &StreamSet<ClightOps>,
) -> Option<(usize, usize, String, String)> {
    if a.len() != b.len() {
        return Some((
            a.len().min(b.len()),
            0,
            format!("{} streams", a.len()),
            format!("{} streams", b.len()),
        ));
    }
    for (k, (sa, sb)) in a.iter().zip(b).enumerate() {
        for i in 0..sa.len().max(sb.len()) {
            match (sa.get(i), sb.get(i)) {
                (Some(x), Some(y)) if x == y => {}
                (x, y) => {
                    return Some((
                        k,
                        i,
                        x.map_or("<missing>".to_owned(), |v| v.to_string()),
                        y.map_or("<missing>".to_owned(), |v| v.to_string()),
                    ))
                }
            }
        }
    }
    None
}

/// Validates the full compilation chain on `n` instants of `inputs` and
/// returns the checked statistics.
///
/// # Errors
///
/// The first stage disagreement (rendered from the structured
/// [`OracleDivergence`] of [`run_oracles`]), semantic failure (e.g. the
/// source program applies an operator outside its domain — then the
/// theorem is vacuous and validation cannot proceed), or assertion
/// violation.
pub fn validate_with_report(
    c: &Compiled,
    inputs: &StreamSet<ClightOps>,
    n: usize,
) -> Result<ValidationReport, VelusError> {
    let rep = run_oracles(c, inputs, n)?;
    match rep.divergence {
        Some(d) => Err(VelusError::Validation(d.to_string())),
        None => Ok(ValidationReport {
            instants: rep.instants,
            memcorres_checks: rep.memcorres_checks,
            staterep_checks: rep.staterep_checks,
            trace_events: rep.trace_events,
        }),
    }
}

/// Validates and discards the report.
///
/// # Errors
///
/// See [`validate_with_report`].
pub fn validate(c: &Compiled, inputs: &StreamSet<ClightOps>, n: usize) -> Result<(), VelusError> {
    validate_with_report(c, inputs, n).map(|_| ())
}

/// Builds simple deterministic all-present input streams for a compiled
/// program's root node: ramps for numeric inputs, alternating booleans.
/// Useful for quick CLI validation; the test suite uses the random
/// generators of `velus-testkit` instead.
pub fn default_inputs(c: &Compiled, n: usize) -> StreamSet<ClightOps> {
    let node = c.snlustre.node(c.root).expect("root exists");
    node.inputs
        .iter()
        .enumerate()
        .map(|(k, d)| {
            (0..n)
                .map(|i| {
                    let v = match d.ty {
                        velus_ops::CTy::Bool => CVal::bool((i + k) % 3 == 0),
                        velus_ops::CTy::F32 => CVal::single((i as f32) / 4.0 + k as f32),
                        velus_ops::CTy::F64 => CVal::float((i as f64) / 4.0 + k as f64),
                        velus_ops::CTy::I64 | velus_ops::CTy::U64 => {
                            CVal::long((i as i64) + (k as i64) * 10)
                        }
                        _ => {
                            let raw = (i as i64 + k as i64 * 7) % 100;
                            match ClightOps::const_of_literal(
                                &velus_ops::Literal::Int(raw as i128),
                                &d.ty,
                            ) {
                                Some(c) => c.val(),
                                None => CVal::int(0),
                            }
                        }
                    };
                    SVal::Pres(v)
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compile;

    const COUNTER: &str = "
        node counter(ini, inc: int; res: bool) returns (n: int)
        let
          n = if (true fby false) or res then ini else (0 fby n) + inc;
        tel
    ";

    #[test]
    fn counter_validates_end_to_end() {
        let c = compile(COUNTER, None).unwrap();
        let inputs = default_inputs(&c, 20);
        let report = validate_with_report(&c, &inputs, 20).unwrap();
        assert_eq!(report.instants, 20);
        assert!(report.memcorres_checks >= 40);
        assert!(report.staterep_checks >= 21);
        // 3 loads + 1 store per instant.
        assert_eq!(report.trace_events, 80);
    }

    #[test]
    fn multi_output_nodes_validate() {
        let src = format!(
            "{COUNTER}
            node d_integrator(gamma: int) returns (speed, position: int)
            let
              speed = counter(0, gamma, false);
              position = counter(0, speed, false);
            tel"
        );
        let c = compile(&src, None).unwrap();
        let inputs = default_inputs(&c, 16);
        validate(&c, &inputs, 16).unwrap();
    }

    #[test]
    fn sampled_programs_validate() {
        let src = "
            node sub(i: int) returns (o: int)
            let o = (0 fby o) + i; tel
            node top(k: bool; x: int) returns (y: int)
            var s: int when k;
            let
              s = sub(x when k);
              y = merge k s ((0 fby y) when not k);
            tel
        ";
        let c = compile(src, None).unwrap();
        let inputs = default_inputs(&c, 24);
        validate(&c, &inputs, 24).unwrap();
    }

    #[test]
    fn inputless_nodes_validate_via_tick() {
        let src = "
            node blink() returns (b: bool)
            let b = true fby (not b); tel
        ";
        let c = compile(src, None).unwrap();
        validate(&c, &vec![], 8).unwrap();
    }

    #[test]
    fn undefined_operations_are_reported_not_miscompiled() {
        let src = "
            node divider(x: int) returns (y: int)
            let y = 100 / x; tel
        ";
        let c = compile(src, None).unwrap();
        // x ramps from 0: division by zero at instant 0.
        let inputs = default_inputs(&c, 4);
        let err = validate(&c, &inputs, 4).unwrap_err();
        match err {
            VelusError::Sem(velus_nlustre::SemError::UndefinedOperation(_)) => {}
            other => panic!("expected an undefined-operation error, got {other}"),
        }
    }
}
