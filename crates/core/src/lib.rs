//! Vélus-rs: a Lustre-to-C compiler reproducing the pipeline of
//! *A Formally Verified Compiler for Lustre* (PLDI 2017), with executable
//! semantics at every level and translation validation in place of Coq
//! proofs.
//!
//! ```text
//! Lustre ─parse/elaborate─▶ N-Lustre ─schedule─▶ SN-Lustre
//!        ─translate─▶ Obc ─fuse─▶ Obc ─generate─▶ Clight ─print─▶ C
//! ```
//!
//! * [`compile`] runs the whole pipeline and returns every intermediate
//!   representation ([`Compiled`]).
//! * [`service`] serves batches of compilations in parallel from a
//!   content-addressed artifact cache (the `velus-server` substrate
//!   instantiated with this pipeline).
//! * [`validate()`] checks the paper's end-to-end correctness statement on
//!   a finite input prefix: the dataflow semantics, the exposed-memory
//!   semantics, the Obc big-step execution (fused and unfused, with
//!   `MemCorres` asserted at every instant), and the Clight execution
//!   (with `staterep` separation assertions checked at every step
//!   boundary and the volatile-event trace compared against
//!   `⟨VLoad(xs(n)) · VStore(ys(n))⟩`) must all agree.
//!
//! # Examples
//!
//! ```
//! let src = "
//!     node counter(ini, inc: int; res: bool) returns (n: int)
//!     let
//!       n = if (true fby false) or res then ini else (0 fby n) + inc;
//!     tel
//! ";
//! let compiled = velus::compile(src, None)?;
//! let c_code = velus::emit_c(&compiled, velus::TestIo::Volatile);
//! assert!(c_code.contains("counter__step"));
//! # Ok::<(), velus::VelusError>(())
//! ```

pub mod artifacts;
mod error;
pub mod passes;
pub mod pipeline;
pub mod service;
pub mod validate;

pub use artifacts::ServiceArtifact;
pub use error::VelusError;
pub use passes::{PassManager, PassSink, StagedPipeline};
pub use pipeline::{
    compile, compile_program, compile_program_timed, compile_timed, emit_c, Compiled,
};
pub use service::{PipelineCompiler, VelusService};
pub use validate::{
    run_oracles, validate, validate_with_report, OracleDivergence, OracleId, OracleReport,
    ValidationReport,
};
pub use velus_clight::printer::TestIo;
pub use velus_obs::{Recorder, RecorderConfig};
pub use velus_server::{
    ArtifactKind, CompileOptions, CompileRequest, IoMode, IrStageKind, ServiceConfig, Stage,
    WcetModelKind,
};
