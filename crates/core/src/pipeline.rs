//! The classic whole-pipeline driver API, as thin wrappers over the
//! staged pass framework ([`crate::passes`]).
//!
//! [`compile`] forces every pass of the [`StagedPipeline`] — elaborate,
//! check, schedule, translate, fuse, generate — and returns every
//! intermediate representation, exactly as the original hand-rolled
//! driver did. Callers that need only part of the pipeline (WCET
//! reports, IR dumps, the multi-artifact service) drive the
//! [`StagedPipeline`] directly and stop early.

use velus_clight::printer::TestIo;
use velus_common::{Diagnostics, Ident, SpanMap};
use velus_nlustre::ast::Program;
use velus_obc::ast::ObcProgram;
use velus_ops::ClightOps;

use crate::passes::StagedPipeline;
use crate::VelusError;

pub use crate::passes::{PassSink, StageObserver};

/// The result of a full compilation: every intermediate representation.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Elaborated, normalized, *unscheduled* N-Lustre.
    pub nlustre: Program<ClightOps>,
    /// Scheduled SN-Lustre (the input of the translation proper).
    pub snlustre: Program<ClightOps>,
    /// Translated Obc, before fusion.
    pub obc: ObcProgram<ClightOps>,
    /// Obc after the fusion optimization.
    pub obc_fused: ObcProgram<ClightOps>,
    /// Generated Clight (with the simulation `main` for `root`).
    pub clight: velus_clight::ast::Program,
    /// The root node the program is compiled for.
    pub root: Ident,
    /// Front-end warnings (e.g. the initialization lint).
    pub warnings: Diagnostics,
    /// Node/equation source spans (for rendering later failures, e.g.
    /// validation mismatches, against the source).
    pub spans: SpanMap,
}

/// Compiles Lustre source text down to Clight.
///
/// `root` selects the node to build the simulation entry point for; by
/// default the last node that no other node instantiates.
///
/// # Errors
///
/// Any front-end diagnostic, scheduling failure, or internal invariant
/// violation (each stage's output is re-checked).
pub fn compile(source: &str, root: Option<&str>) -> Result<Compiled, VelusError> {
    compile_timed(source, root, &mut |_, _| {})
}

/// [`compile`], reporting the wall-clock time of every pipeline stage to
/// `observe` — the instrumentation the compilation service's statistics
/// are built from.
///
/// # Errors
///
/// See [`compile`].
pub fn compile_timed(
    source: &str,
    root: Option<&str>,
    observe: StageObserver<'_>,
) -> Result<Compiled, VelusError> {
    StagedPipeline::from_source(source, root, observe)?.into_compiled()
}

/// Compiles an already-elaborated N-Lustre program (used by the
/// benchmarks and by generated workloads that skip the parser).
///
/// # Errors
///
/// See [`compile`].
pub fn compile_program(
    nlustre: Program<ClightOps>,
    root: Ident,
    warnings: Diagnostics,
) -> Result<Compiled, VelusError> {
    compile_program_timed(nlustre, root, warnings, &mut |_, _| {})
}

/// [`compile_program`], reporting per-stage wall-clock times to
/// `observe` (the front end is not involved here, so [`Stage::Frontend`]
/// is never reported).
///
/// [`Stage::Frontend`]: velus_server::Stage::Frontend
///
/// # Errors
///
/// See [`compile`].
pub fn compile_program_timed(
    nlustre: Program<ClightOps>,
    root: Ident,
    warnings: Diagnostics,
    observe: StageObserver<'_>,
) -> Result<Compiled, VelusError> {
    StagedPipeline::from_program(nlustre, root, warnings, observe)?.into_compiled()
}

/// Prints the generated Clight as a compilable C translation unit.
pub fn emit_c(compiled: &Compiled, io: TestIo) -> String {
    velus_clight::printer::print_program(&compiled.clight, io)
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = "
        node counter(ini, inc: int; res: bool) returns (n: int)
        let
          n = if (true fby false) or res then ini else (0 fby n) + inc;
        tel
    ";

    #[test]
    fn full_pipeline_runs() {
        let c = compile(COUNTER, None).unwrap();
        assert_eq!(c.root, Ident::new("counter"));
        assert!(!c.clight.functions.is_empty());
        let code = emit_c(&c, TestIo::Volatile);
        assert!(code.contains("struct counter"), "{code}");
    }

    #[test]
    fn fusion_reduces_code_size() {
        // Multiple equations on the same sub-clock fuse into one guard.
        let src = "
            node f(k: bool; x: int) returns (o: int)
            var a, b: int when k;
            let
              a = (x + 1) when k;
              b = a * 2;
              o = merge k b ((0 fby o) when not k);
            tel
        ";
        let c = compile(src, None).unwrap();
        let size = |p: &ObcProgram<ClightOps>| {
            p.classes[0]
                .method(velus_obc::ast::step_name())
                .unwrap()
                .body
                .size()
        };
        assert!(size(&c.obc_fused) < size(&c.obc), "{}", c.obc_fused);
    }

    #[test]
    fn default_root_is_the_uncalled_sink() {
        let src = format!(
            "{COUNTER}
            node top(g: int) returns (p: int)
            let p = counter(0, g, false); tel"
        );
        let c = compile(&src, None).unwrap();
        assert_eq!(c.root, Ident::new("top"));
    }

    #[test]
    fn explicit_root_overrides() {
        let src = format!(
            "{COUNTER}
            node top(g: int) returns (p: int)
            let p = counter(0, g, false); tel"
        );
        let c = compile(&src, Some("counter")).unwrap();
        assert_eq!(c.root, Ident::new("counter"));
        assert!(compile(&src, Some("missing")).is_err());
    }

    #[test]
    fn timed_compilation_reports_stages_in_pipeline_order() {
        use velus_server::Stage;
        let mut stages: Vec<Stage> = Vec::new();
        let mut observe = |stage: Stage, _: std::time::Duration| stages.push(stage);
        compile_timed(COUNTER, None, &mut observe).unwrap();
        assert_eq!(
            stages,
            vec![
                Stage::Frontend,
                Stage::Check,
                Stage::Schedule,
                Stage::Translate,
                Stage::Fuse,
                Stage::Generate,
            ]
        );
    }
}
