//! The compiler driver: composition of all passes, with the paper's
//! checked invariants re-validated between stages.

use std::time::Instant;

use velus_clight::printer::TestIo;
use velus_common::{Diagnostics, Ident};
use velus_nlustre::ast::Program;
use velus_nlustre::{clockcheck, typecheck};
use velus_obc::ast::ObcProgram;
use velus_obc::fusion::{fuse_program, fusible};
use velus_ops::ClightOps;
use velus_server::Stage;

use crate::VelusError;

/// A per-stage timing observer (see [`compile_timed`]). Stages are
/// reported in pipeline order with their wall-clock duration.
pub type StageObserver<'a> = &'a mut dyn FnMut(Stage, std::time::Duration);

/// The result of a full compilation: every intermediate representation.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Elaborated, normalized, *unscheduled* N-Lustre.
    pub nlustre: Program<ClightOps>,
    /// Scheduled SN-Lustre (the input of the translation proper).
    pub snlustre: Program<ClightOps>,
    /// Translated Obc, before fusion.
    pub obc: ObcProgram<ClightOps>,
    /// Obc after the fusion optimization.
    pub obc_fused: ObcProgram<ClightOps>,
    /// Generated Clight (with the simulation `main` for `root`).
    pub clight: velus_clight::ast::Program,
    /// The root node the program is compiled for.
    pub root: Ident,
    /// Front-end warnings (e.g. the initialization lint).
    pub warnings: Diagnostics,
}

/// Picks the default root node: a node never instantiated by another
/// (the program's sink); ties broken towards the last one declared.
fn default_root(prog: &Program<ClightOps>) -> Option<Ident> {
    let called: std::collections::HashSet<Ident> = prog
        .nodes
        .iter()
        .flat_map(|node| &node.eqs)
        .filter_map(|eq| match eq {
            velus_nlustre::ast::Equation::Call { node: f, .. } => Some(*f),
            _ => None,
        })
        .collect();
    prog.nodes
        .iter()
        .rev()
        .map(|n| n.name)
        .find(|n| !called.contains(n))
        .or_else(|| prog.nodes.last().map(|n| n.name))
}

/// Checks that every method of every class is `Fusible` — the paper's
/// invariant that translation establishes and fusion preserves.
fn check_fusible(prog: &ObcProgram<ClightOps>, stage: &str) -> Result<(), VelusError> {
    for class in &prog.classes {
        for m in &class.methods {
            if !fusible(&m.body) {
                return Err(VelusError::Validation(format!(
                    "{stage} method {}.{} is not Fusible",
                    class.name, m.name
                )));
            }
        }
    }
    Ok(())
}

/// Compiles Lustre source text down to Clight.
///
/// `root` selects the node to build the simulation entry point for; by
/// default the last node that no other node instantiates.
///
/// # Errors
///
/// Any front-end diagnostic, scheduling failure, or internal invariant
/// violation (each stage's output is re-checked).
pub fn compile(source: &str, root: Option<&str>) -> Result<Compiled, VelusError> {
    compile_timed(source, root, &mut |_, _| {})
}

/// [`compile`], reporting the wall-clock time of every pipeline stage to
/// `observe` — the instrumentation the compilation service's statistics
/// are built from.
///
/// # Errors
///
/// See [`compile`].
pub fn compile_timed(
    source: &str,
    root: Option<&str>,
    observe: StageObserver<'_>,
) -> Result<Compiled, VelusError> {
    let start = Instant::now();
    let (nlustre, warnings) = velus_lustre::compile_to_nlustre::<ClightOps>(source)?;
    let root = match root {
        Some(r) => Ident::new(r),
        None => default_root(&nlustre)
            .ok_or_else(|| VelusError::Usage("program has no nodes".to_owned()))?,
    };
    observe(Stage::Frontend, start.elapsed());
    compile_program_timed(nlustre, root, warnings, observe)
}

/// Compiles an already-elaborated N-Lustre program (used by the
/// benchmarks and by generated workloads that skip the parser).
///
/// # Errors
///
/// See [`compile`].
pub fn compile_program(
    nlustre: Program<ClightOps>,
    root: Ident,
    warnings: Diagnostics,
) -> Result<Compiled, VelusError> {
    compile_program_timed(nlustre, root, warnings, &mut |_, _| {})
}

/// [`compile_program`], reporting per-stage wall-clock times to
/// `observe` (the front end is not involved here, so [`Stage::Frontend`]
/// is never reported).
///
/// # Errors
///
/// See [`compile`].
pub fn compile_program_timed(
    nlustre: Program<ClightOps>,
    root: Ident,
    warnings: Diagnostics,
    observe: StageObserver<'_>,
) -> Result<Compiled, VelusError> {
    if nlustre.node(root).is_none() {
        return Err(VelusError::Usage(format!("no node named {root}")));
    }

    // The elaborator's postconditions, re-checked (the paper proves them).
    let t = Instant::now();
    typecheck::check_program(&nlustre)?;
    clockcheck::check_program_clocks(&nlustre)?;
    observe(Stage::Check, t.elapsed());

    // Scheduling: untrusted heuristic + validated checker.
    let t = Instant::now();
    let mut snlustre = nlustre.clone();
    velus_nlustre::schedule::schedule_program(&mut snlustre)?;
    for node in &snlustre.nodes {
        velus_nlustre::deps::check_schedule(node)?;
    }
    typecheck::check_program(&snlustre)?;
    clockcheck::check_program_clocks(&snlustre)?;
    observe(Stage::Schedule, t.elapsed());

    // Translation to Obc; the result is well typed and Fusible.
    let t = Instant::now();
    let obc = velus_obc::translate::translate_program(&snlustre)?;
    velus_obc::typecheck::check_program(&obc)?;
    check_fusible(&obc, "translated")?;
    observe(Stage::Translate, t.elapsed());

    // Fusion preserves typing and Fusible.
    let t = Instant::now();
    let obc_fused = fuse_program(&obc);
    velus_obc::typecheck::check_program(&obc_fused)?;
    check_fusible(&obc_fused, "fused")?;
    observe(Stage::Fuse, t.elapsed());

    // Generation to Clight.
    let t = Instant::now();
    let clight = velus_clight::generate::generate(&obc_fused, root)?;
    observe(Stage::Generate, t.elapsed());

    Ok(Compiled {
        nlustre,
        snlustre,
        obc,
        obc_fused,
        clight,
        root,
        warnings,
    })
}

/// Prints the generated Clight as a compilable C translation unit.
pub fn emit_c(compiled: &Compiled, io: TestIo) -> String {
    velus_clight::printer::print_program(&compiled.clight, io)
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = "
        node counter(ini, inc: int; res: bool) returns (n: int)
        let
          n = if (true fby false) or res then ini else (0 fby n) + inc;
        tel
    ";

    #[test]
    fn full_pipeline_runs() {
        let c = compile(COUNTER, None).unwrap();
        assert_eq!(c.root, Ident::new("counter"));
        assert!(!c.clight.functions.is_empty());
        let code = emit_c(&c, TestIo::Volatile);
        assert!(code.contains("struct counter"), "{code}");
    }

    #[test]
    fn fusion_reduces_code_size() {
        // Multiple equations on the same sub-clock fuse into one guard.
        let src = "
            node f(k: bool; x: int) returns (o: int)
            var a, b: int when k;
            let
              a = (x + 1) when k;
              b = a * 2;
              o = merge k b ((0 fby o) when not k);
            tel
        ";
        let c = compile(src, None).unwrap();
        let size = |p: &ObcProgram<ClightOps>| {
            p.classes[0]
                .method(velus_obc::ast::step_name())
                .unwrap()
                .body
                .size()
        };
        assert!(size(&c.obc_fused) < size(&c.obc), "{}", c.obc_fused);
    }

    #[test]
    fn default_root_is_the_uncalled_sink() {
        let src = format!(
            "{COUNTER}
            node top(g: int) returns (p: int)
            let p = counter(0, g, false); tel"
        );
        let c = compile(&src, None).unwrap();
        assert_eq!(c.root, Ident::new("top"));
    }

    #[test]
    fn explicit_root_overrides() {
        let src = format!(
            "{COUNTER}
            node top(g: int) returns (p: int)
            let p = counter(0, g, false); tel"
        );
        let c = compile(&src, Some("counter")).unwrap();
        assert_eq!(c.root, Ident::new("counter"));
        assert!(compile(&src, Some("missing")).is_err());
    }
}
