//! The compiler driver: composition of all passes, with the paper's
//! checked invariants re-validated between stages.

use velus_clight::printer::TestIo;
use velus_common::{Diagnostics, Ident};
use velus_nlustre::ast::Program;
use velus_nlustre::{clockcheck, typecheck};
use velus_obc::ast::ObcProgram;
use velus_obc::fusion::{fuse_program, fusible};
use velus_ops::ClightOps;

use crate::VelusError;

/// The result of a full compilation: every intermediate representation.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Elaborated, normalized, *unscheduled* N-Lustre.
    pub nlustre: Program<ClightOps>,
    /// Scheduled SN-Lustre (the input of the translation proper).
    pub snlustre: Program<ClightOps>,
    /// Translated Obc, before fusion.
    pub obc: ObcProgram<ClightOps>,
    /// Obc after the fusion optimization.
    pub obc_fused: ObcProgram<ClightOps>,
    /// Generated Clight (with the simulation `main` for `root`).
    pub clight: velus_clight::ast::Program,
    /// The root node the program is compiled for.
    pub root: Ident,
    /// Front-end warnings (e.g. the initialization lint).
    pub warnings: Diagnostics,
}

/// Picks the default root node: a node never instantiated by another
/// (the program's sink); ties broken towards the last one declared.
fn default_root(prog: &Program<ClightOps>) -> Option<Ident> {
    let mut called: Vec<Ident> = Vec::new();
    for node in &prog.nodes {
        for eq in &node.eqs {
            if let velus_nlustre::ast::Equation::Call { node: f, .. } = eq {
                called.push(*f);
            }
        }
    }
    prog.nodes
        .iter()
        .rev()
        .map(|n| n.name)
        .find(|n| !called.contains(n))
        .or_else(|| prog.nodes.last().map(|n| n.name))
}

/// Compiles Lustre source text down to Clight.
///
/// `root` selects the node to build the simulation entry point for; by
/// default the last node that no other node instantiates.
///
/// # Errors
///
/// Any front-end diagnostic, scheduling failure, or internal invariant
/// violation (each stage's output is re-checked).
pub fn compile(source: &str, root: Option<&str>) -> Result<Compiled, VelusError> {
    let (nlustre, warnings) = velus_lustre::compile_to_nlustre::<ClightOps>(source)?;
    let root = match root {
        Some(r) => Ident::new(r),
        None => default_root(&nlustre)
            .ok_or_else(|| VelusError::Usage("program has no nodes".to_owned()))?,
    };
    compile_program(nlustre, root, warnings)
}

/// Compiles an already-elaborated N-Lustre program (used by the
/// benchmarks and by generated workloads that skip the parser).
///
/// # Errors
///
/// See [`compile`].
pub fn compile_program(
    nlustre: Program<ClightOps>,
    root: Ident,
    warnings: Diagnostics,
) -> Result<Compiled, VelusError> {
    if nlustre.node(root).is_none() {
        return Err(VelusError::Usage(format!("no node named {root}")));
    }

    // The elaborator's postconditions, re-checked (the paper proves them).
    typecheck::check_program(&nlustre)?;
    clockcheck::check_program_clocks(&nlustre)?;

    // Scheduling: untrusted heuristic + validated checker.
    let mut snlustre = nlustre.clone();
    velus_nlustre::schedule::schedule_program(&mut snlustre)?;
    for node in &snlustre.nodes {
        velus_nlustre::deps::check_schedule(node)?;
    }
    typecheck::check_program(&snlustre)?;
    clockcheck::check_program_clocks(&snlustre)?;

    // Translation to Obc; the result is well typed and Fusible.
    let obc = velus_obc::translate::translate_program(&snlustre)?;
    velus_obc::typecheck::check_program(&obc)?;
    for class in &obc.classes {
        for m in &class.methods {
            if !fusible(&m.body) {
                return Err(VelusError::Validation(format!(
                    "translated method {}.{} is not Fusible",
                    class.name, m.name
                )));
            }
        }
    }

    // Fusion preserves typing and Fusible.
    let obc_fused = fuse_program(&obc);
    velus_obc::typecheck::check_program(&obc_fused)?;
    for class in &obc_fused.classes {
        for m in &class.methods {
            if !fusible(&m.body) {
                return Err(VelusError::Validation(format!(
                    "fused method {}.{} lost Fusible",
                    class.name, m.name
                )));
            }
        }
    }

    // Generation to Clight.
    let clight = velus_clight::generate::generate(&obc_fused, root)?;

    Ok(Compiled {
        nlustre,
        snlustre,
        obc,
        obc_fused,
        clight,
        root,
        warnings,
    })
}

/// Prints the generated Clight as a compilable C translation unit.
pub fn emit_c(compiled: &Compiled, io: TestIo) -> String {
    velus_clight::printer::print_program(&compiled.clight, io)
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = "
        node counter(ini, inc: int; res: bool) returns (n: int)
        let
          n = if (true fby false) or res then ini else (0 fby n) + inc;
        tel
    ";

    #[test]
    fn full_pipeline_runs() {
        let c = compile(COUNTER, None).unwrap();
        assert_eq!(c.root, Ident::new("counter"));
        assert!(!c.clight.functions.is_empty());
        let code = emit_c(&c, TestIo::Volatile);
        assert!(code.contains("struct counter"), "{code}");
    }

    #[test]
    fn fusion_reduces_code_size() {
        // Multiple equations on the same sub-clock fuse into one guard.
        let src = "
            node f(k: bool; x: int) returns (o: int)
            var a, b: int when k;
            let
              a = (x + 1) when k;
              b = a * 2;
              o = merge k b ((0 fby o) when not k);
            tel
        ";
        let c = compile(src, None).unwrap();
        let size = |p: &ObcProgram<ClightOps>| {
            p.classes[0]
                .method(velus_obc::ast::step_name())
                .unwrap()
                .body
                .size()
        };
        assert!(size(&c.obc_fused) < size(&c.obc), "{}", c.obc_fused);
    }

    #[test]
    fn default_root_is_the_uncalled_sink() {
        let src = format!(
            "{COUNTER}
            node top(g: int) returns (p: int)
            let p = counter(0, g, false); tel"
        );
        let c = compile(&src, None).unwrap();
        assert_eq!(c.root, Ident::new("top"));
    }

    #[test]
    fn explicit_root_overrides() {
        let src = format!(
            "{COUNTER}
            node top(g: int) returns (p: int)
            let p = counter(0, g, false); tel"
        );
        let c = compile(&src, Some("counter")).unwrap();
        assert_eq!(c.root, Ident::new("counter"));
        assert!(compile(&src, Some("missing")).is_err());
    }
}
