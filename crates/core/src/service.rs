//! The Vélus instantiation of the batch compilation service
//! (`velus-server`): the full validated pipeline behind a worker pool
//! and a content-addressed artifact cache.
//!
//! ```
//! use velus::service::{self, ServiceConfig};
//! use velus::CompileRequest;
//!
//! let svc = service::service(ServiceConfig { workers: 2, ..Default::default() });
//! let src = "node main(x: int) returns (y: int) let y = x + (0 fby y); tel";
//! let batch = svc.compile_batch(vec![CompileRequest::new("main", src)]);
//! let artifact = batch.items[0].result.as_ref().expect("compiles");
//! assert!(artifact.c_code.contains("main__step"));
//!
//! // A warm request is a cache hit with byte-identical emitted C.
//! let warm = svc.compile_batch(vec![CompileRequest::new("main", src)]);
//! assert!(warm.items[0].cache_hit);
//! assert_eq!(warm.items[0].result.as_ref().unwrap().c_code, artifact.c_code);
//! ```

use std::time::Instant;

use velus_clight::printer::TestIo;
use velus_server::{CompileRequest, CompileService, Compiler, IoMode, Stage, StageSample};

use crate::pipeline::{compile_timed, emit_c, Compiled};
use crate::VelusError;

/// What the service caches per request: every intermediate
/// representation plus the printed C. Cached artifacts are shared
/// (`Arc`), so a warm hit re-serves the *same* bytes.
#[derive(Debug, Clone)]
pub struct ServiceArtifact {
    /// The full compilation result (all IRs).
    pub compiled: Compiled,
    /// The printed C translation unit (per the request's `IoMode`).
    pub c_code: String,
}

/// The [`Compiler`] implementation backed by the paper's pipeline with
/// per-stage instrumentation.
#[derive(Debug, Default, Clone, Copy)]
pub struct PipelineCompiler;

impl Compiler for PipelineCompiler {
    type Artifact = ServiceArtifact;
    type Error = VelusError;

    fn compile(
        &self,
        req: &CompileRequest,
    ) -> Result<(ServiceArtifact, Vec<StageSample>), VelusError> {
        let mut samples: Vec<StageSample> = Vec::with_capacity(Stage::ALL.len());
        let compiled = compile_timed(&req.source, req.root.as_deref(), &mut |stage, dur| {
            samples.push(StageSample {
                stage,
                nanos: dur.as_nanos() as u64,
            });
        })?;
        let io = match req.options.io {
            IoMode::Volatile => TestIo::Volatile,
            IoMode::Stdio => TestIo::Stdio,
        };
        let t = Instant::now();
        let c_code = emit_c(&compiled, io);
        samples.push(StageSample {
            stage: Stage::Emit,
            nanos: t.elapsed().as_nanos() as u64,
        });
        Ok((ServiceArtifact { compiled, c_code }, samples))
    }

    /// Pre-scan cost estimate: source bytes plus a weighted count of
    /// `node` keywords. Pipeline cost grows superlinearly with the node
    /// count (each node is scheduled, translated, fused, and checked
    /// individually), so node-heavy sources must outrank byte-heavy
    /// ones; the weight is a rough per-node fixed cost in source-byte
    /// units. A text scan, not a parse — it runs on every request of a
    /// batch before any compilation starts.
    fn cost_hint(&self, req: &CompileRequest) -> u64 {
        let nodes = req
            .source
            .split_whitespace()
            .filter(|w| *w == "node")
            .count() as u64;
        req.source.len() as u64 + 512 * nodes
    }

    /// The byte cap accounts the printed C; the retained IRs are
    /// roughly proportional to it, so this keeps the cap meaningful
    /// without a deep size computation on every insert.
    fn artifact_bytes(artifact: &ServiceArtifact) -> usize {
        artifact.c_code.len()
    }
}

/// The concrete service type for the Vélus pipeline.
pub type VelusService = CompileService<PipelineCompiler>;

/// Builds a [`VelusService`] with the given configuration.
pub fn service(config: ServiceConfig) -> VelusService {
    CompileService::new(PipelineCompiler, config)
}

// Re-exported so `velus::service::{ServiceConfig, …}` is self-contained.
pub use velus_server::{
    BatchReport, CompileOptions, CompileRequest as Request, RequestReport, ServiceConfig,
    ServiceError, StageLatency, StatsSnapshot,
};

#[cfg(test)]
mod tests {
    use super::*;
    use velus_server::ServiceConfig;

    const COUNTER: &str = "
        node counter(ini, inc: int; res: bool) returns (n: int)
        let
          n = if (true fby false) or res then ini else (0 fby n) + inc;
        tel
    ";

    #[test]
    fn pipeline_compiler_reports_every_stage() {
        let (artifact, samples) = PipelineCompiler
            .compile(&CompileRequest::new("counter", COUNTER))
            .unwrap();
        let reported: Vec<Stage> = samples.iter().map(|s| s.stage).collect();
        assert_eq!(reported, Stage::ALL.to_vec());
        assert!(
            artifact.c_code.contains("counter__step"),
            "{}",
            artifact.c_code
        );
    }

    #[test]
    fn io_mode_is_part_of_the_artifact() {
        let svc = service(ServiceConfig {
            workers: 1,
            caching: true,
            ..Default::default()
        });
        let volatile = svc.compile_one(CompileRequest::new("c", COUNTER));
        let stdio = svc.compile_one(CompileRequest::new("c", COUNTER).with_options(
            CompileOptions {
                io: velus_server::IoMode::Stdio,
            },
        ));
        // Different options → different cache entries and different code.
        assert!(!stdio.cache_hit);
        assert_ne!(
            volatile.result.unwrap().c_code,
            stdio.result.unwrap().c_code
        );
        assert_eq!(svc.cache_len(), 2);
    }

    #[test]
    fn compile_errors_surface_per_request() {
        let svc = service(ServiceConfig {
            workers: 2,
            caching: true,
            ..Default::default()
        });
        let batch = svc.compile_batch(vec![
            CompileRequest::new("ok", COUNTER),
            CompileRequest::new("bad", "node f() returns (y: int) let y = ; tel"),
        ]);
        assert_eq!(batch.ok_count(), 1);
        assert!(batch.items[1].result.is_err());
    }
}
