//! The Vélus instantiation of the batch compilation service
//! (`velus-server`): the staged pass framework behind a worker pool
//! and a content-addressed, per-artifact-kind cache.
//!
//! ```
//! use velus::service::{self, ServiceConfig};
//! use velus::CompileRequest;
//!
//! let svc = service::service(ServiceConfig { workers: 2, ..Default::default() });
//! let src = "node main(x: int) returns (y: int) let y = x + (0 fby y); tel";
//! let batch = svc.compile_batch(vec![CompileRequest::new("main", src)]);
//! let artifact = batch.items[0].primary().expect("compiles");
//! assert!(artifact.c_code().unwrap().contains("main__step"));
//!
//! // A warm request is a cache hit with byte-identical emitted C.
//! let warm = svc.compile_batch(vec![CompileRequest::new("main", src)]);
//! assert!(warm.items[0].cache_hit);
//! assert_eq!(
//!     warm.items[0].primary().unwrap().c_code(),
//!     artifact.c_code()
//! );
//! ```
//!
//! A request's [`CompileOptions::kinds`] selects which artifacts it
//! wants — C, WCET reports, baseline comparisons, IR dumps — and each
//! kind is cached independently: a `wcet`-only request never emits (or
//! re-caches) C, a mixed request runs the shared pipeline prefix once.

use velus_clight::printer::TestIo;
use velus_common::{DiagRecord, FailureReport, SpanMap, ToDiagnostics};
use velus_obs::trace;
use velus_server::{ArtifactKind, CompileOutput, CompileRequest, Compiler, IoMode};

use crate::artifacts::{produce, ServiceArtifact};
use crate::passes::{PassSink, StagedPipeline};
use crate::VelusError;

/// The pass-event sink of the service compiler: collects the per-stage
/// timing samples the service statistics are built from, and mirrors
/// each pass as a trace span (free when the worker thread has no active
/// trace scope — the span calls are single thread-local reads).
#[derive(Default)]
struct ObsSink {
    samples: Vec<velus_server::StageSample>,
    open: Option<trace::SpanToken>,
}

impl ObsSink {
    fn close_span(&mut self) {
        if let Some(token) = self.open.take() {
            trace::exit(token);
        }
    }
}

impl PassSink for ObsSink {
    fn pass_start(&mut self, _stage: velus_server::Stage, name: &'static str) {
        self.open = Some(trace::enter(name));
    }

    fn pass_end(&mut self, stage: velus_server::Stage, dur: std::time::Duration) {
        self.close_span();
        self.samples.push(velus_server::StageSample {
            stage,
            nanos: dur.as_nanos() as u64,
        });
    }

    // A failed pass closes its span but records no timing sample:
    // failures have never contributed to the stage statistics.
    fn pass_fail(&mut self, _stage: velus_server::Stage, _name: &'static str) {
        self.close_span();
    }
}

/// The [`Compiler`] implementation backed by the paper's staged pass
/// pipeline with per-stage instrumentation. Only the stages a request's
/// artifact-kind set needs are run, and only the data each kind needs
/// is retained ([`ServiceArtifact`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct PipelineCompiler;

impl Compiler for PipelineCompiler {
    type Artifact = ServiceArtifact;
    type Error = VelusError;

    fn compile(
        &self,
        req: &CompileRequest,
        kinds: &[ArtifactKind],
    ) -> Result<CompileOutput<ServiceArtifact>, VelusError> {
        compile_impl(req, kinds, None)
    }

    /// The cooperative entry point the service uses: the token is
    /// checked at every pass boundary, so an expired deadline or a
    /// draining service stops the pipeline between passes and surfaces
    /// the coded condition (`E0802`/`E0805`) as a structured failure.
    fn compile_cancellable(
        &self,
        req: &CompileRequest,
        kinds: &[ArtifactKind],
        cancel: &velus_server::CancelToken,
    ) -> Result<CompileOutput<ServiceArtifact>, VelusError> {
        compile_impl(req, kinds, Some(cancel))
    }

    /// Failures leave the staged pipeline already structured
    /// ([`VelusError::Diag`], coded and stage-tagged with spans
    /// resolved); flattening against the request source yields the
    /// service's [`FailureReport`].
    fn failure_report(&self, req: &CompileRequest, err: &VelusError) -> FailureReport {
        FailureReport::from_diagnostics(&err.to_diagnostics(&SpanMap::new()), &req.source)
    }

    /// Pre-scan cost estimate: source bytes plus a weighted count of
    /// `node` keywords. Pipeline cost grows superlinearly with the node
    /// count (each node is scheduled, translated, fused, and checked
    /// individually), so node-heavy sources must outrank byte-heavy
    /// ones; the weight is a rough per-node fixed cost in source-byte
    /// units. A text scan, not a parse — it runs on every request of a
    /// batch before any compilation starts — but it does honor the
    /// lexer's comment rules: `node` inside `(* … *)` or `--` comments
    /// is not a node, and `node(` (no trailing whitespace) is.
    fn cost_hint(&self, req: &CompileRequest) -> u64 {
        req.source.len() as u64 + 512 * count_node_keywords(&req.source)
    }

    /// The byte cap weighs each kind by what it actually retains: the C
    /// text's length, a structural estimate of a retained IR, a small
    /// constant for reports. A dump-heavy artifact is no longer
    /// under-weighted relative to the printed C.
    fn artifact_bytes(artifact: &ServiceArtifact) -> usize {
        artifact.estimated_bytes()
    }
}

/// The shared body of `compile`/`compile_cancellable`: the staged
/// pipeline with per-stage instrumentation, optionally cancellable at
/// pass boundaries.
fn compile_impl(
    req: &CompileRequest,
    kinds: &[ArtifactKind],
    cancel: Option<&velus_server::CancelToken>,
) -> Result<CompileOutput<ServiceArtifact>, VelusError> {
    let mut sink = ObsSink::default();
    let io = match req.options.io {
        IoMode::Volatile => TestIo::Volatile,
        IoMode::Stdio => TestIo::Stdio,
    };
    let mut staged =
        StagedPipeline::from_source_with(&req.source, req.root.as_deref(), &mut sink, cancel)?;
    let artifacts = produce(&mut staged, kinds, io, &req.source)?;
    // Warnings ride the output instead of being dropped: the service
    // counts them (per lint code) and the batch CLI prints them. When
    // the lint pass ran for this request its findings are a superset of
    // the front-end warnings (the initialization analysis is one of the
    // lint analyses), so they replace rather than duplicate them.
    let warnings: Vec<DiagRecord> = staged
        .lint_cached()
        .unwrap_or_else(|| staged.warnings())
        .iter()
        .map(|w| DiagRecord::of(w, &req.source))
        .collect();
    drop(staged);
    Ok(CompileOutput::new(artifacts, sink.samples).with_warnings(warnings))
}

/// Counts `node` keywords outside comments. Mirrors the lexer's comment
/// rules (nestable `(* … *)`, `--` to end of line) and its identifier
/// boundaries, without building tokens.
fn count_node_keywords(source: &str) -> u64 {
    let bytes = source.as_bytes();
    let n = bytes.len();
    let mut i = 0;
    let mut count = 0u64;
    while i < n {
        let c = bytes[i];
        // Line comment: skip to end of line.
        if c == b'-' && i + 1 < n && bytes[i + 1] == b'-' {
            while i < n && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Block comment, nestable. An unterminated comment swallows the
        // rest of the source — same as the lexer (which then errors).
        if c == b'(' && i + 1 < n && bytes[i + 1] == b'*' {
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if bytes[i] == b'(' && i + 1 < n && bytes[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < n && bytes[i + 1] == b')' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // An identifier-or-keyword word; count exact `node` matches.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            i += 1;
            while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            if &bytes[start..i] == b"node" {
                count += 1;
            }
            continue;
        }
        i += 1;
    }
    count
}

/// The concrete service type for the Vélus pipeline.
pub type VelusService = CompileService<PipelineCompiler>;

use velus_server::CompileService;

/// Builds a [`VelusService`] with the given configuration.
pub fn service(config: ServiceConfig) -> VelusService {
    CompileService::new(PipelineCompiler, config)
}

// Re-exported so `velus::service::{ServiceConfig, …}` is self-contained.
pub use crate::artifacts::{
    BaselineDiffArtifact, BaselineRow, IrSnapshot, LintArtifact, WcetArtifact,
};
pub use velus_server::{
    ArtifactReport, BatchReport, CompileOptions, CompileRequest as Request, RequestReport,
    ServiceConfig, ServiceError, StageLatency, StatsSnapshot,
};

#[cfg(test)]
mod tests {
    use super::*;
    use velus_server::{IrStageKind, ServiceConfig, Stage, WcetModelKind};

    const COUNTER: &str = "
        node counter(ini, inc: int; res: bool) returns (n: int)
        let
          n = if (true fby false) or res then ini else (0 fby n) + inc;
        tel
    ";

    #[test]
    fn pipeline_compiler_reports_every_stage_for_c() {
        let output = PipelineCompiler
            .compile(
                &CompileRequest::new("counter", COUNTER),
                &[ArtifactKind::CCode],
            )
            .unwrap();
        let reported: Vec<Stage> = output.samples.iter().map(|s| s.stage).collect();
        // Every main-chain stage runs for C; the off-chain analysis
        // stage does not (no lint artifact was requested).
        let main_chain: Vec<Stage> = Stage::ALL
            .into_iter()
            .filter(|s| *s != Stage::Analysis)
            .collect();
        assert_eq!(reported, main_chain);
        let c_code = output.artifacts[0].1.c_code().unwrap();
        assert!(c_code.contains("counter__step"), "{c_code}");
    }

    #[test]
    fn lint_requests_run_the_analysis_stage_and_surface_findings() {
        // `pre x` reaches the output: the initialization lint fires.
        let src = "node f(x: int) returns (y: int) let y = pre x; tel";
        let output = PipelineCompiler
            .compile(&CompileRequest::new("f", src), &[ArtifactKind::Lint])
            .unwrap();
        assert!(
            output.samples.iter().any(|s| s.stage == Stage::Analysis),
            "{:?}",
            output.samples
        );
        // Emission never ran: lint stops at the scheduled program.
        assert!(output.samples.iter().all(|s| s.stage != Stage::Emit));
        // The artifact renders valid JSON carrying the finding…
        let rendered = output.artifacts[0].1.render();
        assert!(rendered.contains("\"code\":\"W0101\""), "{rendered}");
        // …and the output warnings carry the full lint findings, which
        // is what the service's per-code counters are fed from.
        assert!(output.warnings.iter().any(|w| w.code == "W0101"));
    }

    #[test]
    fn wcet_only_compilation_skips_emission() {
        let output = PipelineCompiler
            .compile(
                &CompileRequest::new("counter", COUNTER),
                &[ArtifactKind::Wcet {
                    model: WcetModelKind::CompCert,
                }],
            )
            .unwrap();
        assert!(output.samples.iter().all(|s| s.stage != Stage::Emit));
        assert!(output.artifacts[0].1.c_code().is_none());
    }

    #[test]
    fn io_mode_is_part_of_the_artifact() {
        let svc = service(ServiceConfig {
            workers: 1,
            caching: true,
            ..Default::default()
        });
        let volatile = svc.compile_one(CompileRequest::new("c", COUNTER));
        let stdio = svc.compile_one(
            CompileRequest::new("c", COUNTER)
                .with_options(CompileOptions::default().with_io(velus_server::IoMode::Stdio)),
        );
        // Different options → different cache entries and different code.
        assert!(!stdio.cache_hit);
        assert_ne!(
            volatile.primary().unwrap().c_code().unwrap(),
            stdio.primary().unwrap().c_code().unwrap()
        );
        assert_eq!(svc.cache_len(), 2);
    }

    #[test]
    fn compile_errors_surface_per_request() {
        let svc = service(ServiceConfig {
            workers: 2,
            caching: true,
            ..Default::default()
        });
        let batch = svc.compile_batch(vec![
            CompileRequest::new("ok", COUNTER),
            CompileRequest::new("bad", "node f() returns (y: int) let y = ; tel"),
        ]);
        assert_eq!(batch.ok_count(), 1);
        assert!(batch.items[1].result.is_err());
    }

    #[test]
    fn cost_hint_ignores_comments_and_finds_adjacent_keywords() {
        let real = CompileRequest::new("r", "node f(x: int) returns (y: int) let y = x; tel");
        let commented = CompileRequest::new(
            "r",
            "(* node node node (* node *) node *)\n-- node node\n\
             node f(x: int) returns (y: int) let y = x; tel",
        );
        let hint = |req: &CompileRequest| PipelineCompiler.cost_hint(req) - req.source.len() as u64;
        // Exactly one real `node` in both sources: equal node weight.
        assert_eq!(hint(&real), 512);
        assert_eq!(
            hint(&commented),
            512,
            "commented-out keywords must not count"
        );
        // `node` is recognized by identifier boundary, not whitespace…
        let tight = CompileRequest::new("r", "node(x)");
        assert_eq!(hint(&tight), 512);
        // …and `nodes`/`mynode` are different identifiers.
        let lookalike = CompileRequest::new("r", "nodes mynode node_2");
        assert_eq!(hint(&lookalike), 0);
    }

    #[test]
    fn artifact_bytes_weighs_retained_irs() {
        let req = CompileRequest::new("counter", COUNTER);
        let kinds = [
            ArtifactKind::CCode,
            ArtifactKind::Wcet {
                model: WcetModelKind::CompCert,
            },
            ArtifactKind::IrDump {
                stage: IrStageKind::ObcFused,
            },
        ];
        let artifacts = PipelineCompiler.compile(&req, &kinds).unwrap().artifacts;
        let bytes_of = |kind: &ArtifactKind| {
            artifacts
                .iter()
                .find(|(k, _)| k == kind)
                .map(|(_, a)| PipelineCompiler::artifact_bytes(a))
                .unwrap()
        };
        // The dump retains a whole IR: it must weigh much more than the
        // few-words WCET report, even for this tiny program.
        assert!(
            bytes_of(&kinds[2]) > 5 * bytes_of(&kinds[1]),
            "{artifacts:?}"
        );
        // And the C artifact weighs its text.
        assert_eq!(
            bytes_of(&kinds[0]),
            artifacts
                .iter()
                .find(|(k, _)| *k == ArtifactKind::CCode)
                .unwrap()
                .1
                .c_code()
                .unwrap()
                .len()
        );
    }
}
