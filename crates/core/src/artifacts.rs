//! Multi-backend artifacts over the staged pipeline.
//!
//! One compilation can serve several backends: the printed C, a WCET
//! report (per back-end cost model, as in Fig. 12), a comparison
//! against the paper's baseline compilation schemes, and pretty-printed
//! IR dumps. [`produce`] maps a requested [`ArtifactKind`] set onto a
//! [`StagedPipeline`], forcing **only the stages the set needs**: a
//! WCET-only request stops after Clight generation (emission never
//! runs), an N-Lustre dump stops after the front-end checks.
//!
//! Each artifact records its own resident footprint
//! ([`ServiceArtifact::estimated_bytes`]) so the service's cache byte
//! cap weighs dump-heavy artifacts honestly — an IR dump retains the
//! typed IR, not just a string, and is weighed as such.

use velus_baselines::BaselineScheme;
use velus_clight::printer::TestIo;
use velus_common::{codes, json_escape, DiagRecord, DiagStage, Diagnostic, Diagnostics, Span};
use velus_nlustre::ast::{CExpr, Equation, Expr, Program};
use velus_obc::ast::ObcProgram;
use velus_ops::ClightOps;
use velus_server::{ArtifactKind, IrStageKind, WcetModelKind};
use velus_wcet::CostModel;

use crate::passes::StagedPipeline;
use crate::VelusError;

/// Maps the serving layer's opaque model tag to the analyzer's model.
pub fn cost_model(kind: WcetModelKind) -> CostModel {
    match kind {
        WcetModelKind::CompCert => CostModel::CompCert,
        WcetModelKind::Gcc => CostModel::Gcc,
        WcetModelKind::GccInline => CostModel::GccInline,
    }
}

/// A WCET report for the root's `step` function under one cost model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WcetArtifact {
    /// The model the estimate was computed under.
    pub model: WcetModelKind,
    /// The root node whose `step` was analyzed.
    pub root: String,
    /// The estimated worst-case cycles.
    pub cycles: u64,
}

impl WcetArtifact {
    /// Renders the report in the `velus wcet` CLI format.
    pub fn render(&self) -> String {
        format!(
            "{} step: {} cycles ({})\n",
            self.root,
            self.cycles,
            self.model.name()
        )
    }
}

/// One row of a baseline comparison: a compilation scheme's Obc size
/// and step-WCET under the three back-end models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineRow {
    /// Scheme name (`velus`, `heptagon`, `lustre-v6`).
    pub scheme: &'static str,
    /// Total Obc statement count across all class methods.
    pub obc_size: usize,
    /// Step WCET cycles under `[cc, gcc, gcci]`.
    pub wcet: [u64; 3],
}

/// A comparison of the validated pipeline against the paper's baseline
/// schemes (Fig. 12's mechanism, served as an artifact).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineDiffArtifact {
    /// The root node compared.
    pub root: String,
    /// Rows: Vélus first, then each [`BaselineScheme`].
    pub rows: Vec<BaselineRow>,
}

impl BaselineDiffArtifact {
    /// Renders the comparison as an aligned table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "baseline comparison for root `{}` (step WCET in cycles):\n{:<12} {:>9} {:>8} {:>8} {:>8}\n",
            self.root, "scheme", "obc-size", "cc", "gcc", "gcci"
        );
        for row in &self.rows {
            out.push_str(&format!(
                "{:<12} {:>9} {:>8} {:>8} {:>8}\n",
                row.scheme, row.obc_size, row.wcet[0], row.wcet[1], row.wcet[2]
            ));
        }
        out
    }
}

/// The per-program validation/diagnostics report (the ROADMAP's
/// "validation reports" artifact kind): which pipeline stages ran *and
/// re-validated* for this program, its shape, and the front-end
/// warnings with their stable codes. Renders as a JSON object — the
/// machine-readable companion of the compiled artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportArtifact {
    /// The root node the program was compiled for.
    pub root: String,
    /// Number of nodes in the elaborated program.
    pub nodes: usize,
    /// Number of normalized equations.
    pub equations: usize,
    /// The pass names that ran and re-validated, in pipeline order.
    pub stages: Vec<&'static str>,
    /// Front-end warnings, flattened (code, stage, position resolved).
    pub warnings: Vec<DiagRecord>,
}

impl ReportArtifact {
    /// Renders the report as a JSON object (hand-rolled, serde-free;
    /// same dialect as `Diagnostics::render_json`).
    pub fn render(&self) -> String {
        let mut out = format!(
            "{{\"report\":{{\"root\":\"{}\",\"nodes\":{},\"equations\":{},\"validated_stages\":[",
            json_escape(&self.root),
            self.nodes,
            self.equations
        );
        for (i, stage) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{stage}\""));
        }
        out.push_str("],\"warnings\":[");
        for (i, w) in self.warnings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            w.render_json_into(&mut out);
        }
        out.push_str("]}}");
        out
    }
}

/// The static-analysis lint report: every finding of the
/// `velus-analysis` pass over the scheduled program, with both
/// renderings prebuilt (the source is gone by serving time, and caret
/// rendering needs it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintArtifact {
    /// The root node the program was analyzed for.
    pub root: String,
    /// The findings, flattened (code, severity, stage, position).
    pub findings: Vec<DiagRecord>,
    /// The caret rendering against the request source (what `velus
    /// lint` prints for humans). Empty when there are no findings.
    human: String,
    /// The machine-readable JSON rendering.
    json: String,
}

impl LintArtifact {
    /// Whether any finding is an error-severity one (a guaranteed
    /// trap): `velus lint` exits nonzero exactly on these.
    pub fn has_errors(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.severity == velus_common::Severity::Error)
    }

    /// The caret rendering (empty when the program is lint-clean).
    pub fn render_human(&self) -> &str {
        &self.human
    }

    /// Renders the findings as one JSON object,
    /// `{"lint":{"root":…,"findings":[…]}}` — deterministic, so warm
    /// cache passes compare byte-identical.
    pub fn render(&self) -> String {
        self.json.clone()
    }
}

/// A retained intermediate representation (the typed AST, not its
/// rendering — rendering is cheap and deterministic, retention is what
/// the cache must weigh).
#[derive(Debug, Clone)]
pub enum IrSnapshot {
    /// Elaborated, unscheduled N-Lustre.
    NLustre(Program<ClightOps>),
    /// Scheduled SN-Lustre.
    SnLustre(Program<ClightOps>),
    /// Translated Obc, before fusion.
    Obc(ObcProgram<ClightOps>),
    /// Obc after fusion.
    ObcFused(ObcProgram<ClightOps>),
}

impl IrSnapshot {
    /// Which pipeline stage the snapshot is of.
    pub fn stage(&self) -> IrStageKind {
        match self {
            IrSnapshot::NLustre(_) => IrStageKind::NLustre,
            IrSnapshot::SnLustre(_) => IrStageKind::SnLustre,
            IrSnapshot::Obc(_) => IrStageKind::Obc,
            IrSnapshot::ObcFused(_) => IrStageKind::ObcFused,
        }
    }

    /// Pretty-prints the retained IR (the `velus dump` format).
    pub fn render(&self) -> String {
        match self {
            IrSnapshot::NLustre(p) | IrSnapshot::SnLustre(p) => format!("{p}"),
            IrSnapshot::Obc(p) | IrSnapshot::ObcFused(p) => format!("{p}"),
        }
    }

    /// An estimate of the retained IR's resident size in bytes, used to
    /// weigh the artifact against the cache byte cap. A structural
    /// count (AST nodes × per-node footprint), not a deep `size_of`
    /// traversal — cheap, deterministic, and within a small factor of
    /// the truth, which is all eviction accounting needs.
    pub fn estimated_bytes(&self) -> usize {
        match self {
            IrSnapshot::NLustre(p) | IrSnapshot::SnLustre(p) => nlustre_bytes(p),
            IrSnapshot::Obc(p) | IrSnapshot::ObcFused(p) => obc_bytes(p),
        }
    }
}

/// Approximate heap footprint of one N-Lustre expression node
/// (discriminant, boxes, type annotation).
const EXPR_NODE_BYTES: usize = 48;
/// Approximate footprint of a declaration (name, type, clock chain).
const DECL_BYTES: usize = 40;
/// Fixed per-equation footprint (clock, defined variables).
const EQ_BYTES: usize = 56;
/// Fixed per-node / per-class / per-method footprint.
const CONTAINER_BYTES: usize = 96;
/// Approximate footprint of one Obc statement or expression node.
const OBC_NODE_BYTES: usize = 56;

fn expr_nodes(e: &Expr<ClightOps>) -> usize {
    match e {
        Expr::Var(..) | Expr::Const(..) => 1,
        Expr::Unop(_, e1, _) => 1 + expr_nodes(e1),
        Expr::Binop(_, e1, e2, _) => 1 + expr_nodes(e1) + expr_nodes(e2),
        Expr::When(e1, _, _) => 1 + expr_nodes(e1),
    }
}

fn cexpr_nodes(ce: &CExpr<ClightOps>) -> usize {
    match ce {
        CExpr::Merge(_, t, f) => 1 + cexpr_nodes(t) + cexpr_nodes(f),
        CExpr::If(c, t, f) => 1 + expr_nodes(c) + cexpr_nodes(t) + cexpr_nodes(f),
        CExpr::Expr(e) => expr_nodes(e),
    }
}

/// Structural size estimate of an N-Lustre program.
fn nlustre_bytes(prog: &Program<ClightOps>) -> usize {
    prog.nodes
        .iter()
        .map(|node| {
            let decls = (node.inputs.len() + node.outputs.len() + node.locals.len()) * DECL_BYTES;
            let eqs: usize = node
                .eqs
                .iter()
                .map(|eq| {
                    EQ_BYTES
                        + EXPR_NODE_BYTES
                            * match eq {
                                Equation::Def { rhs, .. } => cexpr_nodes(rhs),
                                Equation::Fby { rhs, .. } => 1 + expr_nodes(rhs),
                                Equation::Call { args, xs, .. } => {
                                    xs.len() + args.iter().map(expr_nodes).sum::<usize>()
                                }
                            }
                })
                .sum();
            CONTAINER_BYTES + decls + eqs
        })
        .sum()
}

/// Structural size estimate of an Obc program (statement counts via
/// [`velus_obc::ast::Stmt::size`]).
fn obc_bytes(prog: &ObcProgram<ClightOps>) -> usize {
    prog.classes
        .iter()
        .map(|class| {
            let header =
                CONTAINER_BYTES + (class.memories.len() + class.instances.len()) * DECL_BYTES;
            let methods: usize = class
                .methods
                .iter()
                .map(|m| {
                    CONTAINER_BYTES
                        + (m.inputs.len() + m.outputs.len() + m.locals.len()) * DECL_BYTES
                        + m.body.size() * OBC_NODE_BYTES
                })
                .sum();
            header + methods
        })
        .sum()
}

/// One cached, served artifact — exactly what its kind needs, nothing
/// more. A `Wcet` entry holds a few words; only `IrDump` retains an IR
/// and only `CCode` retains the printed C.
#[derive(Debug, Clone)]
pub enum ServiceArtifact {
    /// The printed C translation unit.
    CCode {
        /// The C source text (per the request's `IoMode`).
        c_code: String,
    },
    /// A WCET report.
    Wcet(WcetArtifact),
    /// A baseline-scheme comparison.
    BaselineDiff(BaselineDiffArtifact),
    /// A retained intermediate representation.
    IrDump(IrSnapshot),
    /// A validation/diagnostics report.
    Report(ReportArtifact),
    /// The static-analysis lint report.
    Lint(LintArtifact),
}

impl ServiceArtifact {
    /// The kind this artifact serves.
    pub fn kind(&self) -> ArtifactKind {
        match self {
            ServiceArtifact::CCode { .. } => ArtifactKind::CCode,
            ServiceArtifact::Wcet(w) => ArtifactKind::Wcet { model: w.model },
            ServiceArtifact::BaselineDiff(_) => ArtifactKind::BaselineDiff,
            ServiceArtifact::IrDump(ir) => ArtifactKind::IrDump { stage: ir.stage() },
            ServiceArtifact::Report(_) => ArtifactKind::Report,
            ServiceArtifact::Lint(_) => ArtifactKind::Lint,
        }
    }

    /// The C text, if this is a C artifact.
    pub fn c_code(&self) -> Option<&str> {
        match self {
            ServiceArtifact::CCode { c_code } => Some(c_code),
            _ => None,
        }
    }

    /// Renders the artifact as text (the C itself, a report, a table,
    /// or a pretty-printed IR). Deterministic: equal artifacts render
    /// byte-identically, which is what `velus batch` warm-pass
    /// verification compares.
    pub fn render(&self) -> String {
        match self {
            ServiceArtifact::CCode { c_code } => c_code.clone(),
            ServiceArtifact::Wcet(w) => w.render(),
            ServiceArtifact::BaselineDiff(d) => d.render(),
            ServiceArtifact::IrDump(ir) => ir.render(),
            ServiceArtifact::Report(r) => r.render(),
            ServiceArtifact::Lint(l) => l.render(),
        }
    }

    /// The artifact's resident footprint in bytes, for cache byte-cap
    /// accounting: the C text's length, a small constant for reports,
    /// and the structural IR estimate for dumps.
    pub fn estimated_bytes(&self) -> usize {
        match self {
            ServiceArtifact::CCode { c_code } => c_code.len(),
            ServiceArtifact::Wcet(w) => std::mem::size_of::<WcetArtifact>() + w.root.len(),
            ServiceArtifact::BaselineDiff(d) => {
                std::mem::size_of::<BaselineDiffArtifact>()
                    + d.root.len()
                    + d.rows.len() * std::mem::size_of::<BaselineRow>()
            }
            ServiceArtifact::IrDump(ir) => ir.estimated_bytes(),
            ServiceArtifact::Report(r) => {
                std::mem::size_of::<ReportArtifact>()
                    + r.root.len()
                    + r.warnings
                        .iter()
                        .map(|w| std::mem::size_of::<DiagRecord>() + w.message.len())
                        .sum::<usize>()
            }
            ServiceArtifact::Lint(l) => {
                std::mem::size_of::<LintArtifact>()
                    + l.root.len()
                    + l.human.len()
                    + l.json.len()
                    + l.findings
                        .iter()
                        .map(|f| std::mem::size_of::<DiagRecord>() + f.message.len())
                        .sum::<usize>()
            }
        }
    }
}

/// A coded analysis failure ([`codes::E0703`]) anchored at the root
/// node's header span (a copied [`Span`], not the whole map — the
/// success path must not pay for cloning the `SpanMap`). Shared with
/// the CLI's `wcet` command so the conversion exists once.
pub fn analysis_err(root_span: Span, msg: String) -> VelusError {
    VelusError::Diag(Diagnostics::from(
        Diagnostic::error(codes::E0703, msg, root_span).at_stage(DiagStage::Analysis),
    ))
}

fn wcet_of(
    clight: &velus_clight::ast::Program,
    root: velus_common::Ident,
    model: CostModel,
    root_span: Span,
) -> Result<u64, VelusError> {
    velus_wcet::wcet_step(clight, root, model).map_err(|e| analysis_err(root_span, e.to_string()))
}

fn baseline_diff(staged: &mut StagedPipeline<'_>) -> Result<BaselineDiffArtifact, VelusError> {
    let root = staged.root();
    // The Vélus row measures the validated pipeline's own output.
    let velus_obc_size: usize = staged
        .obc_fused()?
        .classes
        .iter()
        .flat_map(|c| &c.methods)
        .map(|m| m.body.size())
        .sum();
    let root_span = staged.spans().node_span(root);
    let clight = staged.clight()?;
    let mut velus_wcet = [0u64; 3];
    for (k, model) in CostModel::ALL.into_iter().enumerate() {
        velus_wcet[k] = wcet_of(clight, root, model, root_span)?;
    }
    let mut rows = vec![BaselineRow {
        scheme: "velus",
        obc_size: velus_obc_size,
        wcet: velus_wcet,
    }];
    for scheme in BaselineScheme::ALL {
        let obc = scheme
            .compile::<ClightOps>(staged.nlustre())
            .map_err(|e| analysis_err(root_span, e.to_string()))?;
        let obc_size = obc
            .classes
            .iter()
            .flat_map(|c| &c.methods)
            .map(|m| m.body.size())
            .sum();
        // A scheme whose Obc fails Clight generation is an analysis
        // failure like its siblings above — structured, never a bare
        // stage-less `Clight` variant.
        let clight = velus_clight::generate::generate(&obc, root)
            .map_err(|e| analysis_err(root_span, e.to_string()))?;
        let mut wcet = [0u64; 3];
        for (k, model) in CostModel::ALL.into_iter().enumerate() {
            wcet[k] = wcet_of(&clight, root, model, root_span)?;
        }
        rows.push(BaselineRow {
            scheme: scheme.name(),
            obc_size,
            wcet,
        });
    }
    Ok(BaselineDiffArtifact {
        root: root.to_string(),
        rows,
    })
}

/// Produces one artifact per requested kind from a staged pipeline,
/// forcing only the stages the kind set needs. Kinds are produced in
/// the given order; duplicates yield duplicate artifacts (the service
/// deduplicates the kind set before calling). `source` is the request's
/// source text, used to resolve warning positions for
/// [`ArtifactKind::Report`].
///
/// # Errors
///
/// Any forced-stage failure, WCET analysis error, or baseline scheme
/// failure.
pub fn produce(
    staged: &mut StagedPipeline<'_>,
    kinds: &[ArtifactKind],
    io: TestIo,
    source: &str,
) -> Result<Vec<(ArtifactKind, ServiceArtifact)>, VelusError> {
    let mut artifacts = Vec::with_capacity(kinds.len());
    for kind in kinds {
        let artifact = match kind {
            ArtifactKind::CCode => ServiceArtifact::CCode {
                c_code: staged.emit(io)?,
            },
            ArtifactKind::Wcet { model } => {
                let root = staged.root();
                let root_span = staged.spans().node_span(root);
                let cycles = wcet_of(staged.clight()?, root, cost_model(*model), root_span)?;
                ServiceArtifact::Wcet(WcetArtifact {
                    model: *model,
                    root: root.to_string(),
                    cycles,
                })
            }
            ArtifactKind::BaselineDiff => ServiceArtifact::BaselineDiff(baseline_diff(staged)?),
            ArtifactKind::IrDump { stage } => ServiceArtifact::IrDump(match stage {
                IrStageKind::NLustre => IrSnapshot::NLustre(staged.nlustre().clone()),
                IrStageKind::SnLustre => IrSnapshot::SnLustre(staged.snlustre()?.clone()),
                IrStageKind::Obc => IrSnapshot::Obc(staged.obc()?.clone()),
                IrStageKind::ObcFused => IrSnapshot::ObcFused(staged.obc_fused()?.clone()),
            }),
            ArtifactKind::Report => ServiceArtifact::Report(report(staged, source)?),
            ArtifactKind::Lint => ServiceArtifact::Lint(lint(staged, source)?),
        };
        artifacts.push((*kind, artifact));
    }
    Ok(artifacts)
}

/// Builds the lint artifact: forces the analysis pass (scheduling
/// included) and prerenders both the caret and JSON forms against the
/// request source, so the cached artifact serves either without the
/// source.
fn lint(staged: &mut StagedPipeline<'_>, source: &str) -> Result<LintArtifact, VelusError> {
    let findings = staged.lint()?;
    let human = if findings.is_empty() {
        String::new()
    } else {
        findings.render_human(source)
    };
    let records: Vec<DiagRecord> = findings.iter().map(|f| DiagRecord::of(f, source)).collect();
    let root = staged.root().to_string();
    let mut json = format!(
        "{{\"lint\":{{\"root\":\"{}\",\"findings\":[",
        json_escape(&root)
    );
    for (i, f) in records.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        f.render_json_into(&mut json);
    }
    json.push_str("]}}");
    Ok(LintArtifact {
        root,
        findings: records,
        human,
        json,
    })
}

/// Builds the validation report: forces the pipeline through Clight
/// generation — every validated stage runs and re-checks — then records
/// the program's shape and the coded warnings.
fn report(staged: &mut StagedPipeline<'_>, source: &str) -> Result<ReportArtifact, VelusError> {
    staged.clight()?;
    let snlustre = staged.snlustre()?;
    let (nodes, equations) = (snlustre.nodes.len(), snlustre.equation_count());
    // Everything up to (not including) emission ran and re-validated.
    let stages = crate::passes::PASS_ORDER[..crate::passes::PASS_ORDER.len() - 1].to_vec();
    let warnings = staged
        .warnings()
        .iter()
        .map(|w| DiagRecord::of(w, source))
        .collect();
    Ok(ReportArtifact {
        root: staged.root().to_string(),
        nodes,
        equations,
        stages,
        warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = "
        node counter(ini, inc: int; res: bool) returns (n: int)
        let
          n = if (true fby false) or res then ini else (0 fby n) + inc;
        tel
    ";

    fn staged_for(observe: crate::passes::StageObserver<'_>) -> StagedPipeline<'_> {
        StagedPipeline::from_source(COUNTER, None, observe).unwrap()
    }

    #[test]
    fn wcet_only_requests_never_run_emission_or_retain_c() {
        let mut stages = Vec::new();
        let mut observe = |stage: velus_server::Stage, _: std::time::Duration| stages.push(stage);
        let mut staged = staged_for(&mut observe);
        let kinds = [ArtifactKind::Wcet {
            model: WcetModelKind::CompCert,
        }];
        let artifacts = produce(&mut staged, &kinds, TestIo::Volatile, COUNTER).unwrap();
        drop(staged);
        assert_eq!(artifacts.len(), 1);
        let artifact = &artifacts[0].1;
        assert!(artifact.c_code().is_none(), "no C was materialized");
        assert!(matches!(artifact, ServiceArtifact::Wcet(w) if w.cycles > 0));
        assert!(
            !stages.contains(&velus_server::Stage::Emit),
            "emission must not run for a WCET-only request: {stages:?}"
        );
        // The report renders like the `velus wcet` CLI line.
        assert!(artifact.render().contains("cycles (cc)"));
    }

    #[test]
    fn nlustre_dump_stops_after_the_front_half() {
        let mut stages = Vec::new();
        let mut observe = |stage: velus_server::Stage, _: std::time::Duration| stages.push(stage);
        let mut staged = staged_for(&mut observe);
        let kinds = [ArtifactKind::IrDump {
            stage: IrStageKind::NLustre,
        }];
        let artifacts = produce(&mut staged, &kinds, TestIo::Volatile, COUNTER).unwrap();
        drop(staged);
        assert_eq!(
            stages,
            vec![velus_server::Stage::Frontend, velus_server::Stage::Check]
        );
        let rendered = artifacts[0].1.render();
        assert!(rendered.contains("node counter"), "{rendered}");
        // The retained IR is weighed structurally, not as its rendering.
        assert!(artifacts[0].1.estimated_bytes() > 100);
    }

    #[test]
    fn baseline_diff_reproduces_the_figure12_relationships() {
        let mut observe = |_: velus_server::Stage, _: std::time::Duration| {};
        let mut staged = staged_for(&mut observe);
        let diff = baseline_diff(&mut staged).unwrap();
        assert_eq!(diff.rows.len(), 3);
        assert_eq!(diff.rows[0].scheme, "velus");
        let velus_cc = diff.rows[0].wcet[0];
        let lus6 = diff.rows.iter().find(|r| r.scheme == "lustre-v6").unwrap();
        // Lustre v6 without inlining is slower than Vélus; inlining
        // narrows the gap (the paper's headline mechanism).
        assert!(lus6.wcet[0] > velus_cc, "{diff:?}");
        assert!(lus6.wcet[2] < lus6.wcet[0], "{diff:?}");
        let rendered = diff.render();
        assert!(rendered.contains("heptagon"), "{rendered}");
    }

    #[test]
    fn report_artifact_runs_all_validated_stages_and_renders_json() {
        let mut stages = Vec::new();
        let mut observe = |stage: velus_server::Stage, _: std::time::Duration| stages.push(stage);
        let mut staged = staged_for(&mut observe);
        let artifacts = produce(
            &mut staged,
            &[ArtifactKind::Report],
            TestIo::Volatile,
            COUNTER,
        )
        .unwrap();
        drop(staged);
        // The report forces every validated stage but never emission.
        assert!(stages.contains(&velus_server::Stage::Generate));
        assert!(!stages.contains(&velus_server::Stage::Emit), "{stages:?}");
        let rendered = artifacts[0].1.render();
        assert!(rendered.contains("\"root\":\"counter\""), "{rendered}");
        assert!(
            rendered.contains("\"validated_stages\":[\"elaborate\""),
            "{rendered}"
        );
        assert!(rendered.contains("\"warnings\":[]"), "{rendered}");
    }

    #[test]
    fn report_carries_coded_warnings() {
        let src = "node f(x: int) returns (y: int) let y = pre x; tel";
        let mut observe = |_: velus_server::Stage, _: std::time::Duration| {};
        let mut staged = StagedPipeline::from_source(src, None, &mut observe).unwrap();
        let artifacts =
            produce(&mut staged, &[ArtifactKind::Report], TestIo::Volatile, src).unwrap();
        drop(staged);
        let rendered = artifacts[0].1.render();
        assert!(rendered.contains("\"code\":\"W0101\""), "{rendered}");
        assert!(rendered.contains("\"line\":1"), "{rendered}");
    }

    #[test]
    fn ir_estimates_scale_with_program_size() {
        let small = velus_lustre::compile_to_nlustre::<ClightOps>(COUNTER)
            .unwrap()
            .0;
        let big_src = format!(
            "{COUNTER}
             node second(a: int) returns (b: int)
             var t: int;
             let t = a * 2; b = t + (0 fby b); tel"
        );
        let big = velus_lustre::compile_to_nlustre::<ClightOps>(&big_src)
            .unwrap()
            .0;
        assert!(nlustre_bytes(&big) > nlustre_bytes(&small));
    }
}
