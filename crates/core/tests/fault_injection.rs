//! Fault injection: the translation-validation harness is only worth its
//! name if it *fails* on miscompiled programs. These tests corrupt one
//! stage at a time and assert that validation pinpoints the disagreement.

use velus::validate::default_inputs;
use velus_common::Ident;
use velus_obc::ast::{ObcExpr, Stmt};
use velus_ops::{CConst, ClightOps};

const SRC: &str = "
    node counter(ini, inc: int; res: bool) returns (n: int)
    let
      n = if (true fby false) or res then ini else (0 fby n) + inc;
    tel
";

fn compiled() -> velus::Compiled {
    velus::compile(SRC, None).unwrap()
}

/// Rewrites every integer constant `0` to `1` in a statement — a typical
/// "wrong initial value" miscompilation.
fn corrupt_stmt(s: &mut Stmt<ClightOps>) {
    match s {
        Stmt::Assign(_, e) | Stmt::AssignSt(_, e) => corrupt_expr(e),
        Stmt::If(c, t, f) => {
            corrupt_expr(c);
            corrupt_stmt(t);
            corrupt_stmt(f);
        }
        Stmt::Seq(a, b) => {
            corrupt_stmt(a);
            corrupt_stmt(b);
        }
        Stmt::Call { args, .. } => args.iter_mut().for_each(corrupt_expr),
        Stmt::Skip => {}
    }
}

fn corrupt_expr(e: &mut ObcExpr<ClightOps>) {
    match e {
        ObcExpr::Const(c) if *c == CConst::int(0) => *e = ObcExpr::Const(CConst::int(1)),
        ObcExpr::Unop(_, e1, _) => corrupt_expr(e1),
        ObcExpr::Binop(_, e1, e2, _) => {
            corrupt_expr(e1);
            corrupt_expr(e2);
        }
        _ => {}
    }
}

#[test]
fn clean_compilation_validates() {
    let c = compiled();
    let inputs = default_inputs(&c, 12);
    velus::validate(&c, &inputs, 12).unwrap();
}

#[test]
fn corrupted_reset_is_caught_by_memcorres() {
    let mut c = compiled();
    // Break the reset method of the fused Obc: wrong initial state.
    let class = &mut c.obc_fused.classes[0];
    let reset = class
        .methods
        .iter_mut()
        .find(|m| m.name == velus_obc::ast::reset_name())
        .unwrap();
    corrupt_stmt(&mut reset.body);
    let inputs = default_inputs(&c, 8);
    let err = velus::validate(&c, &inputs, 8).unwrap_err();
    // Either the MemCorres check or the output comparison trips.
    let msg = err.to_string();
    assert!(
        msg.contains("memory correspondence") || msg.contains("disagrees"),
        "{msg}"
    );
}

#[test]
fn corrupted_step_output_is_caught() {
    let mut c = compiled();
    let class = &mut c.obc_fused.classes[0];
    let step = class
        .methods
        .iter_mut()
        .find(|m| m.name == velus_obc::ast::step_name())
        .unwrap();
    // Append a final overwrite of the output: n := n + 1.
    let n = Ident::new("n");
    let bump = Stmt::Assign(
        n,
        ObcExpr::Binop(
            velus_ops::CBinOp::Add,
            Box::new(ObcExpr::Var(n, velus_ops::CTy::I32)),
            Box::new(ObcExpr::Const(CConst::int(1))),
            velus_ops::CTy::I32,
        ),
    );
    step.body = Stmt::seq(step.body.clone(), bump);
    let inputs = default_inputs(&c, 8);
    let err = velus::validate(&c, &inputs, 8).unwrap_err();
    assert!(err.to_string().contains("disagrees"), "{err}");
}

#[test]
fn corrupted_clight_constant_is_caught() {
    let mut c = compiled();
    // Corrupt the generated Clight reset: flip the stored constants.
    let reset_name = velus_clight::generate::method_fn_name(c.root, velus_obc::ast::reset_name());
    let f = c
        .clight
        .functions
        .iter_mut()
        .find(|f| f.name == reset_name)
        .unwrap();
    fn corrupt_clight(s: &mut velus_clight::ast::Stmt) {
        use velus_clight::ast::{Expr, Stmt};
        match s {
            Stmt::Assign(_, e) => {
                if let Expr::Const(v, ty) = e {
                    if *v == velus_ops::CVal::int(0) && *ty == velus_ops::CTy::I32 {
                        *e = Expr::Const(velus_ops::CVal::int(7), *ty);
                    }
                }
            }
            Stmt::Seq(a, b) => {
                corrupt_clight(a);
                corrupt_clight(b);
            }
            Stmt::If(_, t, f) => {
                corrupt_clight(t);
                corrupt_clight(f);
            }
            _ => {}
        }
    }
    corrupt_clight(&mut f.body);
    let inputs = default_inputs(&c, 8);
    let err = velus::validate(&c, &inputs, 8).unwrap_err();
    let msg = err.to_string();
    // The staterep separation assertion relates the Clight memory to the
    // (correct) Obc memory and trips first.
    assert!(
        msg.contains("separation assertion") || msg.contains("disagrees"),
        "{msg}"
    );
}

#[test]
fn corrupting_the_unfused_obc_is_also_caught() {
    let mut c = compiled();
    let class = &mut c.obc.classes[0];
    let reset = class
        .methods
        .iter_mut()
        .find(|m| m.name == velus_obc::ast::reset_name())
        .unwrap();
    corrupt_stmt(&mut reset.body);
    let inputs = default_inputs(&c, 8);
    assert!(velus::validate(&c, &inputs, 8).is_err());
}
