//! Black-box tests of the `velus` command-line interface.

use std::io::Write;
use std::process::{Command, Stdio};

fn velus_bin() -> &'static str {
    env!("CARGO_BIN_EXE_velus")
}

fn tracker_path() -> String {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root")
        .join("benchmarks/tracker.lus")
        .display()
        .to_string()
}

#[test]
fn check_reports_program_statistics() {
    let out = Command::new(velus_bin())
        .args(["check", &tracker_path()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("root tracker"), "{stdout}");
}

#[test]
fn compile_emits_c_to_stdout() {
    let out = Command::new(velus_bin())
        .args(["compile", &tracker_path(), "--node", "tracker"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("struct tracker {"), "{stdout}");
    assert!(stdout.contains("int main(void)"), "{stdout}");
}

#[test]
fn run_interprets_stdin_instants() {
    let mut child = Command::new(velus_bin())
        .args(["run", &tracker_path(), "--node", "tracker"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // The §2.2 inputs: acc and limit.
    let input = "0 5\n2 5\n4 5\n-2 5\n0 5\n3 5\n-3 5\n2 5\n";
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 8);
    // p and t at the last instant: 33 and 3.
    assert_eq!(lines[7], "33 3");
}

#[test]
fn validate_reports_checks() {
    let out = Command::new(velus_bin())
        .args(["validate", &tracker_path(), "--steps", "12"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("validated 12 instants"), "{stdout}");
}

#[test]
fn wcet_prints_cycles_for_all_models() {
    for model in ["cc", "gcc", "gcci"] {
        let out = Command::new(velus_bin())
            .args(["wcet", &tracker_path(), "--model", model])
            .output()
            .unwrap();
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("cycles"), "{stdout}");
    }
}

#[test]
fn dump_prints_intermediate_representations() {
    for (ir, marker) in [
        ("nlustre", "node tracker"),
        ("snlustre", "node tracker"),
        ("obc", "class tracker"),
        ("obc-fused", "class tracker"),
    ] {
        let out = Command::new(velus_bin())
            .args(["dump", &tracker_path(), "--ir", ir])
            .output()
            .unwrap();
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains(marker), "--ir {ir}: {stdout}");
    }
}

#[test]
fn syntax_errors_exit_nonzero_with_position() {
    let dir = std::env::temp_dir().join("velus-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.lus");
    std::fs::write(&bad, "node f() returns (y: int) let y = ; tel").unwrap();
    let out = Command::new(velus_bin())
        .args(["check", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error"), "{stderr}");
    assert!(stderr.contains("1:"), "position missing: {stderr}");
}

#[test]
fn batch_compiles_a_directory_with_full_warm_hits() {
    let benchmarks = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root")
        .join("benchmarks");
    let out = Command::new(velus_bin())
        .args([
            "batch",
            benchmarks.to_str().unwrap(),
            "--workers",
            "4",
            "--passes",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The suite has 14 programs; the cold pass compiles them all...
    assert!(
        stdout.contains("pass 1: 14 ok, 0 failed, 0 cache hits"),
        "{stdout}"
    );
    // ...and the warm pass is answered from the cache, byte-identically.
    assert!(
        stdout.contains("pass 2: 14 ok, 0 failed, 14 cache hits"),
        "{stdout}"
    );
    assert!(
        stdout.contains("warm pass: every artifact served from cache, byte-identical output"),
        "{stdout}"
    );
    // The statistics table reports every pipeline stage.
    for stage in [
        "frontend",
        "schedule",
        "translate",
        "fuse",
        "generate",
        "emit",
    ] {
        assert!(stdout.contains(stage), "missing stage {stage}: {stdout}");
    }
}

#[test]
fn batch_with_cache_cap_evicts_and_still_verifies_warm_passes() {
    let benchmarks = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root")
        .join("benchmarks");
    let out = Command::new(velus_bin())
        .args([
            "batch",
            benchmarks.to_str().unwrap(),
            "--workers",
            "2",
            "--passes",
            "2",
            "--cache-cap",
            "4",
        ])
        .output()
        .unwrap();
    // Evicted programs recompile on pass 2; the recompiled C must still
    // match pass 1 byte for byte, so the run succeeds as a whole.
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cache cap 4"), "{stdout}");
    // 14 programs through a 4-entry cache: evictions are certain and
    // surface in the statistics table.
    let evictions: u64 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("cache: "))
        .and_then(|l| l.split(", ").nth(2))
        .and_then(|f| f.strip_suffix(" evictions"))
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no eviction counter in stats: {stdout}"));
    assert!(evictions > 0, "{stdout}");
    assert!(
        stdout.contains("4 entries"),
        "cache must sit at its cap: {stdout}"
    );
}

#[test]
fn batch_cost_scheduling_produces_the_same_results() {
    let benchmarks = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root")
        .join("benchmarks");
    let out = Command::new(velus_bin())
        .args([
            "batch",
            benchmarks.to_str().unwrap(),
            "--workers",
            "2",
            "--passes",
            "2",
            "--sched",
            "cost",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cost scheduling"), "{stdout}");
    // Scheduling only reorders submission: every program still compiles
    // cold then hits warm, byte-identically.
    assert!(
        stdout.contains("pass 1: 14 ok, 0 failed, 0 cache hits"),
        "{stdout}"
    );
    assert!(
        stdout.contains("pass 2: 14 ok, 0 failed, 14 cache hits"),
        "{stdout}"
    );

    let bad = Command::new(velus_bin())
        .args(["batch", benchmarks.to_str().unwrap(), "--sched", "bogus"])
        .output()
        .unwrap();
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown schedule"));
}

#[test]
fn compile_emit_selects_artifacts_and_skips_c() {
    // A multi-kind emit prints headed sections.
    let out = Command::new(velus_bin())
        .args([
            "compile",
            &tracker_path(),
            "--node",
            "tracker",
            "--emit",
            "wcet,obc-fused",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("== wcet:cc =="), "{stdout}");
    assert!(stdout.contains("tracker step:"), "{stdout}");
    assert!(stdout.contains("== obc-fused =="), "{stdout}");
    assert!(stdout.contains("class tracker"), "{stdout}");
    // No C was printed: the emission stage never ran.
    assert!(!stdout.contains("int main(void)"), "{stdout}");

    // An unknown kind is a usage error.
    let bad = Command::new(velus_bin())
        .args(["compile", &tracker_path(), "--emit", "c,bogus"])
        .output()
        .unwrap();
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown artifact kind"));
}

#[test]
fn batch_emit_wcet_serves_reports_through_the_cache() {
    let benchmarks = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root")
        .join("benchmarks");
    let out = Command::new(velus_bin())
        .args([
            "batch",
            benchmarks.to_str().unwrap(),
            "--workers",
            "2",
            "--passes",
            "2",
            "--emit",
            "c,wcet",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The warm pass serves every request — both kinds — from the cache.
    assert!(
        stdout.contains("pass 2: 14 ok, 0 failed, 14 cache hits"),
        "{stdout}"
    );
    // Per-kind statistics rows: 14 programs x 2 passes per kind.
    let kind_row = |name: &str| {
        stdout
            .lines()
            .find(|l| l.starts_with(name) && l.split_whitespace().count() == 4)
            .unwrap_or_else(|| panic!("no `{name}` kind row in:\n{stdout}"))
            .to_owned()
    };
    for name in ["c", "wcet"] {
        let row = kind_row(name);
        let fields: Vec<&str> = row.split_whitespace().collect();
        assert_eq!(fields[1..], ["28", "14", "14"], "{row}");
    }
    // The mixed batch compiled each source's front half exactly once:
    // the frontend stage ran 14 times for 28 kind-requests.
    let frontend = stdout
        .lines()
        .find(|l| l.starts_with("frontend"))
        .expect("frontend stage row");
    assert_eq!(frontend.split_whitespace().nth(1), Some("14"), "{frontend}");
}

#[test]
fn batch_reports_failures_without_aborting_the_sweep() {
    let dir = std::env::temp_dir().join(format!("velus-batch-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("good.lus"),
        "node good(x: int) returns (y: int) let y = x + (0 fby y); tel",
    )
    .unwrap();
    std::fs::write(dir.join("bad.lus"), "node bad( returns").unwrap();
    let out = Command::new(velus_bin())
        .args(["batch", dir.to_str().unwrap(), "--passes", "1"])
        .output()
        .unwrap();
    // The sweep fails overall (nonzero exit) but still reports both rows.
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pass 1: 1 ok, 1 failed"), "{stdout}");
    assert!(stdout.contains("good"), "{stdout}");
    assert!(stdout.contains("bad"), "{stdout}");
}

/// Writes `source` to a temp `.lus` file and returns its path.
fn temp_lus(name: &str, source: &str) -> String {
    let path = std::env::temp_dir().join(format!("velus-cli-{name}.lus"));
    std::fs::write(&path, source).unwrap();
    path.display().to_string()
}

#[test]
fn error_format_json_emits_machine_readable_diagnostics() {
    let file = temp_lus(
        "unknown-var",
        "node f(x: int) returns (y: int)\nlet y = z + 1; tel\n",
    );
    let out = Command::new(velus_bin())
        .args(["compile", &file, "--error-format", "json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // One JSON object on stdout; nothing duplicated on stderr.
    assert!(stdout.trim_end().starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"code\":\"E0201\""), "{stdout}");
    assert!(stdout.contains("\"stage\":\"elaborate\""), "{stdout}");
    assert!(stdout.contains("\"line\":2"), "{stdout}");
    assert!(
        out.stderr.is_empty(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn scheduling_cycles_point_at_the_offending_equation() {
    let file = temp_lus(
        "cycle",
        "node f(x: int) returns (y: int)\nvar a, b: int;\nlet\n  a = b + x;\n  b = a;\n  y = a;\ntel\n",
    );
    let out = Command::new(velus_bin())
        .args(["compile", &file])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The mid-end failure carries its code, stage, and a *source* span:
    // the caret points at the first equation on the cycle.
    assert!(stderr.contains("error[E0408]"), "{stderr}");
    assert!(stderr.contains("(schedule)"), "{stderr}");
    assert!(stderr.contains(" --> 4:3"), "{stderr}");
    assert!(stderr.contains("a = b + x;"), "{stderr}");
}

#[test]
fn emit_report_serves_the_validation_report_as_json() {
    let out = Command::new(velus_bin())
        .args([
            "compile",
            &tracker_path(),
            "--node",
            "tracker",
            "--emit",
            "report",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"root\":\"tracker\""), "{stdout}");
    assert!(
        stdout.contains("\"validated_stages\":[\"elaborate\""),
        "{stdout}"
    );
}

#[test]
fn misspelled_flag_tokens_get_a_did_you_mean() {
    let out = Command::new(velus_bin())
        .args(["compile", &tracker_path(), "--emit", "reprot"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("[E0901]"), "{stderr}");
    assert!(stderr.contains("did you mean `report`"), "{stderr}");
}
