//! Criterion benchmark over the Fig. 12 computation: how long the
//! reproduced WCET analysis takes per benchmark and per scheme.

use criterion::{criterion_group, criterion_main, Criterion};
use velus_bench::suite::{figure12_row, load};

fn bench_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure12");
    group.sample_size(10);
    for name in ["count", "tracker", "functionalchain"] {
        let source = load(name);
        group.bench_function(name, |b| {
            b.iter(|| figure12_row(name, &source).expect("row computes"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rows);
criterion_main!(benches);
