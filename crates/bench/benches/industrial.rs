//! Criterion benchmark of compile-time scaling on the synthetic
//! industrial application (§5). The full 6000-node run lives in the
//! `industrial` binary; here we benchmark smaller scales repeatedly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use velus_testkit::industrial::{industrial_program, IndustrialConfig};

fn bench_industrial(c: &mut Criterion) {
    let mut group = c.benchmark_group("industrial");
    group.sample_size(10);
    for nodes in [50usize, 150, 400] {
        let cfg = IndustrialConfig {
            nodes,
            eqs_per_node: 24,
            fan_in: 2,
            subclock_depth: 0,
        };
        let prog = industrial_program(&cfg);
        let root = velus_common::Ident::new(&format!("blk{}", nodes - 1));
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &prog, |b, prog| {
            b.iter(|| {
                velus::compile_program(prog.clone(), root, velus_common::Diagnostics::new())
                    .expect("compiles")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_industrial);
criterion_main!(benches);
