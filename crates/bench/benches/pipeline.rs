//! Criterion benchmarks of the individual compiler passes on the
//! `tracker` benchmark (the paper's running example), plus the
//! interpreters that substitute for hardware execution.

use criterion::{criterion_group, criterion_main, Criterion};
use velus_bench::suite::load;
use velus_common::Ident;
use velus_nlustre::streams::{SVal, StreamSet};
use velus_ops::{CVal, ClightOps};

fn bench_passes(c: &mut Criterion) {
    let source = load("tracker");
    let mut group = c.benchmark_group("pipeline/tracker");

    group.bench_function("frontend", |b| {
        b.iter(|| velus_lustre::compile_to_nlustre::<ClightOps>(&source).expect("compiles"))
    });

    let (nlustre, _) = velus_lustre::compile_to_nlustre::<ClightOps>(&source).unwrap();
    group.bench_function("schedule", |b| {
        b.iter(|| {
            let mut p = nlustre.clone();
            velus_nlustre::schedule::schedule_program(&mut p).expect("schedules");
            p
        })
    });

    let mut scheduled = nlustre.clone();
    velus_nlustre::schedule::schedule_program(&mut scheduled).unwrap();
    group.bench_function("translate", |b| {
        b.iter(|| velus_obc::translate::translate_program(&scheduled).expect("translates"))
    });

    let obc = velus_obc::translate::translate_program(&scheduled).unwrap();
    group.bench_function("fuse", |b| b.iter(|| velus_obc::fusion::fuse_program(&obc)));

    let fused = velus_obc::fusion::fuse_program(&obc);
    group.bench_function("generate", |b| {
        b.iter(|| {
            velus_clight::generate::generate(&fused, Ident::new("tracker")).expect("generates")
        })
    });

    group.bench_function("end_to_end", |b| {
        b.iter(|| velus::compile(&source, Some("tracker")).expect("compiles"))
    });
    group.finish();
}

fn bench_semantics(c: &mut Criterion) {
    let source = load("tracker");
    let compiled = velus::compile(&source, Some("tracker")).unwrap();
    let n = 64usize;
    let inputs: StreamSet<ClightOps> = vec![
        (0..n)
            .map(|i| SVal::Pres(CVal::int((i as i32 * 7) % 11 - 5)))
            .collect(),
        (0..n).map(|_| SVal::Pres(CVal::int(5))).collect(),
    ];
    let mut group = c.benchmark_group("semantics/tracker");
    group.bench_function("dataflow_64", |b| {
        b.iter(|| {
            velus_nlustre::dataflow::run_node(&compiled.snlustre, Ident::new("tracker"), &inputs, n)
                .expect("runs")
        })
    });
    group.bench_function("validate_64", |b| {
        b.iter(|| velus::validate(&compiled, &inputs, n).expect("validates"))
    });
    group.finish();
}

criterion_group!(benches, bench_passes, bench_semantics);
criterion_main!(benches);
