//! Rendering of the reproduced Fig. 12 in the paper's format.

use crate::suite::Row;

fn pct(value: u64, base: u64) -> String {
    if base == 0 {
        return "-".to_owned();
    }
    let p = (value as f64 / base as f64 - 1.0) * 100.0;
    format!("({}%)", p.round() as i64)
}

/// Renders the table as aligned plain text, cycles with percentages
/// relative to the Vélus column, exactly as Fig. 12 presents them.
pub fn render_text(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>9} {:>16} {:>16} {:>16} {:>16} {:>16} {:>16}\n",
        "benchmark",
        "Velus",
        "Hept+CC",
        "Hept+gcc",
        "Hept+gcci",
        "Lus6+CC",
        "Lus6+gcc",
        "Lus6+gcci"
    ));
    for r in rows {
        let cell = |v: u64| format!("{v} {}", pct(v, r.velus));
        out.push_str(&format!(
            "{:<22} {:>9} {:>16} {:>16} {:>16} {:>16} {:>16} {:>16}\n",
            r.name,
            r.velus,
            cell(r.hept[0]),
            cell(r.hept[1]),
            cell(r.hept[2]),
            cell(r.lus6[0]),
            cell(r.lus6[1]),
            cell(r.lus6[2]),
        ));
    }
    out
}

/// Renders the table as a Markdown table (for EXPERIMENTS.md).
pub fn render_markdown(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "| benchmark | Vélus | Hept+CC | Hept+gcc | Hept+gcci | Lus6+CC | Lus6+gcc | Lus6+gcci |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|\n");
    for r in rows {
        let cell = |v: u64| format!("{v} {}", pct(v, r.velus));
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
            r.name,
            r.velus,
            cell(r.hept[0]),
            cell(r.hept[1]),
            cell(r.hept[2]),
            cell(r.lus6[0]),
            cell(r.lus6[1]),
            cell(r.lus6[2]),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        Row {
            name: "t".to_owned(),
            velus: 100,
            hept: [110, 70, 60],
            lus6: [350, 200, 90],
        }
    }

    #[test]
    fn percentages_match_the_papers_convention() {
        assert_eq!(pct(110, 100), "(10%)");
        assert_eq!(pct(70, 100), "(-30%)");
        assert_eq!(pct(100, 100), "(0%)");
    }

    #[test]
    fn text_table_contains_all_columns() {
        let t = render_text(&[row()]);
        assert!(t.contains("Lus6+gcci"));
        assert!(t.contains("350 (250%)"));
    }

    #[test]
    fn markdown_is_well_formed() {
        let t = render_markdown(&[row()]);
        assert_eq!(t.lines().count(), 3);
        assert!(t.lines().all(|l| l.starts_with('|')));
    }
}
