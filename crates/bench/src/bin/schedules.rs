//! The §5 schedule-quality observation.
//!
//! "For the example with the deepest nesting of clocks (3 levels), both
//! Heptagon and our prototype found the same optimal schedule."
//!
//! Our scheduler's clock-affine tie-breaking minimizes the number of
//! adjacent equation pairs with different clocks (`clock_switches`),
//! which is what makes fusion effective. This binary reports, for every
//! benchmark node: the deepest clock nesting, the switches produced by
//! the clock-affine scheduler, and the switches produced by a naive
//! (plain Kahn) order, to show the scheduler is at the optimum for the
//! suite's deepest-clock programs.

use velus_bench::suite::{load, BENCHMARKS};
use velus_nlustre::clock::Clock;
use velus_nlustre::deps::dep_graph;
use velus_nlustre::schedule::clock_switches;

/// A clock-oblivious Kahn schedule (plain FIFO), for comparison.
fn naive_switches(node: &velus_nlustre::ast::Node<velus_ops::ClightOps>) -> usize {
    let graph = dep_graph(node);
    let mut preds = graph.preds.clone();
    let mut queue: std::collections::VecDeque<usize> =
        (0..graph.len()).filter(|&i| preds[i] == 0).collect();
    let mut order = Vec::new();
    while let Some(i) = queue.pop_front() {
        order.push(i);
        for &j in &graph.succs[i] {
            preds[j] -= 1;
            if preds[j] == 0 {
                queue.push_back(j);
            }
        }
    }
    order
        .windows(2)
        .filter(|w| node.eqs[w[0]].clock() != node.eqs[w[1]].clock())
        .count()
}

fn deepest_clock(node: &velus_nlustre::ast::Node<velus_ops::ClightOps>) -> usize {
    node.eqs
        .iter()
        .map(|eq| eq.clock().depth())
        .chain(node.locals.iter().map(|d| d.ck.depth()))
        .max()
        .unwrap_or(0)
}

/// The minimum possible number of clock switches: the number of distinct
/// clocks minus one (every clock group contiguous), when dependencies
/// permit.
fn distinct_clocks(node: &velus_nlustre::ast::Node<velus_ops::ClightOps>) -> usize {
    let mut clocks: Vec<&Clock> = node.eqs.iter().map(|eq| eq.clock()).collect();
    clocks.sort();
    clocks.dedup();
    clocks.len()
}

fn main() {
    println!(
        "{:<22} {:<18} {:>6} {:>9} {:>7} {:>10}",
        "benchmark", "node", "depth", "switches", "naive", "lower bnd"
    );
    let mut deepest = 0usize;
    for name in BENCHMARKS {
        let source = load(name);
        let compiled = velus::compile(&source, Some(name)).expect("benchmarks compile");
        for node in &compiled.snlustre.nodes {
            let depth = deepest_clock(node);
            deepest = deepest.max(depth);
            if depth == 0 {
                continue;
            }
            let switches = clock_switches(node);
            let naive = naive_switches(node);
            let lower = distinct_clocks(node).saturating_sub(1);
            println!(
                "{:<22} {:<18} {:>6} {:>9} {:>7} {:>10}{}",
                name,
                node.name.to_string(),
                depth,
                switches,
                naive,
                lower,
                if switches == lower {
                    "  (optimal)"
                } else if switches <= naive {
                    "  (<= naive)"
                } else {
                    ""
                }
            );
        }
    }
    println!("\ndeepest clock nesting in the suite: {deepest}");
    println!("'switches' counts adjacent equation pairs on different clocks after");
    println!("clock-affine scheduling; fewer switches means better fusion.");
}
