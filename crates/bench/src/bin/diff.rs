//! The differential-semantics campaign runner.
//!
//! Each seed generates a random well-formed Lustre program (optionally
//! mutated at the source level), compiles it, and runs the full oracle
//! set of the paper's end-to-end theorem — unscheduled vs scheduled
//! dataflow, memory semantics with `MemCorres`, Obc unfused and fused,
//! step-driven Clight with `staterep`, the volatile trace of the
//! generated `main`, and staged-vs-one-shot C emission. Divergences and
//! panics are shrunk automatically and written as `.lus` + `.json`
//! reproducer pairs under `tests/diff_seeds/` (see
//! `velus_testkit::campaign`).
//!
//! ```text
//! cargo run --release -p velus-bench --bin diff -- --seeds 1000
//! cargo run --release -p velus-bench --bin diff -- --budget-ms 30000 --workers 8
//! cargo run --release -p velus-bench --bin diff -- --seeds 300 --json
//! ```
//!
//! Flags:
//!
//! * `--seeds N` — number of seeds to run (default 200);
//! * `--budget-ms M` — instead of a fixed count, keep running seed
//!   batches until `M` milliseconds have elapsed (overrides `--seeds`);
//! * `--seed-start S` — first seed (default 0);
//! * `--workers K` — worker threads (default 4). Seeds are partitioned
//!   `start + w, start + w + K, …`, so the merged report is identical
//!   for any `K`;
//! * `--mutate-pct P` — percentage of seeds whose source is mutated
//!   before compilation (default 10);
//! * `--shrink-budget B` — max recompile-and-recheck cycles per failing
//!   seed (default 400);
//! * `--out DIR` — reproducer directory (default `tests/diff_seeds`);
//! * `--json` — machine-readable summary on stdout.
//!
//! Exit status: 0 when the campaign is clean, 1 when any seed diverged,
//! panicked, or hit a rig failure (reproducers are written either way).

use std::path::PathBuf;
use std::time::Instant;

use velus_bench::{parse_bool_flag, parse_flag, parse_string_flag};
use velus_obs::Histogram;
use velus_testkit::campaign::{run_campaign, write_reproducer, CampaignConfig, CampaignReport};

fn merge_reports(into: &mut CampaignReport, from: CampaignReport) {
    into.results.extend(from.results);
}

fn main() {
    let seeds = parse_flag("--seeds", 200) as u64;
    let budget_ms = parse_flag("--budget-ms", 0) as u64;
    let seed_start = parse_flag("--seed-start", 0) as u64;
    let workers = parse_flag("--workers", 4).max(1);
    let json = parse_bool_flag("--json");
    let out_dir =
        PathBuf::from(parse_string_flag("--out").unwrap_or_else(|| "tests/diff_seeds".to_owned()));
    let cfg = CampaignConfig {
        mutate_pct: parse_flag("--mutate-pct", 10) as u32,
        shrink_budget: parse_flag("--shrink-budget", 400),
        ..CampaignConfig::default()
    };

    // Campaign panics are caught, classified, and shrunk by the engine;
    // suppress the default hook's per-panic backtrace spew.
    std::panic::set_hook(Box::new(|_| {}));

    let start = Instant::now();
    let mut report = CampaignReport::default();
    if budget_ms > 0 {
        // Time-budget mode: run worker-sized batches until the clock
        // runs out (at least one batch always runs).
        let batch = (workers as u64) * 8;
        let mut next = seed_start;
        loop {
            merge_reports(&mut report, run_campaign(&cfg, next, batch, workers));
            next = next.saturating_add(batch);
            if start.elapsed().as_millis() as u64 >= budget_ms {
                break;
            }
        }
    } else {
        report = run_campaign(&cfg, seed_start, seeds, workers);
    }
    let elapsed = start.elapsed();

    let mut hist = Histogram::new();
    for r in &report.results {
        hist.record(r.nanos / 1000); // microseconds
    }

    let failures = report.failures();
    let mut written: Vec<String> = Vec::new();
    for rep in &failures {
        match write_reproducer(&out_dir, rep) {
            Ok((lus, _)) => written.push(lus.display().to_string()),
            Err(e) => eprintln!("error: could not write reproducer: {e}"),
        }
    }

    if json {
        let mut out = String::from("{");
        out.push_str(&format!("\"seeds\": {}", report.results.len()));
        out.push_str(&format!(", \"agreed\": {}", report.agreed()));
        out.push_str(&format!(
            ", \"mutants_rejected\": {}",
            report.mutants_rejected()
        ));
        out.push_str(&format!(", \"vacuous\": {}", report.vacuous()));
        out.push_str(&format!(", \"failures\": {}", failures.len()));
        out.push_str(", \"rejection_codes\": {");
        for (i, (code, n)) in report.rejection_codes().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{code}\": {n}"));
        }
        out.push('}');
        out.push_str(", \"failing_seeds\": [");
        for (i, f) in failures.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&f.seed.to_string());
        }
        out.push(']');
        out.push_str(&format!(
            ", \"seed_us\": {{\"p50\": {}, \"p99\": {}, \"max\": {}, \"mean\": {:.1}}}",
            hist.percentile(50.0),
            hist.percentile(99.0),
            hist.max(),
            hist.mean()
        ));
        out.push_str(&format!(", \"elapsed_ms\": {}", elapsed.as_millis()));
        out.push_str(&format!(", \"float_policy\": \"{}\"", {
            velus_testkit::campaign::FLOAT_POLICY
        }));
        out.push('}');
        println!("{out}");
    } else {
        println!(
            "differential campaign: {} seeds in {elapsed:.2?} ({} workers)",
            report.results.len(),
            workers
        );
        println!(
            "  agreed {:>6}   mutants rejected {:>5}   vacuous {:>4}   failures {}",
            report.agreed(),
            report.mutants_rejected(),
            report.vacuous(),
            failures.len()
        );
        let codes = report.rejection_codes();
        if !codes.is_empty() {
            let rendered: Vec<String> = codes.iter().map(|(c, n)| format!("{c}×{n}")).collect();
            println!("  rejection codes: {}", rendered.join(" "));
        }
        println!(
            "  per-seed latency: p50 {}µs  p99 {}µs  max {}µs",
            hist.percentile(50.0),
            hist.percentile(99.0),
            hist.max()
        );
        for (f, path) in failures.iter().zip(&written) {
            let what = f
                .info
                .as_ref()
                .map_or_else(|| f.detail.clone(), |i| format!("{} oracle", i.oracle));
            println!(
                "  FAILURE seed {} [{}] {}: {} -> {}",
                f.seed,
                f.profile,
                f.kind.token(),
                what,
                path
            );
        }
    }

    if !report.clean() {
        eprintln!(
            "campaign FAILED: {} reproducer(s) under {}",
            failures.len(),
            out_dir.display()
        );
        std::process::exit(1);
    }
}
