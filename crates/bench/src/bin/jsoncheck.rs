//! `jsoncheck` — reads stdin, asserts it is one well-formed JSON value.
//!
//! The CI pipes the CLI's `--error-format json` and `--emit report`
//! outputs through this (the same mini checker the pipeline bench's
//! `--smoke` gate uses), so a malformed diagnostics document fails the
//! build even though the producing `velus` invocation exits nonzero by
//! design.

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("jsoncheck: cannot read stdin: {e}");
        return ExitCode::FAILURE;
    }
    if input.trim().is_empty() {
        eprintln!("jsoncheck: empty input (expected one JSON value)");
        return ExitCode::FAILURE;
    }
    match velus_bench::json::check(input.trim()) {
        Ok(()) => {
            println!("json ok ({} bytes)", input.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("jsoncheck: malformed JSON: {e}");
            eprintln!("{input}");
            ExitCode::FAILURE
        }
    }
}
