//! Regenerates Figure 12 of the paper: WCET estimates in cycles for the
//! `step` functions of the 14-benchmark suite under seven compilation
//! configurations.
//!
//! ```text
//! cargo run -p velus-bench --bin figure12 [--md]
//! ```

use velus_bench::suite::{figure12, PAPER_VELUS_CYCLES};
use velus_bench::table::{render_markdown, render_text};

fn main() {
    let md = std::env::args().any(|a| a == "--md");
    let rows = match figure12() {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("figure12 failed: {e}");
            std::process::exit(1);
        }
    };
    if md {
        print!("{}", render_markdown(&rows));
    } else {
        println!("Figure 12 (reproduced): WCET estimates in cycles for step functions.");
        println!("Percentages are relative to the first column, as in the paper.\n");
        print!("{}", render_text(&rows));
        println!();
        println!("Paper (Vélus column, OTAWA cycles on armv7) for comparison of shape:");
        for (name, cycles) in PAPER_VELUS_CYCLES {
            let ours = rows
                .iter()
                .find(|r| r.name == *name)
                .map(|r| r.velus)
                .unwrap_or(0);
            println!("  {name:<22} paper {cycles:>6}   reproduced {ours:>6}");
        }
    }
}
