//! Throughput scaling of the batch compilation service.
//!
//! Compiles a deterministic corpus of generated programs (the
//! `velus-testkit` industrial generator at several shapes, a third of
//! them sub-clocked/fusion-heavy) through `velus::service` with
//! 1, 2, 4, … workers, and reports cold-batch throughput, warm-batch
//! (cache-served) throughput, and the service's per-stage latency
//! statistics. A second dimension compares **artifact sets**: the same
//! corpus requested as C only, WCET only, and C+WCET in one request —
//! the mixed batch shares the pipeline prefix, so it costs roughly one
//! compilation, not two.
//!
//! ```text
//! cargo run --release -p velus-bench --bin service \
//!     [--programs N] [--max-workers N] [--json PATH]
//! ```
//!
//! `--json PATH` additionally writes the worker sweep as a JSON array
//! (one object per worker count) so runs can be recorded and diffed
//! across commits (see `BENCH_service.json` at the repository root).

use velus::service::{service, ServiceConfig};
use velus::{ArtifactKind, CompileOptions, CompileRequest, WcetModelKind};
use velus_bench::{parse_flag, parse_string_flag};
use velus_obs::Histogram;
use velus_testkit::industrial::{industrial_source, IndustrialConfig};

/// Tail latency of a batch: per-request latencies folded through the
/// service's own mergeable histogram, so the bench reports the same
/// p99 the service statistics would.
fn batch_p99(report: &velus::service::BatchReport<velus::PipelineCompiler>) -> std::time::Duration {
    let mut hist = Histogram::new();
    for item in &report.items {
        hist.record(item.latency.as_nanos() as u64);
    }
    std::time::Duration::from_nanos(hist.percentile(99.0))
}

/// A deterministic corpus: distinct shapes so requests differ in cost,
/// as real batches do.
fn corpus(programs: usize) -> Vec<CompileRequest> {
    (0..programs)
        .map(|k| {
            let cfg = IndustrialConfig {
                nodes: 8 + (k % 7) * 3,
                eqs_per_node: 6 + (k % 5) * 2,
                fan_in: 1 + k % 2,
                // A third of the corpus is sub-clocked (fusion-heavy).
                subclock_depth: k % 3,
            };
            let source = industrial_source(&cfg);
            let root = format!("blk{}", cfg.nodes - 1);
            CompileRequest::new(format!("gen{k:02}"), source).with_root(root)
        })
        .collect()
}

fn main() {
    let programs = parse_flag("--programs", 24);
    let max_workers = parse_flag("--max-workers", 8);
    let requests = corpus(programs);
    println!("service bench: {programs} generated programs, scaling 1..={max_workers} workers\n");
    println!(
        "{:<8} {:>12} {:>14} {:>12} {:>12} {:>14}",
        "workers", "cold", "cold prog/s", "cold p99", "warm", "warm prog/s"
    );

    // Powers of two up to the cap, always ending exactly at the cap so
    // the requested maximum is measured even when it is not a power of
    // two (e.g. --max-workers 6 -> 1, 2, 4, 6).
    let mut worker_counts = vec![1usize];
    while worker_counts.last().copied().unwrap_or(1) * 2 <= max_workers {
        worker_counts.push(worker_counts.last().unwrap() * 2);
    }
    if worker_counts.last().copied() != Some(max_workers.max(1)) {
        worker_counts.push(max_workers.max(1));
    }

    let mut baseline = None;
    let mut last_stats = None;
    let mut json_rows: Vec<String> = Vec::new();
    for &workers in &worker_counts {
        let svc = service(ServiceConfig {
            workers,
            caching: true,
            ..Default::default()
        });
        let cold = svc.compile_batch(requests.clone());
        assert_eq!(
            cold.err_count(),
            0,
            "generated programs must compile; first error: {:?}",
            cold.items.iter().find_map(|i| i
                .result
                .as_ref()
                .err()
                .map(|e| (i.name.clone(), e.to_string())))
        );
        let warm = svc.compile_batch(requests.clone());
        assert_eq!(warm.hit_count(), programs, "warm pass must be fully cached");
        let speedup = match baseline {
            None => {
                baseline = Some(cold.wall);
                "1.00x".to_owned()
            }
            Some(base) => format!(
                "{:.2}x",
                base.as_secs_f64() / cold.wall.as_secs_f64().max(f64::EPSILON)
            ),
        };
        let cold_p99 = batch_p99(&cold);
        println!(
            "{:<8} {:>12} {:>14.1} {:>12} {:>12} {:>14.1}   speedup {speedup}",
            workers,
            format!("{:.2?}", cold.wall),
            cold.throughput(),
            format!("{:.2?}", cold_p99),
            format!("{:.2?}", warm.wall),
            warm.throughput()
        );
        json_rows.push(format!(
            concat!(
                "  {{\"workers\": {}, \"programs\": {}, ",
                "\"cold_secs\": {:.6}, \"cold_prog_per_s\": {:.1}, ",
                "\"cold_p99_secs\": {:.6}, ",
                "\"warm_secs\": {:.6}, \"warm_prog_per_s\": {:.1}}}"
            ),
            workers,
            programs,
            cold.wall.as_secs_f64(),
            cold.throughput(),
            cold_p99.as_secs_f64(),
            warm.wall.as_secs_f64(),
            warm.throughput()
        ));
        last_stats = Some((workers, svc.stats()));
    }
    if let Some(path) = parse_string_flag("--json") {
        let body = format!("[\n{}\n]\n", json_rows.join(",\n"));
        std::fs::write(&path, body).expect("write --json file");
        println!("\nwrote sweep to {path}");
    }
    if let Some((workers, stats)) = last_stats {
        println!("\nservice statistics ({workers} workers):\n{stats}");
    }

    artifact_dimension(&requests, max_workers.max(1));
}

/// The artifact-set dimension: the same corpus requested as single-kind
/// and multi-kind batches, at a fixed worker count. Each batch runs on
/// a fresh service (cold cache), then once warm. The interesting
/// comparison is `c,wcet` against `c` — the mixed batch runs the
/// shared pipeline prefix once per program, so its cold cost is close
/// to a single-artifact batch, nowhere near the sum of two.
fn artifact_dimension(base: &[CompileRequest], workers: usize) {
    const WCET: ArtifactKind = ArtifactKind::Wcet {
        model: WcetModelKind::CompCert,
    };
    let sets: [(&str, Vec<ArtifactKind>); 3] = [
        ("c", vec![ArtifactKind::CCode]),
        ("wcet", vec![WCET]),
        ("c,wcet", vec![ArtifactKind::CCode, WCET]),
    ];
    println!("\nartifact-set dimension ({workers} workers, fresh cache per set):");
    println!(
        "{:<10} {:>12} {:>14} {:>12} {:>14}",
        "emit", "cold", "cold prog/s", "warm", "warm prog/s"
    );
    for (label, kinds) in sets {
        let requests: Vec<CompileRequest> = base
            .iter()
            .map(|r| {
                r.clone()
                    .with_options(CompileOptions::for_kinds(kinds.clone()))
            })
            .collect();
        let svc = service(ServiceConfig {
            workers,
            caching: true,
            ..Default::default()
        });
        let cold = svc.compile_batch(requests.clone());
        assert_eq!(cold.err_count(), 0, "artifact-set batch must compile");
        let warm = svc.compile_batch(requests);
        assert_eq!(warm.hit_count(), warm.items.len());
        println!(
            "{:<10} {:>12} {:>14.1} {:>12} {:>14.1}",
            label,
            format!("{:.2?}", cold.wall),
            cold.throughput(),
            format!("{:.2?}", warm.wall),
            warm.throughput()
        );
    }
}
