//! Interner contention under parallel compilation.
//!
//! Every worker of the batch service interns identifiers while parsing
//! and elaborating, so the `Ident` interner's locking is on the hot
//! path of parallel compilation. Before sharding, one global mutex
//! serialized *every* operation — including `as_str`, a pure read.
//! This benchmark sweeps thread counts over the three access patterns
//! and reports throughput:
//!
//! * `intern-fresh` — every thread interns distinct new names
//!   (allocation + table insert; spread over shards, the patterns
//!   contend only when two names hash to one shard);
//! * `intern-hot`   — every thread re-interns one shared name set
//!   (lookup hits under the shard lock, the parser's common case);
//! * `as_str`       — every thread resolves pre-interned identifiers
//!   (lock-free reads; scales with threads up to the core count).
//!
//! ```text
//! cargo run --release -p velus-bench --bin contention [--ops N] [--max-threads N]
//! ```

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

use velus_bench::parse_flag;
use velus_common::Ident;

/// Runs `work(thread_index)` on `threads` threads behind a barrier and
/// returns aggregate operations per second for `ops_per_thread` ops.
fn sweep(threads: usize, ops_per_thread: usize, work: impl Fn(usize) + Send + Sync) -> f64 {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let work = &work;
    thread::scope(|scope| {
        for t in 0..threads {
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                work(t);
            });
        }
        // Start the clock *before* releasing the workers: on a
        // single-core machine the released workers can run to
        // completion before this thread is rescheduled, so a
        // clock-after-release would undershoot wildly. The barrier
        // wake-up cost this includes is negligible against the
        // measured loops; the scope's exit joins the workers.
        let start = Instant::now();
        barrier.wait();
        start
    })
    .elapsed()
    .as_secs_f64()
    .recip()
        * (threads * ops_per_thread) as f64
}

fn main() {
    let ops = parse_flag("--ops", 200_000);
    let max_threads = parse_flag("--max-threads", 8);
    let mut thread_counts = vec![1usize];
    while thread_counts.last().copied().unwrap_or(1) * 2 <= max_threads {
        thread_counts.push(thread_counts.last().unwrap() * 2);
    }

    // Shared fixtures.
    let hot: Vec<String> = (0..512).map(|k| format!("hot_name_{k}")).collect();
    let warm: Vec<Ident> = hot.iter().map(|n| Ident::new(n)).collect();

    println!("interner contention: {ops} ops/thread, sweeping 1..={max_threads} threads\n");
    println!(
        "{:<10} {:>16} {:>16} {:>16}",
        "threads", "intern-fresh/s", "intern-hot/s", "as_str/s"
    );
    for (round, &threads) in thread_counts.iter().enumerate() {
        let fresh = sweep(threads, ops, |t| {
            for k in 0..ops {
                // Unique per round/thread/iteration: always a table insert.
                Ident::new(&format!("fresh_{round}_{t}_{k}"));
            }
        });
        let hot_rate = sweep(threads, ops, |_| {
            for k in 0..ops {
                Ident::new(&hot[k % hot.len()]);
            }
        });
        let read = sweep(threads, ops, |_| {
            let mut total = 0usize;
            for k in 0..ops {
                total = total.wrapping_add(warm[k % warm.len()].as_str().len());
            }
            assert!(total > 0);
        });
        println!("{threads:<10} {fresh:>16.0} {hot_rate:>16.0} {read:>16.0}");
    }
}
