//! `chaos` — open-loop overload bench of the service's fault-tolerance
//! layer.
//!
//! Wraps the real pipeline in `velus_testkit::chaos::ChaosCompiler`
//! (seeded panics, transient failures, cancellable delays), measures
//! the service's fault-free capacity, then drives an **open-loop**
//! arrival process at 2× that capacity — arrivals are not gated on
//! completions, so the admission queue genuinely overloads — and
//! checks the robustness invariants:
//!
//! * zero worker deaths (panics are contained per request);
//! * zero lost requests: every submission resolves, and
//!   `ok + failed + shed == submitted`;
//! * every shed / timed-out / quarantined request carries its stable
//!   `E08xx` code;
//! * ≥ 90 % of injected transient failures succeed on retry.
//!
//! Reports shed rate, retry success, and p50/p99/p999 latency of the
//! admitted requests, then drains the service.
//!
//! ```text
//! cargo run --release -p velus-bench --bin chaos -- \
//!     [--seeds N] [--workers W] [--retries R] [--queue-cap Q] \
//!     [--chaos-seed S] [--json]
//! ```
//!
//! With `--json`, stdout is exactly one JSON object (CI pipes it
//! through `jsoncheck`); the human-readable report moves to stderr.
//! Any violated invariant exits nonzero.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use velus::service::{service, ServiceConfig};
use velus::{CompileRequest, PipelineCompiler};
use velus_bench::{parse_bool_flag, parse_flag};
use velus_obs::Histogram;
use velus_server::{AdmissionConfig, CompileService, RetryPolicy, ServiceError, Submission};
use velus_testkit::chaos::{ChaosCompiler, ChaosConfig};

type ChaosService = CompileService<ChaosCompiler<PipelineCompiler>>;

/// Distinct tiny programs: a unique constant per request keeps every
/// content digest (cache key and chaos fault roll) distinct.
fn corpus(n: usize) -> Vec<CompileRequest> {
    (0..n)
        .map(|k| {
            let source = format!(
                "node main(x: int) returns (y: int)\n\
                 var acc: int;\n\
                 let\n\
                   acc = ({k} fby acc) + x;\n\
                   y = if acc > {} then 0 else acc;\n\
                 tel\n",
                1000 + k
            );
            CompileRequest::new(format!("chaos{k:03}"), source)
        })
        .collect()
}

/// Fault-free capacity: cold-compile the corpus on a plain service and
/// take its throughput.
fn measure_capacity(reqs: &[CompileRequest], workers: usize) -> f64 {
    let svc = service(ServiceConfig {
        workers,
        ..Default::default()
    });
    let batch = svc.compile_batch(reqs.to_vec());
    assert_eq!(
        batch.err_count(),
        0,
        "calibration corpus must compile cleanly"
    );
    batch.throughput()
}

struct Outcome {
    ok: usize,
    shed: usize,
    draining: usize,
    deadline: usize,
    quarantined: usize,
    panicked: usize,
    compile_failed: usize,
    lost: usize,
    uncoded: usize,
    latencies: Histogram,
}

fn classify(submissions: Vec<Submission<ChaosCompiler<PipelineCompiler>>>) -> Outcome {
    let mut out = Outcome {
        ok: 0,
        shed: 0,
        draining: 0,
        deadline: 0,
        quarantined: 0,
        panicked: 0,
        compile_failed: 0,
        lost: 0,
        uncoded: 0,
        latencies: Histogram::new(),
    };
    for sub in submissions {
        let report = sub.wait();
        match &report.result {
            Ok(_) => {
                out.ok += 1;
                out.latencies.record(report.latency.as_nanos() as u64);
            }
            Err(err) => {
                let code = err.failure_report().primary_code();
                match err {
                    ServiceError::Overloaded { .. } => {
                        out.shed += 1;
                        if code != Some("E0801") {
                            out.uncoded += 1;
                        }
                    }
                    ServiceError::Draining => {
                        out.draining += 1;
                        if code != Some("E0805") {
                            out.uncoded += 1;
                        }
                    }
                    ServiceError::DeadlineExceeded => {
                        out.deadline += 1;
                        if code != Some("E0802") {
                            out.uncoded += 1;
                        }
                    }
                    ServiceError::Quarantined => {
                        out.quarantined += 1;
                        if code != Some("E0803") {
                            out.uncoded += 1;
                        }
                    }
                    ServiceError::Panic(_) => out.panicked += 1,
                    ServiceError::Compile { .. } | ServiceError::MissingArtifact(_) => {
                        out.compile_failed += 1;
                        if code.is_none() {
                            out.uncoded += 1;
                        }
                    }
                    ServiceError::Lost => out.lost += 1,
                }
            }
        }
    }
    out
}

fn main() -> ExitCode {
    let seeds = parse_flag("--seeds", 40);
    let workers = parse_flag("--workers", 4);
    let retries = parse_flag("--retries", 2) as u32;
    let queue_cap = parse_flag("--queue-cap", workers * 4);
    let chaos_seed = parse_flag("--chaos-seed", 1) as u64;
    let json = parse_bool_flag("--json");
    macro_rules! note {
        ($($arg:tt)*) => {
            if json { eprintln!($($arg)*) } else { println!($($arg)*) }
        };
    }

    let reqs = corpus(seeds);
    let capacity = measure_capacity(&reqs, workers);
    let target = 2.0 * capacity;
    let interarrival = Duration::from_secs_f64(1.0 / target.max(1.0));
    note!(
        "chaos bench: {seeds} requests, {workers} workers, retry budget {retries}, queue cap {queue_cap}"
    );
    note!("fault-free capacity {capacity:.1} prog/s -> open-loop target {target:.1} prog/s");

    let compiler = ChaosCompiler::new(
        PipelineCompiler,
        ChaosConfig {
            seed: chaos_seed,
            ..Default::default()
        },
    );
    let svc: ChaosService = CompileService::new(
        compiler,
        ServiceConfig {
            workers,
            admission: AdmissionConfig {
                queue_cap: Some(queue_cap),
                cost_budget_ms: None,
            },
            retry: RetryPolicy::with_budget(retries),
            ..Default::default()
        },
    );

    // Open loop: submit on schedule regardless of completions.
    let started = Instant::now();
    let mut submissions = Vec::with_capacity(seeds);
    let mut admitted = 0usize;
    for (k, req) in reqs.into_iter().enumerate() {
        let due = started + interarrival * (k as u32);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let sub = svc.submit(req);
        admitted += usize::from(sub.admitted());
        submissions.push(sub);
    }
    let out = classify(submissions);
    let drain = svc.drain(Duration::from_secs(30));
    let wall = started.elapsed();
    let chaos = svc.compiler().chaos_stats();
    let stats = svc.stats();
    let dead = svc.dead_workers();

    let submitted = seeds;
    let shed_total = out.shed + out.draining;
    let failed = out.deadline + out.quarantined + out.panicked + out.compile_failed + out.lost;
    let accounted = out.ok + shed_total + failed;
    let shed_rate = shed_total as f64 / submitted as f64;
    let retry_success = if chaos.injected_transients == 0 {
        1.0
    } else {
        chaos.recovered_transients as f64 / chaos.injected_transients as f64
    };
    let p = |pct: f64| Duration::from_nanos(out.latencies.percentile(pct));

    note!(
        "\nsubmitted {submitted}  admitted {admitted}  ok {}  shed {shed_total} ({:.0}%)  \
         panicked {}  quarantined {}  deadline {}  compile-failed {}  lost {}",
        out.ok,
        shed_rate * 100.0,
        out.panicked,
        out.quarantined,
        out.deadline,
        out.compile_failed,
        out.lost
    );
    note!(
        "injected: panics {} transients {} (recovered {} -> {:.0}% retry success) delays {}",
        chaos.injected_panics,
        chaos.injected_transients,
        chaos.recovered_transients,
        retry_success * 100.0,
        chaos.injected_delays
    );
    note!(
        "latency (admitted, successful): p50 {:.2?}  p99 {:.2?}  p999 {:.2?}",
        p(50.0),
        p(99.0),
        p(99.9)
    );
    note!("{drain}  wall {wall:.2?}  dead workers {dead}");
    note!(
        "service counters: shed {}  retries {}/{}  quarantine {} held / {} hits  drains {}",
        stats.shed,
        stats.retries_succeeded,
        stats.retries_attempted,
        stats.quarantined,
        stats.quarantine_hits,
        stats.drains
    );

    // The invariants the robustness layer guarantees under overload.
    let mut violations: Vec<String> = Vec::new();
    if dead != 0 {
        violations.push(format!("{dead} worker(s) died"));
    }
    if out.lost != 0 {
        violations.push(format!("{} request(s) lost", out.lost));
    }
    if accounted != submitted {
        violations.push(format!(
            "accounting hole: ok {} + shed {shed_total} + failed {failed} != submitted {submitted}",
            out.ok
        ));
    }
    if out.uncoded != 0 {
        violations.push(format!(
            "{} rejection(s) missing their stable E08xx code",
            out.uncoded
        ));
    }
    if retry_success < 0.9 {
        violations.push(format!(
            "retry success {:.0}% < 90% ({}/{} transients recovered)",
            retry_success * 100.0,
            chaos.recovered_transients,
            chaos.injected_transients
        ));
    }
    if drain.outstanding != 0 {
        violations.push(format!(
            "{} request(s) still outstanding after drain",
            drain.outstanding
        ));
    }

    if json {
        println!(
            concat!(
                "{{\"submitted\": {}, \"admitted\": {}, \"ok\": {}, \"shed\": {}, ",
                "\"panicked\": {}, \"quarantined\": {}, \"deadline_exceeded\": {}, ",
                "\"compile_failed\": {}, \"lost\": {}, \"dead_workers\": {}, ",
                "\"shed_rate\": {:.4}, \"retry_success\": {:.4}, ",
                "\"injected_panics\": {}, \"injected_transients\": {}, ",
                "\"recovered_transients\": {}, \"injected_delays\": {}, ",
                "\"capacity_prog_per_s\": {:.2}, \"target_prog_per_s\": {:.2}, ",
                "\"p50_secs\": {:.6}, \"p99_secs\": {:.6}, \"p999_secs\": {:.6}, ",
                "\"drain_cancelled\": {}, \"drain_secs\": {:.6}, \"violations\": {}}}"
            ),
            submitted,
            admitted,
            out.ok,
            shed_total,
            out.panicked,
            out.quarantined,
            out.deadline,
            out.compile_failed,
            out.lost,
            dead,
            shed_rate,
            retry_success,
            chaos.injected_panics,
            chaos.injected_transients,
            chaos.recovered_transients,
            chaos.injected_delays,
            capacity,
            target,
            p(50.0).as_secs_f64(),
            p(99.0).as_secs_f64(),
            p(99.9).as_secs_f64(),
            drain.cancelled,
            drain.duration.as_secs_f64(),
            violations.len()
        );
    }

    if violations.is_empty() {
        note!("\nall robustness invariants hold");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("INVARIANT VIOLATED: {v}");
        }
        ExitCode::FAILURE
    }
}
