//! `promcheck` — reads stdin, asserts it is a well-formed Prometheus
//! text-format exposition.
//!
//! The CI pipes `velus batch --metrics-out` dumps through this, the
//! same way `jsoncheck` gates the JSON artifacts: every sample line
//! must parse (`name{label="value"} number`) and belong to a metric
//! family declared by a preceding `# TYPE` line.

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("promcheck: cannot read stdin: {e}");
        return ExitCode::FAILURE;
    }
    match velus_obs::prom::check(&input) {
        Ok(()) => {
            let families = input.lines().filter(|l| l.starts_with("# TYPE ")).count();
            println!(
                "prometheus ok ({families} metric families, {} bytes)",
                input.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("promcheck: malformed exposition: {e}");
            eprintln!("{input}");
            ExitCode::FAILURE
        }
    }
}
