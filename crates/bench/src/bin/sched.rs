//! Makespan of FIFO vs cost-predicted batch scheduling on a skewed
//! corpus.
//!
//! Real batches are skewed: most programs are small, a few are
//! industrial-scale. FIFO submission lets an expensive program land at
//! the tail of the batch, running alone while every other worker idles;
//! cost-predicted (LPT) scheduling submits it first. This benchmark
//! builds an adversarially ordered skewed corpus from the `velus-testkit`
//! industrial generator (small programs first, the heavyweights last),
//! compiles it through `velus::service` under both policies, and
//! reports:
//!
//! * the measured batch wall time per policy (noisy on machines with
//!   fewer physical cores than workers — time-slicing hides ordering
//!   effects), and
//! * the **trace-driven makespan**: the measured per-request latencies
//!   replayed through an idealized W-worker list schedule in each
//!   policy's submission order, which isolates the scheduling effect
//!   from the measuring machine's core count.
//!
//! ```text
//! cargo run --release -p velus-bench --bin sched [--workers N] [--small N]
//! ```

use velus::service::{service, PipelineCompiler, ServiceConfig};
use velus::CompileRequest;
use velus_bench::parse_flag;
use velus_server::sched::{simulate_makespan, submission_order, SchedulePolicy};
use velus_server::Compiler;
use velus_testkit::industrial::{industrial_source, IndustrialConfig};

/// A skewed corpus in adversarial FIFO order: `small` cheap programs
/// first, then a few industrial-scale heavyweights.
fn skewed_corpus(small: usize) -> Vec<CompileRequest> {
    let mut reqs: Vec<CompileRequest> = (0..small)
        .map(|k| {
            let cfg = IndustrialConfig {
                nodes: 4 + k % 3,
                eqs_per_node: 4 + k % 4,
                fan_in: 1,
                subclock_depth: 0,
            };
            let root = format!("blk{}", cfg.nodes - 1);
            CompileRequest::new(format!("small{k:02}"), industrial_source(&cfg)).with_root(root)
        })
        .collect();
    for (k, nodes) in [56usize, 64].into_iter().enumerate() {
        let cfg = IndustrialConfig {
            nodes,
            eqs_per_node: 18,
            fan_in: 2,
            subclock_depth: 0,
        };
        let root = format!("blk{}", cfg.nodes - 1);
        reqs.push(CompileRequest::new(format!("big{k}"), industrial_source(&cfg)).with_root(root));
    }
    reqs
}

fn run_policy(
    reqs: &[CompileRequest],
    workers: usize,
    schedule: SchedulePolicy,
) -> (f64, Vec<u64>) {
    let svc = service(ServiceConfig {
        workers,
        caching: true,
        schedule,
        ..Default::default()
    });
    // Prime the cost model with one throwaway compile so `cost` predicts
    // in nanoseconds from its first batch (a served system has history).
    let warmup = CompileRequest::new(
        "warmup",
        industrial_source(&IndustrialConfig {
            nodes: 6,
            eqs_per_node: 6,
            fan_in: 1,
            subclock_depth: 0,
        }),
    )
    .with_root("blk5");
    svc.compile_one(warmup);
    svc.clear_cache();

    let batch = svc.compile_batch(reqs.to_vec());
    assert_eq!(batch.err_count(), 0, "skewed corpus must compile");
    let latencies = batch
        .items
        .iter()
        .map(|i| i.latency.as_nanos() as u64)
        .collect();
    (batch.wall.as_secs_f64(), latencies)
}

fn main() {
    let workers = parse_flag("--workers", 4);
    let small = parse_flag("--small", 14);
    let reqs = skewed_corpus(small);
    println!(
        "sched bench: {} programs ({} small + 2 big, big last), {workers} workers\n",
        reqs.len(),
        small
    );

    let (fifo_wall, fifo_lat) = run_policy(&reqs, workers, SchedulePolicy::Fifo);
    let (cost_wall, _) = run_policy(&reqs, workers, SchedulePolicy::Cost);

    // Trace-driven comparison over the *same* measured costs: replay the
    // FIFO run's per-request latencies through an idealized W-worker
    // list schedule in each policy's submission order. The cost order
    // uses the compiler's pre-scan hints, exactly as the service does.
    let hints: Vec<u64> = reqs.iter().map(|r| PipelineCompiler.cost_hint(r)).collect();
    let fifo_order = submission_order(SchedulePolicy::Fifo, &hints);
    let cost_order = submission_order(SchedulePolicy::Cost, &hints);
    let replay = |order: &[usize]| -> u64 {
        let costs: Vec<u64> = order.iter().map(|&i| fifo_lat[i]).collect();
        simulate_makespan(&costs, workers)
    };
    let (fifo_mk, cost_mk) = (replay(&fifo_order), replay(&cost_order));

    println!("{:<28} {:>12} {:>12}", "", "fifo", "cost");
    println!(
        "{:<28} {:>11.1}ms {:>11.1}ms",
        "measured batch wall",
        fifo_wall * 1e3,
        cost_wall * 1e3
    );
    println!(
        "{:<28} {:>11.1}ms {:>11.1}ms",
        "trace-driven makespan",
        fifo_mk as f64 / 1e6,
        cost_mk as f64 / 1e6
    );
    println!(
        "\ncost scheduling cuts the trace-driven makespan by {:.0}% \
         ({} workers, ideal list schedule over measured latencies)",
        (1.0 - cost_mk as f64 / fifo_mk as f64) * 100.0,
        workers
    );
    assert!(
        cost_mk <= fifo_mk,
        "LPT must not lengthen the simulated makespan"
    );
}
