//! Ablation: the contribution of the fusion optimization (§3.3).
//!
//! The paper calls fusion "all but obligatory in the clock-directed
//! approach": translation guards every equation separately, and fusion
//! merges the adjacent conditionals scheduling lines up. This binary
//! quantifies that on the benchmark suite by compiling each program with
//! and without fusion and comparing step-function WCET and Obc statement
//! counts.
//!
//! ```text
//! cargo run --release -p velus-bench --bin ablation
//! ```

use velus_bench::suite::{load, BENCHMARKS};
use velus_clight::generate::generate;
use velus_wcet::{wcet_step, CostModel};

fn main() {
    println!(
        "{:<22} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "benchmark", "fused", "unfused", "saving", "stmts fused", "stmts raw"
    );
    for name in BENCHMARKS {
        let source = load(name);
        let compiled = velus::compile(&source, Some(name)).expect("benchmarks compile");
        let unfused_clight = generate(&compiled.obc, compiled.root).expect("generation succeeds");
        let fused = wcet_step(&compiled.clight, compiled.root, CostModel::CompCert)
            .expect("wcet of fused code");
        let unfused = wcet_step(&unfused_clight, compiled.root, CostModel::CompCert)
            .expect("wcet of unfused code");
        let size = |p: &velus_obc::ast::ObcProgram<velus_ops::ClightOps>| {
            p.classes
                .iter()
                .flat_map(|c| &c.methods)
                .map(|m| m.body.size())
                .sum::<usize>()
        };
        let saving = if unfused > 0 {
            format!("{:.0}%", (1.0 - fused as f64 / unfused as f64) * 100.0)
        } else {
            "-".to_owned()
        };
        println!(
            "{:<22} {:>10} {:>10} {:>8} {:>12} {:>12}",
            name,
            fused,
            unfused,
            saving,
            size(&compiled.obc_fused),
            size(&compiled.obc)
        );
    }
    println!("\nWCET in cycles under the CompCert-like model; 'saving' is the");
    println!("fusion benefit the paper's §3.3 motivates.");
}
