//! The lint soundness campaign runner.
//!
//! Each seed generates a random well-formed Lustre program under a
//! trap-allowing profile (constant-zero divisors and `i32::MIN / -1`
//! patterns are permitted, plus lint bait), compiles it while
//! collecting the static analyses' trap verdicts, then executes the
//! generated Clight under the interpreter and holds reality against
//! the claims: every `E0110`/`E0111` (guaranteed trap) must trap on
//! the first step, and no program free of trap findings may ever trap
//! (see `velus_testkit::soundness`). A broken claim prints the `.lus`
//! reproducer and fails the run.
//!
//! ```text
//! cargo run --release -p velus-bench --bin lintsound -- --seeds 1000
//! cargo run --release -p velus-bench --bin lintsound -- --seeds 300 --json
//! ```
//!
//! A quarter of the seed budget runs under a trap-*free* generator
//! profile (safe constant divisors only): under it the analysis can
//! actually prove programs clean, so the strongest claim — "no trap
//! finding means no execution may trap" — gets exercised at scale
//! rather than only by handcrafted tests.
//!
//! Flags:
//!
//! * `--seeds N` — total seeds to run (default 300; ¾ trap-allowing,
//!   ¼ trap-free);
//! * `--seed-start S` — first seed (default 0);
//! * `--workers K` — worker threads (default 4). Seeds are split into
//!   contiguous per-worker chunks; every per-seed outcome is
//!   independent, so the merged report is identical for any `K`;
//! * `--steps T` — instants executed per accepted seed (default 10);
//! * `--json` — machine-readable summary on stdout.
//!
//! Exit status: 0 when every claim survived execution, 1 when any seed
//! violated one (the reproducer source is printed either way).

use std::time::Instant;

use velus_bench::{parse_bool_flag, parse_flag};
use velus_testkit::soundness::{run_soundness, SoundnessConfig, SoundnessReport};

fn merge_reports(into: &mut SoundnessReport, from: SoundnessReport) {
    into.checked += from.checked;
    into.rejected += from.rejected;
    into.guaranteed += from.guaranteed;
    into.possible += from.possible;
    into.clean += from.clean;
    into.trapped_runs += from.trapped_runs;
    into.violations.extend(from.violations);
}

/// Runs `count` seeds from `from` under `cfg`, split into contiguous
/// per-worker chunks, and merges the per-chunk reports.
fn run_parallel(cfg: &SoundnessConfig, from: u64, count: u64, workers: u64) -> SoundnessReport {
    let chunk = count.div_ceil(workers).max(1);
    let mut report = SoundnessReport::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut next = from;
        let end = from.saturating_add(count);
        while next < end {
            let n = chunk.min(end - next);
            let cfg = cfg.clone();
            handles.push(scope.spawn(move || run_soundness(&cfg, next, n)));
            next += n;
        }
        for h in handles {
            merge_reports(&mut report, h.join().expect("soundness worker"));
        }
    });
    report
}

fn main() {
    let seeds = parse_flag("--seeds", 300) as u64;
    let seed_start = parse_flag("--seed-start", 0) as u64;
    let workers = parse_flag("--workers", 4).max(1) as u64;
    let json = parse_bool_flag("--json");
    let trap_cfg = SoundnessConfig {
        steps: parse_flag("--steps", 10),
        ..SoundnessConfig::default()
    };
    let clean_cfg = SoundnessConfig {
        gen: velus_testkit::gen::GenConfig {
            trap_divisors: false,
            ..trap_cfg.gen.clone()
        },
        ..trap_cfg.clone()
    };

    // Compile/execution panics are caught and classified as violations
    // by the oracle; suppress the default hook's backtrace spew.
    std::panic::set_hook(Box::new(|_| {}));

    let start = Instant::now();
    let clean_seeds = seeds / 4;
    let trap_seeds = seeds - clean_seeds;
    let mut report = run_parallel(&trap_cfg, seed_start, trap_seeds, workers);
    merge_reports(
        &mut report,
        run_parallel(&clean_cfg, seed_start, clean_seeds, workers),
    );
    let elapsed = start.elapsed();

    if json {
        let mut out = String::from("{");
        out.push_str(&format!("\"seeds\": {}", report.checked));
        out.push_str(&format!(", \"rejected\": {}", report.rejected));
        out.push_str(&format!(
            ", \"claims\": {{\"guaranteed\": {}, \"possible\": {}, \"clean\": {}}}",
            report.guaranteed, report.possible, report.clean
        ));
        out.push_str(&format!(", \"trapped_runs\": {}", report.trapped_runs));
        out.push_str(&format!(", \"violations\": {}", report.violations.len()));
        out.push_str(", \"violating_seeds\": [");
        for (i, v) in report.violations.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&v.seed.to_string());
        }
        out.push(']');
        out.push_str(&format!(", \"elapsed_ms\": {}", elapsed.as_millis()));
        out.push('}');
        println!("{out}");
    } else {
        println!(
            "lint soundness campaign: {} seeds in {elapsed:.2?} ({workers} workers)",
            report.checked
        );
        print!("{report}");
        for v in &report.violations {
            println!("--- reproducer (seed {}) ---", v.seed);
            println!("{}", v.source.trim_end());
        }
    }

    if !report.sound() {
        eprintln!(
            "lint soundness FAILED: {} violated claim(s)",
            report.violations.len()
        );
        std::process::exit(1);
    }
}
