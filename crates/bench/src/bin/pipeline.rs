//! Per-stage time and allocation profile of the cold compile path.
//!
//! The service benchmark showed that at one worker the service is bound
//! by cold single-threaded compile speed, so this harness measures where
//! a cold `Frontend→Emit` run spends its time *and its allocator*: a
//! counting global allocator snapshots the allocation counters at every
//! stage boundary of a [`StagedPipeline`] run, giving per-stage
//! nanoseconds, allocation counts, and allocated bytes per compile.
//!
//! Two corpora are profiled: the 14 paper benchmarks under
//! `benchmarks/`, and the 24-program `velus-testkit` industrial corpus
//! the service benchmark uses (a third of it sub-clocked).
//!
//! ```text
//! cargo run --release -p velus-bench --bin pipeline \
//!     [--passes N] [--programs N] [--json PATH] [--smoke] \
//!     [--stage NAME] [--overhead [--max-overhead-pct N]]
//! ```
//!
//! `--json PATH` writes the profile as a JSON object (see
//! `BENCH_pipeline.json` at the repository root); `--stage NAME`
//! restricts the reported stage rows to one stage (e.g. `--stage
//! frontend` when sweeping front-end changes); `--smoke` runs a tiny
//! corpus, asserts the JSON output is well formed, *and* acts as the
//! allocation guard: it profiles the paper-benchmark corpus and fails
//! if frontend allocs-per-compile exceed [`FRONTEND_ALLOCS_GUARD`]
//! (checked in ~10% above the post-arena number, so an accidental
//! allocation regression fails CI) or if the static-analysis (lint)
//! pass exceeds [`ANALYSIS_ALLOCS_GUARD`]. The lint pass is forced
//! after emission so the `analysis` stage row carries real numbers,
//! even though a plain compile never runs it.
//!
//! `--overhead` instead measures the cost of the observability layer:
//! the industrial corpus is compiled with tracing disabled and then
//! with a live [`velus_obs::Recorder`] scope around every compile (each
//! pipeline pass becoming a recorded span), best-of-three per
//! configuration, and the run fails if tracing inflates wall time by
//! more than `--max-overhead-pct` (default 3).

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use velus::passes::{PassSink, StagedPipeline};
use velus_bench::suite::{load, BENCHMARKS};
use velus_bench::{parse_bool_flag, parse_flag, parse_string_flag};
use velus_clight::printer::TestIo;
use velus_obs::trace;
use velus_obs::{Histogram, Recorder, RecorderConfig};
use velus_server::Stage;
use velus_testkit::industrial::{industrial_source, IndustrialConfig};

/// A counting wrapper around the system allocator. Every allocation and
/// reallocation bumps a global counter; the harness reads the counters
/// at stage boundaries to attribute allocations to pipeline stages.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the counters are
// plain relaxed atomics with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn counters() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// Accumulated per-stage totals over a corpus sweep.
#[derive(Default, Clone, Copy)]
struct StageTotals {
    ns: u64,
    allocs: u64,
    bytes: u64,
}

#[derive(Default)]
struct Profile {
    stages: [StageTotals; Stage::ALL.len()],
    compiles: u64,
    total_ns: u64,
    total_allocs: u64,
    total_bytes: u64,
    /// Whole-compile wall times, for tail latency (p99) reporting.
    compile_ns: Histogram,
}

fn stage_index(stage: Stage) -> usize {
    Stage::ALL
        .iter()
        .position(|s| *s == stage)
        .expect("stage in ALL")
}

/// Compiles one source cold (front end to C emission), attributing time
/// and allocations to stages via the pipeline's stage observer.
fn profile_one(profile: &mut Profile, source: &str, root: Option<&str>) {
    let mut marks: Vec<(Stage, u64, u64, u64)> = Vec::with_capacity(Stage::ALL.len());
    let run_start = counters();
    let mut last = run_start;
    let wall = Instant::now();
    {
        let mut observe = |stage: Stage, dur: std::time::Duration| {
            let now = counters();
            marks.push((stage, dur.as_nanos() as u64, now.0 - last.0, now.1 - last.1));
            last = now;
        };
        let mut staged =
            StagedPipeline::from_source(source, root, &mut observe).expect("corpus compiles");
        let c = staged.emit(TestIo::Volatile).expect("corpus emits");
        assert!(!c.is_empty());
        // Force the off-chain lint pass too, so the `analysis` stage row
        // carries real numbers and `--smoke` can guard its allocations.
        staged.lint().expect("corpus lints");
    }
    let elapsed_ns = wall.elapsed().as_nanos() as u64;
    profile.total_ns += elapsed_ns;
    profile.compile_ns.record(elapsed_ns);
    let end = counters();
    profile.compiles += 1;
    profile.total_allocs += end.0 - run_start.0;
    profile.total_bytes += end.1 - run_start.1;
    for (stage, ns, allocs, bytes) in marks {
        let t = &mut profile.stages[stage_index(stage)];
        t.ns += ns;
        t.allocs += allocs;
        t.bytes += bytes;
    }
}

/// The same deterministic industrial corpus the service benchmark uses.
fn industrial_corpus(programs: usize) -> Vec<(String, String)> {
    (0..programs)
        .map(|k| {
            let cfg = IndustrialConfig {
                nodes: 8 + (k % 7) * 3,
                eqs_per_node: 6 + (k % 5) * 2,
                fan_in: 1 + k % 2,
                subclock_depth: k % 3,
            };
            (industrial_source(&cfg), format!("blk{}", cfg.nodes - 1))
        })
        .collect()
}

fn profile_corpus(corpus: &[(String, String)], passes: usize) -> Profile {
    let mut profile = Profile::default();
    for _ in 0..passes {
        for (source, root) in corpus {
            profile_one(&mut profile, source, Some(root));
        }
    }
    profile
}

/// Ceiling on frontend allocs/compile over the paper-benchmark corpus,
/// enforced by `--smoke` (the CI perf guard). Set ~10% above the
/// post-arena single-pass measurement (284.4; see `BENCH_pipeline.json`,
/// `after_arena_frontend` — the single-pass smoke number runs a touch
/// above the three-pass profile because identifier interning is not
/// amortized): the count is deterministic — it counts allocator calls,
/// not time — so exceeding it means a real front-end allocation
/// regression, not machine noise.
const FRONTEND_ALLOCS_GUARD: f64 = 315.0;

/// Ceiling on analysis (lint) allocs/compile over the paper-benchmark
/// corpus, also enforced by `--smoke`. The lint pass is off the compile
/// chain — a request without `--emit lint` never runs it — but this
/// guard keeps the pass itself from silently bloating: like the
/// front-end guard it counts allocator calls, set ~15% above the
/// measured single-pass number (131.7), so exceeding it means a real
/// analysis allocation regression.
const ANALYSIS_ALLOCS_GUARD: f64 = 155.0;

fn print_profile(label: &str, p: &Profile, stage_filter: Option<&str>) {
    println!("{label}: {} cold compiles", p.compiles);
    println!(
        "  {:<10} {:>14} {:>16} {:>16}",
        "stage", "ns/compile", "allocs/compile", "bytes/compile"
    );
    for stage in Stage::ALL {
        if stage_filter.is_some_and(|f| f != stage.name()) {
            continue;
        }
        let t = p.stages[stage_index(stage)];
        println!(
            "  {:<10} {:>14.0} {:>16.1} {:>16.0}",
            stage.name(),
            t.ns as f64 / p.compiles as f64,
            t.allocs as f64 / p.compiles as f64,
            t.bytes as f64 / p.compiles as f64
        );
    }
    println!(
        "  {:<10} {:>14.0} {:>16.1} {:>16.0}",
        "total",
        p.total_ns as f64 / p.compiles as f64,
        p.total_allocs as f64 / p.compiles as f64,
        p.total_bytes as f64 / p.compiles as f64
    );
    println!(
        "  compile wall: p50 {:.2?}  p99 {:.2?}\n",
        std::time::Duration::from_nanos(p.compile_ns.percentile(50.0)),
        std::time::Duration::from_nanos(p.compile_ns.percentile(99.0))
    );
}

fn json_profile(label: &str, p: &Profile, stage_filter: Option<&str>) -> String {
    let mut out = String::with_capacity(1024);
    let per = p.compiles as f64;
    let _ = write!(
        out,
        "    \"{label}\": {{\n      \"compiles\": {},",
        p.compiles
    );
    let _ = write!(
        out,
        "\n      \"total\": {{\"ns_per_compile\": {:.0}, \"ns_p50\": {}, \"ns_p99\": {}, \"allocs_per_compile\": {:.1}, \"bytes_per_compile\": {:.0}}},",
        p.total_ns as f64 / per,
        p.compile_ns.percentile(50.0),
        p.compile_ns.percentile(99.0),
        p.total_allocs as f64 / per,
        p.total_bytes as f64 / per
    );
    out.push_str("\n      \"stages\": {");
    let stages: Vec<Stage> = Stage::ALL
        .iter()
        .copied()
        .filter(|s| stage_filter.is_none_or(|f| f == s.name()))
        .collect();
    for (i, stage) in stages.iter().enumerate() {
        let t = p.stages[stage_index(*stage)];
        let _ = write!(
            out,
            "\n        \"{}\": {{\"ns_per_compile\": {:.0}, \"allocs_per_compile\": {:.1}, \"bytes_per_compile\": {:.0}}}{}",
            stage.name(),
            t.ns as f64 / per,
            t.allocs as f64 / per,
            t.bytes as f64 / per,
            if i + 1 == stages.len() { "" } else { "," }
        );
    }
    out.push_str("\n      }\n    }");
    out
}

/// One corpus: `(source, root node)` pairs.
type Corpus = Vec<(String, String)>;

/// A pass sink that mirrors every pipeline pass into the ambient trace
/// scope — the same span shape the compile service records. When no
/// scope is installed (the tracing-off configuration) every call is an
/// inert no-op, so both overhead configurations run identical code and
/// only the recorder toggles.
#[derive(Default)]
struct TraceSink {
    open: Option<trace::SpanToken>,
}

impl PassSink for TraceSink {
    fn pass_start(&mut self, _stage: Stage, name: &'static str) {
        self.open = Some(trace::enter(name));
    }

    fn pass_end(&mut self, _stage: Stage, _dur: std::time::Duration) {
        if let Some(token) = self.open.take() {
            trace::exit(token);
        }
    }

    fn pass_fail(&mut self, _stage: Stage, _name: &'static str) {
        if let Some(token) = self.open.take() {
            trace::exit(token);
        }
    }
}

/// Wall time of one full corpus sweep, compiling every program cold
/// with the pass sink above; `recorder` decides whether the spans land
/// in a live ring buffer or vanish in the no-scope fast path.
fn timed_sweep(corpus: &[(String, String)], passes: usize, recorder: Option<&Recorder>) -> f64 {
    let wall = Instant::now();
    for _ in 0..passes {
        for (source, root) in corpus {
            let _scope = recorder.map(|rec| rec.scope(root));
            let mut sink = TraceSink::default();
            let mut staged = StagedPipeline::from_source(source, Some(root), &mut sink)
                .expect("corpus compiles");
            let c = staged.emit(TestIo::Volatile).expect("corpus emits");
            assert!(!c.is_empty());
        }
    }
    wall.elapsed().as_secs_f64()
}

/// The `--overhead` mode: best-of-`REPS` corpus sweeps with tracing off
/// and on, interleaved so drift hits both configurations alike. Fails
/// the process when tracing inflates wall time beyond the budget.
fn overhead_gate(corpus: &Corpus, passes: usize, max_pct: f64) {
    const REPS: usize = 3;
    let recorder = Recorder::new(RecorderConfig::default());
    // One throwaway sweep per configuration to warm caches and the
    // recorder's thread-local ring registration.
    timed_sweep(corpus, 1, None);
    timed_sweep(corpus, 1, Some(&recorder));
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    for _ in 0..REPS {
        off = off.min(timed_sweep(corpus, passes, None));
        on = on.min(timed_sweep(corpus, passes, Some(&recorder)));
    }
    let events = recorder.drain();
    let pct = (on - off) / off * 100.0;
    println!(
        "tracing overhead: off {off:.4}s  on {on:.4}s  overhead {pct:+.2}%  (budget {max_pct:.1}%, {} events recorded)",
        events.events.len()
    );
    assert!(
        pct <= max_pct,
        "tracing overhead {pct:.2}% exceeds the {max_pct:.1}% budget"
    );
    println!("overhead ok: tracing stays within {max_pct:.1}% of untraced wall time");
}

fn main() {
    let smoke = parse_bool_flag("--smoke");
    let overhead = parse_bool_flag("--overhead");
    let passes = parse_flag("--passes", if smoke || overhead { 1 } else { 3 });
    let programs = parse_flag("--programs", if smoke { 2 } else { 24 });
    let stage_filter = parse_string_flag("--stage");
    if let Some(f) = stage_filter.as_deref() {
        assert!(
            Stage::ALL.iter().any(|s| s.name() == f),
            "--stage {f}: unknown stage (expected one of {})",
            Stage::ALL
                .iter()
                .map(|s| s.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    if overhead {
        let max_pct = parse_flag("--max-overhead-pct", 3) as f64;
        println!("pipeline bench: tracing overhead gate ({programs} programs, {passes} passes)\n");
        overhead_gate(&industrial_corpus(programs), passes, max_pct);
        return;
    }

    let benchmarks: Corpus = BENCHMARKS
        .iter()
        .map(|name| (load(name), (*name).to_owned()))
        .collect();
    let mut corpora: Vec<(&str, Corpus)> = Vec::new();
    if smoke {
        // The smoke run doubles as the front-end allocation guard, so
        // it profiles the (fixed, deterministic) benchmark corpus too.
        corpora.push(("benchmarks", benchmarks));
        corpora.push(("smoke", industrial_corpus(programs)));
    } else {
        corpora.push(("benchmarks", benchmarks));
        corpora.push(("industrial24", industrial_corpus(programs)));
    }

    println!("pipeline bench: per-stage cold compile profile ({passes} passes)\n");
    let mut sections: Vec<String> = Vec::new();
    let mut frontend_allocs_on_benchmarks = 0.0f64;
    let mut analysis_allocs_on_benchmarks = 0.0f64;
    for (label, corpus) in &corpora {
        let profile = profile_corpus(corpus, passes);
        print_profile(label, &profile, stage_filter.as_deref());
        sections.push(json_profile(label, &profile, stage_filter.as_deref()));
        if *label == "benchmarks" {
            let t = profile.stages[stage_index(Stage::Frontend)];
            frontend_allocs_on_benchmarks = t.allocs as f64 / profile.compiles as f64;
            let a = profile.stages[stage_index(Stage::Analysis)];
            analysis_allocs_on_benchmarks = a.allocs as f64 / profile.compiles as f64;
        }
    }

    let json = format!(
        "{{\n  \"benchmark\": \"velus-bench --bin pipeline --passes {passes} --programs {programs}\",\n  \"corpora\": {{\n{}\n  }}\n}}\n",
        sections.join(",\n")
    );
    velus_bench::json::check(&json).unwrap_or_else(|e| panic!("malformed JSON: {e}\n{json}"));
    if let Some(path) = parse_string_flag("--json") {
        std::fs::write(&path, &json).expect("write --json file");
        println!("wrote profile to {path}");
    }
    if smoke {
        assert!(
            frontend_allocs_on_benchmarks <= FRONTEND_ALLOCS_GUARD,
            "frontend allocation regression: {frontend_allocs_on_benchmarks:.1} allocs/compile \
             on the benchmark corpus exceeds the checked-in guard of {FRONTEND_ALLOCS_GUARD:.0} \
             (see FRONTEND_ALLOCS_GUARD in crates/bench/src/bin/pipeline.rs)"
        );
        assert!(
            analysis_allocs_on_benchmarks <= ANALYSIS_ALLOCS_GUARD,
            "lint allocation regression: {analysis_allocs_on_benchmarks:.1} allocs/compile \
             on the benchmark corpus exceeds the checked-in guard of {ANALYSIS_ALLOCS_GUARD:.0} \
             (see ANALYSIS_ALLOCS_GUARD in crates/bench/src/bin/pipeline.rs)"
        );
        println!(
            "smoke ok: harness emitted well-formed JSON; frontend allocs/compile \
             {frontend_allocs_on_benchmarks:.1} within guard {FRONTEND_ALLOCS_GUARD:.0}; \
             analysis allocs/compile {analysis_allocs_on_benchmarks:.1} within guard \
             {ANALYSIS_ALLOCS_GUARD:.0}"
        );
    }
}
