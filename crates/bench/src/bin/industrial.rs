//! The §5 industrial-scale compile-time experiment.
//!
//! The paper compiles a ≈6000-node, ≈162000-equation application
//! (≈12 MB of source) in ≈1 min 40 s. This binary generates a synthetic
//! application of comparable structure (see `velus_testkit::industrial`)
//! and measures the full pipeline — parsing, elaboration, normalization,
//! scheduling, translation, fusion, Clight generation — at several
//! scales.
//!
//! ```text
//! cargo run --release -p velus-bench --bin industrial [--full]
//! ```
//!
//! `--full` runs the paper-scale configuration (several minutes in debug
//! builds; use `--release`).

use std::time::Instant;

use velus_common::Ident;
use velus_testkit::industrial::{industrial_source, IndustrialConfig};

fn run_scale(cfg: &IndustrialConfig) {
    let gen_start = Instant::now();
    let source = industrial_source(cfg);
    let gen_time = gen_start.elapsed();
    let mb = source.len() as f64 / 1e6;

    let compile_start = Instant::now();
    let root = format!("blk{}", cfg.nodes - 1);
    let compiled = velus::compile(&source, Some(&root)).expect("industrial program compiles");
    let compile_time = compile_start.elapsed();

    let eqs = compiled.snlustre.equation_count();
    let rate = eqs as f64 / compile_time.as_secs_f64();
    println!(
        "{:>6} nodes {:>8} equations {:>7.2} MB source | generate {:>7.2?} | compile {:>8.2?} | {:>9.0} eq/s",
        cfg.nodes, eqs, mb, gen_time, compile_time, rate
    );

    // Sanity: the compiled root exists and has a step function.
    assert!(compiled
        .clight
        .function(velus_clight::generate::method_fn_name(
            Ident::new(&root),
            velus_obc::ast::step_name()
        ))
        .is_some());
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    println!("Industrial-scale compile-time experiment (paper: ~6000 nodes, ~162000 equations, ~1 min 40 s).");
    let scales: Vec<IndustrialConfig> = if full {
        vec![
            IndustrialConfig {
                nodes: 100,
                eqs_per_node: 24,
                fan_in: 2,
                subclock_depth: 0,
            },
            IndustrialConfig {
                nodes: 500,
                eqs_per_node: 24,
                fan_in: 2,
                subclock_depth: 0,
            },
            IndustrialConfig {
                nodes: 1500,
                eqs_per_node: 24,
                fan_in: 2,
                subclock_depth: 0,
            },
            IndustrialConfig {
                nodes: 3000,
                eqs_per_node: 24,
                fan_in: 2,
                subclock_depth: 0,
            },
            IndustrialConfig::paper_scale(),
        ]
    } else {
        vec![
            IndustrialConfig {
                nodes: 50,
                eqs_per_node: 24,
                fan_in: 2,
                subclock_depth: 0,
            },
            IndustrialConfig {
                nodes: 200,
                eqs_per_node: 24,
                fan_in: 2,
                subclock_depth: 0,
            },
            IndustrialConfig {
                nodes: 600,
                eqs_per_node: 24,
                fan_in: 2,
                subclock_depth: 0,
            },
        ]
    };
    for cfg in &scales {
        run_scale(cfg);
    }
    if !full {
        println!("(run with --full --release for the paper-scale 6000-node configuration)");
    }
}
