//! The evaluation harness: regenerates the PLDI'17 experiments.
//!
//! * [`suite`] — the 14-program benchmark suite of Fig. 12 and the
//!   computation of all seven columns (Vélus, Heptagon ± GCC ± inlining,
//!   Lustre v6 ± GCC ± inlining).
//! * [`table`] — rendering in the paper's format (cycles with
//!   percentages relative to the first column).
//!
//! Binaries:
//!
//! * `figure12` — prints the reproduced Fig. 12;
//! * `industrial` — the §5 compile-time scaling experiment;
//! * `schedules` — the §5 schedule-quality observation;
//! * `service` — throughput scaling of the batch compilation service;
//! * `sched` — FIFO vs cost-predicted scheduling on a skewed corpus;
//! * `contention` — identifier-interner contention across threads;
//! * `pipeline` — per-stage time and allocation profile of the cold
//!   compile path (counting global allocator; see
//!   `BENCH_pipeline.json`).

pub mod suite;
pub mod table;

/// Reads the `usize` value following `name` in this process's argv, or
/// `default` when absent or unparseable. The shared flag convention of
/// every bench binary (`--programs 24`, `--workers 4`, …).
pub fn parse_flag(name: &str, default: usize) -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        }
    }
    default
}

/// Whether the bare flag `name` appears in this process's argv
/// (`--smoke`, `--verbose`, …).
pub fn parse_bool_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Reads the string value following `name` in this process's argv.
pub fn parse_string_flag(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}
