//! The evaluation harness: regenerates the PLDI'17 experiments.
//!
//! * [`suite`] — the 14-program benchmark suite of Fig. 12 and the
//!   computation of all seven columns (Vélus, Heptagon ± GCC ± inlining,
//!   Lustre v6 ± GCC ± inlining).
//! * [`table`] — rendering in the paper's format (cycles with
//!   percentages relative to the first column).
//!
//! Binaries:
//!
//! * `figure12` — prints the reproduced Fig. 12;
//! * `industrial` — the §5 compile-time scaling experiment;
//! * `schedules` — the §5 schedule-quality observation;
//! * `service` — throughput scaling of the batch compilation service;
//! * `sched` — FIFO vs cost-predicted scheduling on a skewed corpus;
//! * `contention` — identifier-interner contention across threads;
//! * `pipeline` — per-stage time and allocation profile of the cold
//!   compile path (counting global allocator; see
//!   `BENCH_pipeline.json`).

pub mod suite;
pub mod table;

/// Reads the `usize` value following `name` in this process's argv, or
/// `default` when absent or unparseable. The shared flag convention of
/// every bench binary (`--programs 24`, `--workers 4`, …).
pub fn parse_flag(name: &str, default: usize) -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        }
    }
    default
}

/// Whether the bare flag `name` appears in this process's argv
/// (`--smoke`, `--verbose`, …).
pub fn parse_bool_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Reads the string value following `name` in this process's argv.
pub fn parse_string_flag(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// The mini JSON well-formedness checker (objects, arrays, strings,
/// numbers, literals) shared by the pipeline bench's `--smoke` gate,
/// the `jsoncheck` binary CI pipes CLI output through, and any test
/// that wants to assert an emitted document parses. Not a full parser —
/// enough to catch a harness or CLI that starts emitting broken output.
pub mod json {
    /// Checks that `s` is exactly one well-formed JSON value.
    ///
    /// # Errors
    ///
    /// A message naming the first offending byte offset.
    pub fn check(s: &str) -> Result<(), String> {
        let b = s.as_bytes();
        let end = value(b, 0)?;
        if skip_ws(b, end) != b.len() {
            return Err("trailing garbage after JSON value".to_owned());
        }
        Ok(())
    }

    fn skip_ws(b: &[u8], mut i: usize) -> usize {
        while i < b.len() && (b[i] as char).is_ascii_whitespace() {
            i += 1;
        }
        i
    }

    fn s_slice(b: &[u8], i: usize) -> &str {
        std::str::from_utf8(&b[i..]).unwrap_or("")
    }

    fn string(b: &[u8], i: usize) -> Result<usize, String> {
        if b.get(i) != Some(&b'"') {
            return Err(format!("expected '\"' at byte {i}"));
        }
        let mut i = i + 1;
        while let Some(&c) = b.get(i) {
            match c {
                b'\\' => i += 2,
                b'"' => return Ok(i + 1),
                _ => i += 1,
            }
        }
        Err("unterminated string".to_owned())
    }

    fn value(b: &[u8], i: usize) -> Result<usize, String> {
        let i = skip_ws(b, i);
        match b.get(i) {
            Some(b'{') => {
                let mut i = skip_ws(b, i + 1);
                if b.get(i) == Some(&b'}') {
                    return Ok(i + 1);
                }
                loop {
                    i = string(b, skip_ws(b, i))?;
                    i = skip_ws(b, i);
                    if b.get(i) != Some(&b':') {
                        return Err(format!("expected ':' at byte {i}"));
                    }
                    i = value(b, i + 1)?;
                    i = skip_ws(b, i);
                    match b.get(i) {
                        Some(b',') => i += 1,
                        Some(b'}') => return Ok(i + 1),
                        _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                    }
                }
            }
            Some(b'[') => {
                let mut i = skip_ws(b, i + 1);
                if b.get(i) == Some(&b']') {
                    return Ok(i + 1);
                }
                loop {
                    i = value(b, i)?;
                    i = skip_ws(b, i);
                    match b.get(i) {
                        Some(b',') => i += 1,
                        Some(b']') => return Ok(i + 1),
                        _ => return Err(format!("expected ',' or ']' at byte {i}")),
                    }
                }
            }
            Some(b'"') => string(b, i),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let mut i = i + 1;
                while i < b.len() && matches!(b[i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
                {
                    i += 1;
                }
                Ok(i)
            }
            _ => {
                for lit in ["true", "false", "null"] {
                    if s_slice(b, i).starts_with(lit) {
                        return Ok(i + lit.len());
                    }
                }
                Err(format!("unexpected value at byte {i}"))
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::check;

        #[test]
        fn accepts_the_diagnostics_shapes() {
            check(r#"{"diagnostics":[],"errors":0,"warnings":0}"#).unwrap();
            check(r#"{"a":[1,2.5,-3e4,"x\"y",true,null],"b":{}}"#).unwrap();
        }

        #[test]
        fn rejects_truncation_and_trailers() {
            assert!(check(r#"{"a":1"#).is_err());
            assert!(check(r#"{"a":1} extra"#).is_err());
            assert!(check("").is_err());
        }
    }
}
