//! The evaluation harness: regenerates the PLDI'17 experiments.
//!
//! * [`suite`] — the 14-program benchmark suite of Fig. 12 and the
//!   computation of all seven columns (Vélus, Heptagon ± GCC ± inlining,
//!   Lustre v6 ± GCC ± inlining).
//! * [`table`] — rendering in the paper's format (cycles with
//!   percentages relative to the first column).
//!
//! Binaries:
//!
//! * `figure12` — prints the reproduced Fig. 12;
//! * `industrial` — the §5 compile-time scaling experiment;
//! * `schedules` — the §5 schedule-quality observation.

pub mod suite;
pub mod table;
