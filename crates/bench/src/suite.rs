//! The Fig. 12 benchmark suite and column computation.

use std::path::PathBuf;

use velus::VelusError;
use velus_baselines::{heptagon_obc, lustre_v6_obc};
use velus_clight::generate::generate;
use velus_common::Ident;
use velus_ops::ClightOps;
use velus_wcet::{wcet_step, CostModel};

/// The benchmark programs, in the paper's row order. Each name matches
/// `benchmarks/<name>.lus` and the root node inside it.
pub const BENCHMARKS: &[&str] = &[
    "avgvelocity",
    "count",
    "tracker",
    "pip_ex",
    "mp_longitudinal",
    "cruise",
    "risingedgeretrigger",
    "chrono",
    "watchdog3",
    "functionalchain",
    "landing_gear",
    "minus",
    "prodcell",
    "ums_verif",
];

/// The paper's reported cycle counts (Fig. 12, column "Vélus"), used by
/// EXPERIMENTS.md to compare shapes.
pub const PAPER_VELUS_CYCLES: &[(&str, u64)] = &[
    ("avgvelocity", 315),
    ("count", 55),
    ("tracker", 680),
    ("pip_ex", 4415),
    ("mp_longitudinal", 5525),
    ("cruise", 1760),
    ("risingedgeretrigger", 285),
    ("chrono", 410),
    ("watchdog3", 610),
    ("functionalchain", 11550),
    ("landing_gear", 9660),
    ("minus", 890),
    ("prodcell", 1020),
    ("ums_verif", 2590),
];

/// Locates the repository's `benchmarks/` directory from the crate
/// manifest (works from any working directory inside the workspace).
pub fn benchmarks_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crate lives two levels under the workspace root")
        .join("benchmarks")
}

/// Reads the source of a named benchmark.
///
/// # Panics
///
/// Panics if the benchmark file is missing (the suite ships with the
/// repository).
pub fn load(name: &str) -> String {
    let path = benchmarks_dir().join(format!("{name}.lus"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// One row of the reproduced Fig. 12 (step-function WCET in cycles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Vélus + CompCert-model.
    pub velus: u64,
    /// Heptagon-style with \[CompCert, GCC, GCC+inline\] models.
    pub hept: [u64; 3],
    /// Lustre v6-style with \[CompCert, GCC, GCC+inline\] models.
    pub lus6: [u64; 3],
}

const MODELS: [CostModel; 3] = [CostModel::CompCert, CostModel::Gcc, CostModel::GccInline];

/// Computes one Fig. 12 row from benchmark source text.
///
/// # Errors
///
/// Compilation failures in any of the three schemes.
pub fn figure12_row(name: &str, source: &str) -> Result<Row, VelusError> {
    let compiled = velus::compile(source, Some(name))?;
    let root: Ident = compiled.root;
    let velus_cycles = wcet_step(&compiled.clight, root, CostModel::CompCert)
        .map_err(|e| VelusError::Validation(e.to_string()))?;

    let hept = heptagon_obc::<ClightOps>(&compiled.nlustre)
        .map_err(|e| VelusError::Validation(e.to_string()))?;
    let hept_clight = generate(&hept, root)?;
    let lus6 = lustre_v6_obc::<ClightOps>(&compiled.nlustre)
        .map_err(|e| VelusError::Validation(e.to_string()))?;
    let lus6_clight = generate(&lus6, root)?;

    let measure = |prog: &velus_clight::ast::Program| -> Result<[u64; 3], VelusError> {
        let mut out = [0u64; 3];
        for (k, m) in MODELS.iter().enumerate() {
            out[k] =
                wcet_step(prog, root, *m).map_err(|e| VelusError::Validation(e.to_string()))?;
        }
        Ok(out)
    };

    Ok(Row {
        name: name.to_owned(),
        velus: velus_cycles,
        hept: measure(&hept_clight)?,
        lus6: measure(&lus6_clight)?,
    })
}

/// Computes the whole table.
///
/// # Errors
///
/// The first failing benchmark.
pub fn figure12() -> Result<Vec<Row>, VelusError> {
    BENCHMARKS
        .iter()
        .map(|name| figure12_row(name, &load(name)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_files_exist() {
        for name in BENCHMARKS {
            assert!(
                benchmarks_dir().join(format!("{name}.lus")).exists(),
                "missing benchmark {name}"
            );
        }
    }

    #[test]
    fn tracker_row_has_the_papers_shape() {
        let row = figure12_row("tracker", &load("tracker")).unwrap();
        // Lustre v6 under the CompCert model is much slower than Vélus…
        assert!(
            row.lus6[0] > row.velus * 2,
            "lus6+cc {} vs velus {}",
            row.lus6[0],
            row.velus
        );
        // …and only becomes competitive with inlining.
        assert!(row.lus6[2] < row.lus6[0]);
        // GCC's if-conversion beats the CompCert model on Heptagon code.
        assert!(row.hept[1] < row.hept[0]);
        // Inlining helps further or at least does not hurt.
        assert!(row.hept[2] <= row.hept[1]);
    }

    #[test]
    fn paper_reference_covers_every_benchmark() {
        for name in BENCHMARKS {
            assert!(
                PAPER_VELUS_CYCLES.iter().any(|(n, _)| n == name),
                "no paper reference for {name}"
            );
        }
    }
}
