//! The Obc intermediate language (PLDI'17 §2.3, §3) — a conventional
//! imperative language with encapsulated state, modeled on the SOL
//! language of the SCADE Suite compiler.
//!
//! * [`ast`] — the abstract syntax of Fig. 4: expressions distinguish
//!   local variables from `state(x)` memories; programs are lists of
//!   classes with typed memories, named instances, and methods.
//! * [`sem`] — the big-step semantics of §3.1: statements relate pairs of
//!   a tree-shaped global memory ([`velus_nlustre::memory::Memory`]) and a
//!   local environment.
//! * [`translate`] — the SN-Lustre → Obc translation of Fig. 5: one class
//!   per node, a `step` and a `reset` method, clocks compiled to nested
//!   conditionals (`ctrl`).
//! * [`fusion`] — the fusion optimization of §3.3 (Fig. 8): `fuse`/`zip`
//!   merge adjacent conditionals; soundness is conditional on the
//!   [`fusion::fusible`] predicate, which holds of translated code.
//! * [`memcorres`] — the `MemCorres` relation of Fig. 7 between the
//!   exposed-memory semantics' tree `M` and an Obc run-time memory, made
//!   executable as a per-instant check.
//! * [`typecheck`] — well-typedness of Obc programs (the paper proves the
//!   translation preserves typing; we check it).

pub mod ast;
pub mod fusion;
pub mod memcorres;
pub mod sem;
pub mod translate;
pub mod typecheck;

mod error;

pub use error::ObcError;
