//! Abstract syntax of Obc (paper Fig. 4).
//!
//! Two features are noteworthy (§2.3): expressions and update statements
//! distinguish local variables `x` from memories `state(x)`; and a program
//! is a list of classes, each with typed memories, named instances of
//! previously declared classes, and named methods.

use std::fmt;

use velus_common::pretty::Printer;
use velus_common::Ident;
use velus_ops::Ops;

/// Returns the conventional name of the `step` method.
///
/// Cached: translation asks for it once per equation, and re-interning
/// even a known string takes the interner's shard lock.
pub fn step_name() -> Ident {
    static STEP: std::sync::OnceLock<Ident> = std::sync::OnceLock::new();
    *STEP.get_or_init(|| Ident::new("step"))
}

/// Returns the conventional name of the `reset` method (cached, see
/// [`step_name`]).
pub fn reset_name() -> Ident {
    static RESET: std::sync::OnceLock<Ident> = std::sync::OnceLock::new();
    *RESET.get_or_init(|| Ident::new("reset"))
}

/// An Obc expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ObcExpr<O: Ops> {
    /// A local variable (method input, output or local).
    Var(Ident, O::Ty),
    /// A state variable `state(x)` (a memory of the enclosing class).
    State(Ident, O::Ty),
    /// A constant.
    Const(O::Const),
    /// Unary operator application, annotated with the result type.
    Unop(O::UnOp, Box<ObcExpr<O>>, O::Ty),
    /// Binary operator application, annotated with the result type.
    Binop(O::BinOp, Box<ObcExpr<O>>, Box<ObcExpr<O>>, O::Ty),
}

impl<O: Ops> ObcExpr<O> {
    /// The type of the expression.
    pub fn ty(&self) -> O::Ty {
        match self {
            ObcExpr::Var(_, ty) | ObcExpr::State(_, ty) => ty.clone(),
            ObcExpr::Const(c) => O::type_of_const(c),
            ObcExpr::Unop(_, _, ty) | ObcExpr::Binop(_, _, _, ty) => ty.clone(),
        }
    }

    /// Appends the free *local* variables (not state) to `out`.
    pub fn free_vars_into(&self, out: &mut Vec<Ident>) {
        match self {
            ObcExpr::Var(x, _) => out.push(*x),
            ObcExpr::State(_, _) | ObcExpr::Const(_) => {}
            ObcExpr::Unop(_, e, _) => e.free_vars_into(out),
            ObcExpr::Binop(_, e1, e2, _) => {
                e1.free_vars_into(out);
                e2.free_vars_into(out);
            }
        }
    }

    /// Appends the state variables read by the expression to `out`.
    pub fn state_vars_into(&self, out: &mut Vec<Ident>) {
        match self {
            ObcExpr::State(x, _) => out.push(*x),
            ObcExpr::Var(_, _) | ObcExpr::Const(_) => {}
            ObcExpr::Unop(_, e, _) => e.state_vars_into(out),
            ObcExpr::Binop(_, e1, e2, _) => {
                e1.state_vars_into(out);
                e2.state_vars_into(out);
            }
        }
    }
}

impl<O: Ops> fmt::Display for ObcExpr<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObcExpr::Var(x, _) => write!(f, "{x}"),
            ObcExpr::State(x, _) => write!(f, "state({x})"),
            ObcExpr::Const(c) => write!(f, "{c}"),
            ObcExpr::Unop(op, e, _) => write!(f, "({op} {e})"),
            ObcExpr::Binop(op, e1, e2, _) => write!(f, "({e1} {op} {e2})"),
        }
    }
}

/// An Obc statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt<O: Ops> {
    /// `x := e` — update of a local variable.
    Assign(Ident, ObcExpr<O>),
    /// `state(x) := e` — update of a memory.
    AssignSt(Ident, ObcExpr<O>),
    /// `if e then s else s`.
    If(ObcExpr<O>, Box<Stmt<O>>, Box<Stmt<O>>),
    /// `xs := c i.m(es)` — a method call on instance `i` of class `c`,
    /// binding the results to the distinct variables `xs`.
    Call {
        /// Variables receiving the results.
        results: Vec<Ident>,
        /// Class of the instance.
        class: Ident,
        /// Instance name.
        instance: Ident,
        /// Method name.
        method: Ident,
        /// Argument expressions.
        args: Vec<ObcExpr<O>>,
    },
    /// `s; s` — sequencing.
    Seq(Box<Stmt<O>>, Box<Stmt<O>>),
    /// `skip`.
    Skip,
}

impl<O: Ops> Stmt<O> {
    /// Sequencing smart constructor that elides `skip`s.
    pub fn seq(s1: Stmt<O>, s2: Stmt<O>) -> Stmt<O> {
        match (s1, s2) {
            (Stmt::Skip, s) => s,
            (s, Stmt::Skip) => s,
            (a, b) => Stmt::Seq(Box::new(a), Box::new(b)),
        }
    }

    /// Sequences a list of statements, nesting to the right:
    /// `s1; (s2; (s3; …))`. Right nesting is what the paper's `treqss`
    /// produces (footnote 4) and what lets `fuse` reach every adjacent
    /// pair of conditionals.
    pub fn seq_all(stmts: impl IntoIterator<Item = Stmt<O>>) -> Stmt<O> {
        let items: Vec<Stmt<O>> = stmts.into_iter().collect();
        items
            .into_iter()
            .rev()
            .fold(Stmt::Skip, |acc, s| Stmt::seq(s, acc))
    }

    /// Whether `s` may write the (local or state) variable `x` — the
    /// paper's `MayWrite` used by the fusion side condition.
    pub fn may_write(&self, x: Ident) -> bool {
        match self {
            Stmt::Assign(y, _) | Stmt::AssignSt(y, _) => *y == x,
            Stmt::If(_, t, f) => t.may_write(x) || f.may_write(x),
            Stmt::Call { results, .. } => results.contains(&x),
            Stmt::Seq(a, b) => a.may_write(x) || b.may_write(x),
            Stmt::Skip => false,
        }
    }

    /// Number of constituent statements (for metrics).
    pub fn size(&self) -> usize {
        match self {
            Stmt::Assign(..) | Stmt::AssignSt(..) | Stmt::Call { .. } | Stmt::Skip => 1,
            Stmt::If(_, t, f) => 1 + t.size() + f.size(),
            Stmt::Seq(a, b) => a.size() + b.size(),
        }
    }

    fn print(&self, p: &mut Printer) {
        match self {
            Stmt::Assign(x, e) => p.line_args(format_args!("{x} := {e};")),
            Stmt::AssignSt(x, e) => p.line_args(format_args!("state({x}) := {e};")),
            Stmt::If(e, t, f) => {
                p.line_args(format_args!("if {e} {{"));
                p.block(|p| t.print(p));
                if **f != Stmt::Skip {
                    p.line("} else {");
                    p.block(|p| f.print(p));
                }
                p.line("}");
            }
            Stmt::Call {
                results,
                class,
                instance,
                method,
                args,
            } => {
                let rs: Vec<String> = results.iter().map(|r| r.to_string()).collect();
                let es: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                let lhs = if rs.is_empty() {
                    String::new()
                } else {
                    format!("{} := ", rs.join(", "))
                };
                p.line_args(format_args!(
                    "{lhs}{class}({instance}).{method}({});",
                    es.join(", ")
                ));
            }
            Stmt::Seq(a, b) => {
                a.print(p);
                b.print(p);
            }
            Stmt::Skip => p.line("skip;"),
        }
    }
}

impl<O: Ops> fmt::Display for Stmt<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut p = Printer::new();
        self.print(&mut p);
        f.write_str(p.finish().trim_end())
    }
}

/// A typed variable declaration inside a method or class.
pub type TypedVar<O> = (Ident, <O as Ops>::Ty);

/// A method: output, input and local declarations, and a body.
#[derive(Debug, Clone, PartialEq)]
pub struct Method<O: Ops> {
    /// Method name (`step` or `reset` for translated code).
    pub name: Ident,
    /// Input parameters.
    pub inputs: Vec<TypedVar<O>>,
    /// Output (result) variables.
    pub outputs: Vec<TypedVar<O>>,
    /// Local variables.
    pub locals: Vec<TypedVar<O>>,
    /// The body statement.
    pub body: Stmt<O>,
}

/// A class: memories, instances of previously declared classes, methods.
#[derive(Debug, Clone, PartialEq)]
pub struct Class<O: Ops> {
    /// Class name (the originating node's name for translated code).
    pub name: Ident,
    /// Typed memory cells (one per `fby`).
    pub memories: Vec<TypedVar<O>>,
    /// `(instance name, class name)` pairs (one per node call).
    pub instances: Vec<(Ident, Ident)>,
    /// The methods.
    pub methods: Vec<Method<O>>,
}

impl<O: Ops> Class<O> {
    /// Looks up a method by name.
    pub fn method(&self, name: Ident) -> Option<&Method<O>> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// The class of a declared instance.
    pub fn instance_class(&self, instance: Ident) -> Option<Ident> {
        self.instances
            .iter()
            .find(|(i, _)| *i == instance)
            .map(|(_, c)| *c)
    }
}

/// An Obc program: a list of classes, callees first.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObcProgram<O: Ops> {
    /// The classes in dependency order.
    pub classes: Vec<Class<O>>,
}

impl<O: Ops> ObcProgram<O> {
    /// Looks up a class by name.
    pub fn class(&self, name: Ident) -> Option<&Class<O>> {
        self.classes.iter().find(|c| c.name == name)
    }
}

impl<O: Ops> fmt::Display for ObcProgram<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut p = Printer::new();
        for class in &self.classes {
            p.line_args(format_args!("class {} {{", class.name));
            p.block(|p| {
                for (x, ty) in &class.memories {
                    p.line_args(format_args!("memory {x}: {ty};"));
                }
                for (i, c) in &class.instances {
                    p.line_args(format_args!("instance {i}: {c};"));
                }
                for m in &class.methods {
                    let fmt_vars = |vs: &[TypedVar<O>]| {
                        vs.iter()
                            .map(|(x, t)| format!("{x}: {t}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    };
                    p.line_args(format_args!(
                        "({}) {}({}) {{ var {} in",
                        fmt_vars(&m.outputs),
                        m.name,
                        fmt_vars(&m.inputs),
                        fmt_vars(&m.locals),
                    ));
                    p.block(|p| m.body.print(p));
                    p.line("}");
                }
            });
            p.line("}");
        }
        f.write_str(p.finish().trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velus_ops::{CConst, CTy, ClightOps};

    type S = Stmt<ClightOps>;

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    #[test]
    fn seq_elides_skip() {
        let a: S = Stmt::Assign(id("x"), ObcExpr::Const(CConst::int(1)));
        assert_eq!(S::seq(Stmt::Skip, a.clone()), a);
        assert_eq!(S::seq(a.clone(), Stmt::Skip), a);
        let s = S::seq_all(vec![Stmt::Skip, a.clone(), Stmt::Skip]);
        assert_eq!(s, a);
    }

    #[test]
    fn may_write_sees_through_structure() {
        let w: S = Stmt::AssignSt(id("pt"), ObcExpr::Const(CConst::int(0)));
        let s = S::seq(
            Stmt::Skip,
            Stmt::If(
                ObcExpr::Var(id("c"), CTy::Bool),
                Box::new(w),
                Box::new(Stmt::Skip),
            ),
        );
        assert!(s.may_write(id("pt")));
        assert!(!s.may_write(id("c")));
        let call: S = Stmt::Call {
            results: vec![id("a"), id("b")],
            class: id("k"),
            instance: id("i"),
            method: step_name(),
            args: vec![],
        };
        assert!(call.may_write(id("b")));
    }

    #[test]
    fn display_is_readable() {
        let s: S = Stmt::If(
            ObcExpr::Var(id("x"), CTy::Bool),
            Box::new(Stmt::Assign(id("t"), ObcExpr::Var(id("c"), CTy::I32))),
            Box::new(Stmt::Assign(id("t"), ObcExpr::State(id("pt"), CTy::I32))),
        );
        let text = s.to_string();
        assert!(text.contains("if x {"));
        assert!(text.contains("t := state(pt);"));
    }

    #[test]
    fn size_counts_atoms() {
        let a: S = Stmt::Assign(id("x"), ObcExpr::Const(CConst::int(1)));
        let s = S::seq(
            a.clone(),
            Stmt::If(
                ObcExpr::Var(id("c"), CTy::Bool),
                Box::new(a.clone()),
                Box::new(Stmt::Skip),
            ),
        );
        assert_eq!(s.size(), 4);
    }
}
