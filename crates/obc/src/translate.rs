//! Translation from SN-Lustre to Obc (paper §3, Fig. 5).
//!
//! Each dataflow node becomes a class with a memory per `fby`-defined
//! variable, an instance per node call, and two methods:
//!
//! * `reset` initializes memories and instances;
//! * `step` computes one instant — one "column" of the semantic table —
//!   with each equation compiled to an assignment nested in the
//!   conditionals dictated by its clock (`ctrl`): "clocks in the source
//!   language are transformed into control structures in the target
//!   language".
//!
//! A node-call instance is identified by its left-most result variable,
//! which is unique within the node, exactly as in the paper.

use velus_common::{Ident, IdentMap, IdentSet};
use velus_nlustre::ast::{CExpr, Equation, Expr, Node, Program};
use velus_nlustre::clock::Clock;
use velus_ops::Ops;

use crate::ast::{reset_name, step_name, Class, Method, ObcExpr, ObcProgram, Stmt};
use crate::ObcError;

/// Per-node translation context: which variables are memories, and the
/// type of every variable.
struct Ctx<O: Ops> {
    mems: IdentSet,
    types: IdentMap<O::Ty>,
}

impl<O: Ops> Ctx<O> {
    fn ty(&self, x: Ident) -> Result<O::Ty, ObcError> {
        self.types
            .get(&x)
            .cloned()
            .ok_or(ObcError::UnboundVariable(x))
    }

    /// The paper's `var` function: a dataflow variable becomes a state
    /// access if it is `fby`-defined, a local variable otherwise.
    fn var(&self, x: Ident) -> Result<ObcExpr<O>, ObcError> {
        let ty = self.ty(x)?;
        Ok(if self.mems.contains(&x) {
            ObcExpr::State(x, ty)
        } else {
            ObcExpr::Var(x, ty)
        })
    }
}

/// `trexp`: propagates constants and operators, removes `when`s.
fn trexp<O: Ops>(ctx: &Ctx<O>, e: &Expr<O>) -> Result<ObcExpr<O>, ObcError> {
    Ok(match e {
        Expr::Const(c) => ObcExpr::Const(c.clone()),
        Expr::Var(x, _) => ctx.var(*x)?,
        Expr::When(e1, _, _) => trexp(ctx, e1)?,
        Expr::Unop(op, e1, ty) => ObcExpr::Unop(*op, Box::new(trexp(ctx, e1)?), ty.clone()),
        Expr::Binop(op, e1, e2, ty) => ObcExpr::Binop(
            *op,
            Box::new(trexp(ctx, e1)?),
            Box::new(trexp(ctx, e2)?),
            ty.clone(),
        ),
    })
}

/// `trcexp`: maps a defined variable and a control expression to an update
/// statement; merges and muxes become conditionals.
fn trcexp<O: Ops>(ctx: &Ctx<O>, x: Ident, ce: &CExpr<O>) -> Result<Stmt<O>, ObcError> {
    Ok(match ce {
        CExpr::Merge(y, t, f) => Stmt::If(
            ctx.var(*y)?,
            Box::new(trcexp(ctx, x, t)?),
            Box::new(trcexp(ctx, x, f)?),
        ),
        CExpr::If(c, t, f) => Stmt::If(
            trexp(ctx, c)?,
            Box::new(trcexp(ctx, x, t)?),
            Box::new(trcexp(ctx, x, f)?),
        ),
        CExpr::Expr(e) => Stmt::Assign(x, trexp(ctx, e)?),
    })
}

/// `ctrl`: nests a statement in the conditionals of its clock.
fn ctrl<O: Ops>(ctx: &Ctx<O>, ck: &Clock, s: Stmt<O>) -> Result<Stmt<O>, ObcError> {
    match ck {
        Clock::Base => Ok(s),
        Clock::On(parent, x, true) => {
            let guarded = Stmt::If(ctx.var(*x)?, Box::new(s), Box::new(Stmt::Skip));
            ctrl(ctx, parent, guarded)
        }
        Clock::On(parent, x, false) => {
            let guarded = Stmt::If(ctx.var(*x)?, Box::new(Stmt::Skip), Box::new(s));
            ctrl(ctx, parent, guarded)
        }
    }
}

/// `treqs`: one equation of the `step` method.
fn treq<O: Ops>(ctx: &Ctx<O>, eq: &Equation<O>) -> Result<Stmt<O>, ObcError> {
    match eq {
        Equation::Def { x, ck, rhs } => ctrl(ctx, ck, trcexp(ctx, *x, rhs)?),
        Equation::Fby { x, ck, rhs, .. } => {
            let s = Stmt::AssignSt(*x, trexp(ctx, rhs)?);
            ctrl(ctx, ck, s)
        }
        Equation::Call { xs, ck, node, args } => {
            let args = args
                .iter()
                .map(|a| trexp(ctx, a))
                .collect::<Result<Vec<_>, _>>()?;
            let s = Stmt::Call {
                results: xs.clone(),
                class: *node,
                instance: xs[0],
                method: step_name(),
                args,
            };
            ctrl(ctx, ck, s)
        }
    }
}

/// `treqr`: one equation of the `reset` method (delays become constant
/// state updates, calls become `reset` invocations; definitions vanish).
fn treq_reset<O: Ops>(eq: &Equation<O>) -> Option<Stmt<O>> {
    match eq {
        Equation::Def { .. } => None,
        Equation::Fby { x, init, .. } => Some(Stmt::AssignSt(*x, ObcExpr::Const(init.clone()))),
        Equation::Call { xs, node, .. } => Some(Stmt::Call {
            results: vec![],
            class: *node,
            instance: xs[0],
            method: reset_name(),
            args: vec![],
        }),
    }
}

/// `trnode`: translates one node into a class.
///
/// # Errors
///
/// Rejects nodes where a `fby` defines an output directly (normalization
/// introduces a copy first) and propagates unbound-variable errors.
pub fn translate_node<O: Ops>(node: &Node<O>) -> Result<Class<O>, ObcError> {
    let mems: IdentSet = node.mems_iter().collect();
    for d in &node.outputs {
        if mems.contains(&d.name) {
            return Err(ObcError::Malformed(format!(
                "node {}: output {} is fby-defined; normalization must introduce a copy",
                node.name, d.name
            )));
        }
    }
    let mut types: IdentMap<O::Ty> = velus_common::ident_map_with_capacity(
        node.inputs.len() + node.outputs.len() + node.locals.len(),
    );
    for d in node.inputs.iter().chain(&node.outputs).chain(&node.locals) {
        types.insert(d.name, d.ty.clone());
    }
    let ctx = Ctx::<O> { mems, types };

    let step_body = Stmt::seq_all(
        node.eqs
            .iter()
            .map(|eq| treq(&ctx, eq))
            .collect::<Result<Vec<_>, _>>()?,
    );
    let reset_body = Stmt::seq_all(node.eqs.iter().filter_map(treq_reset));

    let memories = node
        .eqs
        .iter()
        .filter_map(|eq| match eq {
            Equation::Fby { x, .. } => Some((*x, ctx.types[x].clone())),
            _ => None,
        })
        .collect();
    let instances = node
        .eqs
        .iter()
        .filter_map(|eq| match eq {
            Equation::Call { xs, node: f, .. } => Some((xs[0], *f)),
            _ => None,
        })
        .collect();

    let step = Method {
        name: step_name(),
        inputs: node.inputs.iter().map(|d| (d.name, d.ty.clone())).collect(),
        outputs: node
            .outputs
            .iter()
            .map(|d| (d.name, d.ty.clone()))
            .collect(),
        locals: node
            .locals
            .iter()
            .filter(|d| !ctx.mems.contains(&d.name))
            .map(|d| (d.name, d.ty.clone()))
            .collect(),
        body: step_body,
    };
    let reset = Method {
        name: reset_name(),
        inputs: vec![],
        outputs: vec![],
        locals: vec![],
        body: reset_body,
    };

    Ok(Class {
        name: node.name,
        memories,
        instances,
        methods: vec![step, reset],
    })
}

/// `translate`: maps every node of an SN-Lustre program into an Obc class
/// (callees-first order is preserved).
///
/// The input program must be well scheduled; the validation harness
/// re-checks schedules before calling this.
///
/// # Errors
///
/// See [`translate_node`].
pub fn translate_program<O: Ops>(prog: &Program<O>) -> Result<ObcProgram<O>, ObcError> {
    let classes = prog
        .nodes
        .iter()
        .map(translate_node)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ObcProgram { classes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sem::run_class;
    use velus_nlustre::ast::VarDecl;
    use velus_nlustre::dataflow;
    use velus_nlustre::streams::SVal;
    use velus_ops::{CBinOp, CConst, CTy, CVal, ClightOps};

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    fn decl(name: &str, ty: CTy) -> VarDecl<ClightOps> {
        VarDecl {
            name: id(name),
            ty,
            ck: Clock::Base,
        }
    }

    fn ivar(x: &str) -> Expr<ClightOps> {
        Expr::Var(id(x), CTy::I32)
    }

    /// The scheduled counter of Fig. 3.
    fn counter() -> Node<ClightOps> {
        Node {
            name: id("counter"),
            inputs: vec![
                decl("ini", CTy::I32),
                decl("inc", CTy::I32),
                decl("res", CTy::Bool),
            ],
            outputs: vec![decl("n", CTy::I32)],
            locals: vec![decl("c", CTy::I32), decl("f", CTy::Bool)],
            eqs: vec![
                Equation::Def {
                    x: id("n"),
                    ck: Clock::Base,
                    rhs: CExpr::If(
                        Expr::Binop(
                            CBinOp::Or,
                            Box::new(Expr::Var(id("f"), CTy::Bool)),
                            Box::new(Expr::Var(id("res"), CTy::Bool)),
                            CTy::Bool,
                        ),
                        Box::new(CExpr::Expr(ivar("ini"))),
                        Box::new(CExpr::Expr(Expr::Binop(
                            CBinOp::Add,
                            Box::new(ivar("c")),
                            Box::new(ivar("inc")),
                            CTy::I32,
                        ))),
                    ),
                },
                Equation::Fby {
                    x: id("f"),
                    ck: Clock::Base,
                    init: CConst::bool(true),
                    rhs: Expr::Const(CConst::bool(false)),
                },
                Equation::Fby {
                    x: id("c"),
                    ck: Clock::Base,
                    init: CConst::int(0),
                    rhs: ivar("n"),
                },
            ],
        }
    }

    #[test]
    fn fby_variables_become_state() {
        let class = translate_node(&counter()).unwrap();
        assert_eq!(class.memories.len(), 2);
        assert!(class.instances.is_empty());
        // Locals of the step method exclude the memories.
        let step = class.method(step_name()).unwrap();
        assert!(step.locals.is_empty());
        let text = class.methods[0].body.to_string();
        assert!(text.contains("state(c)"), "{text}");
        assert!(text.contains("state(f)"), "{text}");
    }

    #[test]
    fn translated_counter_matches_dataflow() {
        let prog = Program::new(vec![counter()]);
        let obc = translate_program(&prog).unwrap();
        let n = 6;
        let ini: Vec<SVal<ClightOps>> = (0..n).map(|_| SVal::Pres(CVal::int(7))).collect();
        let inc: Vec<SVal<ClightOps>> = (0..n).map(|i| SVal::Pres(CVal::int(i as i32))).collect();
        let res: Vec<SVal<ClightOps>> = (0..n).map(|i| SVal::Pres(CVal::bool(i == 3))).collect();
        let inputs = vec![ini, inc, res];
        let df = dataflow::run_node(&prog, id("counter"), &inputs, n).unwrap();

        let obc_inputs: Vec<Option<Vec<CVal>>> = (0..n)
            .map(|i| Some(inputs.iter().map(|s| *s[i].value().unwrap()).collect()))
            .collect();
        let outs = run_class(&obc, id("counter"), &obc_inputs).unwrap();
        for i in 0..n {
            assert_eq!(
                df[0][i].value().unwrap(),
                &outs[i].as_ref().unwrap()[0],
                "instant {i}"
            );
        }
    }

    #[test]
    fn reset_reinitializes() {
        let prog = Program::new(vec![counter()]);
        let obc = translate_program(&prog).unwrap();
        let class = obc.class(id("counter")).unwrap();
        let reset = class.method(reset_name()).unwrap();
        let text = reset.body.to_string();
        assert!(text.contains("state(f) := true;"), "{text}");
        assert!(text.contains("state(c) := 0;"), "{text}");
    }

    #[test]
    fn fby_defined_output_is_rejected() {
        let node: Node<ClightOps> = Node {
            name: id("bad"),
            inputs: vec![decl("x", CTy::I32)],
            outputs: vec![decl("y", CTy::I32)],
            locals: vec![],
            eqs: vec![Equation::Fby {
                x: id("y"),
                ck: Clock::Base,
                init: CConst::int(0),
                rhs: ivar("x"),
            }],
        };
        assert!(matches!(translate_node(&node), Err(ObcError::Malformed(_))));
    }

    #[test]
    fn clocked_equations_are_guarded() {
        // s on clock (base on k) becomes if k { s }.
        let on_k = Clock::Base.on(id("k"), true);
        let node: Node<ClightOps> = Node {
            name: id("guarded"),
            inputs: vec![decl("k", CTy::Bool), decl("x", CTy::I32)],
            outputs: vec![decl("o", CTy::I32)],
            locals: vec![VarDecl {
                name: id("s"),
                ty: CTy::I32,
                ck: on_k.clone(),
            }],
            eqs: vec![
                Equation::Def {
                    x: id("s"),
                    ck: on_k,
                    rhs: CExpr::Expr(Expr::When(Box::new(ivar("x")), id("k"), true)),
                },
                Equation::Def {
                    x: id("o"),
                    ck: Clock::Base,
                    rhs: CExpr::Merge(
                        id("k"),
                        Box::new(CExpr::Expr(Expr::Var(id("s"), CTy::I32))),
                        Box::new(CExpr::Expr(Expr::When(
                            Box::new(Expr::Const(CConst::int(0))),
                            id("k"),
                            false,
                        ))),
                    ),
                },
            ],
        };
        let class = translate_node(&node).unwrap();
        let text = class.method(step_name()).unwrap().body.to_string();
        assert!(text.contains("if k {"), "{text}");
        // The merge also compiles to a conditional on k.
        assert!(text.matches("if k {").count() >= 2, "{text}");
    }
}
