//! The `MemCorres` relation (paper Fig. 7), made executable.
//!
//! `MemCorres_n(M, mem)` relates the exposed memory `M` of the
//! intermediate semantics (§3.2) to an Obc run-time global memory at
//! instant `n`: for every `fby` equation `x`, `M.values(x)(n)` equals
//! `mem.values(x)`; for every node call, the relation holds recursively
//! between the sub-trees; ordinary equations impose nothing.
//!
//! The paper's Lemma 1 shows that a translated `step` preserves the
//! relation from instant `n` to `n + 1` and that `reset` establishes it at
//! instant 0. The validation harness asserts exactly this along every
//! execution.

use velus_common::Ident;
use velus_nlustre::ast::{Equation, Node, Program};
use velus_nlustre::memory::Memory;
use velus_nlustre::msem::MemTrace;
use velus_ops::Ops;

use crate::ObcError;

/// Checks `MemCorres_n(M, mem)` for node `f` of `prog`.
///
/// `mtrace` is the recorded exposed memory (`M`), `mem` the Obc global
/// memory of the instance being compared, and `n` the instant.
///
/// When the recorded trace is shorter than `n + 1` for some cell (the
/// node was never activated that far), the *last* recorded value is used:
/// the memory of a non-activated instance does not change — the subtle
/// case of the paper's proof.
///
/// # Errors
///
/// [`ObcError::MemCorres`] describing the first disagreeing cell.
pub fn check_memcorres<O: Ops>(
    prog: &Program<O>,
    node: &Node<O>,
    mtrace: &MemTrace<O>,
    n: usize,
    mem: &Memory<O::Val>,
) -> Result<(), ObcError> {
    check_rec(prog, node, mtrace, n, mem, &mut Vec::new())
}

fn check_rec<O: Ops>(
    prog: &Program<O>,
    node: &Node<O>,
    mtrace: &MemTrace<O>,
    n: usize,
    mem: &Memory<O::Val>,
    path: &mut Vec<Ident>,
) -> Result<(), ObcError> {
    for eq in &node.eqs {
        match eq {
            Equation::Def { .. } => {}
            Equation::Fby { x, .. } => {
                let expected = mtrace
                    .values
                    .get(x)
                    .and_then(|vs| vs.get(n).or_else(|| vs.last()))
                    .ok_or_else(|| {
                        ObcError::MemCorres(format!("no recorded stream for {}{x}", render(path)))
                    })?;
                let actual = mem.value(*x).ok_or_else(|| {
                    ObcError::MemCorres(format!("no run-time cell for {}{x}", render(path)))
                })?;
                if expected != actual {
                    return Err(ObcError::MemCorres(format!(
                        "at instant {n}, {}{x}: semantics has {expected}, Obc memory has {actual}",
                        render(path)
                    )));
                }
            }
            Equation::Call { xs, node: f, .. } => {
                let callee = prog.node(*f).ok_or(ObcError::UnknownClass(*f))?;
                let sub_trace = mtrace.instance(xs[0]).ok_or_else(|| {
                    ObcError::MemCorres(format!("no recorded sub-memory {}{}", render(path), xs[0]))
                })?;
                let sub_mem = mem.instance(xs[0]).ok_or_else(|| {
                    ObcError::MemCorres(format!("no run-time sub-memory {}{}", render(path), xs[0]))
                })?;
                path.push(xs[0]);
                check_rec(prog, callee, sub_trace, n, sub_mem, path)?;
                path.pop();
            }
        }
    }
    Ok(())
}

fn render(path: &[Ident]) -> String {
    path.iter().map(|i| format!("{i}.")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sem::call_method;
    use crate::translate::translate_program;
    use velus_common::Ident;
    use velus_nlustre::ast::{CExpr, Expr, VarDecl};
    use velus_nlustre::clock::Clock;
    use velus_nlustre::msem::MSem;
    use velus_nlustre::streams::SVal;
    use velus_ops::{CBinOp, CConst, CTy, CVal, ClightOps};

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    fn decl(name: &str, ty: CTy) -> VarDecl<ClightOps> {
        VarDecl {
            name: id(name),
            ty,
            ck: Clock::Base,
        }
    }

    /// y = cum + x; cum = 0 fby y (scheduled).
    fn accumulator() -> Program<ClightOps> {
        Program::new(vec![velus_nlustre::ast::Node {
            name: id("acc"),
            inputs: vec![decl("x", CTy::I32)],
            outputs: vec![decl("y", CTy::I32)],
            locals: vec![decl("cum", CTy::I32)],
            eqs: vec![
                Equation::Def {
                    x: id("y"),
                    ck: Clock::Base,
                    rhs: CExpr::Expr(Expr::Binop(
                        CBinOp::Add,
                        Box::new(Expr::Var(id("cum"), CTy::I32)),
                        Box::new(Expr::Var(id("x"), CTy::I32)),
                        CTy::I32,
                    )),
                },
                Equation::Fby {
                    x: id("cum"),
                    ck: Clock::Base,
                    init: CConst::int(0),
                    rhs: Expr::Var(id("y"), CTy::I32),
                },
            ],
        }])
    }

    #[test]
    fn memcorres_holds_along_an_execution() {
        let prog = accumulator();
        let node = prog.node(id("acc")).unwrap();
        let obc = translate_program(&prog).unwrap();

        // Run the memory semantics with recording.
        let mut msem = MSem::new(&prog, id("acc")).unwrap().recording();
        let inputs: Vec<Vec<SVal<ClightOps>>> =
            vec![(1..=4).map(|v| SVal::Pres(CVal::int(v))).collect()];
        // Run the Obc side in lockstep, checking the relation at each
        // boundary.
        let mut mem = velus_nlustre::memory::Memory::new();
        call_method(&obc, id("acc"), &mut mem, crate::ast::reset_name(), &[]).unwrap();
        for n in 0..4 {
            let at: Vec<SVal<ClightOps>> = inputs.iter().map(|s| s[n].clone()).collect();
            msem.step(&at).unwrap();
            // After semantic instant n, the trace holds M(0..=n); compare
            // M(n) with the Obc memory *before* its step n.
            check_memcorres(&prog, node, msem.trace(), n, &mem).unwrap();
            let vals: Vec<CVal> = at.iter().map(|v| *v.value().unwrap()).collect();
            call_method(&obc, id("acc"), &mut mem, crate::ast::step_name(), &vals).unwrap();
        }
    }

    #[test]
    fn corrupted_memory_is_detected() {
        let prog = accumulator();
        let node = prog.node(id("acc")).unwrap();
        let mut msem = MSem::new(&prog, id("acc")).unwrap().recording();
        msem.step(&[SVal::Pres(CVal::int(1))]).unwrap();

        let mut mem = velus_nlustre::memory::Memory::new();
        mem.set_value(id("cum"), CVal::int(42)); // wrong: should be 0
        let err = check_memcorres(&prog, node, msem.trace(), 0, &mem).unwrap_err();
        assert!(matches!(err, ObcError::MemCorres(_)));
    }
}
