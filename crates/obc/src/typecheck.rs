//! Well-typedness of Obc programs.
//!
//! The paper proves that translation maps well-typed SN-Lustre programs to
//! well-typed Obc programs; we check the result instead. The judgment is
//! standard: expressions elaborate against the method's variables and the
//! class's memories, assignments require exact type equality (no implicit
//! casts — §4.1), guards are boolean, and call sites match the callee's
//! signature.

use velus_common::{Ident, IdentMap};
use velus_ops::Ops;

use crate::ast::{Class, Method, ObcExpr, ObcProgram, Stmt};
use crate::ObcError;

struct Scope<'a, O: Ops> {
    vars: IdentMap<O::Ty>,
    mems: IdentMap<O::Ty>,
    class: &'a Class<O>,
    prog: &'a ObcProgram<O>,
}

fn expr_ty<O: Ops>(sc: &Scope<'_, O>, e: &ObcExpr<O>) -> Result<O::Ty, ObcError> {
    match e {
        ObcExpr::Var(x, ty) => match sc.vars.get(x) {
            None => Err(ObcError::UnboundVariable(*x)),
            Some(t) if t == ty => Ok(ty.clone()),
            Some(t) => Err(ObcError::TypeError(format!(
                "variable {x} annotated {ty}, declared {t}"
            ))),
        },
        ObcExpr::State(x, ty) => match sc.mems.get(x) {
            None => Err(ObcError::UnboundState(*x)),
            Some(t) if t == ty => Ok(ty.clone()),
            Some(t) => Err(ObcError::TypeError(format!(
                "state {x} annotated {ty}, declared {t}"
            ))),
        },
        ObcExpr::Const(c) => Ok(O::type_of_const(c)),
        ObcExpr::Unop(op, e1, ty) => {
            let t1 = expr_ty(sc, e1)?;
            match O::type_unop(*op, &t1) {
                Some(t) if t == *ty => Ok(t),
                Some(t) => Err(ObcError::TypeError(format!(
                    "unop {op} annotated {ty}, inferred {t}"
                ))),
                None => Err(ObcError::TypeError(format!(
                    "unop {op} inapplicable to {t1}"
                ))),
            }
        }
        ObcExpr::Binop(op, e1, e2, ty) => {
            let t1 = expr_ty(sc, e1)?;
            let t2 = expr_ty(sc, e2)?;
            match O::type_binop(*op, &t1, &t2) {
                Some(t) if t == *ty => Ok(t),
                Some(t) => Err(ObcError::TypeError(format!(
                    "binop {op} annotated {ty}, inferred {t}"
                ))),
                None => Err(ObcError::TypeError(format!(
                    "binop {op} inapplicable to {t1}, {t2}"
                ))),
            }
        }
    }
}

fn check_stmt<O: Ops>(sc: &Scope<'_, O>, s: &Stmt<O>) -> Result<(), ObcError> {
    match s {
        Stmt::Skip => Ok(()),
        Stmt::Seq(a, b) => {
            check_stmt(sc, a)?;
            check_stmt(sc, b)
        }
        Stmt::Assign(x, e) => {
            let te = expr_ty(sc, e)?;
            match sc.vars.get(x) {
                None => Err(ObcError::UnboundVariable(*x)),
                Some(t) if *t == te => Ok(()),
                Some(t) => Err(ObcError::TypeError(format!(
                    "assignment {x} := … : variable has type {t}, expression {te}"
                ))),
            }
        }
        Stmt::AssignSt(x, e) => {
            let te = expr_ty(sc, e)?;
            match sc.mems.get(x) {
                None => Err(ObcError::UnboundState(*x)),
                Some(t) if *t == te => Ok(()),
                Some(t) => Err(ObcError::TypeError(format!(
                    "state update {x} := … : memory has type {t}, expression {te}"
                ))),
            }
        }
        Stmt::If(c, t, f) => {
            let tc = expr_ty(sc, c)?;
            if tc != O::bool_type() {
                return Err(ObcError::TypeError(format!("guard has type {tc}")));
            }
            check_stmt(sc, t)?;
            check_stmt(sc, f)
        }
        Stmt::Call {
            results,
            class,
            instance,
            method,
            args,
        } => {
            match sc.class.instance_class(*instance) {
                Some(c) if c == *class => {}
                Some(c) => {
                    return Err(ObcError::TypeError(format!(
                        "instance {instance} has class {c}, call names {class}"
                    )))
                }
                None => {
                    return Err(ObcError::Malformed(format!(
                        "undeclared instance {instance} in class {}",
                        sc.class.name
                    )))
                }
            }
            let callee = sc
                .prog
                .class(*class)
                .ok_or(ObcError::UnknownClass(*class))?;
            let m = callee
                .method(*method)
                .ok_or(ObcError::UnknownMethod(*class, *method))?;
            if m.inputs.len() != args.len() || m.outputs.len() != results.len() {
                return Err(ObcError::ArityMismatch(format!("call to {class}.{method}")));
            }
            for (a, (px, pt)) in args.iter().zip(&m.inputs) {
                let ta = expr_ty(sc, a)?;
                if ta != *pt {
                    return Err(ObcError::TypeError(format!(
                        "argument for {px} has type {ta}, expected {pt}"
                    )));
                }
            }
            for (r, (ox, ot)) in results.iter().zip(&m.outputs) {
                match sc.vars.get(r) {
                    None => return Err(ObcError::UnboundVariable(*r)),
                    Some(t) if t == ot => {}
                    Some(t) => {
                        return Err(ObcError::TypeError(format!(
                            "result {r} has type {t}, output {ox} has type {ot}"
                        )))
                    }
                }
            }
            Ok(())
        }
    }
}

fn check_method<O: Ops>(
    prog: &ObcProgram<O>,
    class: &Class<O>,
    m: &Method<O>,
) -> Result<(), ObcError> {
    let mut vars: IdentMap<O::Ty> =
        velus_common::ident_map_with_capacity(m.inputs.len() + m.outputs.len() + m.locals.len());
    for (x, t) in m.inputs.iter().chain(&m.outputs).chain(&m.locals) {
        if vars.insert(*x, t.clone()).is_some() {
            return Err(ObcError::Malformed(format!(
                "duplicate variable {x} in method {}.{}",
                class.name, m.name
            )));
        }
    }
    let mems: IdentMap<O::Ty> = class.memories.iter().cloned().collect();
    let sc = Scope {
        vars,
        mems,
        class,
        prog,
    };
    check_stmt(&sc, &m.body)
}

/// Checks well-typedness of a whole Obc program. Classes may only
/// instantiate previously declared classes (ruling out recursion).
///
/// # Errors
///
/// The first typing or structural violation, in declaration order.
pub fn check_program<O: Ops>(prog: &ObcProgram<O>) -> Result<(), ObcError> {
    let mut seen: Vec<Ident> = Vec::new();
    for class in &prog.classes {
        if seen.contains(&class.name) {
            return Err(ObcError::Malformed(format!(
                "duplicate class {}",
                class.name
            )));
        }
        for (i, c) in &class.instances {
            if !seen.contains(c) {
                return Err(ObcError::Malformed(format!(
                    "class {}: instance {i} of undeclared class {c}",
                    class.name
                )));
            }
        }
        for m in &class.methods {
            check_method(prog, class, m)?;
        }
        seen.push(class.name);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{reset_name, step_name};
    use velus_ops::{CBinOp, CConst, CTy, ClightOps};

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    fn counter() -> ObcProgram<ClightOps> {
        ObcProgram {
            classes: vec![Class {
                name: id("k"),
                memories: vec![(id("c"), CTy::I32)],
                instances: vec![],
                methods: vec![
                    Method {
                        name: step_name(),
                        inputs: vec![(id("i"), CTy::I32)],
                        outputs: vec![(id("o"), CTy::I32)],
                        locals: vec![],
                        body: Stmt::seq(
                            Stmt::Assign(
                                id("o"),
                                ObcExpr::Binop(
                                    CBinOp::Add,
                                    Box::new(ObcExpr::State(id("c"), CTy::I32)),
                                    Box::new(ObcExpr::Var(id("i"), CTy::I32)),
                                    CTy::I32,
                                ),
                            ),
                            Stmt::AssignSt(id("c"), ObcExpr::Var(id("o"), CTy::I32)),
                        ),
                    },
                    Method {
                        name: reset_name(),
                        inputs: vec![],
                        outputs: vec![],
                        locals: vec![],
                        body: Stmt::AssignSt(id("c"), ObcExpr::Const(CConst::int(0))),
                    },
                ],
            }],
        }
    }

    #[test]
    fn accepts_well_typed() {
        assert_eq!(check_program(&counter()), Ok(()));
    }

    #[test]
    fn rejects_implicit_casts() {
        let mut p = counter();
        // state(c) : int := true
        p.classes[0].methods[1].body = Stmt::AssignSt(id("c"), ObcExpr::Const(CConst::bool(true)));
        assert!(matches!(check_program(&p), Err(ObcError::TypeError(_))));
    }

    #[test]
    fn rejects_non_boolean_guards() {
        let mut p = counter();
        p.classes[0].methods[0].body = Stmt::If(
            ObcExpr::Var(id("i"), CTy::I32),
            Box::new(Stmt::Skip),
            Box::new(Stmt::Skip),
        );
        assert!(matches!(check_program(&p), Err(ObcError::TypeError(_))));
    }

    #[test]
    fn rejects_forward_instances() {
        let mut p = counter();
        p.classes[0].instances.push((id("sub"), id("later")));
        assert!(matches!(check_program(&p), Err(ObcError::Malformed(_))));
    }

    #[test]
    fn translated_programs_are_well_typed() {
        // End-to-end: translate the counter node and check.
        use velus_nlustre::ast::{CExpr, Equation, Expr, Node, Program, VarDecl};
        use velus_nlustre::clock::Clock;
        let decl = |n: &str, t: CTy| VarDecl::<ClightOps> {
            name: id(n),
            ty: t,
            ck: Clock::Base,
        };
        let node = Node {
            name: id("acc"),
            inputs: vec![decl("x", CTy::I32)],
            outputs: vec![decl("y", CTy::I32)],
            locals: vec![decl("cum", CTy::I32)],
            eqs: vec![
                Equation::Def {
                    x: id("y"),
                    ck: Clock::Base,
                    rhs: CExpr::Expr(Expr::Binop(
                        CBinOp::Add,
                        Box::new(Expr::Var(id("cum"), CTy::I32)),
                        Box::new(Expr::Var(id("x"), CTy::I32)),
                        CTy::I32,
                    )),
                },
                Equation::Fby {
                    x: id("cum"),
                    ck: Clock::Base,
                    init: CConst::int(0),
                    rhs: Expr::Var(id("y"), CTy::I32),
                },
            ],
        };
        let obc = crate::translate::translate_program(&Program::new(vec![node])).unwrap();
        assert_eq!(check_program(&obc), Ok(()));
        let fused = crate::fusion::fuse_program(&obc);
        assert_eq!(check_program(&fused), Ok(()));
    }
}
