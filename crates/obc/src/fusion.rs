//! The fusion optimization (paper §3.3, Fig. 8).
//!
//! Translation produces one nesting of conditionals per equation, so the
//! step code tests the same clock guards over and over. `fuse` merges
//! adjacent conditionals with (syntactically) equal guards — effective
//! because scheduling places similarly clocked equations together.
//!
//! The first `zip` rule does **not** preserve semantics in general: if the
//! first branch writes a variable read by the shared guard, merging
//! changes the second test. Soundness holds under the [`fusible`]
//! predicate — no `if` writes the free variables of its own guard in
//! either branch — which the paper proves of all translated code via a
//! "subtle technical argument about well-formed clocks"; here it is an
//! executable check (asserted by the validation harness) and a property
//! test.

use velus_ops::Ops;

use crate::ast::{Class, Method, ObcExpr, ObcProgram, Stmt};

/// The `zip` function of Fig. 8: iteratively integrates statements of the
/// second argument into the first, merging equal-guard conditionals.
pub fn zip<O: Ops>(s: Stmt<O>, t: Stmt<O>) -> Stmt<O> {
    match (s, t) {
        (Stmt::If(e1, t1, f1), Stmt::If(e2, t2, f2)) if e1 == e2 => {
            Stmt::If(e1, Box::new(zip(*t1, *t2)), Box::new(zip(*f1, *f2)))
        }
        (Stmt::Seq(s1, s2), t) => Stmt::Seq(s1, Box::new(zip(*s2, t))),
        (s, Stmt::Seq(t1, t2)) => zip(zip(s, *t1), *t2),
        (s, Stmt::Skip) => s,
        (Stmt::Skip, t) => t,
        (s, t) => Stmt::Seq(Box::new(s), Box::new(t)),
    }
}

/// The `fuse` function: splits a sequential composition in two and zips.
pub fn fuse<O: Ops>(s: Stmt<O>) -> Stmt<O> {
    match s {
        Stmt::Seq(s1, s2) => zip(*s1, *s2),
        s => s,
    }
}

/// Appends the free variables of a guard, locals and state cells alike
/// (the `MayWrite` check treats `x` and `state(x)` uniformly, as in the
/// paper), to the scratch buffer.
fn guard_vars_into<O: Ops>(e: &ObcExpr<O>, out: &mut Vec<velus_common::Ident>) {
    e.free_vars_into(out);
    e.state_vars_into(out);
}

/// The `Fusible` predicate: conditionals never write the free variables of
/// their own guards.
pub fn fusible<O: Ops>(s: &Stmt<O>) -> bool {
    // One scratch buffer serves every guard of the statement tree; the
    // predicate runs after translation *and* after fusion on every
    // method, so its allocations used to show up in cold compiles.
    let mut scratch = Vec::new();
    fusible_rec(s, &mut scratch)
}

fn fusible_rec<O: Ops>(s: &Stmt<O>, scratch: &mut Vec<velus_common::Ident>) -> bool {
    match s {
        Stmt::Skip | Stmt::Assign(..) | Stmt::AssignSt(..) | Stmt::Call { .. } => true,
        Stmt::Seq(a, b) => fusible_rec(a, scratch) && fusible_rec(b, scratch),
        Stmt::If(e, t, f) => {
            if !fusible_rec(t, scratch) || !fusible_rec(f, scratch) {
                return false;
            }
            scratch.clear();
            guard_vars_into(e, scratch);
            scratch.iter().all(|&x| !t.may_write(x) && !f.may_write(x))
        }
    }
}

/// Fuses the bodies of every method of a class.
pub fn fuse_class<O: Ops>(class: &Class<O>) -> Class<O> {
    Class {
        name: class.name,
        memories: class.memories.clone(),
        instances: class.instances.clone(),
        methods: class
            .methods
            .iter()
            .map(|m| Method {
                name: m.name,
                inputs: m.inputs.clone(),
                outputs: m.outputs.clone(),
                locals: m.locals.clone(),
                body: fuse(m.body.clone()),
            })
            .collect(),
    }
}

/// Fuses a whole program.
pub fn fuse_program<O: Ops>(prog: &ObcProgram<O>) -> ObcProgram<O> {
    ObcProgram {
        classes: prog.classes.iter().map(fuse_class).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sem::{eval_expr, exec_stmt, VEnv};
    use velus_common::Ident;
    use velus_nlustre::memory::Memory;
    use velus_ops::{CConst, CTy, CVal, ClightOps};

    type S = Stmt<ClightOps>;
    type E = ObcExpr<ClightOps>;

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    fn guard(x: &str) -> E {
        ObcExpr::Var(id(x), CTy::Bool)
    }

    fn assign(x: &str, v: i32) -> S {
        Stmt::Assign(id(x), ObcExpr::Const(CConst::int(v)))
    }

    fn iff(x: &str, t: S, f: S) -> S {
        Stmt::If(guard(x), Box::new(t), Box::new(f))
    }

    #[test]
    fn adjacent_equal_guards_merge() {
        // if x { a := 1 }; if x { b := 2 }  ==>  if x { a := 1; b := 2 }
        let s = S::seq(
            iff("x", assign("a", 1), Stmt::Skip),
            iff("x", assign("b", 2), Stmt::Skip),
        );
        let fused = fuse(s);
        match &fused {
            Stmt::If(_, t, f) => {
                assert_eq!(t.size(), 2);
                assert_eq!(**f, Stmt::Skip);
            }
            other => panic!("expected a single if, got {other}"),
        }
    }

    #[test]
    fn tracker_shape_from_the_paper() {
        // The §3.3 example: two ifs on x and a trailing state update fuse
        // into one if plus the update.
        let s = S::seq_all(vec![
            iff("x", assign("c", 1), Stmt::Skip),
            iff(
                "x",
                assign("t", 2),
                Stmt::Assign(id("t"), ObcExpr::State(id("pt"), CTy::I32)),
            ),
            Stmt::AssignSt(id("pt"), ObcExpr::Var(id("t"), CTy::I32)),
        ]);
        let fused = fuse(s);
        // One if remains, followed by the state update.
        let text = fused.to_string();
        assert_eq!(text.matches("if x {").count(), 1, "{text}");
        assert!(text.contains("state(pt) := t;"), "{text}");
    }

    #[test]
    fn different_guards_do_not_merge() {
        let s = S::seq(
            iff("x", assign("a", 1), Stmt::Skip),
            iff("y", assign("b", 2), Stmt::Skip),
        );
        let fused = fuse(s.clone());
        assert_eq!(fused.to_string().matches("if ").count(), 2);
    }

    #[test]
    fn fusible_rejects_guard_writers() {
        // The paper's footnote 8: (if x then x := false else x := true); if x …
        let s = iff(
            "x",
            Stmt::Assign(id("x"), ObcExpr::Const(CConst::bool(false))),
            Stmt::Assign(id("x"), ObcExpr::Const(CConst::bool(true))),
        );
        assert!(!fusible(&s));
        let ok = iff("x", assign("a", 1), Stmt::Skip);
        assert!(fusible(&ok));
    }

    /// Runs a statement from a fixed initial environment and returns the
    /// final (mem, env).
    fn run(s: &S, x: bool) -> (Memory<CVal>, VEnv<ClightOps>) {
        let prog = ObcProgram::default();
        let mut mem: Memory<CVal> = Memory::new();
        mem.set_value(id("pt"), CVal::int(9));
        let mut env: VEnv<ClightOps> = VEnv::<ClightOps>::default();
        env.insert(id("x"), CVal::bool(x));
        exec_stmt(&prog, &mut mem, &mut env, s).unwrap();
        (mem, env)
    }

    #[test]
    fn fuse_preserves_semantics_on_fusible_code() {
        let s = S::seq_all(vec![
            iff("x", assign("c", 1), Stmt::Skip),
            iff(
                "x",
                assign("t", 2),
                Stmt::Assign(id("t"), ObcExpr::State(id("pt"), CTy::I32)),
            ),
            Stmt::AssignSt(id("pt"), ObcExpr::Var(id("t"), CTy::I32)),
        ]);
        assert!(fusible(&s));
        let fused = fuse(s.clone());
        assert!(fusible(&fused));
        for x in [true, false] {
            let (m1, e1) = run(&s, x);
            let (m2, e2) = run(&fused, x);
            assert_eq!(m1, m2);
            assert_eq!(e1, e2);
        }
    }

    #[test]
    fn footnote8_shows_zip_unsound_without_fusible() {
        // (if x { x := false } else { x := true }); if x { a := 1 } else { a := 2 }
        let s1 = iff(
            "x",
            Stmt::Assign(id("x"), ObcExpr::Const(CConst::bool(false))),
            Stmt::Assign(id("x"), ObcExpr::Const(CConst::bool(true))),
        );
        let s2 = iff("x", assign("a", 1), assign("a", 2));
        let whole = S::seq(s1, s2);
        assert!(!fusible(&whole));
        let fused = fuse(whole.clone());
        // Semantics differ when x starts true: original sets a := 2
        // (x was flipped), fused sets a := 1.
        let (_, e1) = run(&whole, true);
        let (_, e2) = run(&fused, true);
        assert_ne!(e1.get(&id("a")), e2.get(&id("a")));
    }

    #[test]
    fn zip_eliminates_skips() {
        let a = assign("a", 1);
        assert_eq!(zip::<ClightOps>(Stmt::Skip, a.clone()), a);
        assert_eq!(zip::<ClightOps>(a.clone(), Stmt::Skip), a);
    }

    #[test]
    fn eval_guard_sanity() {
        // Keep eval_expr in the public API exercised from this module.
        let mem: Memory<CVal> = Memory::new();
        let mut env: VEnv<ClightOps> = VEnv::<ClightOps>::default();
        env.insert(id("x"), CVal::bool(true));
        assert_eq!(
            eval_expr::<ClightOps>(&mem, &env, &guard("x")).unwrap(),
            CVal::TRUE
        );
    }
}
