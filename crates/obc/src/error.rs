//! Errors of the Obc layer.

use std::fmt;

use velus_common::{codes, Code, Diagnostic, Diagnostics, Ident, Span, SpanMap, ToDiagnostics};

/// Errors raised by the Obc semantics, translation and checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObcError {
    /// A local variable was read before being assigned.
    UnboundVariable(Ident),
    /// A state variable was read but has no memory cell.
    UnboundState(Ident),
    /// A class name could not be resolved.
    UnknownClass(Ident),
    /// A method name could not be resolved in a class.
    UnknownMethod(Ident, Ident),
    /// An operator was applied outside its domain.
    UndefinedOperation(String),
    /// Arity mismatch in a method call.
    ArityMismatch(String),
    /// A typing violation.
    TypeError(String),
    /// A structural violation (duplicate names, fby-defined outputs, …).
    Malformed(String),
    /// `MemCorres` failed between the semantic memory and the run-time one.
    MemCorres(String),
}

impl fmt::Display for ObcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObcError::UnboundVariable(x) => write!(f, "unbound variable {x}"),
            ObcError::UnboundState(x) => write!(f, "unbound state variable {x}"),
            ObcError::UnknownClass(c) => write!(f, "unknown class {c}"),
            ObcError::UnknownMethod(c, m) => write!(f, "unknown method {c}.{m}"),
            ObcError::UndefinedOperation(m) => write!(f, "undefined operation: {m}"),
            ObcError::ArityMismatch(m) => write!(f, "arity mismatch: {m}"),
            ObcError::TypeError(m) => write!(f, "type error: {m}"),
            ObcError::Malformed(m) => write!(f, "malformed program: {m}"),
            ObcError::MemCorres(m) => write!(f, "memory correspondence violated: {m}"),
        }
    }
}

impl ObcError {
    /// The stable diagnostic code of the error.
    pub fn code(&self) -> Code {
        match self {
            ObcError::UnboundVariable(_) => codes::E0501,
            ObcError::UnboundState(_) => codes::E0502,
            ObcError::UnknownClass(_) => codes::E0503,
            ObcError::UnknownMethod(..) => codes::E0504,
            ObcError::UndefinedOperation(_) => codes::E0505,
            ObcError::ArityMismatch(_) => codes::E0506,
            ObcError::TypeError(_) => codes::E0507,
            ObcError::Malformed(_) => codes::E0508,
            ObcError::MemCorres(_) => codes::E0509,
        }
    }
}

impl ToDiagnostics for ObcError {
    /// Obc classes are translated nodes and Obc variables keep their
    /// N-Lustre names, so identifier-carrying errors resolve spans
    /// through the same `SpanMap` the elaborator recorded.
    fn to_diagnostics(&self, spans: &SpanMap) -> Diagnostics {
        let span = match self {
            ObcError::UnboundVariable(x) | ObcError::UnboundState(x) => spans.var_span(None, *x),
            ObcError::UnknownClass(c) => spans.node_span(*c),
            ObcError::UnknownMethod(c, _) => spans.node_span(*c),
            _ => Span::DUMMY,
        };
        Diagnostics::from(Diagnostic::error(self.code(), self.to_string(), span))
    }
}

impl std::error::Error for ObcError {}
