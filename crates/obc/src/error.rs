//! Errors of the Obc layer.

use std::fmt;

use velus_common::Ident;

/// Errors raised by the Obc semantics, translation and checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObcError {
    /// A local variable was read before being assigned.
    UnboundVariable(Ident),
    /// A state variable was read but has no memory cell.
    UnboundState(Ident),
    /// A class name could not be resolved.
    UnknownClass(Ident),
    /// A method name could not be resolved in a class.
    UnknownMethod(Ident, Ident),
    /// An operator was applied outside its domain.
    UndefinedOperation(String),
    /// Arity mismatch in a method call.
    ArityMismatch(String),
    /// A typing violation.
    TypeError(String),
    /// A structural violation (duplicate names, fby-defined outputs, …).
    Malformed(String),
    /// `MemCorres` failed between the semantic memory and the run-time one.
    MemCorres(String),
}

impl fmt::Display for ObcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObcError::UnboundVariable(x) => write!(f, "unbound variable {x}"),
            ObcError::UnboundState(x) => write!(f, "unbound state variable {x}"),
            ObcError::UnknownClass(c) => write!(f, "unknown class {c}"),
            ObcError::UnknownMethod(c, m) => write!(f, "unknown method {c}.{m}"),
            ObcError::UndefinedOperation(m) => write!(f, "undefined operation: {m}"),
            ObcError::ArityMismatch(m) => write!(f, "arity mismatch: {m}"),
            ObcError::TypeError(m) => write!(f, "type error: {m}"),
            ObcError::Malformed(m) => write!(f, "malformed program: {m}"),
            ObcError::MemCorres(m) => write!(f, "memory correspondence violated: {m}"),
        }
    }
}

impl std::error::Error for ObcError {}
