//! Big-step semantics of Obc (§3.1).
//!
//! Statements relate pairs of memory environments: a *local* memory `env`
//! (a stack frame mapping variable names to values) and a *global* memory
//! `mem` — the recursive tree of §3.1 with a cell per `fby` and a
//! sub-memory per instance. A method call executes the callee's body
//! against the sub-memory retrieved from `mem.instances` and a fresh local
//! environment binding the inputs, then copies the outputs back.
//!
//! Obc programs cannot diverge by construction (no loops); the only
//! failures are unbound reads and undefined operator applications, which
//! the paper rules out via scheduling, `MemCorres`, and the existence of
//! the dataflow semantics. Here they surface as [`ObcError`]s.

use velus_common::{Ident, IdentMap};
use velus_nlustre::memory::Memory;
use velus_ops::Ops;

use crate::ast::{Class, Method, ObcExpr, ObcProgram, Stmt};
use crate::ObcError;

/// A local environment (stack frame).
pub type VEnv<O> = IdentMap<<O as Ops>::Val>;

/// Evaluates an expression against a global memory and a local
/// environment.
///
/// # Errors
///
/// Unbound variables/state cells and undefined operator applications.
pub fn eval_expr<O: Ops>(
    mem: &Memory<O::Val>,
    env: &VEnv<O>,
    e: &ObcExpr<O>,
) -> Result<O::Val, ObcError> {
    match e {
        ObcExpr::Var(x, _) => env.get(x).cloned().ok_or(ObcError::UnboundVariable(*x)),
        ObcExpr::State(x, _) => mem.value(*x).cloned().ok_or(ObcError::UnboundState(*x)),
        ObcExpr::Const(c) => Ok(O::sem_const(c)),
        ObcExpr::Unop(op, e1, _) => {
            let v = eval_expr::<O>(mem, env, e1)?;
            O::sem_unop(*op, &v, &e1.ty())
                .ok_or_else(|| ObcError::UndefinedOperation(format!("{op} {v}")))
        }
        ObcExpr::Binop(op, e1, e2, _) => {
            let v1 = eval_expr::<O>(mem, env, e1)?;
            let v2 = eval_expr::<O>(mem, env, e2)?;
            O::sem_binop(*op, &v1, &e1.ty(), &v2, &e2.ty())
                .ok_or_else(|| ObcError::UndefinedOperation(format!("{v1} {op} {v2}")))
        }
    }
}

/// Executes a statement, updating `mem` and `env` in place (the big-step
/// relation `mem, env ⊢st s ⇓ mem', env'` in destination-passing style).
///
/// # Errors
///
/// See [`eval_expr`]; method calls add unknown-class/method and arity
/// errors.
pub fn exec_stmt<O: Ops>(
    prog: &ObcProgram<O>,
    mem: &mut Memory<O::Val>,
    env: &mut VEnv<O>,
    s: &Stmt<O>,
) -> Result<(), ObcError> {
    match s {
        Stmt::Skip => Ok(()),
        Stmt::Seq(a, b) => {
            exec_stmt(prog, mem, env, a)?;
            exec_stmt(prog, mem, env, b)
        }
        Stmt::Assign(x, e) => {
            let v = eval_expr::<O>(mem, env, e)?;
            env.insert(*x, v);
            Ok(())
        }
        Stmt::AssignSt(x, e) => {
            let v = eval_expr::<O>(mem, env, e)?;
            mem.set_value(*x, v);
            Ok(())
        }
        Stmt::If(c, t, f) => {
            let v = eval_expr::<O>(mem, env, c)?;
            match O::as_bool(&v) {
                Some(true) => exec_stmt(prog, mem, env, t),
                Some(false) => exec_stmt(prog, mem, env, f),
                None => Err(ObcError::TypeError(format!("guard evaluated to {v}"))),
            }
        }
        Stmt::Call {
            results,
            class,
            instance,
            method,
            args,
        } => {
            let vals: Vec<O::Val> = args
                .iter()
                .map(|a| eval_expr::<O>(mem, env, a))
                .collect::<Result<_, _>>()?;
            let sub = mem.instance_mut(*instance);
            let outs = call_method(prog, *class, sub, *method, &vals)?;
            if outs.len() != results.len() {
                return Err(ObcError::ArityMismatch(format!(
                    "call to {class}.{method}: {} results bound to {} variables",
                    outs.len(),
                    results.len()
                )));
            }
            for (x, v) in results.iter().zip(outs) {
                env.insert(*x, v);
            }
            Ok(())
        }
    }
}

/// Invokes `class.method` against an instance memory, returning the output
/// values. This is the semantic judgment for method calls, also used by
/// the top-level driver (`reset()` then repeated `step(inputs)`).
///
/// # Errors
///
/// See [`exec_stmt`].
pub fn call_method<O: Ops>(
    prog: &ObcProgram<O>,
    class: Ident,
    mem: &mut Memory<O::Val>,
    method: Ident,
    args: &[O::Val],
) -> Result<Vec<O::Val>, ObcError> {
    let cls: &Class<O> = prog.class(class).ok_or(ObcError::UnknownClass(class))?;
    let m: &Method<O> = cls
        .method(method)
        .ok_or(ObcError::UnknownMethod(class, method))?;
    if args.len() != m.inputs.len() {
        return Err(ObcError::ArityMismatch(format!(
            "{class}.{method}: {} arguments for {} parameters",
            args.len(),
            m.inputs.len()
        )));
    }
    let mut env: VEnv<O> = VEnv::<O>::default();
    for ((x, ty), v) in m.inputs.iter().zip(args) {
        if !O::well_typed(v, ty) {
            return Err(ObcError::TypeError(format!(
                "{class}.{method}: argument {v} for {x} is not of type {ty}"
            )));
        }
        env.insert(*x, v.clone());
    }
    exec_stmt(prog, mem, &mut env, &m.body)?;
    m.outputs
        .iter()
        .map(|(x, _)| env.get(x).cloned().ok_or(ObcError::UnboundVariable(*x)))
        .collect()
}

/// A convenience driver for a translated class: `reset()` once, then
/// `step(inputs[n])` for each instant, collecting outputs.
///
/// Instants where `inputs[n]` is `None` model an inactive base clock
/// (absent inputs): the step method is not called and the outputs are
/// absent, matching the dataflow model where a node does nothing when its
/// inputs are absent.
///
/// # Errors
///
/// See [`call_method`].
pub fn run_class<O: Ops>(
    prog: &ObcProgram<O>,
    class: Ident,
    inputs: &[Option<Vec<O::Val>>],
) -> Result<Vec<Option<Vec<O::Val>>>, ObcError> {
    let mut mem = Memory::new();
    call_method(prog, class, &mut mem, crate::ast::reset_name(), &[])?;
    let mut outs = Vec::with_capacity(inputs.len());
    for ins in inputs {
        match ins {
            Some(vals) => {
                let o = call_method(prog, class, &mut mem, crate::ast::step_name(), vals)?;
                outs.push(Some(o));
            }
            None => outs.push(None),
        }
    }
    Ok(outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{reset_name, step_name};
    use velus_ops::{CBinOp, CConst, CTy, CVal, ClightOps};

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    /// class counter { memory c: int;
    ///   (n: int) step(inc: int) { n := state(c) + inc; state(c) := n }
    ///   () reset() { state(c) := 0 } }
    fn counter_class() -> ObcProgram<ClightOps> {
        let n = id("n");
        let c = id("c");
        let inc = id("inc");
        let step = Method {
            name: step_name(),
            inputs: vec![(inc, CTy::I32)],
            outputs: vec![(n, CTy::I32)],
            locals: vec![],
            body: Stmt::seq(
                Stmt::Assign(
                    n,
                    ObcExpr::Binop(
                        CBinOp::Add,
                        Box::new(ObcExpr::State(c, CTy::I32)),
                        Box::new(ObcExpr::Var(inc, CTy::I32)),
                        CTy::I32,
                    ),
                ),
                Stmt::AssignSt(c, ObcExpr::Var(n, CTy::I32)),
            ),
        };
        let reset = Method {
            name: reset_name(),
            inputs: vec![],
            outputs: vec![],
            locals: vec![],
            body: Stmt::AssignSt(c, ObcExpr::Const(CConst::int(0))),
        };
        ObcProgram {
            classes: vec![Class {
                name: id("counter"),
                memories: vec![(c, CTy::I32)],
                instances: vec![],
                methods: vec![step, reset],
            }],
        }
    }

    #[test]
    fn reset_then_steps() {
        let prog = counter_class();
        let inputs: Vec<Option<Vec<CVal>>> = vec![
            Some(vec![CVal::int(1)]),
            Some(vec![CVal::int(2)]),
            Some(vec![CVal::int(3)]),
        ];
        let outs = run_class(&prog, id("counter"), &inputs).unwrap();
        let vals: Vec<i32> = outs
            .iter()
            .map(|o| match o.as_ref().unwrap()[0] {
                CVal::Int(i) => i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(vals, vec![1, 3, 6]);
    }

    #[test]
    fn absent_instants_freeze_the_state() {
        let prog = counter_class();
        let inputs: Vec<Option<Vec<CVal>>> =
            vec![Some(vec![CVal::int(5)]), None, Some(vec![CVal::int(5)])];
        let outs = run_class(&prog, id("counter"), &inputs).unwrap();
        assert!(outs[1].is_none());
        assert_eq!(outs[2].as_ref().unwrap()[0], CVal::int(10));
    }

    #[test]
    fn unbound_reads_are_reported() {
        let prog = counter_class();
        let mut mem = Memory::new();
        // step before reset: state(c) is unbound.
        let err =
            call_method(&prog, id("counter"), &mut mem, step_name(), &[CVal::int(1)]).unwrap_err();
        assert_eq!(err, ObcError::UnboundState(id("c")));
    }

    #[test]
    fn nested_instances_update_their_own_memory() {
        // class pair { instance a: counter; instance b: counter;
        //   (x: int, y: int) step(i: int) { x := a.step(i); y := b.step(x) } }
        let mut prog = counter_class();
        let x = id("x");
        let y = id("y");
        let i = id("i");
        prog.classes.push(Class {
            name: id("pair"),
            memories: vec![],
            instances: vec![(id("a"), id("counter")), (id("b"), id("counter"))],
            methods: vec![
                Method {
                    name: step_name(),
                    inputs: vec![(i, CTy::I32)],
                    outputs: vec![(x, CTy::I32), (y, CTy::I32)],
                    locals: vec![],
                    body: Stmt::seq(
                        Stmt::Call {
                            results: vec![x],
                            class: id("counter"),
                            instance: id("a"),
                            method: step_name(),
                            args: vec![ObcExpr::Var(i, CTy::I32)],
                        },
                        Stmt::Call {
                            results: vec![y],
                            class: id("counter"),
                            instance: id("b"),
                            method: step_name(),
                            args: vec![ObcExpr::Var(x, CTy::I32)],
                        },
                    ),
                },
                Method {
                    name: reset_name(),
                    inputs: vec![],
                    outputs: vec![],
                    locals: vec![],
                    body: Stmt::seq(
                        Stmt::Call {
                            results: vec![],
                            class: id("counter"),
                            instance: id("a"),
                            method: reset_name(),
                            args: vec![],
                        },
                        Stmt::Call {
                            results: vec![],
                            class: id("counter"),
                            instance: id("b"),
                            method: reset_name(),
                            args: vec![],
                        },
                    ),
                },
            ],
        });
        let inputs: Vec<Option<Vec<CVal>>> = (0..3).map(|_| Some(vec![CVal::int(1)])).collect();
        let outs = run_class(&prog, id("pair"), &inputs).unwrap();
        let last = outs[2].as_ref().unwrap();
        // a counts 1,2,3; b accumulates a: 1, 3, 6.
        assert_eq!(last[0], CVal::int(3));
        assert_eq!(last[1], CVal::int(6));
    }

    #[test]
    fn type_checked_arguments() {
        let prog = counter_class();
        let mut mem = Memory::new();
        call_method(&prog, id("counter"), &mut mem, reset_name(), &[]).unwrap();
        let err = call_method(
            &prog,
            id("counter"),
            &mut mem,
            step_name(),
            &[CVal::float(1.0)],
        )
        .unwrap_err();
        assert!(matches!(err, ObcError::TypeError(_)));
    }
}
