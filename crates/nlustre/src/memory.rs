//! The recursive memory tree `memory V` of §3.1.
//!
//! > `memory V ≜ { values : ident ⇀ V; instances : ident ⇀ memory V }`
//!
//! The memory of a program compiled from SN-Lustre reflects the tree of
//! nodes in the source: an entry in `values` for each `fby`, an entry in
//! `instances` for each node call. The same structure is used
//!
//! * with `V = O::Val` as the run-time state of the Obc interpreter, and
//! * with `V = Vec<O::Val>` (streams) as the exposed memory `M` of the
//!   intermediate semantic model (§3.2).

use std::collections::BTreeMap;
use std::fmt;

use velus_common::Ident;

/// A tree-shaped memory, parameterized by the domain of stored values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Memory<V> {
    /// Named scalar cells (one per `fby` in the corresponding node).
    pub values: BTreeMap<Ident, V>,
    /// Named sub-memories (one per node instantiation).
    pub instances: BTreeMap<Ident, Memory<V>>,
}

impl<V> Memory<V> {
    /// An empty memory.
    pub fn new() -> Memory<V> {
        Memory {
            values: BTreeMap::new(),
            instances: BTreeMap::new(),
        }
    }

    /// Reads a scalar cell.
    pub fn value(&self, x: Ident) -> Option<&V> {
        self.values.get(&x)
    }

    /// Writes a scalar cell.
    pub fn set_value(&mut self, x: Ident, v: V) {
        self.values.insert(x, v);
    }

    /// Accesses a sub-memory.
    pub fn instance(&self, i: Ident) -> Option<&Memory<V>> {
        self.instances.get(&i)
    }

    /// Mutable access to a sub-memory, creating it if absent.
    pub fn instance_mut(&mut self, i: Ident) -> &mut Memory<V> {
        self.instances.entry(i).or_insert_with(Memory::new)
    }

    /// Total number of scalar cells in the whole tree.
    pub fn total_cells(&self) -> usize {
        self.values.len()
            + self
                .instances
                .values()
                .map(Memory::total_cells)
                .sum::<usize>()
    }

    /// Maps every value in the tree, preserving the structure.
    pub fn map<W>(&self, f: &mut impl FnMut(&V) -> W) -> Memory<W> {
        Memory {
            values: self.values.iter().map(|(k, v)| (*k, f(v))).collect(),
            instances: self.instances.iter().map(|(k, m)| (*k, m.map(f))).collect(),
        }
    }
}

impl<V: fmt::Display> fmt::Display for Memory<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (k, v) in &self.values {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{k} = {v}")?;
        }
        for (k, m) in &self.instances {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{k}: {m}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_structure() {
        let mut m: Memory<i32> = Memory::new();
        m.set_value(Ident::new("pt"), 7);
        m.instance_mut(Ident::new("s"))
            .set_value(Ident::new("c"), 1);
        assert_eq!(m.value(Ident::new("pt")), Some(&7));
        assert_eq!(
            m.instance(Ident::new("s")).unwrap().value(Ident::new("c")),
            Some(&1)
        );
        assert_eq!(m.total_cells(), 2);
    }

    #[test]
    fn map_preserves_shape() {
        let mut m: Memory<i32> = Memory::new();
        m.set_value(Ident::new("a"), 2);
        m.instance_mut(Ident::new("i"))
            .set_value(Ident::new("b"), 3);
        let doubled = m.map(&mut |v| v * 2);
        assert_eq!(doubled.value(Ident::new("a")), Some(&4));
        assert_eq!(
            doubled
                .instance(Ident::new("i"))
                .unwrap()
                .value(Ident::new("b")),
            Some(&6)
        );
    }

    #[test]
    fn display_is_nonempty() {
        let m: Memory<i32> = Memory::new();
        assert_eq!(m.to_string(), "{}");
    }
}
