//! The N-Lustre / SN-Lustre intermediate representation and its semantic
//! models (PLDI'17 §2.2, §3.1, §3.2).
//!
//! This crate is the dataflow half of the Vélus reproduction:
//!
//! * [`ast`] — the abstract syntax of Fig. 2. The normal form is encoded
//!   in the types: expressions ([`ast::Expr`]), control expressions
//!   ([`ast::CExpr`]) and the three equation shapes ([`ast::Equation`]).
//! * [`clock`] — the hierarchical clocks `base`, `ck on x`, `ck onot x`.
//! * [`streams`] — stream values with explicit presence and absence.
//! * [`typecheck`] / [`clockcheck`] — the well-typedness and
//!   well-clockedness judgments, checked independently after every pass.
//! * [`dataflow`] — the reference *dataflow semantics*: a demand-driven,
//!   memoized interpreter of the judgment `G ⊢node f(xs, ys)`, with
//!   `fby#`/`hold#` exactly as in Fig. 6, and runtime causality detection.
//! * [`msem`] — the intermediate *semantics with exposed memories*
//!   `G ⊢mnode f(xs, M, ys)` (§3.2): an instant-by-instant evaluator that
//!   materializes the memory tree `M`, bridging dataflow and imperative
//!   models.
//! * [`deps`] / [`schedule`] — the dependency analysis and the scheduling
//!   pass (heuristic + independent validator, mirroring the paper's
//!   OCaml-scheduler-with-Coq-checker architecture).
//! * [`memory`] — the recursive memory tree `memory V` of §3.1, shared
//!   with the Obc crate.
//!
//! Everything is parametric in the operator interface
//! ([`velus_ops::Ops`]), as in the paper.

pub mod ast;
pub mod clock;
pub mod clockcheck;
pub mod dataflow;
pub mod deps;
pub mod memory;
pub mod msem;
pub mod schedule;
pub mod streams;
pub mod typecheck;

mod error;

pub use error::SemError;
