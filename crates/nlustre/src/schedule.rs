//! The scheduling pass: N-Lustre → SN-Lustre.
//!
//! The paper implements scheduling as an untrusted OCaml heuristic whose
//! output is validated by a Coq-verified checker (§2.1). We keep that
//! architecture: [`schedule_node`] is a heuristic, and every caller
//! re-validates the result with [`crate::deps::check_schedule`].
//!
//! The heuristic is a Kahn topological sort that *prefers to keep
//! equations of equal clocks adjacent*. This is the property that makes
//! the later fusion optimization effective — "scheduling places similarly
//! clocked equations together" (§3.3) — and it is why, on the benchmarks
//! with the deepest clock nesting, the schedule coincides with the one
//! Heptagon finds (§5).

use std::collections::VecDeque;

use velus_ops::Ops;

use crate::ast::{Equation, Node, Program};
use crate::deps::{check_schedule, cycle_witness, dep_graph};
use crate::SemError;

/// Schedules the equations of one node. Returns the new equation order as
/// indices into the original list.
///
/// # Errors
///
/// [`SemError::SchedulingCycle`] when the dependency graph is cyclic.
pub fn schedule_order<O: Ops>(node: &Node<O>) -> Result<Vec<usize>, SemError> {
    let graph = dep_graph(node);
    let n = graph.len();
    let mut preds = graph.preds.clone();
    // Ready equations, grouped to allow clock-affine picking.
    let mut ready: VecDeque<usize> = (0..n).filter(|&i| preds[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    // The previously picked equation (its clock is read through the
    // node, so no per-step `Clock` clone is needed).
    let mut last: Option<usize> = None;

    while !ready.is_empty() {
        // Prefer an equation on the same clock as the previous one; fall
        // back to the earliest ready equation (stable order).
        let pick_pos = last
            .and_then(|p| {
                let ck = node.eqs[p].clock();
                ready.iter().position(|&i| node.eqs[i].clock() == ck)
            })
            .unwrap_or(0);
        let i = ready.remove(pick_pos).expect("position is in range");
        last = Some(i);
        order.push(i);
        for &j in &graph.succs[i] {
            preds[j] -= 1;
            if preds[j] == 0 {
                ready.push_back(j);
            }
        }
    }
    if order.len() != n {
        return Err(SemError::SchedulingCycle(
            node.name,
            cycle_witness(node, &graph),
        ));
    }
    Ok(order)
}

/// Schedules a node in place (reorders its equations) and validates the
/// result with the independent checker.
///
/// # Errors
///
/// [`SemError::SchedulingCycle`] on causality cycles; [`SemError::BadSchedule`]
/// if (impossibly, absent bugs) the heuristic produced an invalid order —
/// the untrusted-scheduler/validated-checker split of the paper.
pub fn schedule_node<O: Ops>(node: &mut Node<O>) -> Result<(), SemError> {
    let order = schedule_order(node)?;
    // Apply the permutation by moving the equations, not deep-cloning
    // them (an equation owns its whole expression tree).
    let mut slots: Vec<Option<Equation<O>>> = std::mem::take(&mut node.eqs)
        .into_iter()
        .map(Some)
        .collect();
    node.eqs = order
        .iter()
        .map(|&i| slots[i].take().expect("order is a permutation"))
        .collect();
    check_schedule(node)
}

/// Schedules every node of a program, validating each schedule.
///
/// # Errors
///
/// See [`schedule_node`].
pub fn schedule_program<O: Ops>(prog: &mut Program<O>) -> Result<(), SemError> {
    for node in &mut prog.nodes {
        schedule_node(node)?;
    }
    Ok(())
}

/// Counts the clock discontinuities of a schedule: the number of adjacent
/// equation pairs with different clocks. Lower is better for fusion; used
/// by the schedule-quality experiment (§5).
pub fn clock_switches<O: Ops>(node: &Node<O>) -> usize {
    node.eqs
        .windows(2)
        .filter(|w| w[0].clock() != w[1].clock())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CExpr, Expr, VarDecl};
    use crate::clock::Clock;
    use velus_common::Ident;
    use velus_ops::{CConst, CTy, ClightOps};

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    fn decl(name: &str, ty: CTy, ck: Clock) -> VarDecl<ClightOps> {
        VarDecl {
            name: id(name),
            ty,
            ck,
        }
    }

    fn var(x: &str) -> Expr<ClightOps> {
        Expr::Var(id(x), CTy::I32)
    }

    /// A node with interleaved clocks, deliberately badly ordered.
    fn messy() -> Node<ClightOps> {
        let on_k = Clock::Base.on(id("k"), true);
        Node {
            name: id("messy"),
            inputs: vec![
                decl("k", CTy::Bool, Clock::Base),
                decl("x", CTy::I32, Clock::Base),
            ],
            outputs: vec![decl("o", CTy::I32, Clock::Base)],
            locals: vec![
                decl("a", CTy::I32, on_k.clone()),
                decl("b", CTy::I32, on_k.clone()),
                decl("c", CTy::I32, Clock::Base),
            ],
            eqs: vec![
                // o = c + x        (base)   — reads c
                Equation::Def {
                    x: id("o"),
                    ck: Clock::Base,
                    rhs: CExpr::Expr(Expr::Binop(
                        velus_ops::CBinOp::Add,
                        Box::new(var("c")),
                        Box::new(var("x")),
                        CTy::I32,
                    )),
                },
                // a = x when k     (on k)
                Equation::Def {
                    x: id("a"),
                    ck: on_k.clone(),
                    rhs: CExpr::Expr(Expr::When(Box::new(var("x")), id("k"), true)),
                },
                // c = 0 fby (c+x)  (base)   — written after all readers
                Equation::Fby {
                    x: id("c"),
                    ck: Clock::Base,
                    init: CConst::int(0),
                    rhs: Expr::Binop(
                        velus_ops::CBinOp::Add,
                        Box::new(var("c")),
                        Box::new(var("x")),
                        CTy::I32,
                    ),
                },
                // b = a            (on k)   — reads a
                Equation::Def {
                    x: id("b"),
                    ck: on_k,
                    rhs: CExpr::Expr(var("a")),
                },
            ],
        }
    }

    #[test]
    fn schedule_is_valid_and_groups_clocks() {
        let mut node = messy();
        schedule_node(&mut node).unwrap();
        check_schedule(&node).unwrap();
        // Equal-clock equations end up adjacent: at most 2 switches for
        // two clock groups, where the original order had 3.
        assert!(clock_switches(&node) <= 2, "schedule: {node}");
    }

    #[test]
    fn cycle_reported_with_witness() {
        let mut node = messy();
        // Introduce a = b to close an instantaneous cycle a -> b -> a.
        node.eqs[1] = Equation::Def {
            x: id("a"),
            ck: Clock::Base.on(id("k"), true),
            rhs: CExpr::Expr(var("b")),
        };
        let err = schedule_node(&mut node).unwrap_err();
        match err {
            SemError::SchedulingCycle(n, vars) => {
                assert_eq!(n, id("messy"));
                assert!(vars.contains(&id("a")) && vars.contains(&id("b")));
            }
            other => panic!("expected cycle, got {other}"),
        }
    }

    #[test]
    fn already_scheduled_nodes_are_stable() {
        let mut node = messy();
        schedule_node(&mut node).unwrap();
        let once = node.clone();
        schedule_node(&mut node).unwrap();
        assert_eq!(node, once);
    }
}
