//! Dependency analysis between the equations of a node.
//!
//! Scheduling (§2.1) sorts equations so that "variables must be written
//! before they are read, except those defined by fbys which must be read
//! before they are written with their next value". This module computes
//! the corresponding precedence graph:
//!
//! * if equation `e` reads `x` and `x` is defined by a `Def` or `Call`
//!   equation `d`, then `d` must run before `e` (write-before-read);
//! * if equation `e` (≠ the `fby` itself) reads `x` and `x` is defined by
//!   a `Fby` equation `d`, then `e` must run before `d` (the delayed
//!   value is read before the state cell is overwritten).
//!
//! Cycles in this graph are causality errors.

use velus_common::{DenseBitSet, Ident, IdentMap};
use velus_ops::Ops;

use crate::ast::{Equation, Node};
use crate::SemError;

/// The precedence graph of a node's equations: `succs[i]` lists the
/// equations that must run *after* equation `i`.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// Successor lists, indexed by equation.
    pub succs: Vec<Vec<usize>>,
    /// Predecessor counts, indexed by equation.
    pub preds: Vec<usize>,
}

impl DepGraph {
    /// Number of equations.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the graph has no equations.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }
}

/// Builds the precedence graph of `node`.
///
/// Reads of inputs and of variables not defined in the node impose no
/// constraints (undefined variables are caught by the type checker).
pub fn dep_graph<O: Ops>(node: &Node<O>) -> DepGraph {
    let n = node.eqs.len();
    let mut def_of: IdentMap<usize> = velus_common::ident_map_with_capacity(n);
    for (i, eq) in node.eqs.iter().enumerate() {
        for &x in eq.defined() {
            def_of.insert(x, i);
        }
    }
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut preds = vec![0usize; n];
    // Duplicate-edge suppression in two layers. A per-reader
    // seen-bitset over the definer index (O(n) memory, reset per
    // reader) collapses duplicate reads of the same variable to one
    // candidate edge — the case that degenerated with the old
    // O(out-degree) `succs[a].contains(&b)` scan per *read* on dense
    // graphs. The scan itself remains, but now runs once per distinct
    // (reader, definer) pair: it still catches the cross-reader
    // duplicate where a Def equation and the Fby it reads from produce
    // the same directed edge from both ends (`y = cum + x;
    // cum = 0 fby y` yields 0→1 twice).
    let mut seen = DenseBitSet::new();
    let mut reads: Vec<Ident> = Vec::new();
    for (i, eq) in node.eqs.iter().enumerate() {
        reads.clear();
        eq.reads_into(&mut reads);
        if reads.is_empty() {
            continue;
        }
        seen.reset(n);
        for x in &reads {
            if let Some(&d) = def_of.get(x) {
                if d != i && seen.insert(d) {
                    match &node.eqs[d] {
                        Equation::Fby { .. } => {
                            if !succs[i].contains(&d) {
                                succs[i].push(d);
                                preds[d] += 1;
                            }
                        }
                        _ => {
                            if !succs[d].contains(&i) {
                                succs[d].push(i);
                                preds[i] += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    DepGraph { succs, preds }
}

/// Extracts the variables on a dependency cycle, for error reporting.
pub fn cycle_witness<O: Ops>(node: &Node<O>, graph: &DepGraph) -> Vec<Ident> {
    // Kahn elimination; whatever remains is cyclic.
    let mut preds = graph.preds.clone();
    let mut stack: Vec<usize> = (0..graph.len()).filter(|&i| preds[i] == 0).collect();
    while let Some(i) = stack.pop() {
        for &j in &graph.succs[i] {
            preds[j] -= 1;
            if preds[j] == 0 {
                stack.push(j);
            }
        }
    }
    (0..graph.len())
        .filter(|&i| preds[i] > 0)
        .flat_map(|i| node.eqs[i].defined().iter().copied())
        .collect()
}

/// Checks that the equations, *in their current order*, satisfy every
/// precedence constraint: the executable schedule validator.
///
/// This plays the role of the paper's Coq-verified schedule checker — the
/// scheduling heuristic is untrusted, its output is validated.
///
/// # Errors
///
/// [`SemError::BadSchedule`] naming the offending variable.
pub fn check_schedule<O: Ops>(node: &Node<O>) -> Result<(), SemError> {
    let graph = dep_graph(node);
    for (i, ss) in graph.succs.iter().enumerate() {
        for &j in ss {
            if j <= i {
                let who = node.eqs[j].defined();
                return Err(SemError::BadSchedule(format!(
                    "in node {}: equation for {} must come after equation {}",
                    node.name,
                    who.first().map(|x| x.to_string()).unwrap_or_default(),
                    i
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CExpr, Expr, Program, VarDecl};
    use crate::clock::Clock;
    use velus_ops::{CConst, CTy, ClightOps};

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    fn decl(name: &str, ty: CTy) -> VarDecl<ClightOps> {
        VarDecl {
            name: id(name),
            ty,
            ck: Clock::Base,
        }
    }

    fn var(x: &str) -> Expr<ClightOps> {
        Expr::Var(id(x), CTy::I32)
    }

    /// y = cum + x ; cum = 0 fby y (well scheduled)
    fn two_eq_node(order: [usize; 2]) -> Node<ClightOps> {
        let eqs = [
            Equation::Def {
                x: id("y"),
                ck: Clock::Base,
                rhs: CExpr::Expr(Expr::Binop(
                    velus_ops::CBinOp::Add,
                    Box::new(var("cum")),
                    Box::new(var("x")),
                    CTy::I32,
                )),
            },
            Equation::Fby {
                x: id("cum"),
                ck: Clock::Base,
                init: CConst::int(0),
                rhs: var("y"),
            },
        ];
        Node {
            name: id("acc"),
            inputs: vec![decl("x", CTy::I32)],
            outputs: vec![decl("y", CTy::I32)],
            locals: vec![decl("cum", CTy::I32)],
            eqs: order.into_iter().map(|i| eqs[i].clone()).collect(),
        }
    }

    #[test]
    fn fby_readers_precede_the_fby() {
        let node = two_eq_node([0, 1]);
        assert_eq!(check_schedule(&node), Ok(()));
        let node = two_eq_node([1, 0]);
        assert!(matches!(
            check_schedule(&node),
            Err(SemError::BadSchedule(_))
        ));
    }

    #[test]
    fn graph_has_expected_edges() {
        let node = two_eq_node([0, 1]);
        let g = dep_graph(&node);
        // y's equation (0) must precede the fby (1): edge 0 -> 1 from the
        // fby reading y, and edge 0 -> 1 from y reading cum (fby).
        assert_eq!(g.succs[0], vec![1]);
        assert!(g.succs[1].is_empty());
    }

    #[test]
    fn dense_duplicate_reads_produce_unique_edges() {
        // The dense-graph regression for the seen-bitset: many equations
        // each reading the same variable many times. Every (def, reader)
        // pair must yield exactly one edge, and predecessor counts must
        // agree with the successor lists.
        let m = 40usize;
        let mut eqs: Vec<Equation<ClightOps>> = vec![Equation::Def {
            x: id("a"),
            ck: Clock::Base,
            rhs: CExpr::Expr(var("x")),
        }];
        for i in 0..m {
            // w_i = a + a + … + a  (nine duplicate reads of `a`).
            let mut rhs = var("a");
            for _ in 0..8 {
                rhs = Expr::Binop(
                    velus_ops::CBinOp::Add,
                    Box::new(rhs),
                    Box::new(var("a")),
                    CTy::I32,
                );
            }
            eqs.push(Equation::Def {
                x: id(&format!("w{i}")),
                ck: Clock::Base,
                rhs: CExpr::Expr(rhs),
            });
        }
        let node: Node<ClightOps> = Node {
            name: id("dense"),
            inputs: vec![decl("x", CTy::I32)],
            outputs: vec![decl("a", CTy::I32)],
            locals: (0..m).map(|i| decl(&format!("w{i}"), CTy::I32)).collect(),
            eqs,
        };
        let g = dep_graph(&node);
        // One edge from `a`'s equation to each reader, despite the nine
        // duplicate reads per equation.
        let mut succs = g.succs[0].clone();
        succs.sort_unstable();
        succs.dedup();
        assert_eq!(succs.len(), m, "duplicate edges survived deduplication");
        assert_eq!(g.succs[0].len(), m);
        assert_eq!(g.preds[0], 0);
        for i in 1..=m {
            assert_eq!(g.preds[i], 1, "reader {i} must have exactly one pred");
        }
        // The same property through the fby-reversed edge direction:
        // swap `a`'s definition for a delay, so each reader now precedes
        // the fby equation — edges i -> 0, again deduplicated.
        let mut node = node;
        node.eqs[0] = Equation::Fby {
            x: id("a"),
            ck: Clock::Base,
            init: CConst::int(0),
            rhs: var("x"),
        };
        let g = dep_graph(&node);
        assert!(g.succs[0].is_empty());
        assert_eq!(g.preds[0], m, "one edge per reader into the fby");
        for i in 1..=m {
            assert_eq!(g.succs[i], vec![0]);
        }
    }

    #[test]
    fn cycle_is_reported() {
        // a = b; b = a — instantaneous cycle.
        let node: Node<ClightOps> = Node {
            name: id("cyc"),
            inputs: vec![],
            outputs: vec![decl("a", CTy::I32)],
            locals: vec![decl("b", CTy::I32)],
            eqs: vec![
                Equation::Def {
                    x: id("a"),
                    ck: Clock::Base,
                    rhs: CExpr::Expr(var("b")),
                },
                Equation::Def {
                    x: id("b"),
                    ck: Clock::Base,
                    rhs: CExpr::Expr(var("a")),
                },
            ],
        };
        let g = dep_graph(&node);
        let w = cycle_witness(&node, &g);
        assert!(w.contains(&id("a")) && w.contains(&id("b")));
        let _ = Program::new(vec![node]); // silence unused-import style paths
    }
}
