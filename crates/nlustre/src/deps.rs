//! Dependency analysis between the equations of a node.
//!
//! Scheduling (§2.1) sorts equations so that "variables must be written
//! before they are read, except those defined by fbys which must be read
//! before they are written with their next value". This module computes
//! the corresponding precedence graph:
//!
//! * if equation `e` reads `x` and `x` is defined by a `Def` or `Call`
//!   equation `d`, then `d` must run before `e` (write-before-read);
//! * if equation `e` (≠ the `fby` itself) reads `x` and `x` is defined by
//!   a `Fby` equation `d`, then `e` must run before `d` (the delayed
//!   value is read before the state cell is overwritten).
//!
//! Cycles in this graph are causality errors.

use std::collections::HashMap;

use velus_common::Ident;
use velus_ops::Ops;

use crate::ast::{Equation, Node};
use crate::SemError;

/// The precedence graph of a node's equations: `succs[i]` lists the
/// equations that must run *after* equation `i`.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// Successor lists, indexed by equation.
    pub succs: Vec<Vec<usize>>,
    /// Predecessor counts, indexed by equation.
    pub preds: Vec<usize>,
}

impl DepGraph {
    /// Number of equations.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the graph has no equations.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }
}

/// Builds the precedence graph of `node`.
///
/// Reads of inputs and of variables not defined in the node impose no
/// constraints (undefined variables are caught by the type checker).
pub fn dep_graph<O: Ops>(node: &Node<O>) -> DepGraph {
    let mut def_of: HashMap<Ident, usize> = HashMap::new();
    for (i, eq) in node.eqs.iter().enumerate() {
        for x in eq.defined() {
            def_of.insert(x, i);
        }
    }
    let n = node.eqs.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut preds = vec![0usize; n];
    let add_edge = |succs: &mut Vec<Vec<usize>>, preds: &mut Vec<usize>, a: usize, b: usize| {
        if a != b && !succs[a].contains(&b) {
            succs[a].push(b);
            preds[b] += 1;
        }
    };
    for (i, eq) in node.eqs.iter().enumerate() {
        for x in eq.reads() {
            if let Some(&d) = def_of.get(&x) {
                match &node.eqs[d] {
                    Equation::Fby { .. } => add_edge(&mut succs, &mut preds, i, d),
                    _ => add_edge(&mut succs, &mut preds, d, i),
                }
            }
        }
    }
    DepGraph { succs, preds }
}

/// Extracts the variables on a dependency cycle, for error reporting.
pub fn cycle_witness<O: Ops>(node: &Node<O>, graph: &DepGraph) -> Vec<Ident> {
    // Kahn elimination; whatever remains is cyclic.
    let mut preds = graph.preds.clone();
    let mut stack: Vec<usize> = (0..graph.len()).filter(|&i| preds[i] == 0).collect();
    while let Some(i) = stack.pop() {
        for &j in &graph.succs[i] {
            preds[j] -= 1;
            if preds[j] == 0 {
                stack.push(j);
            }
        }
    }
    (0..graph.len())
        .filter(|&i| preds[i] > 0)
        .flat_map(|i| node.eqs[i].defined())
        .collect()
}

/// Checks that the equations, *in their current order*, satisfy every
/// precedence constraint: the executable schedule validator.
///
/// This plays the role of the paper's Coq-verified schedule checker — the
/// scheduling heuristic is untrusted, its output is validated.
///
/// # Errors
///
/// [`SemError::BadSchedule`] naming the offending variable.
pub fn check_schedule<O: Ops>(node: &Node<O>) -> Result<(), SemError> {
    let graph = dep_graph(node);
    for (i, ss) in graph.succs.iter().enumerate() {
        for &j in ss {
            if j <= i {
                let who = node.eqs[j].defined();
                return Err(SemError::BadSchedule(format!(
                    "in node {}: equation for {} must come after equation {}",
                    node.name,
                    who.first().map(|x| x.to_string()).unwrap_or_default(),
                    i
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CExpr, Expr, Program, VarDecl};
    use crate::clock::Clock;
    use velus_ops::{CConst, CTy, ClightOps};

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    fn decl(name: &str, ty: CTy) -> VarDecl<ClightOps> {
        VarDecl {
            name: id(name),
            ty,
            ck: Clock::Base,
        }
    }

    fn var(x: &str) -> Expr<ClightOps> {
        Expr::Var(id(x), CTy::I32)
    }

    /// y = cum + x ; cum = 0 fby y (well scheduled)
    fn two_eq_node(order: [usize; 2]) -> Node<ClightOps> {
        let eqs = [
            Equation::Def {
                x: id("y"),
                ck: Clock::Base,
                rhs: CExpr::Expr(Expr::Binop(
                    velus_ops::CBinOp::Add,
                    Box::new(var("cum")),
                    Box::new(var("x")),
                    CTy::I32,
                )),
            },
            Equation::Fby {
                x: id("cum"),
                ck: Clock::Base,
                init: CConst::int(0),
                rhs: var("y"),
            },
        ];
        Node {
            name: id("acc"),
            inputs: vec![decl("x", CTy::I32)],
            outputs: vec![decl("y", CTy::I32)],
            locals: vec![decl("cum", CTy::I32)],
            eqs: order.into_iter().map(|i| eqs[i].clone()).collect(),
        }
    }

    #[test]
    fn fby_readers_precede_the_fby() {
        let node = two_eq_node([0, 1]);
        assert_eq!(check_schedule(&node), Ok(()));
        let node = two_eq_node([1, 0]);
        assert!(matches!(
            check_schedule(&node),
            Err(SemError::BadSchedule(_))
        ));
    }

    #[test]
    fn graph_has_expected_edges() {
        let node = two_eq_node([0, 1]);
        let g = dep_graph(&node);
        // y's equation (0) must precede the fby (1): edge 0 -> 1 from the
        // fby reading y, and edge 0 -> 1 from y reading cum (fby).
        assert_eq!(g.succs[0], vec![1]);
        assert!(g.succs[1].is_empty());
    }

    #[test]
    fn cycle_is_reported() {
        // a = b; b = a — instantaneous cycle.
        let node: Node<ClightOps> = Node {
            name: id("cyc"),
            inputs: vec![],
            outputs: vec![decl("a", CTy::I32)],
            locals: vec![decl("b", CTy::I32)],
            eqs: vec![
                Equation::Def {
                    x: id("a"),
                    ck: Clock::Base,
                    rhs: CExpr::Expr(var("b")),
                },
                Equation::Def {
                    x: id("b"),
                    ck: Clock::Base,
                    rhs: CExpr::Expr(var("a")),
                },
            ],
        };
        let g = dep_graph(&node);
        let w = cycle_witness(&node, &g);
        assert!(w.contains(&id("a")) && w.contains(&id("b")));
        let _ = Program::new(vec![node]); // silence unused-import style paths
    }
}
