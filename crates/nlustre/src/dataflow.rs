//! The dataflow (stream) semantics of SN-Lustre — the reference model
//! (§3.1).
//!
//! The paper models streams as functions from naturals to a value domain
//! with explicit presence/absence, and defines the semantics relationally:
//! `G ⊢node f(xs, ys)` holds of input and output streams. This module
//! makes that model *executable* as a demand-driven, memoized interpreter:
//! asking for the value of a variable at instant `n` evaluates its
//! defining equation at `n`, recursively demanding other variables at `n`
//! (or, through `fby`, at earlier instants). Instantaneous dependency
//! cycles — programs with no semantics — are detected at run time and
//! reported as causality errors.
//!
//! The delay operator follows Fig. 6 literally:
//!
//! ```text
//! (c fby# xs)(n) = abs                    if xs(n) = abs
//! (c fby# xs)(n) = ⟨(c hold# xs)(n)⟩      if xs(n) = ⟨v⟩
//! (c hold# xs)(0)   = c
//! (c hold# xs)(n+1) = (c hold# xs)(n)     if xs(n) = abs
//! (c hold# xs)(n+1) = c'                  if xs(n) = ⟨c'⟩
//! ```
//!
//! Node instantiation derives the callee's base clock from the presence of
//! its inputs (`clock#`), so sampled instantiations run slower than their
//! context, as in the `tracker` example of §2.2.

use std::collections::HashMap;

use velus_common::{Ident, IdentMap};
use velus_ops::Ops;

use crate::ast::{CExpr, Equation, Expr, Node, Program};
use crate::clock::Clock;
use crate::streams::{SVal, StreamSet};
use crate::SemError;

/// Where a variable of a node gets its values.
#[derive(Debug, Clone, Copy)]
enum Binding {
    /// The i-th input of the node.
    Input(usize),
    /// Defined by the equation with the given index.
    Eq(usize),
}

/// Per-node static information, computed once.
#[derive(Debug)]
struct NodeInfo {
    bindings: IdentMap<Binding>,
}

fn node_info<O: Ops>(node: &Node<O>) -> Result<NodeInfo, SemError> {
    let mut bindings = IdentMap::default();
    for (i, d) in node.inputs.iter().enumerate() {
        bindings.insert(d.name, Binding::Input(i));
    }
    for (i, eq) in node.eqs.iter().enumerate() {
        for &x in eq.defined() {
            bindings.insert(x, Binding::Eq(i));
        }
    }
    for d in node.outputs.iter().chain(&node.locals) {
        if !bindings.contains_key(&d.name) {
            return Err(SemError::UndefinedVariable(d.name));
        }
    }
    Ok(NodeInfo { bindings })
}

/// A node instance in the (dynamically unfolded) instance tree.
struct Inst<O: Ops> {
    /// Index of the node in the program.
    node: usize,
    /// Parent instance and the equation index of the instantiating call;
    /// `None` for the root.
    parent: Option<(usize, usize)>,
    /// Memoized variable values: `memo[x][n]`.
    memo: IdentMap<Vec<Option<SVal<O>>>>,
    /// Memoized `hold#` values per `fby` variable.
    holds: IdentMap<Vec<O::Val>>,
    /// Sub-instances, keyed by call-equation index.
    subs: HashMap<usize, usize>,
    /// Variables currently being evaluated (cycle detection).
    visiting: std::collections::HashSet<(Ident, usize), velus_common::BuildIdentHasher>,
}

/// The demand-driven dataflow evaluator for one root node.
///
/// # Examples
///
/// Evaluating a two-instant run of a counter is as simple as:
///
/// ```
/// # use velus_nlustre::{ast::*, clock::Clock, dataflow::Dataflow, streams::*};
/// # use velus_common::Ident;
/// # use velus_ops::{CConst, CTy, CBinOp, ClightOps};
/// # let n = Ident::new("n");
/// # let node = Node::<ClightOps> {
/// #     name: Ident::new("count"),
/// #     inputs: vec![],
/// #     outputs: vec![VarDecl { name: n, ty: CTy::I32, ck: Clock::Base }],
/// #     locals: vec![],
/// #     eqs: vec![Equation::Fby {
/// #         x: n,
/// #         ck: Clock::Base,
/// #         init: CConst::int(0),
/// #         rhs: Expr::Binop(
/// #             CBinOp::Add,
/// #             Box::new(Expr::Var(n, CTy::I32)),
/// #             Box::new(Expr::Const(CConst::int(1))),
/// #             CTy::I32,
/// #         ),
/// #     }],
/// # };
/// # let prog = Program::new(vec![node]);
/// let mut eval = Dataflow::new(&prog, Ident::new("count"), vec![])?;
/// let outs = eval.run(3)?;
/// // n = 0 fby (n + 1) counts 0, 1, 2, …
/// assert_eq!(outs[0].len(), 3);
/// # Ok::<(), velus_nlustre::SemError>(())
/// ```
pub struct Dataflow<'p, O: Ops> {
    prog: &'p Program<O>,
    infos: Vec<NodeInfo>,
    insts: Vec<Inst<O>>,
    inputs: StreamSet<O>,
    root_node: usize,
}

impl<'p, O: Ops> Dataflow<'p, O> {
    /// Creates an evaluator for node `f` of `prog` with the given input
    /// streams (one per declared input).
    ///
    /// # Errors
    ///
    /// Fails if the node does not exist, the number of input streams does
    /// not match the node's arity, or a declared variable has no defining
    /// equation.
    pub fn new(prog: &'p Program<O>, f: Ident, inputs: StreamSet<O>) -> Result<Self, SemError> {
        let root_node = prog
            .nodes
            .iter()
            .position(|n| n.name == f)
            .ok_or(SemError::UnknownNode(f))?;
        let infos = prog
            .nodes
            .iter()
            .map(node_info)
            .collect::<Result<Vec<_>, _>>()?;
        if inputs.len() != prog.nodes[root_node].inputs.len() {
            return Err(SemError::InputMismatch(format!(
                "{} input streams for {} declared inputs",
                inputs.len(),
                prog.nodes[root_node].inputs.len()
            )));
        }
        let insts = vec![Inst {
            node: root_node,
            parent: None,
            memo: IdentMap::default(),
            holds: IdentMap::default(),
            subs: HashMap::new(),
            visiting: Default::default(),
        }];
        Ok(Dataflow {
            prog,
            infos,
            insts,
            inputs,
            root_node,
        })
    }

    /// The number of instants for which all root inputs are available.
    pub fn horizon(&self) -> usize {
        self.inputs.iter().map(Vec::len).min().unwrap_or(usize::MAX)
    }

    /// Evaluates all outputs for instants `0..n` and returns them as a
    /// stream set (one stream per declared output).
    ///
    /// # Errors
    ///
    /// Propagates causality loops, undefined operator applications, and
    /// clock or input inconsistencies.
    pub fn run(&mut self, n: usize) -> Result<StreamSet<O>, SemError> {
        let node = &self.prog.nodes[self.root_node];
        let outs: Vec<Ident> = node.outputs.iter().map(|d| d.name).collect();
        let mut result: StreamSet<O> = vec![Vec::with_capacity(n); outs.len()];
        for i in 0..n {
            for (k, &o) in outs.iter().enumerate() {
                let v = self.var_at(0, o, i)?;
                result[k].push(v);
            }
        }
        Ok(result)
    }

    /// The value of root variable `x` (input, output or local) at instant
    /// `n`. This exposes the *internal* streams of the semantic table of
    /// §2.2.
    ///
    /// # Errors
    ///
    /// See [`Dataflow::run`].
    pub fn var(&mut self, x: Ident, n: usize) -> Result<SVal<O>, SemError> {
        self.var_at(0, x, n)
    }

    /// The base clock of the root node at instant `n` (the paper's
    /// `clock#` of the inputs).
    fn root_base(&mut self, n: usize) -> Result<bool, SemError> {
        if self.inputs.is_empty() {
            return Ok(true);
        }
        let presences: Vec<bool> = self
            .inputs
            .iter()
            .map(|s| {
                s.get(n)
                    .map(SVal::is_present)
                    .ok_or_else(|| SemError::InputMismatch(format!("no input at instant {n}")))
            })
            .collect::<Result<_, _>>()?;
        if presences.iter().all(|&p| p == presences[0]) {
            Ok(presences[0])
        } else {
            Err(SemError::ClockError(format!(
                "root inputs have mismatched presence at instant {n}"
            )))
        }
    }

    fn base_at(&mut self, inst: usize, n: usize) -> Result<bool, SemError> {
        match self.insts[inst].parent {
            None => self.root_base(n),
            Some((p, eq_idx)) => {
                let prog = self.prog;
                let ck = prog.nodes[self.insts[p].node].eqs[eq_idx].clock().clone();
                self.clock_at(p, &ck, n)
            }
        }
    }

    fn clock_at(&mut self, inst: usize, ck: &Clock, n: usize) -> Result<bool, SemError> {
        match ck {
            Clock::Base => self.base_at(inst, n),
            Clock::On(parent, x, k) => {
                if !self.clock_at(inst, parent, n)? {
                    return Ok(false);
                }
                match self.var_at(inst, *x, n)? {
                    SVal::Abs => Err(SemError::ClockError(format!(
                        "clock variable {x} absent while its clock is active"
                    ))),
                    SVal::Pres(v) => match O::as_bool(&v) {
                        Some(b) => Ok(b == *k),
                        None => Err(SemError::TypeError(format!(
                            "clock variable {x} carries non-boolean {v}"
                        ))),
                    },
                }
            }
        }
    }

    /// Evaluates a simple expression at instant `n`, under a context whose
    /// clock is known to be active: every variable must be present.
    fn eval_expr(&mut self, inst: usize, e: &Expr<O>, n: usize) -> Result<O::Val, SemError> {
        match e {
            Expr::Const(c) => Ok(O::sem_const(c)),
            Expr::Var(x, _) => match self.var_at(inst, *x, n)? {
                SVal::Pres(v) => Ok(v),
                SVal::Abs => Err(SemError::ClockError(format!(
                    "variable {x} absent at instant {n} under an active clock"
                ))),
            },
            Expr::Unop(op, e1, _) => {
                let v = self.eval_expr(inst, e1, n)?;
                let ty = e1.ty();
                O::sem_unop(*op, &v, &ty).ok_or_else(|| {
                    SemError::UndefinedOperation(format!("{op} {v} at type {ty} (instant {n})"))
                })
            }
            Expr::Binop(op, e1, e2, _) => {
                let v1 = self.eval_expr(inst, e1, n)?;
                let v2 = self.eval_expr(inst, e2, n)?;
                let (t1, t2) = (e1.ty(), e2.ty());
                O::sem_binop(*op, &v1, &t1, &v2, &t2).ok_or_else(|| {
                    SemError::UndefinedOperation(format!("{v1} {op} {v2} (instant {n})"))
                })
            }
            Expr::When(e1, x, k) => {
                // Context clock active implies x present with value k.
                match self.var_at(inst, *x, n)? {
                    SVal::Pres(v) if O::as_bool(&v) == Some(*k) => self.eval_expr(inst, e1, n),
                    other => Err(SemError::ClockError(format!(
                        "sampling variable {x} = {other:?} inconsistent with active clock"
                    ))),
                }
            }
        }
    }

    /// Evaluates a control expression under an active clock. Both branches
    /// of a mux are evaluated (the paper: "both branches are active"),
    /// only the selected branch of a merge is.
    fn eval_cexpr(&mut self, inst: usize, ce: &CExpr<O>, n: usize) -> Result<O::Val, SemError> {
        match ce {
            CExpr::Expr(e) => self.eval_expr(inst, e, n),
            CExpr::Merge(x, t, f) => match self.var_at(inst, *x, n)? {
                SVal::Pres(v) => match O::as_bool(&v) {
                    Some(true) => self.eval_cexpr(inst, t, n),
                    Some(false) => self.eval_cexpr(inst, f, n),
                    None => Err(SemError::TypeError(format!("merge on non-boolean {v}"))),
                },
                SVal::Abs => Err(SemError::ClockError(format!(
                    "merge variable {x} absent under an active clock"
                ))),
            },
            CExpr::If(c, t, f) => {
                let cv = self.eval_expr(inst, c, n)?;
                let tv = self.eval_cexpr(inst, t, n)?;
                let fv = self.eval_cexpr(inst, f, n)?;
                match O::as_bool(&cv) {
                    Some(true) => Ok(tv),
                    Some(false) => Ok(fv),
                    None => Err(SemError::TypeError(format!("mux guard non-boolean {cv}"))),
                }
            }
        }
    }

    /// The `hold#` stream of the `fby` equation defining `x` (Fig. 6).
    fn hold_at(&mut self, inst: usize, x: Ident, n: usize) -> Result<O::Val, SemError> {
        if let Some(hs) = self.insts[inst].holds.get(&x) {
            if let Some(v) = hs.get(n) {
                return Ok(v.clone());
            }
        }
        let prog = self.prog;
        let node_idx = self.insts[inst].node;
        let eq_idx = match self.infos[node_idx].bindings.get(&x) {
            Some(Binding::Eq(i)) => *i,
            _ => return Err(SemError::UndefinedVariable(x)),
        };
        let (ck, init, rhs) = match &prog.nodes[node_idx].eqs[eq_idx] {
            Equation::Fby { ck, init, rhs, .. } => (ck, init, rhs),
            _ => return Err(SemError::Malformed(format!("{x} is not a fby variable"))),
        };
        // Fill the memo from its current length up to n.
        let mut start = self.insts[inst].holds.get(&x).map_or(0, Vec::len);
        if start == 0 {
            let v0 = O::sem_const(init);
            self.insts[inst].holds.entry(x).or_default().push(v0);
            start = 1;
        }
        for m in start..=n {
            // hold(m) depends on the argument stream at instant m-1.
            let prev_active = self.clock_at(inst, ck, m - 1)?;
            let v = if prev_active {
                self.eval_expr(inst, rhs, m - 1)?
            } else {
                self.insts[inst].holds[&x][m - 1].clone()
            };
            self.insts[inst]
                .holds
                .get_mut(&x)
                .expect("initialized above")
                .push(v);
        }
        Ok(self.insts[inst].holds[&x][n].clone())
    }

    /// The value of variable `x` of instance `inst` at instant `n`.
    fn var_at(&mut self, inst: usize, x: Ident, n: usize) -> Result<SVal<O>, SemError> {
        if let Some(vs) = self.insts[inst].memo.get(&x) {
            if let Some(Some(v)) = vs.get(n) {
                return Ok(v.clone());
            }
        }
        if !self.insts[inst].visiting.insert((x, n)) {
            return Err(SemError::CausalityLoop(x));
        }
        let result = self.var_at_inner(inst, x, n);
        self.insts[inst].visiting.remove(&(x, n));
        let v = result?;
        let memo = self.insts[inst].memo.entry(x).or_default();
        if memo.len() <= n {
            memo.resize(n + 1, None);
        }
        memo[n] = Some(v.clone());
        Ok(v)
    }

    fn var_at_inner(&mut self, inst: usize, x: Ident, n: usize) -> Result<SVal<O>, SemError> {
        let prog = self.prog;
        let node_idx = self.insts[inst].node;
        let binding = match self.infos[node_idx].bindings.get(&x) {
            Some(b) => *b,
            None => return Err(SemError::UndefinedVariable(x)),
        };
        match binding {
            Binding::Input(i) => match self.insts[inst].parent {
                None => self
                    .inputs
                    .get(i)
                    .and_then(|s| s.get(n))
                    .cloned()
                    .ok_or_else(|| {
                        SemError::InputMismatch(format!("input stream exhausted at instant {n}"))
                    }),
                Some((p, eq_idx)) => {
                    let (ck, arg) = match &prog.nodes[self.insts[p].node].eqs[eq_idx] {
                        Equation::Call { ck, args, .. } => (ck.clone(), args[i].clone()),
                        _ => unreachable!("parent link always points at a call equation"),
                    };
                    if self.clock_at(p, &ck, n)? {
                        Ok(SVal::Pres(self.eval_expr(p, &arg, n)?))
                    } else {
                        Ok(SVal::Abs)
                    }
                }
            },
            Binding::Eq(eq_idx) => {
                let eq = &prog.nodes[node_idx].eqs[eq_idx];
                match eq {
                    Equation::Def { ck, rhs, .. } => {
                        if self.clock_at(inst, ck, n)? {
                            Ok(SVal::Pres(self.eval_cexpr(inst, &rhs.clone(), n)?))
                        } else {
                            Ok(SVal::Abs)
                        }
                    }
                    Equation::Fby { ck, .. } => {
                        if self.clock_at(inst, &ck.clone(), n)? {
                            Ok(SVal::Pres(self.hold_at(inst, x, n)?))
                        } else {
                            Ok(SVal::Abs)
                        }
                    }
                    Equation::Call {
                        ck, node: f, xs, ..
                    } => {
                        if !self.clock_at(inst, &ck.clone(), n)? {
                            return Ok(SVal::Abs);
                        }
                        let sub = self.sub_instance(inst, eq_idx, *f)?;
                        let out_idx = xs.iter().position(|y| *y == x).expect("binding is exact");
                        let callee = &prog.nodes[self.insts[sub].node];
                        let out_name = callee.outputs[out_idx].name;
                        let v = self.var_at(sub, out_name, n)?;
                        match v {
                            SVal::Pres(v) => Ok(SVal::Pres(v)),
                            SVal::Abs => Err(SemError::ClockError(format!(
                                "output {out_name} of {f} absent while the call clock is active"
                            ))),
                        }
                    }
                }
            }
        }
    }

    fn sub_instance(&mut self, inst: usize, eq_idx: usize, f: Ident) -> Result<usize, SemError> {
        if let Some(&s) = self.insts[inst].subs.get(&eq_idx) {
            return Ok(s);
        }
        let node = self
            .prog
            .nodes
            .iter()
            .position(|n| n.name == f)
            .ok_or(SemError::UnknownNode(f))?;
        let id = self.insts.len();
        self.insts.push(Inst {
            node,
            parent: Some((inst, eq_idx)),
            memo: IdentMap::default(),
            holds: IdentMap::default(),
            subs: HashMap::new(),
            visiting: Default::default(),
        });
        self.insts[inst].subs.insert(eq_idx, id);
        Ok(id)
    }
}

/// Runs node `f` of `prog` on the given inputs for `n` instants and
/// returns its output streams.
///
/// This is the executable form of the paper's `G ⊢node f(xs, ys)`
/// restricted to a finite prefix.
///
/// # Errors
///
/// See [`Dataflow::run`].
pub fn run_node<O: Ops>(
    prog: &Program<O>,
    f: Ident,
    inputs: &StreamSet<O>,
    n: usize,
) -> Result<StreamSet<O>, SemError> {
    Dataflow::new(prog, f, inputs.clone())?.run(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::VarDecl;
    use velus_ops::{CBinOp, CConst, CTy, CVal, ClightOps};

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    fn ivar(x: &str) -> Expr<ClightOps> {
        Expr::Var(id(x), CTy::I32)
    }

    fn bvar(x: &str) -> Expr<ClightOps> {
        Expr::Var(id(x), CTy::Bool)
    }

    fn decl(name: &str, ty: CTy) -> VarDecl<ClightOps> {
        VarDecl {
            name: id(name),
            ty,
            ck: Clock::Base,
        }
    }

    /// The paper's counter node (§2, normalized form of Fig. 3):
    ///
    /// node counter(ini, inc: int; res: bool) returns (n: int)
    ///   var c: int; f: bool;
    /// let
    ///   n = if (f or res) then ini else c + inc;
    ///   f = true fby false;
    ///   c = 0 fby n;
    /// tel
    fn counter() -> Node<ClightOps> {
        Node {
            name: id("counter"),
            inputs: vec![
                decl("ini", CTy::I32),
                decl("inc", CTy::I32),
                decl("res", CTy::Bool),
            ],
            outputs: vec![decl("n", CTy::I32)],
            locals: vec![decl("c", CTy::I32), decl("f", CTy::Bool)],
            eqs: vec![
                Equation::Def {
                    x: id("n"),
                    ck: Clock::Base,
                    rhs: CExpr::If(
                        Expr::Binop(
                            CBinOp::Or,
                            Box::new(bvar("f")),
                            Box::new(bvar("res")),
                            CTy::Bool,
                        ),
                        Box::new(CExpr::Expr(ivar("ini"))),
                        Box::new(CExpr::Expr(Expr::Binop(
                            CBinOp::Add,
                            Box::new(ivar("c")),
                            Box::new(ivar("inc")),
                            CTy::I32,
                        ))),
                    ),
                },
                Equation::Fby {
                    x: id("f"),
                    ck: Clock::Base,
                    init: CConst::bool(true),
                    rhs: Expr::Const(CConst::bool(false)),
                },
                Equation::Fby {
                    x: id("c"),
                    ck: Clock::Base,
                    init: CConst::int(0),
                    rhs: ivar("n"),
                },
            ],
        }
    }

    fn pres(vs: &[i32]) -> Vec<SVal<ClightOps>> {
        vs.iter().map(|&v| SVal::Pres(CVal::int(v))).collect()
    }

    fn presb(vs: &[bool]) -> Vec<SVal<ClightOps>> {
        vs.iter().map(|&v| SVal::Pres(CVal::bool(v))).collect()
    }

    #[test]
    fn counter_accumulates_and_resets() {
        let prog = Program::new(vec![counter()]);
        let inputs = vec![
            pres(&[10, 10, 10, 10, 10]),
            pres(&[1, 2, 3, 4, 5]),
            presb(&[false, false, false, true, false]),
        ];
        let outs = run_node(&prog, id("counter"), &inputs, 5).unwrap();
        // n(0) = ini = 10; then 12, 15; reset to 10; then 15.
        assert_eq!(outs[0], pres(&[10, 12, 15, 10, 15]));
    }

    #[test]
    fn horizon_is_the_shortest_input_prefix() {
        let prog = Program::new(vec![counter()]);
        let inputs = vec![
            pres(&[1, 2, 3]),
            pres(&[1, 2]),
            presb(&[false, false, false]),
        ];
        let eval = Dataflow::new(&prog, id("counter"), inputs).unwrap();
        assert_eq!(eval.horizon(), 2);
        // No inputs: unbounded horizon.
        let loopless = Node {
            name: id("free"),
            inputs: vec![],
            outputs: vec![decl("y", CTy::I32)],
            locals: vec![],
            eqs: vec![Equation::Def {
                x: id("y"),
                ck: Clock::Base,
                rhs: CExpr::Expr(Expr::Const(CConst::int(1))),
            }],
        };
        let prog = Program::new(vec![loopless]);
        let eval = Dataflow::new(&prog, id("free"), vec![]).unwrap();
        assert_eq!(eval.horizon(), usize::MAX);
    }

    #[test]
    fn causality_loop_is_detected() {
        // y = y + 1 has no semantics.
        let node = Node {
            name: id("loopy"),
            inputs: vec![],
            outputs: vec![decl("y", CTy::I32)],
            locals: vec![],
            eqs: vec![Equation::Def {
                x: id("y"),
                ck: Clock::Base,
                rhs: CExpr::Expr(Expr::Binop(
                    CBinOp::Add,
                    Box::new(ivar("y")),
                    Box::new(Expr::Const(CConst::int(1))),
                    CTy::I32,
                )),
            }],
        };
        let prog = Program::new(vec![node]);
        let err = run_node(&prog, id("loopy"), &vec![], 1).unwrap_err();
        assert_eq!(err, SemError::CausalityLoop(id("y")));
    }

    #[test]
    fn fby_breaks_causality() {
        // y = 0 fby (y + 1) is fine.
        let node = Node {
            name: id("count"),
            inputs: vec![],
            outputs: vec![decl("y", CTy::I32)],
            locals: vec![],
            eqs: vec![Equation::Fby {
                x: id("y"),
                ck: Clock::Base,
                init: CConst::int(0),
                rhs: Expr::Binop(
                    CBinOp::Add,
                    Box::new(ivar("y")),
                    Box::new(Expr::Const(CConst::int(1))),
                    CTy::I32,
                ),
            }],
        };
        let prog = Program::new(vec![node]);
        let outs = run_node(&prog, id("count"), &vec![], 4).unwrap();
        assert_eq!(outs[0], pres(&[0, 1, 2, 3]));
    }

    #[test]
    fn division_by_zero_is_an_undefined_operation() {
        let node = Node {
            name: id("divz"),
            inputs: vec![decl("x", CTy::I32)],
            outputs: vec![decl("y", CTy::I32)],
            locals: vec![],
            eqs: vec![Equation::Def {
                x: id("y"),
                ck: Clock::Base,
                rhs: CExpr::Expr(Expr::Binop(
                    CBinOp::Div,
                    Box::new(Expr::Const(CConst::int(1))),
                    Box::new(ivar("x")),
                    CTy::I32,
                )),
            }],
        };
        let prog = Program::new(vec![node]);
        let err = run_node(&prog, id("divz"), &vec![pres(&[0])], 1).unwrap_err();
        assert!(matches!(err, SemError::UndefinedOperation(_)));
    }

    #[test]
    fn node_instantiation_composes() {
        // double_counter calls counter twice, chained.
        let dc = Node {
            name: id("dc"),
            inputs: vec![decl("g", CTy::I32)],
            outputs: vec![decl("s", CTy::I32), decl("p", CTy::I32)],
            locals: vec![],
            eqs: vec![
                Equation::Call {
                    xs: vec![id("s")],
                    ck: Clock::Base,
                    node: id("counter"),
                    args: vec![
                        Expr::Const(CConst::int(0)),
                        ivar("g"),
                        Expr::Const(CConst::bool(false)),
                    ],
                },
                Equation::Call {
                    xs: vec![id("p")],
                    ck: Clock::Base,
                    node: id("counter"),
                    args: vec![
                        Expr::Const(CConst::int(0)),
                        ivar("s"),
                        Expr::Const(CConst::bool(false)),
                    ],
                },
            ],
        };
        let prog = Program::new(vec![counter(), dc]);
        // This is the d_integrator of Fig. 3; §2.2's table gives the values.
        let acc = pres(&[0, 2, 4, -2, 0, 3, -3, 2]);
        let outs = run_node(&prog, id("dc"), &vec![acc], 8).unwrap();
        assert_eq!(outs[0], pres(&[0, 2, 6, 4, 4, 7, 4, 6]));
        assert_eq!(outs[1], pres(&[0, 2, 8, 12, 16, 23, 27, 33]));
    }

    #[test]
    fn sampled_instantiation_runs_slower() {
        // o = counter(0 when x, 1 when x, false when x): counts activations
        // (starting at 0 on the first).
        let on_x = Clock::Base.on(id("x"), true);
        let n = Node {
            name: id("sampled"),
            inputs: vec![decl("x", CTy::Bool)],
            outputs: vec![decl("o", CTy::I32)],
            locals: vec![VarDecl {
                name: id("c"),
                ty: CTy::I32,
                ck: on_x.clone(),
            }],
            eqs: vec![
                Equation::Call {
                    xs: vec![id("c")],
                    ck: on_x.clone(),
                    node: id("counter"),
                    args: vec![
                        Expr::When(Box::new(Expr::Const(CConst::int(0))), id("x"), true),
                        Expr::When(Box::new(Expr::Const(CConst::int(1))), id("x"), true),
                        Expr::When(Box::new(Expr::Const(CConst::bool(false))), id("x"), true),
                    ],
                },
                Equation::Def {
                    x: id("o"),
                    ck: Clock::Base,
                    rhs: CExpr::Merge(
                        id("x"),
                        Box::new(CExpr::Expr(Expr::Var(id("c"), CTy::I32))),
                        Box::new(CExpr::Expr(Expr::When(
                            Box::new(Expr::Const(CConst::int(-1))),
                            id("x"),
                            false,
                        ))),
                    ),
                },
            ],
        };
        let prog = Program::new(vec![counter(), n]);
        let xs = presb(&[false, true, true, false, true]);
        let outs = run_node(&prog, id("sampled"), &vec![xs], 5).unwrap();
        assert_eq!(outs[0], pres(&[-1, 0, 1, -1, 2]));
    }
}
