//! Abstract syntax of SN-Lustre (paper Fig. 2).
//!
//! The normalization invariants are *structural* here, exactly as in the
//! paper: `merge` and `if/then/else` occur only at the top of control
//! expressions ([`CExpr`]), and delays and node instantiations occur only
//! as dedicated equations ([`Equation::Fby`], [`Equation::Call`]).
//!
//! The AST is annotated with the types produced by elaboration (variables
//! and operator applications carry their result type), which is what makes
//! the interpreters and the translation to Obc type-driven.

use std::fmt;

use velus_common::Ident;
use velus_ops::Ops;

use crate::clock::Clock;

/// A (sampled) simple expression: no merges, muxes, delays or calls.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr<O: Ops> {
    /// A variable with its declared type.
    Var(Ident, O::Ty),
    /// A constant.
    Const(O::Const),
    /// Unary operator application; the annotation is the *result* type.
    Unop(O::UnOp, Box<Expr<O>>, O::Ty),
    /// Binary operator application; the annotation is the *result* type.
    Binop(O::BinOp, Box<Expr<O>>, Box<Expr<O>>, O::Ty),
    /// Sampling: `e when x` (polarity `true`) or `e whenot x` (`false`).
    When(Box<Expr<O>>, Ident, bool),
}

impl<O: Ops> Expr<O> {
    /// The type of the expression.
    pub fn ty(&self) -> O::Ty {
        match self {
            Expr::Var(_, ty) => ty.clone(),
            Expr::Const(c) => O::type_of_const(c),
            Expr::Unop(_, _, ty) => ty.clone(),
            Expr::Binop(_, _, _, ty) => ty.clone(),
            Expr::When(e, _, _) => e.ty(),
        }
    }

    /// Appends the free variables (including sampling variables) to `out`.
    pub fn free_vars_into(&self, out: &mut Vec<Ident>) {
        match self {
            Expr::Var(x, _) => out.push(*x),
            Expr::Const(_) => {}
            Expr::Unop(_, e, _) => e.free_vars_into(out),
            Expr::Binop(_, e1, e2, _) => {
                e1.free_vars_into(out);
                e2.free_vars_into(out);
            }
            Expr::When(e, x, _) => {
                e.free_vars_into(out);
                out.push(*x);
            }
        }
    }

    /// The free variables of the expression (with duplicates).
    pub fn free_vars(&self) -> Vec<Ident> {
        let mut out = Vec::new();
        self.free_vars_into(&mut out);
        out
    }
}

impl<O: Ops> fmt::Display for Expr<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(x, _) => write!(f, "{x}"),
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Unop(op, e, _) => write!(f, "({op} {e})"),
            Expr::Binop(op, e1, e2, _) => write!(f, "({e1} {op} {e2})"),
            Expr::When(e, x, true) => write!(f, "({e} when {x})"),
            Expr::When(e, x, false) => write!(f, "({e} whenot {x})"),
        }
    }
}

/// A control expression: merges and muxes above simple expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr<O: Ops> {
    /// `merge x ce_true ce_false`: combines two complementary streams.
    Merge(Ident, Box<CExpr<O>>, Box<CExpr<O>>),
    /// `if e then ce else ce`: a multiplexer — both branches are active,
    /// the guard selects one of the results.
    If(Expr<O>, Box<CExpr<O>>, Box<CExpr<O>>),
    /// A simple expression.
    Expr(Expr<O>),
}

impl<O: Ops> CExpr<O> {
    /// The type of the control expression.
    pub fn ty(&self) -> O::Ty {
        match self {
            CExpr::Merge(_, t, _) => t.ty(),
            CExpr::If(_, t, _) => t.ty(),
            CExpr::Expr(e) => e.ty(),
        }
    }

    /// Appends the free variables to `out`.
    pub fn free_vars_into(&self, out: &mut Vec<Ident>) {
        match self {
            CExpr::Merge(x, t, e) => {
                out.push(*x);
                t.free_vars_into(out);
                e.free_vars_into(out);
            }
            CExpr::If(c, t, e) => {
                c.free_vars_into(out);
                t.free_vars_into(out);
                e.free_vars_into(out);
            }
            CExpr::Expr(e) => e.free_vars_into(out),
        }
    }

    /// The free variables of the control expression (with duplicates).
    pub fn free_vars(&self) -> Vec<Ident> {
        let mut out = Vec::new();
        self.free_vars_into(&mut out);
        out
    }
}

impl<O: Ops> fmt::Display for CExpr<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CExpr::Merge(x, t, e) => write!(f, "merge {x} ({t}) ({e})"),
            CExpr::If(c, t, e) => write!(f, "if {c} then {t} else {e}"),
            CExpr::Expr(e) => write!(f, "{e}"),
        }
    }
}

/// An SN-Lustre equation (the three normalized shapes of Fig. 2).
#[derive(Debug, Clone, PartialEq)]
pub enum Equation<O: Ops> {
    /// `x =ck ce` — a definition.
    Def {
        /// Defined variable.
        x: Ident,
        /// Clock of the equation.
        ck: Clock,
        /// Right-hand side.
        rhs: CExpr<O>,
    },
    /// `x =ck c fby e` — an initialized delay.
    Fby {
        /// Defined variable.
        x: Ident,
        /// Clock of the equation.
        ck: Clock,
        /// Initial value.
        init: O::Const,
        /// Delayed expression.
        rhs: Expr<O>,
    },
    /// `x :: xs =ck f(es)` — a node instantiation.
    Call {
        /// Variables receiving the node outputs (non-empty; the first one
        /// identifies the instance, as in the paper).
        xs: Vec<Ident>,
        /// Clock of the equation.
        ck: Clock,
        /// Name of the instantiated node.
        node: Ident,
        /// Argument expressions.
        args: Vec<Expr<O>>,
    },
}

impl<O: Ops> Equation<O> {
    /// The variables defined by the equation, borrowed from the AST —
    /// no allocation (`Def`/`Fby` yield a one-element slice).
    pub fn defined(&self) -> &[Ident] {
        match self {
            Equation::Def { x, .. } | Equation::Fby { x, .. } => std::slice::from_ref(x),
            Equation::Call { xs, .. } => xs,
        }
    }

    /// Whether the equation defines `x`.
    pub fn defines(&self, x: Ident) -> bool {
        self.defined().contains(&x)
    }

    /// The clock of the equation.
    pub fn clock(&self) -> &Clock {
        match self {
            Equation::Def { ck, .. } | Equation::Fby { ck, .. } | Equation::Call { ck, .. } => ck,
        }
    }

    /// The free variables read by the equation, *including* the variables
    /// of its clock.
    pub fn reads(&self) -> Vec<Ident> {
        let mut out = Vec::new();
        self.reads_into(&mut out);
        out
    }

    /// Appends the variables read by the equation (clock variables
    /// first) to `out` — the scratch-buffer form of [`Equation::reads`]
    /// used on the compile hot path.
    pub fn reads_into(&self, out: &mut Vec<Ident>) {
        self.clock().vars_into(out);
        match self {
            Equation::Def { rhs, .. } => rhs.free_vars_into(out),
            Equation::Fby { rhs, .. } => rhs.free_vars_into(out),
            Equation::Call { args, .. } => {
                for a in args {
                    a.free_vars_into(out);
                }
            }
        }
    }
}

impl<O: Ops> fmt::Display for Equation<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Equation::Def { x, ck, rhs } => write!(f, "{x} ={ck}= {rhs}"),
            Equation::Fby { x, ck, init, rhs } => write!(f, "{x} ={ck}= {init} fby {rhs}"),
            Equation::Call { xs, ck, node, args } => {
                let xs: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
                let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                write!(f, "({}) ={ck}= {node}({})", xs.join(", "), args.join(", "))
            }
        }
    }
}

/// A typed, clocked variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl<O: Ops> {
    /// The variable name.
    pub name: Ident,
    /// Its type.
    pub ty: O::Ty,
    /// Its clock.
    pub ck: Clock,
}

impl<O: Ops> fmt::Display for VarDecl<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ck == Clock::Base {
            write!(f, "{}: {}", self.name, self.ty)
        } else {
            write!(f, "{}: {} :: {}", self.name, self.ty, self.ck)
        }
    }
}

/// A node declaration: a named function from input streams to output
/// streams defined by a set of equations.
#[derive(Debug, Clone, PartialEq)]
pub struct Node<O: Ops> {
    /// Node name.
    pub name: Ident,
    /// Input declarations.
    pub inputs: Vec<VarDecl<O>>,
    /// Output declarations (non-empty).
    pub outputs: Vec<VarDecl<O>>,
    /// Local variable declarations.
    pub locals: Vec<VarDecl<O>>,
    /// The equations. In SN-Lustre (after scheduling) their order is the
    /// execution order of the generated imperative code.
    pub eqs: Vec<Equation<O>>,
}

impl<O: Ops> Node<O> {
    /// Looks up a declaration (input, output or local) by name.
    pub fn decl(&self, x: Ident) -> Option<&VarDecl<O>> {
        self.inputs
            .iter()
            .chain(&self.outputs)
            .chain(&self.locals)
            .find(|d| d.name == x)
    }

    /// Whether `x` is an input of the node.
    pub fn is_input(&self, x: Ident) -> bool {
        self.inputs.iter().any(|d| d.name == x)
    }

    /// The set of variables defined by `fby` equations (the paper's
    /// `mems`), in equation order.
    pub fn mems(&self) -> Vec<Ident> {
        self.mems_iter().collect()
    }

    /// The `fby`-defined variables in equation order, without
    /// allocating (the scratch form of [`Node::mems`]).
    pub fn mems_iter(&self) -> impl Iterator<Item = Ident> + '_ {
        self.eqs.iter().filter_map(|eq| match eq {
            Equation::Fby { x, .. } => Some(*x),
            _ => None,
        })
    }

    /// The index of the equation defining `x`, if any.
    pub fn defining_eq(&self, x: Ident) -> Option<usize> {
        self.eqs.iter().position(|eq| eq.defines(x))
    }
}

impl<O: Ops> fmt::Display for Node<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_decls = |ds: &[VarDecl<O>]| -> String {
            ds.iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        };
        writeln!(
            f,
            "node {}({}) returns ({})",
            self.name,
            fmt_decls(&self.inputs),
            fmt_decls(&self.outputs)
        )?;
        if !self.locals.is_empty() {
            writeln!(f, "var {};", fmt_decls(&self.locals))?;
        }
        writeln!(f, "let")?;
        for eq in &self.eqs {
            writeln!(f, "  {eq};")?;
        }
        write!(f, "tel")
    }
}

/// A program: a list of nodes, callees first (established by
/// [`Program::validate`](crate::typecheck)-time ordering in the front
/// end).
#[derive(Debug, Clone, PartialEq)]
pub struct Program<O: Ops> {
    /// The nodes, in dependency order (callees before callers).
    pub nodes: Vec<Node<O>>,
}

impl<O: Ops> Program<O> {
    /// Creates a program from a node list.
    pub fn new(nodes: Vec<Node<O>>) -> Program<O> {
        Program { nodes }
    }

    /// Looks up a node by name.
    pub fn node(&self, name: Ident) -> Option<&Node<O>> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Total number of equations across all nodes.
    pub fn equation_count(&self) -> usize {
        self.nodes.iter().map(|n| n.eqs.len()).sum()
    }
}

impl<O: Ops> fmt::Display for Program<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
                writeln!(f)?;
            }
            write!(f, "{n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velus_ops::{CConst, CTy, ClightOps};

    type E = Expr<ClightOps>;

    fn var(n: &str) -> E {
        Expr::Var(Ident::new(n), CTy::I32)
    }

    #[test]
    fn expr_types() {
        assert_eq!(var("x").ty(), CTy::I32);
        let c: E = Expr::Const(CConst::bool(true));
        assert_eq!(c.ty(), CTy::Bool);
        let w: E = Expr::When(Box::new(var("x")), Ident::new("k"), true);
        assert_eq!(w.ty(), CTy::I32);
    }

    #[test]
    fn free_vars_include_sampling_vars() {
        let w: E = Expr::When(Box::new(var("x")), Ident::new("k"), false);
        let mut fv = w.free_vars();
        fv.sort();
        assert_eq!(fv, vec![Ident::new("k"), Ident::new("x")]);
    }

    #[test]
    fn equation_reads_include_clock_vars() {
        let eq: Equation<ClightOps> = Equation::Def {
            x: Ident::new("y"),
            ck: Clock::Base.on(Ident::new("c"), true),
            rhs: CExpr::Expr(var("x")),
        };
        let mut reads = eq.reads();
        reads.sort();
        assert_eq!(reads, vec![Ident::new("c"), Ident::new("x")]);
        assert_eq!(eq.defined(), vec![Ident::new("y")]);
    }

    #[test]
    fn display_round_trip_shapes() {
        let eq: Equation<ClightOps> = Equation::Fby {
            x: Ident::new("c"),
            ck: Clock::Base,
            init: CConst::int(0),
            rhs: var("n"),
        };
        assert_eq!(eq.to_string(), "c =.= 0 fby n");
    }
}
