//! The well-clockedness judgment (§2.2).
//!
//! Clock checking guarantees that programs can execute synchronously,
//! without buffering: every equation is checked against its declared
//! clock, sampled expressions only combine streams on the right clocks,
//! and `merge` combines *complementary* streams.
//!
//! As with typing, we re-validate well-clockedness after each pass rather
//! than proving its preservation.

use velus_common::{Ident, IdentMap};
use velus_ops::Ops;

use crate::ast::{CExpr, Equation, Expr, Node, Program};
use crate::clock::Clock;
use crate::SemError;

type CkEnv = IdentMap<Clock>;

fn clock_error<T>(msg: String) -> Result<T, SemError> {
    Err(SemError::ClockError(msg))
}

/// Checks that expression `e` is well clocked *at* clock `ck`.
///
/// Constants are clock-polymorphic; every variable must sit on exactly the
/// expected clock; `e when x` shifts the expectation to the parent clock.
///
/// # Errors
///
/// Returns [`SemError::ClockError`] on any mismatch.
pub fn check_expr_clock<O: Ops>(env: &CkEnv, e: &Expr<O>, ck: &Clock) -> Result<(), SemError> {
    match e {
        Expr::Const(_) => Ok(()),
        Expr::Var(x, _) => match env.get(x) {
            None => Err(SemError::UndefinedVariable(*x)),
            Some(cx) if cx == ck => Ok(()),
            Some(cx) => clock_error(format!("variable {x} on clock {cx}, expected {ck}")),
        },
        Expr::Unop(_, e1, _) => check_expr_clock::<O>(env, e1, ck),
        Expr::Binop(_, e1, e2, _) => {
            check_expr_clock::<O>(env, e1, ck)?;
            check_expr_clock::<O>(env, e2, ck)
        }
        Expr::When(e1, x, k) => match ck {
            Clock::On(parent, y, k2) if y == x && k2 == k => {
                // The sampling variable must itself live on the parent clock.
                match env.get(x) {
                    None => Err(SemError::UndefinedVariable(*x)),
                    Some(cx) if cx == parent.as_ref() => check_expr_clock::<O>(env, e1, parent),
                    Some(cx) => {
                        clock_error(format!("sampler {x} on clock {cx}, expected {parent}"))
                    }
                }
            }
            _ => clock_error(format!("sampled expression `… when {x}` at clock {ck}")),
        },
    }
}

/// Checks that control expression `ce` is well clocked at clock `ck`.
///
/// # Errors
///
/// Returns [`SemError::ClockError`] on any mismatch.
pub fn check_cexpr_clock<O: Ops>(env: &CkEnv, ce: &CExpr<O>, ck: &Clock) -> Result<(), SemError> {
    match ce {
        CExpr::Merge(x, t, f) => {
            match env.get(x) {
                None => return Err(SemError::UndefinedVariable(*x)),
                Some(cx) if cx == ck => {}
                Some(cx) => {
                    return clock_error(format!("merge variable {x} on clock {cx}, expected {ck}"))
                }
            }
            check_cexpr_clock::<O>(env, t, &ck.clone().on(*x, true))?;
            check_cexpr_clock::<O>(env, f, &ck.clone().on(*x, false))
        }
        CExpr::If(c, t, f) => {
            check_expr_clock::<O>(env, c, ck)?;
            check_cexpr_clock::<O>(env, t, ck)?;
            check_cexpr_clock::<O>(env, f, ck)
        }
        CExpr::Expr(e) => check_expr_clock::<O>(env, e, ck),
    }
}

fn check_decl_clock(env: &CkEnv, x: Ident, ck: &Clock) -> Result<(), SemError> {
    if let Clock::On(parent, y, _) = ck {
        match env.get(y) {
            None => return Err(SemError::UndefinedVariable(*y)),
            Some(cy) if cy == parent.as_ref() => {}
            Some(cy) => {
                return clock_error(format!(
                    "declaration of {x}: sampler {y} on clock {cy}, expected {parent}"
                ))
            }
        }
        check_decl_clock(env, x, parent)?;
    }
    Ok(())
}

/// Checks one node; callee interfaces are needed for call equations.
///
/// # Errors
///
/// Returns the first clocking violation found.
pub fn check_node_clocks<O: Ops>(
    nodes_before: &IdentMap<&Node<O>>,
    node: &Node<O>,
) -> Result<(), SemError> {
    let mut env: CkEnv = velus_common::ident_map_with_capacity(
        node.inputs.len() + node.outputs.len() + node.locals.len(),
    );
    for d in node.inputs.iter().chain(&node.outputs).chain(&node.locals) {
        env.insert(d.name, d.ck.clone());
    }
    // Node interfaces live on the base clock (the paper's simplification:
    // all inputs and outputs of an application share one clock).
    for d in node.inputs.iter().chain(&node.outputs) {
        if d.ck != Clock::Base {
            return clock_error(format!(
                "interface variable {} must be on the base clock",
                d.name
            ));
        }
    }
    for d in node.locals.iter() {
        check_decl_clock(&env, d.name, &d.ck)?;
    }

    for eq in &node.eqs {
        check_eq_clocks::<O>(&env, nodes_before, eq)
            .map_err(|e| e.in_node_at(node.name, eq.defined().first().copied()))?;
    }
    Ok(())
}

/// Checks one equation against the node's clock environment.
fn check_eq_clocks<O: Ops>(
    env: &CkEnv,
    nodes_before: &IdentMap<&Node<O>>,
    eq: &Equation<O>,
) -> Result<(), SemError> {
    let ck = eq.clock();
    // The defined variables must be declared on the equation's clock.
    for &x in eq.defined() {
        match env.get(&x) {
            None => return Err(SemError::UndefinedVariable(x)),
            Some(cx) if cx == ck => {}
            Some(cx) => {
                return clock_error(format!("{x} declared on clock {cx} but defined on {ck}"))
            }
        }
    }
    check_decl_clock(env, eq.defined()[0], ck)?;
    match eq {
        Equation::Def { rhs, .. } => check_cexpr_clock::<O>(env, rhs, ck)?,
        Equation::Fby { rhs, .. } => check_expr_clock::<O>(env, rhs, ck)?,
        Equation::Call { node: f, args, .. } => {
            let _callee = nodes_before
                .get(f)
                .copied()
                .ok_or(SemError::UnknownNode(*f))?;
            for a in args {
                check_expr_clock::<O>(env, a, ck)?;
            }
        }
    }
    Ok(())
}

/// Checks well-clockedness of a whole program.
///
/// # Errors
///
/// Returns the first violation found, in declaration order.
pub fn check_program_clocks<O: Ops>(prog: &Program<O>) -> Result<(), SemError> {
    let mut declared: IdentMap<&Node<O>> = velus_common::ident_map_with_capacity(prog.nodes.len());
    for node in &prog.nodes {
        check_node_clocks::<O>(&declared, node).map_err(|e| e.in_node(node.name))?;
        declared.insert(node.name, node);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::VarDecl;
    use velus_ops::{CConst, CTy, ClightOps};

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    fn decl(name: &str, ty: CTy, ck: Clock) -> VarDecl<ClightOps> {
        VarDecl {
            name: id(name),
            ty,
            ck,
        }
    }

    /// node sampler(x: bool; v: int) returns (o: int)
    ///   var s: int when x;
    /// let s = v when x; o = merge x s ((0 fby o) whenot x); ...
    fn sampler_node(good: bool) -> Node<ClightOps> {
        let on_x = Clock::Base.on(id("x"), true);
        let s_clock = if good { on_x.clone() } else { Clock::Base };
        Node {
            name: id("sampler"),
            inputs: vec![
                decl("x", CTy::Bool, Clock::Base),
                decl("v", CTy::I32, Clock::Base),
            ],
            outputs: vec![decl("o", CTy::I32, Clock::Base)],
            locals: vec![decl("s", CTy::I32, s_clock.clone())],
            eqs: vec![
                Equation::Def {
                    x: id("s"),
                    ck: s_clock,
                    rhs: CExpr::Expr(Expr::When(
                        Box::new(Expr::Var(id("v"), CTy::I32)),
                        id("x"),
                        true,
                    )),
                },
                Equation::Def {
                    x: id("o"),
                    ck: Clock::Base,
                    rhs: CExpr::Merge(
                        id("x"),
                        Box::new(CExpr::Expr(Expr::Var(id("s"), CTy::I32))),
                        Box::new(CExpr::Expr(Expr::When(
                            Box::new(Expr::Const(CConst::int(0))),
                            id("x"),
                            false,
                        ))),
                    ),
                },
            ],
        }
    }

    #[test]
    fn accepts_well_clocked_sampling() {
        let p = Program::new(vec![sampler_node(true)]);
        assert_eq!(check_program_clocks(&p), Ok(()));
    }

    #[test]
    fn rejects_misdeclared_sampled_variable() {
        let p = Program::new(vec![sampler_node(false)]);
        assert!(matches!(
            check_program_clocks(&p).unwrap_err().innermost(),
            SemError::ClockError(_)
        ));
    }

    #[test]
    fn rejects_binop_across_clocks() {
        // o = v + (v when x) is not synchronizable.
        let n = Node {
            name: id("bad"),
            inputs: vec![
                decl("x", CTy::Bool, Clock::Base),
                decl("v", CTy::I32, Clock::Base),
            ],
            outputs: vec![decl("o", CTy::I32, Clock::Base)],
            locals: vec![],
            eqs: vec![Equation::Def {
                x: id("o"),
                ck: Clock::Base,
                rhs: CExpr::Expr(Expr::Binop(
                    velus_ops::CBinOp::Add,
                    Box::new(Expr::Var(id("v"), CTy::I32)),
                    Box::new(Expr::When(
                        Box::new(Expr::Var(id("v"), CTy::I32)),
                        id("x"),
                        true,
                    )),
                    CTy::I32,
                )),
            }],
        };
        let p = Program::new(vec![n]);
        assert!(matches!(
            check_program_clocks(&p).unwrap_err().innermost(),
            SemError::ClockError(_)
        ));
    }

    #[test]
    fn rejects_sampled_interface() {
        let mut n = sampler_node(true);
        n.outputs[0].ck = Clock::Base.on(id("x"), true);
        let p = Program::new(vec![n]);
        assert!(matches!(
            check_program_clocks(&p).unwrap_err().innermost(),
            SemError::ClockError(_)
        ));
    }
}
