//! Hierarchical clocks (paper Fig. 2).
//!
//! A clock describes when a stream carries a value: on the `base` clock of
//! the enclosing node, or on a sub-clock obtained by sampling another
//! (boolean) stream: `ck on x` holds when `ck` holds and `x` is true,
//! `ck onot x` when `ck` holds and `x` is false.

use std::fmt;

use velus_common::Ident;

/// A clock expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Clock {
    /// The base clock of the enclosing node.
    #[default]
    Base,
    /// A sub-clock: `on(ck, x, true)` is `ck on x`, `on(ck, x, false)` is
    /// `ck onot x`.
    On(Box<Clock>, Ident, bool),
}

impl Clock {
    /// Builds `self on x` (positive polarity) or `self onot x`.
    pub fn on(self, x: Ident, polarity: bool) -> Clock {
        Clock::On(Box::new(self), x, polarity)
    }

    /// Nesting depth: `base` is 0, each `on` adds one.
    pub fn depth(&self) -> usize {
        match self {
            Clock::Base => 0,
            Clock::On(ck, _, _) => 1 + ck.depth(),
        }
    }

    /// The sampling variables appearing in the clock, outermost last.
    pub fn vars(&self) -> Vec<Ident> {
        let mut out = Vec::new();
        self.vars_into(&mut out);
        out
    }

    /// Appends the sampling variables (outermost last) to `out` — the
    /// scratch-buffer form of [`Clock::vars`] used on the compile hot
    /// path.
    pub fn vars_into(&self, out: &mut Vec<Ident>) {
        if let Clock::On(parent, x, _) = self {
            parent.vars_into(out);
            out.push(*x);
        }
    }

    /// The immediate parent clock (`None` for `base`).
    pub fn parent(&self) -> Option<&Clock> {
        match self {
            Clock::Base => None,
            Clock::On(ck, _, _) => Some(ck),
        }
    }

    /// Whether `self` is `other` or a (transitive) sub-clock of it.
    pub fn is_suffix_of(&self, other: &Clock) -> bool {
        let mut ck = other;
        loop {
            if ck == self {
                return true;
            }
            match ck.parent() {
                Some(p) => ck = p,
                None => return false,
            }
        }
    }
}

impl fmt::Display for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Clock::Base => f.write_str("."),
            Clock::On(ck, x, true) => write!(f, "{ck} on {x}"),
            Clock::On(ck, x, false) => write!(f, "{ck} onot {x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Ident {
        Ident::new("x")
    }

    fn y() -> Ident {
        Ident::new("y")
    }

    #[test]
    fn display() {
        let ck = Clock::Base.on(x(), true).on(y(), false);
        assert_eq!(ck.to_string(), ". on x onot y");
    }

    #[test]
    fn depth_and_vars() {
        let ck = Clock::Base.on(x(), true).on(y(), false);
        assert_eq!(ck.depth(), 2);
        assert_eq!(ck.vars(), vec![x(), y()]);
        assert_eq!(Clock::Base.depth(), 0);
        assert!(Clock::Base.vars().is_empty());
    }

    #[test]
    fn suffix_relation() {
        let base = Clock::Base;
        let on_x = base.clone().on(x(), true);
        let on_xy = on_x.clone().on(y(), false);
        assert!(base.is_suffix_of(&on_xy));
        assert!(on_x.is_suffix_of(&on_xy));
        assert!(on_xy.is_suffix_of(&on_xy));
        assert!(!on_xy.is_suffix_of(&on_x));
        // Polarity matters.
        let on_x_neg = Clock::Base.on(x(), false);
        assert!(!on_x_neg.is_suffix_of(&on_xy));
    }
}
