//! The intermediate semantic model with exposed memories (§3.2).
//!
//! The dataflow judgment `G ⊢node f(xs, ys)` hides internal streams, which
//! blocks the correctness invariant of the translation. The paper's key
//! device is a second judgment `G ⊢mnode f(xs, M, ys)` that exposes a
//! memory tree `M`, isomorphic to the instance tree, mapping each `fby`
//! variable to the stream of values its imperative `state(x)` cell should
//! take across iterations.
//!
//! The executable rendition here evaluates *instant by instant*, carrying
//! the current memory tree — "taking an instantaneous snapshot gives the
//! usual imperative one" (§7) — and optionally records the full stream
//! tree `M` for checking `MemCorres` against an Obc execution.
//!
//! Evaluation requires the node's equations to be well scheduled (as does
//! the translation): within one instant, variables are read after they
//! are written, except `fby` variables which are read before.

use velus_common::{Ident, IdentMap};
use velus_ops::Ops;

use crate::ast::{CExpr, Equation, Expr, Node, Program};
use crate::clock::Clock;
use crate::memory::Memory;
use crate::streams::{SVal, StreamSet};
use crate::SemError;

/// The exposed memory `M`: for every `fby` variable, the stream of values
/// taken by the corresponding state cell, with sub-trees for instances.
pub type MemTrace<O> = Memory<Vec<<O as Ops>::Val>>;

/// Builds the initial memory tree for `node`: each `fby` cell holds its
/// initial constant, each instance holds the callee's initial tree.
///
/// This mirrors what the generated `reset` method establishes.
///
/// # Errors
///
/// Fails with [`SemError::UnknownNode`] if a call refers to a missing node.
pub fn initial_memory<O: Ops>(
    prog: &Program<O>,
    node: &Node<O>,
) -> Result<Memory<O::Val>, SemError> {
    let mut mem = Memory::new();
    for eq in &node.eqs {
        match eq {
            Equation::Fby { x, init, .. } => mem.set_value(*x, O::sem_const(init)),
            Equation::Call { xs, node: f, .. } => {
                let callee = prog.node(*f).ok_or(SemError::UnknownNode(*f))?;
                let sub = initial_memory(prog, callee)?;
                mem.instances.insert(xs[0], sub);
            }
            Equation::Def { .. } => {}
        }
    }
    Ok(mem)
}

/// Instantaneous environment `R` for one node, one instant.
type Env<O> = IdentMap<SVal<O>>;

/// One node's evaluation context for one instant: the local environment
/// plus read access to the memory tree. A `fby` variable that has not yet
/// been assigned in `env` reads its *pre-instant* memory value — the
/// paper's rule `sx(n) = ⟨ms(n)⟩` — which is what lets correctly scheduled
/// readers run before the `fby` equation itself.
struct Ctx<'a, O: Ops> {
    env: &'a Env<O>,
    mem: &'a Memory<O::Val>,
    base: bool,
}

impl<O: Ops> Ctx<'_, O> {
    fn read(&self, x: Ident) -> Result<SVal<O>, SemError> {
        if let Some(v) = self.env.get(&x) {
            return Ok(v.clone());
        }
        if let Some(v) = self.mem.value(x) {
            return Ok(SVal::Pres(v.clone()));
        }
        Err(SemError::BadSchedule(format!(
            "variable {x} read before written"
        )))
    }
}

fn clock_true<O: Ops>(ctx: &Ctx<'_, O>, ck: &Clock) -> Result<bool, SemError> {
    match ck {
        Clock::Base => Ok(ctx.base),
        Clock::On(parent, x, k) => {
            if !clock_true::<O>(ctx, parent)? {
                return Ok(false);
            }
            match ctx.read(*x)? {
                SVal::Pres(v) => match O::as_bool(&v) {
                    Some(b) => Ok(b == *k),
                    None => Err(SemError::TypeError(format!(
                        "clock variable {x} non-boolean"
                    ))),
                },
                SVal::Abs => Err(SemError::ClockError(format!(
                    "clock variable {x} absent under active parent clock"
                ))),
            }
        }
    }
}

fn eval_expr<O: Ops>(ctx: &Ctx<'_, O>, e: &Expr<O>) -> Result<O::Val, SemError> {
    match e {
        Expr::Const(c) => Ok(O::sem_const(c)),
        Expr::Var(x, _) => match ctx.read(*x)? {
            SVal::Pres(v) => Ok(v),
            SVal::Abs => Err(SemError::ClockError(format!(
                "variable {x} absent under active clock"
            ))),
        },
        Expr::Unop(op, e1, _) => {
            let v = eval_expr::<O>(ctx, e1)?;
            let ty = e1.ty();
            O::sem_unop(*op, &v, &ty)
                .ok_or_else(|| SemError::UndefinedOperation(format!("{op} {v}")))
        }
        Expr::Binop(op, e1, e2, _) => {
            let v1 = eval_expr::<O>(ctx, e1)?;
            let v2 = eval_expr::<O>(ctx, e2)?;
            O::sem_binop(*op, &v1, &e1.ty(), &v2, &e2.ty())
                .ok_or_else(|| SemError::UndefinedOperation(format!("{v1} {op} {v2}")))
        }
        Expr::When(e1, _, _) => eval_expr::<O>(ctx, e1),
    }
}

fn eval_cexpr<O: Ops>(ctx: &Ctx<'_, O>, ce: &CExpr<O>) -> Result<O::Val, SemError> {
    match ce {
        CExpr::Expr(e) => eval_expr::<O>(ctx, e),
        CExpr::Merge(x, t, f) => match ctx.read(*x)? {
            SVal::Pres(v) => match O::as_bool(&v) {
                Some(true) => eval_cexpr::<O>(ctx, t),
                Some(false) => eval_cexpr::<O>(ctx, f),
                None => Err(SemError::TypeError("merge on non-boolean".to_owned())),
            },
            SVal::Abs => Err(SemError::ClockError(format!(
                "merge variable {x} unavailable"
            ))),
        },
        CExpr::If(c, t, f) => {
            let cv = eval_expr::<O>(ctx, c)?;
            let tv = eval_cexpr::<O>(ctx, t)?;
            let fv = eval_cexpr::<O>(ctx, f)?;
            match O::as_bool(&cv) {
                Some(true) => Ok(tv),
                Some(false) => Ok(fv),
                None => Err(SemError::TypeError("mux guard non-boolean".to_owned())),
            }
        }
    }
}

/// The instant-by-instant evaluator with explicit memory.
pub struct MSem<'p, O: Ops> {
    prog: &'p Program<O>,
    node: &'p Node<O>,
    mem: Memory<O::Val>,
    /// When true, [`MSem::trace`] accumulates the exposed memory streams.
    record: bool,
    trace: MemTrace<O>,
    steps: usize,
}

impl<'p, O: Ops> MSem<'p, O> {
    /// Creates an evaluator for node `f`, with the memory in its initial
    /// (post-`reset`) state.
    ///
    /// # Errors
    ///
    /// Fails if the node does not exist or a call target is missing.
    pub fn new(prog: &'p Program<O>, f: Ident) -> Result<Self, SemError> {
        let node = prog.node(f).ok_or(SemError::UnknownNode(f))?;
        let mem = initial_memory(prog, node)?;
        Ok(MSem {
            prog,
            node,
            mem,
            record: false,
            trace: Memory::new(),
            steps: 0,
        })
    }

    /// Enables recording of the exposed-memory streams `M`.
    pub fn recording(mut self) -> Self {
        self.record = true;
        self
    }

    /// The current memory tree (the instantaneous snapshot).
    pub fn memory(&self) -> &Memory<O::Val> {
        &self.mem
    }

    /// The recorded memory streams; `trace.values[x][n]` is the value of
    /// the paper's `M.values(x)(n)` — the state *before* instant `n`.
    pub fn trace(&self) -> &MemTrace<O> {
        &self.trace
    }

    /// Number of instants executed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Executes one instant with the given input values (one per declared
    /// input; all present on an active base, or all absent) and returns
    /// the output values.
    ///
    /// # Errors
    ///
    /// Propagates scheduling violations, clocking inconsistencies and
    /// undefined operator applications.
    pub fn step(&mut self, inputs: &[SVal<O>]) -> Result<Vec<SVal<O>>, SemError> {
        if inputs.len() != self.node.inputs.len() {
            return Err(SemError::InputMismatch(format!(
                "{} inputs supplied, {} declared",
                inputs.len(),
                self.node.inputs.len()
            )));
        }
        let base = if inputs.is_empty() {
            true
        } else {
            let p = inputs[0].is_present();
            if inputs.iter().any(|v| v.is_present() != p) {
                return Err(SemError::ClockError(
                    "inputs have mismatched presence".to_owned(),
                ));
            }
            p
        };
        if self.record {
            record_snapshot::<O>(&self.mem, &mut self.trace);
        }
        let prog = self.prog;
        let node = self.node;
        let mut env: Env<O> = IdentMap::default();
        for (d, v) in node.inputs.iter().zip(inputs) {
            env.insert(d.name, v.clone());
        }
        step_equations(prog, node, &mut self.mem, &mut env, base)?;
        self.steps += 1;
        Ok(node
            .outputs
            .iter()
            .map(|d| env.get(&d.name).cloned().unwrap_or(SVal::Abs))
            .collect())
    }

    /// Runs `n` instants from a stream set and collects the outputs.
    ///
    /// # Errors
    ///
    /// See [`MSem::step`].
    pub fn run(&mut self, inputs: &StreamSet<O>, n: usize) -> Result<StreamSet<O>, SemError> {
        let mut outs: StreamSet<O> = vec![Vec::with_capacity(n); self.node.outputs.len()];
        for i in 0..n {
            let at: Vec<SVal<O>> = inputs
                .iter()
                .map(|s| {
                    s.get(i).cloned().ok_or_else(|| {
                        SemError::InputMismatch(format!("input stream exhausted at instant {i}"))
                    })
                })
                .collect::<Result<_, _>>()?;
            let o = self.step(&at)?;
            for (k, v) in o.into_iter().enumerate() {
                outs[k].push(v);
            }
        }
        Ok(outs)
    }
}

/// Appends the current value of every cell (recursively) to the trace.
fn record_snapshot<O: Ops>(mem: &Memory<O::Val>, trace: &mut MemTrace<O>) {
    for (x, v) in &mem.values {
        trace.values.entry(*x).or_default().push(v.clone());
    }
    for (i, sub) in &mem.instances {
        record_snapshot::<O>(sub, trace.instance_mut(*i));
    }
}

/// Evaluates the equations of `node` (in their scheduled order) for one
/// instant, updating `mem` and filling `env`.
fn step_equations<O: Ops>(
    prog: &Program<O>,
    node: &Node<O>,
    mem: &mut Memory<O::Val>,
    env: &mut Env<O>,
    base: bool,
) -> Result<(), SemError> {
    for eq in &node.eqs {
        let active = clock_true::<O>(&Ctx { env, mem, base }, eq.clock())?;
        match eq {
            Equation::Def { x, rhs, .. } => {
                let v = if active {
                    SVal::Pres(eval_cexpr::<O>(&Ctx { env, mem, base }, rhs)?)
                } else {
                    SVal::Abs
                };
                env.insert(*x, v);
            }
            Equation::Fby { x, rhs, .. } => {
                if active {
                    let cur = mem
                        .value(*x)
                        .cloned()
                        .ok_or_else(|| SemError::Malformed(format!("missing memory cell {x}")))?;
                    env.insert(*x, SVal::Pres(cur));
                    let next = eval_expr::<O>(&Ctx { env, mem, base }, rhs)?;
                    mem.set_value(*x, next);
                } else {
                    env.insert(*x, SVal::Abs);
                }
            }
            Equation::Call {
                xs, node: f, args, ..
            } => {
                let callee = prog.node(*f).ok_or(SemError::UnknownNode(*f))?;
                if active {
                    let vals: Vec<SVal<O>> = args
                        .iter()
                        .map(|a| eval_expr::<O>(&Ctx { env, mem, base }, a).map(SVal::Pres))
                        .collect::<Result<_, _>>()?;
                    let sub = mem.instance_mut(xs[0]);
                    let mut sub_env: Env<O> = IdentMap::default();
                    for (d, v) in callee.inputs.iter().zip(&vals) {
                        sub_env.insert(d.name, v.clone());
                    }
                    step_equations(prog, callee, sub, &mut sub_env, true)?;
                    for (x, d) in xs.iter().zip(&callee.outputs) {
                        let v = sub_env
                            .get(&d.name)
                            .cloned()
                            .ok_or(SemError::UndefinedVariable(d.name))?;
                        env.insert(*x, v);
                    }
                } else {
                    for x in xs {
                        env.insert(*x, SVal::Abs);
                    }
                }
            }
        }
    }
    Ok(())
}

/// Runs node `f` for `n` instants, recording the exposed memory: the
/// executable `G ⊢mnode f(xs, M, ys)`.
///
/// Returns the outputs and the memory stream tree `M`.
///
/// # Errors
///
/// See [`MSem::step`].
pub fn run_node_with_memory<O: Ops>(
    prog: &Program<O>,
    f: Ident,
    inputs: &StreamSet<O>,
    n: usize,
) -> Result<(StreamSet<O>, MemTrace<O>), SemError> {
    let mut m = MSem::new(prog, f)?.recording();
    let outs = m.run(inputs, n)?;
    Ok((outs, m.trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::VarDecl;
    use crate::dataflow;
    use velus_ops::{CBinOp, CConst, CTy, CVal, ClightOps};

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    fn decl(name: &str, ty: CTy) -> VarDecl<ClightOps> {
        VarDecl {
            name: id(name),
            ty,
            ck: Clock::Base,
        }
    }

    fn pres(vs: &[i32]) -> Vec<SVal<ClightOps>> {
        vs.iter().map(|&v| SVal::Pres(CVal::int(v))).collect()
    }

    /// cum = 0 fby (cum + x), scheduled form: y = cum + x; cum = 0 fby y.
    fn accumulator() -> Program<ClightOps> {
        let node = Node {
            name: id("acc"),
            inputs: vec![decl("x", CTy::I32)],
            outputs: vec![decl("y", CTy::I32)],
            locals: vec![decl("cum", CTy::I32)],
            eqs: vec![
                Equation::Def {
                    x: id("y"),
                    ck: Clock::Base,
                    rhs: CExpr::Expr(Expr::Binop(
                        CBinOp::Add,
                        Box::new(Expr::Var(id("cum"), CTy::I32)),
                        Box::new(Expr::Var(id("x"), CTy::I32)),
                        CTy::I32,
                    )),
                },
                Equation::Fby {
                    x: id("cum"),
                    ck: Clock::Base,
                    init: CConst::int(0),
                    rhs: Expr::Var(id("y"), CTy::I32),
                },
            ],
        };
        Program::new(vec![node])
    }

    #[test]
    fn matches_dataflow_semantics() {
        let prog = accumulator();
        let inputs = vec![pres(&[1, 2, 3, 4])];
        let df = dataflow::run_node(&prog, id("acc"), &inputs, 4).unwrap();
        let (ms, _) = run_node_with_memory(&prog, id("acc"), &inputs, 4).unwrap();
        assert_eq!(df, ms);
        assert_eq!(ms[0], pres(&[1, 3, 6, 10]));
    }

    #[test]
    fn memory_trace_is_the_pre_instant_state() {
        let prog = accumulator();
        let inputs = vec![pres(&[1, 2, 3, 4])];
        let (_, m) = run_node_with_memory(&prog, id("acc"), &inputs, 4).unwrap();
        // M.values(cum)(n) is the state before instant n: 0, 1, 3, 6.
        let cum: Vec<i32> = m.values[&id("cum")]
            .iter()
            .map(|v| match v {
                CVal::Int(i) => *i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(cum, vec![0, 1, 3, 6]);
    }

    #[test]
    fn reading_before_writing_is_a_schedule_error() {
        // Unscheduled: y reads z before z's equation runs.
        let node = Node {
            name: id("bad"),
            inputs: vec![decl("x", CTy::I32)],
            outputs: vec![decl("y", CTy::I32)],
            locals: vec![decl("z", CTy::I32)],
            eqs: vec![
                Equation::Def {
                    x: id("y"),
                    ck: Clock::Base,
                    rhs: CExpr::Expr(Expr::Var(id("z"), CTy::I32)),
                },
                Equation::Def {
                    x: id("z"),
                    ck: Clock::Base,
                    rhs: CExpr::Expr(Expr::Var(id("x"), CTy::I32)),
                },
            ],
        };
        let prog = Program::new(vec![node]);
        let mut m = MSem::new(&prog, id("bad")).unwrap();
        let err = m.step(&pres(&[1])).unwrap_err();
        assert!(matches!(err, SemError::BadSchedule(_)));
    }
}
