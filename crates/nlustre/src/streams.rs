//! Stream values with explicit presence and absence (§3.1).
//!
//! The paper models streams as functions from instants to a value domain
//! that explicitly encodes presence (`⟨v⟩`) and absence (`abs`); the gaps
//! of sampled streams stay in place rather than being squeezed out as in a
//! Kahn semantics. [`SVal`] is that domain.

use std::fmt;

use velus_ops::Ops;

/// A synchronous stream value at one instant: present with a value, or
/// absent.
#[derive(Debug, Clone, PartialEq)]
pub enum SVal<O: Ops> {
    /// The stream carries no value at this instant.
    Abs,
    /// The stream carries value `v` at this instant (`⟨v⟩`).
    Pres(O::Val),
}

impl<O: Ops> SVal<O> {
    /// Whether the value is present.
    pub fn is_present(&self) -> bool {
        matches!(self, SVal::Pres(_))
    }

    /// The carried value, if present.
    pub fn value(&self) -> Option<&O::Val> {
        match self {
            SVal::Abs => None,
            SVal::Pres(v) => Some(v),
        }
    }

    /// Extracts the value, consuming `self`.
    pub fn into_value(self) -> Option<O::Val> {
        match self {
            SVal::Abs => None,
            SVal::Pres(v) => Some(v),
        }
    }
}

impl<O: Ops> fmt::Display for SVal<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SVal::Abs => f.write_str("."),
            SVal::Pres(v) => write!(f, "{v}"),
        }
    }
}

/// A finite prefix of a set of named streams: `streams[i][n]` is the value
/// of stream `i` at instant `n`.
///
/// Used for node inputs and outputs in the semantic APIs.
pub type StreamSet<O> = Vec<Vec<SVal<O>>>;

/// Builds an always-present stream set from plain values, one inner vector
/// per stream.
///
/// # Examples
///
/// ```
/// use velus_nlustre::streams::{present_streams, SVal};
/// use velus_ops::{ClightOps, CVal};
///
/// let s = present_streams::<ClightOps>(vec![vec![CVal::int(1), CVal::int(2)]]);
/// assert_eq!(s[0][1], SVal::Pres(CVal::int(2)));
/// ```
pub fn present_streams<O: Ops>(values: Vec<Vec<O::Val>>) -> StreamSet<O> {
    values
        .into_iter()
        .map(|vs| vs.into_iter().map(SVal::Pres).collect())
        .collect()
}

/// The `clock#` operator of the paper: the boolean base clock derived from
/// a stream — true exactly when the stream is present.
pub fn clock_sharp<O: Ops>(stream: &[SVal<O>]) -> Vec<bool> {
    stream.iter().map(SVal::is_present).collect()
}

/// Renders a stream set as the kind of semantic table shown in §2.2,
/// one row per stream.
pub fn render_table<O: Ops>(names: &[&str], streams: &StreamSet<O>) -> String {
    let mut out = String::new();
    for (name, s) in names.iter().zip(streams) {
        out.push_str(name);
        for v in s {
            out.push_str(&format!(" {v}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use velus_ops::{CVal, ClightOps};

    type V = SVal<ClightOps>;

    #[test]
    fn presence() {
        let a: V = SVal::Abs;
        let p: V = SVal::Pres(CVal::int(3));
        assert!(!a.is_present());
        assert!(p.is_present());
        assert_eq!(p.value(), Some(&CVal::int(3)));
        assert_eq!(a.clone().into_value(), None);
    }

    #[test]
    fn clock_sharp_matches_presence() {
        let s: Vec<V> = vec![
            SVal::Pres(CVal::int(1)),
            SVal::Abs,
            SVal::Pres(CVal::int(2)),
        ];
        assert_eq!(clock_sharp::<ClightOps>(&s), vec![true, false, true]);
    }

    #[test]
    fn table_rendering() {
        let s = present_streams::<ClightOps>(vec![vec![CVal::int(1)]]);
        let t = render_table::<ClightOps>(&["x"], &s);
        assert_eq!(t, "x 1\n");
    }
}
