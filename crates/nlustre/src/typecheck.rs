//! Well-formedness and well-typedness of SN-Lustre programs.
//!
//! The paper proves that elaboration yields well-typed, well-clocked
//! N-Lustre (§2.1). Because our pipeline is unverified, we instead make
//! the judgments *checkable* and re-validate them after every transforming
//! pass; the translation-validation harness in the `velus` crate calls
//! these checks between stages.
//!
//! [`check_program`] verifies, for every node:
//!
//! * structural sanity: distinct node names, distinct variable names,
//!   every non-input defined exactly once, inputs never defined, calls
//!   referring to *previously declared* nodes with matching arities;
//! * the typing judgment: every annotation matches the operator
//!   interface's typing functions, equation left- and right-hand sides
//!   agree, call arguments and results match the callee's signature.

use velus_common::{IdentMap, IdentSet};
use velus_ops::Ops;

use crate::ast::{CExpr, Equation, Expr, Node, Program};
use crate::SemError;

type Env<O> = IdentMap<<O as Ops>::Ty>;

fn type_error<T>(msg: String) -> Result<T, SemError> {
    Err(SemError::TypeError(msg))
}

/// Checks an expression and returns its type.
///
/// # Errors
///
/// Returns a [`SemError::TypeError`] (or [`SemError::UndefinedVariable`])
/// when an annotation is inconsistent with the operator interface.
pub fn check_expr<O: Ops>(env: &Env<O>, e: &Expr<O>) -> Result<O::Ty, SemError> {
    match e {
        Expr::Var(x, ty) => match env.get(x) {
            None => Err(SemError::UndefinedVariable(*x)),
            Some(dty) if dty == ty => Ok(ty.clone()),
            Some(dty) => type_error(format!("variable {x} annotated {ty}, declared {dty}")),
        },
        Expr::Const(c) => Ok(O::type_of_const(c)),
        Expr::Unop(op, e1, ty) => {
            let t1 = check_expr::<O>(env, e1)?;
            match O::type_unop(*op, &t1) {
                Some(rt) if rt == *ty => Ok(rt),
                Some(rt) => type_error(format!("unop {op} annotated {ty}, inferred {rt}")),
                None => type_error(format!("unop {op} inapplicable to {t1}")),
            }
        }
        Expr::Binop(op, e1, e2, ty) => {
            let t1 = check_expr::<O>(env, e1)?;
            let t2 = check_expr::<O>(env, e2)?;
            match O::type_binop(*op, &t1, &t2) {
                Some(rt) if rt == *ty => Ok(rt),
                Some(rt) => type_error(format!("binop {op} annotated {ty}, inferred {rt}")),
                None => type_error(format!("binop {op} inapplicable to {t1}, {t2}")),
            }
        }
        Expr::When(e1, x, _) => {
            let t = check_expr::<O>(env, e1)?;
            match env.get(x) {
                None => Err(SemError::UndefinedVariable(*x)),
                Some(tx) if *tx == O::bool_type() => Ok(t),
                Some(tx) => type_error(format!(
                    "sampling variable {x} has type {tx}, expected bool"
                )),
            }
        }
    }
}

/// Checks a control expression and returns its type.
///
/// # Errors
///
/// See [`check_expr`].
pub fn check_cexpr<O: Ops>(env: &Env<O>, ce: &CExpr<O>) -> Result<O::Ty, SemError> {
    match ce {
        CExpr::Merge(x, t, f) => {
            match env.get(x) {
                None => return Err(SemError::UndefinedVariable(*x)),
                Some(tx) if *tx == O::bool_type() => {}
                Some(tx) => {
                    return type_error(format!("merge variable {x} has type {tx}, expected bool"))
                }
            }
            let tt = check_cexpr::<O>(env, t)?;
            let tf = check_cexpr::<O>(env, f)?;
            if tt == tf {
                Ok(tt)
            } else {
                type_error(format!("merge branches disagree: {tt} vs {tf}"))
            }
        }
        CExpr::If(c, t, f) => {
            let tc = check_expr::<O>(env, c)?;
            if tc != O::bool_type() {
                return type_error(format!("mux guard has type {tc}, expected bool"));
            }
            let tt = check_cexpr::<O>(env, t)?;
            let tf = check_cexpr::<O>(env, f)?;
            if tt == tf {
                Ok(tt)
            } else {
                type_error(format!("mux branches disagree: {tt} vs {tf}"))
            }
        }
        CExpr::Expr(e) => check_expr::<O>(env, e),
    }
}

fn build_env<O: Ops>(node: &Node<O>) -> Result<Env<O>, SemError> {
    let mut env: Env<O> = velus_common::ident_map_with_capacity(
        node.inputs.len() + node.outputs.len() + node.locals.len(),
    );
    for d in node.inputs.iter().chain(&node.outputs).chain(&node.locals) {
        if env.insert(d.name, d.ty.clone()).is_some() {
            return Err(SemError::Malformed(format!(
                "duplicate declaration of {}",
                d.name
            )));
        }
    }
    Ok(env)
}

fn check_equation<O: Ops>(
    env: &Env<O>,
    declared_before: &IdentMap<&Node<O>>,
    eq: &Equation<O>,
) -> Result<(), SemError> {
    match eq {
        Equation::Def { x, rhs, .. } => {
            let trhs = check_cexpr::<O>(env, rhs)?;
            let tx = env.get(x).ok_or(SemError::UndefinedVariable(*x))?;
            if *tx != trhs {
                return type_error(format!("{x} has type {tx} but is defined with type {trhs}"));
            }
            Ok(())
        }
        Equation::Fby { x, init, rhs, .. } => {
            let trhs = check_expr::<O>(env, rhs)?;
            let tinit = O::type_of_const(init);
            let tx = env.get(x).ok_or(SemError::UndefinedVariable(*x))?;
            if tinit != trhs {
                return type_error(format!("fby initial value has type {tinit}, body {trhs}"));
            }
            if *tx != trhs {
                return type_error(format!("{x} has type {tx} but fby produces {trhs}"));
            }
            Ok(())
        }
        Equation::Call {
            xs, node: f, args, ..
        } => {
            let callee = declared_before
                .get(f)
                .copied()
                .ok_or(SemError::UnknownNode(*f))?;
            if callee.inputs.len() != args.len() {
                return Err(SemError::InputMismatch(format!(
                    "call to {f}: {} arguments for {} inputs",
                    args.len(),
                    callee.inputs.len()
                )));
            }
            if callee.outputs.len() != xs.len() {
                return Err(SemError::InputMismatch(format!(
                    "call to {f}: {} result variables for {} outputs",
                    xs.len(),
                    callee.outputs.len()
                )));
            }
            for (a, d) in args.iter().zip(&callee.inputs) {
                let ta = check_expr::<O>(env, a)?;
                if ta != d.ty {
                    return type_error(format!(
                        "call to {f}: argument for {} has type {ta}, expected {}",
                        d.name, d.ty
                    ));
                }
            }
            for (x, d) in xs.iter().zip(&callee.outputs) {
                let tx = env.get(x).ok_or(SemError::UndefinedVariable(*x))?;
                if *tx != d.ty {
                    return type_error(format!(
                        "call to {f}: result {x} has type {tx}, output {} has type {}",
                        d.name, d.ty
                    ));
                }
            }
            Ok(())
        }
    }
}

/// Checks one node against the nodes declared before it.
///
/// # Errors
///
/// Returns the first structural or typing violation found.
pub fn check_node<O: Ops>(
    declared_before: &IdentMap<&Node<O>>,
    node: &Node<O>,
) -> Result<(), SemError> {
    let env = build_env::<O>(node)?;
    if node.outputs.is_empty() {
        return Err(SemError::Malformed("node has no outputs".to_owned()));
    }

    // Every output and local is defined exactly once; inputs never.
    let mut defined: IdentSet =
        velus_common::ident_set_with_capacity(node.outputs.len() + node.locals.len());
    for eq in &node.eqs {
        for &x in eq.defined() {
            if node.is_input(x) {
                return Err(SemError::Malformed(format!(
                    "input {x} is defined by an equation"
                )));
            }
            if !defined.insert(x) {
                return Err(SemError::Malformed(format!("variable {x} defined twice")));
            }
        }
        // Call results must be pairwise distinct (checked above via `defined`),
        // and the instance is identified by the first result variable.
        check_equation::<O>(&env, declared_before, eq)
            .map_err(|e| e.in_node_at(node.name, eq.defined().first().copied()))?;
    }
    for d in node.outputs.iter().chain(&node.locals) {
        if !defined.contains(&d.name) {
            return Err(SemError::Malformed(format!(
                "variable {} is never defined",
                d.name
            )));
        }
    }
    Ok(())
}

/// Checks a whole program: structure and typing of every node, with calls
/// restricted to previously declared nodes (which rules out recursion, as
/// the paper requires).
///
/// # Errors
///
/// Returns the first violation found, in declaration order.
pub fn check_program<O: Ops>(prog: &Program<O>) -> Result<(), SemError> {
    let mut declared: IdentMap<&Node<O>> = velus_common::ident_map_with_capacity(prog.nodes.len());
    for node in &prog.nodes {
        if declared.contains_key(&node.name) {
            return Err(SemError::Malformed(format!(
                "duplicate node name {}",
                node.name
            )));
        }
        check_node::<O>(&declared, node).map_err(|e| e.in_node(node.name))?;
        declared.insert(node.name, node);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::VarDecl;
    use crate::clock::Clock;
    use velus_common::Ident;
    use velus_ops::{CBinOp, CConst, CTy, ClightOps};

    type P = Program<ClightOps>;

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    fn decl(name: &str, ty: CTy) -> VarDecl<ClightOps> {
        VarDecl {
            name: id(name),
            ty,
            ck: Clock::Base,
        }
    }

    /// node double(x: int) returns (y: int) let y = x + x; tel
    fn double() -> Node<ClightOps> {
        Node {
            name: id("double"),
            inputs: vec![decl("x", CTy::I32)],
            outputs: vec![decl("y", CTy::I32)],
            locals: vec![],
            eqs: vec![Equation::Def {
                x: id("y"),
                ck: Clock::Base,
                rhs: CExpr::Expr(Expr::Binop(
                    CBinOp::Add,
                    Box::new(Expr::Var(id("x"), CTy::I32)),
                    Box::new(Expr::Var(id("x"), CTy::I32)),
                    CTy::I32,
                )),
            }],
        }
    }

    #[test]
    fn accepts_well_typed_node() {
        let p = P::new(vec![double()]);
        assert_eq!(check_program(&p), Ok(()));
    }

    #[test]
    fn rejects_bad_annotation() {
        let mut n = double();
        if let Equation::Def {
            rhs: CExpr::Expr(Expr::Binop(_, _, _, ty)),
            ..
        } = &mut n.eqs[0]
        {
            *ty = CTy::Bool;
        }
        let p = P::new(vec![n]);
        assert!(matches!(
            check_program(&p).unwrap_err().innermost(),
            SemError::TypeError(_)
        ));
    }

    #[test]
    fn rejects_undefined_output() {
        let mut n = double();
        n.eqs.clear();
        let p = P::new(vec![n]);
        assert!(matches!(
            check_program(&p).unwrap_err().innermost(),
            SemError::Malformed(_)
        ));
    }

    #[test]
    fn rejects_double_definition() {
        let mut n = double();
        let eq = n.eqs[0].clone();
        n.eqs.push(eq);
        let p = P::new(vec![n]);
        assert!(matches!(
            check_program(&p).unwrap_err().innermost(),
            SemError::Malformed(_)
        ));
    }

    #[test]
    fn rejects_input_definition() {
        let mut n = double();
        n.eqs.push(Equation::Def {
            x: id("x"),
            ck: Clock::Base,
            rhs: CExpr::Expr(Expr::Const(CConst::int(0))),
        });
        let p = P::new(vec![n]);
        assert!(matches!(
            check_program(&p).unwrap_err().innermost(),
            SemError::Malformed(_)
        ));
    }

    #[test]
    fn rejects_call_to_later_node() {
        // caller declared before callee: forward reference is rejected.
        let caller = Node {
            name: id("caller"),
            inputs: vec![decl("a", CTy::I32)],
            outputs: vec![decl("b", CTy::I32)],
            locals: vec![],
            eqs: vec![Equation::Call {
                xs: vec![id("b")],
                ck: Clock::Base,
                node: id("double"),
                args: vec![Expr::Var(id("a"), CTy::I32)],
            }],
        };
        let p = P::new(vec![caller, double()]);
        assert!(matches!(
            check_program(&p).unwrap_err().innermost(),
            SemError::UnknownNode(_)
        ));
        let p = P::new(vec![double(), p.nodes[0].clone()]);
        assert_eq!(check_program(&p), Ok(()));
    }

    #[test]
    fn rejects_fby_type_mismatch() {
        let n = Node {
            name: id("bad"),
            inputs: vec![decl("x", CTy::I32)],
            outputs: vec![decl("y", CTy::I32)],
            locals: vec![],
            eqs: vec![Equation::Fby {
                x: id("y"),
                ck: Clock::Base,
                init: CConst::bool(true),
                rhs: Expr::Var(id("x"), CTy::I32),
            }],
        };
        let p = P::new(vec![n]);
        assert!(matches!(
            check_program(&p).unwrap_err().innermost(),
            SemError::TypeError(_)
        ));
    }
}
