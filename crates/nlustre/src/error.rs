//! Semantic and structural errors of the dataflow layer.

use std::fmt;

use velus_common::Ident;

/// Errors raised by the semantic models and the scheduling passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemError {
    /// A variable with no defining equation (and not an input) was read.
    UndefinedVariable(Ident),
    /// A node instantiation refers to a node that does not exist.
    UnknownNode(Ident),
    /// The demand-driven evaluation looped: instantaneous dependency cycle.
    CausalityLoop(Ident),
    /// An operator was applied outside its domain (e.g. division by zero).
    UndefinedOperation(String),
    /// A clocking inconsistency surfaced at run time (should have been
    /// ruled out by clock checking).
    ClockError(String),
    /// A value failed the typing judgment at run time (should have been
    /// ruled out by type checking).
    TypeError(String),
    /// Inputs of mismatched arity or length were supplied to a node.
    InputMismatch(String),
    /// The equations of a node cannot be scheduled (dependency cycle).
    SchedulingCycle(Ident, Vec<Ident>),
    /// A schedule failed validation.
    BadSchedule(String),
    /// A structural well-formedness violation (duplicate names, …).
    Malformed(String),
}

impl fmt::Display for SemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemError::UndefinedVariable(x) => write!(f, "undefined variable {x}"),
            SemError::UnknownNode(n) => write!(f, "unknown node {n}"),
            SemError::CausalityLoop(x) => write!(f, "causality loop through variable {x}"),
            SemError::UndefinedOperation(m) => write!(f, "undefined operation: {m}"),
            SemError::ClockError(m) => write!(f, "clock inconsistency: {m}"),
            SemError::TypeError(m) => write!(f, "type inconsistency: {m}"),
            SemError::InputMismatch(m) => write!(f, "input mismatch: {m}"),
            SemError::SchedulingCycle(node, vars) => {
                let vars: Vec<String> = vars.iter().map(|v| v.to_string()).collect();
                write!(
                    f,
                    "dependency cycle in node {node} through {}",
                    vars.join(" -> ")
                )
            }
            SemError::BadSchedule(m) => write!(f, "invalid schedule: {m}"),
            SemError::Malformed(m) => write!(f, "malformed program: {m}"),
        }
    }
}

impl std::error::Error for SemError {}
