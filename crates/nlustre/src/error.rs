//! Semantic and structural errors of the dataflow layer.

use std::fmt;

use velus_common::{codes, Code, Diagnostic, Diagnostics, Ident, Span, SpanMap, ToDiagnostics};

/// Errors raised by the semantic models and the scheduling passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemError {
    /// A variable with no defining equation (and not an input) was read.
    UndefinedVariable(Ident),
    /// A node instantiation refers to a node that does not exist.
    UnknownNode(Ident),
    /// The demand-driven evaluation looped: instantaneous dependency cycle.
    CausalityLoop(Ident),
    /// An operator was applied outside its domain (e.g. division by zero).
    UndefinedOperation(String),
    /// A clocking inconsistency surfaced at run time (should have been
    /// ruled out by clock checking).
    ClockError(String),
    /// A value failed the typing judgment at run time (should have been
    /// ruled out by type checking).
    TypeError(String),
    /// Inputs of mismatched arity or length were supplied to a node.
    InputMismatch(String),
    /// The equations of a node cannot be scheduled (dependency cycle).
    SchedulingCycle(Ident, Vec<Ident>),
    /// A schedule failed validation.
    BadSchedule(String),
    /// A structural well-formedness violation (duplicate names, …).
    Malformed(String),
    /// An error located in a node, optionally at the equation defining
    /// `var` — the context the checkers attach so [`ToDiagnostics`] can
    /// resolve a real source span through the `SpanMap`.
    InNode {
        /// The node the inner error was found in.
        node: Ident,
        /// The variable whose defining equation is at fault, if known.
        var: Option<Ident>,
        /// The underlying error.
        inner: Box<SemError>,
    },
}

impl SemError {
    /// Wraps the error with node context (no-op on already-wrapped
    /// errors: the innermost context is the most precise).
    #[must_use]
    pub fn in_node(self, node: Ident) -> SemError {
        self.in_node_at(node, None)
    }

    /// Wraps the error with node context and the defining variable of
    /// the offending equation.
    #[must_use]
    pub fn in_node_at(self, node: Ident, var: Option<Ident>) -> SemError {
        match self {
            SemError::InNode { .. } => self,
            inner => SemError::InNode {
                node,
                var,
                inner: Box::new(inner),
            },
        }
    }

    /// The error inside any `InNode` context wrappers (what tests and
    /// callers that dispatch on the failure kind should match on).
    pub fn innermost(&self) -> &SemError {
        match self {
            SemError::InNode { inner, .. } => inner.innermost(),
            other => other,
        }
    }

    /// The stable diagnostic code of the (innermost) error.
    pub fn code(&self) -> Code {
        match self {
            SemError::UndefinedVariable(_) => codes::E0401,
            SemError::UnknownNode(_) => codes::E0402,
            SemError::CausalityLoop(_) => codes::E0403,
            SemError::UndefinedOperation(_) => codes::E0404,
            SemError::ClockError(_) => codes::E0405,
            SemError::TypeError(_) => codes::E0406,
            SemError::InputMismatch(_) => codes::E0407,
            SemError::SchedulingCycle(..) => codes::E0408,
            SemError::BadSchedule(_) => codes::E0409,
            SemError::Malformed(_) => codes::E0410,
            SemError::InNode { inner, .. } => inner.code(),
        }
    }
}

impl fmt::Display for SemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemError::UndefinedVariable(x) => write!(f, "undefined variable {x}"),
            SemError::UnknownNode(n) => write!(f, "unknown node {n}"),
            SemError::CausalityLoop(x) => write!(f, "causality loop through variable {x}"),
            SemError::UndefinedOperation(m) => write!(f, "undefined operation: {m}"),
            SemError::ClockError(m) => write!(f, "clock inconsistency: {m}"),
            SemError::TypeError(m) => write!(f, "type inconsistency: {m}"),
            SemError::InputMismatch(m) => write!(f, "input mismatch: {m}"),
            SemError::SchedulingCycle(node, vars) => {
                let vars: Vec<String> = vars.iter().map(|v| v.to_string()).collect();
                write!(
                    f,
                    "dependency cycle in node {node} through {}",
                    vars.join(" -> ")
                )
            }
            SemError::BadSchedule(m) => write!(f, "invalid schedule: {m}"),
            SemError::Malformed(m) => write!(f, "malformed program: {m}"),
            SemError::InNode { node, inner, .. } => write!(f, "in node {node}: {inner}"),
        }
    }
}

impl std::error::Error for SemError {}

impl ToDiagnostics for SemError {
    /// One diagnostic per error, with the span resolved through the
    /// context the error carries: an `InNode` wrapper points at the
    /// offending equation (or the node header), a scheduling cycle
    /// points at the first equation on the cycle and annotates the
    /// rest as notes.
    fn to_diagnostics(&self, spans: &SpanMap) -> Diagnostics {
        let d = match self {
            SemError::SchedulingCycle(node, vars) => {
                let primary = vars
                    .first()
                    .map_or_else(|| spans.node_span(*node), |v| spans.eq_span(*node, *v));
                let mut d = Diagnostic::error(self.code(), self.to_string(), primary);
                for v in vars.iter().skip(1) {
                    let sp = spans.eq_span(*node, *v);
                    if !sp.is_dummy() {
                        d = d.with_note(format!("the cycle passes through `{v}`"), sp);
                    }
                }
                d
            }
            SemError::InNode { node, var, inner } => {
                let span = match var {
                    Some(v) => spans.eq_span(*node, *v),
                    None => spans.node_span(*node),
                };
                let mut d = Diagnostic::error(inner.code(), self.to_string(), span);
                let header = spans.node_span(*node);
                if !header.is_dummy() && header != span {
                    d = d.with_note(format!("in node `{node}`"), header);
                }
                d
            }
            SemError::UndefinedVariable(x) | SemError::CausalityLoop(x) => {
                Diagnostic::error(self.code(), self.to_string(), spans.var_span(None, *x))
            }
            SemError::UnknownNode(n) => {
                Diagnostic::error(self.code(), self.to_string(), spans.node_span(*n))
            }
            _ => Diagnostic::error(self.code(), self.to_string(), Span::DUMMY),
        };
        Diagnostics::from(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_node_keeps_the_innermost_context() {
        let e = SemError::TypeError("t".into())
            .in_node_at(Ident::new("f"), Some(Ident::new("x")))
            .in_node(Ident::new("g"));
        match &e {
            SemError::InNode { node, var, .. } => {
                assert_eq!(*node, Ident::new("f"));
                assert_eq!(*var, Some(Ident::new("x")));
            }
            other => panic!("unexpected {other}"),
        }
        assert_eq!(e.code(), codes::E0406);
        assert!(e.to_string().starts_with("in node f: type inconsistency"));
    }

    #[test]
    fn scheduling_cycle_resolves_spans_and_notes() {
        let (f, a, b) = (Ident::new("f"), Ident::new("a"), Ident::new("b"));
        let mut spans = SpanMap::new();
        spans.record_node(f, Span::new(0, 4));
        spans.record_eq(f, a, Span::new(10, 20));
        spans.record_eq(f, b, Span::new(30, 40));
        let e = SemError::SchedulingCycle(f, vec![a, b]);
        let diags = e.to_diagnostics(&spans);
        let d = diags.iter().next().unwrap();
        assert_eq!(d.code, codes::E0408);
        assert_eq!(d.span, Span::new(10, 20));
        assert_eq!(d.notes.len(), 1);
        assert_eq!(d.notes[0].span, Span::new(30, 40));
    }

    #[test]
    fn context_free_errors_degrade_to_dummy_spans() {
        let diags = SemError::BadSchedule("m".into()).to_diagnostics(&SpanMap::new());
        assert_eq!(diags.iter().next().unwrap().span, Span::DUMMY);
        assert_eq!(diags.iter().next().unwrap().code, codes::E0409);
    }
}
