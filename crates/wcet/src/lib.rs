//! Worst-case execution time estimation over generated Clight (§5).
//!
//! The paper estimates the WCET of generated `step` functions with the
//! OTAWA v5 framework ("trivial" script, default parameters) on
//! armv7-a/vfpv3-d16 binaries produced by CompCert 2.6 and GCC 4.8
//! (`-O1`, with and without inlining). None of those tools fit in a pure
//! Rust reproduction, so this crate substitutes a *static longest-path
//! cycle analysis* directly on the Clight AST:
//!
//! * `step` bodies are loop-free by construction, so the worst case is a
//!   max-over-branches / sum-over-sequences traversal;
//! * an ARM-flavoured cost table charges loads/stores, ALU and VFP
//!   operations, compare-and-branch penalties, call overheads and
//!   register-pressure spills;
//! * the three back-end models reproduce the *mechanisms* the paper uses
//!   to explain Fig. 12: [`CostModel::CompCert`] keeps every conditional
//!   as a branch and every call out of line; [`CostModel::Gcc`] adds
//!   if-conversion of small call-free branches to predicated instructions
//!   ("GCC applies 'if-conversions' to exploit predicated ARM
//!   instructions") and cheaper folded addressing; [`CostModel::GccInline`]
//!   additionally inlines calls transitively ("the estimated WCETs for
//!   the Lustre v6 generated code only become competitive when inlining
//!   is enabled").
//!
//! Absolute numbers are not comparable to the paper's (different
//! hardware model); the *relationships* between compilation schemes are.

use velus_clight::ast::{Expr, Function, Program, Stmt};
use velus_common::{Ident, IdentMap};
use velus_ops::{CBinOp, CTy, CUnOp};

/// Which back end's code shape to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostModel {
    /// CompCert 2.6-like: straightforward instruction selection, no
    /// if-conversion, no inlining.
    CompCert,
    /// GCC 4.8 `-O1`-like: if-conversion of small branches, folded
    /// addressing, slightly cheaper calls.
    Gcc,
    /// GCC with inlining: every internal call inlined transitively.
    GccInline,
}

impl CostModel {
    /// All models, in the paper's column order.
    pub const ALL: [CostModel; 3] = [CostModel::CompCert, CostModel::Gcc, CostModel::GccInline];

    /// The CLI spelling (`cc`, `gcc`, `gcci`).
    pub fn name(self) -> &'static str {
        match self {
            CostModel::CompCert => "cc",
            CostModel::Gcc => "gcc",
            CostModel::GccInline => "gcci",
        }
    }
}

impl std::str::FromStr for CostModel {
    type Err = String;

    fn from_str(s: &str) -> Result<CostModel, String> {
        velus_common::parse_enum_flag(
            "cost model",
            s,
            &[
                ("cc", CostModel::CompCert),
                ("gcc", CostModel::Gcc),
                ("gcci", CostModel::GccInline),
            ],
        )
    }
}

/// Errors of the analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WcetError {
    /// The function (or a callee) was not found.
    UnknownFunction(Ident),
    /// The function contains a loop (only the simulation `main` does).
    LoopInAnalyzedCode(Ident),
}

impl std::fmt::Display for WcetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WcetError::UnknownFunction(g) => write!(f, "unknown function {g}"),
            WcetError::LoopInAnalyzedCode(g) => write!(f, "loop in analyzed function {g}"),
        }
    }
}

impl std::error::Error for WcetError {}

/// The cost table. All costs in cycles.
#[derive(Debug, Clone)]
struct Costs {
    /// Register-to-register move / immediate load.
    reg: u64,
    /// Address computation for a field access (folded to 0 by GCC).
    addr: u64,
    /// Memory load / store.
    mem: u64,
    /// Integer ALU op.
    alu: u64,
    /// Integer multiply.
    mul: u64,
    /// Integer divide (library call on armv7 without hardware divide).
    div: u64,
    /// VFP add/sub/mul.
    fop: u64,
    /// VFP divide.
    fdiv: u64,
    /// Int/float conversions.
    cvt: u64,
    /// Compare + conditional branch penalty (pessimistic, as with the
    /// "trivial" OTAWA script).
    branch: u64,
    /// Predicated-execution overhead per if-converted conditional.
    predicate: u64,
    /// Call overhead (save/restore, branch-and-link, prologue/epilogue).
    call: u64,
    /// Per-argument move at a call site.
    arg: u64,
    /// Function prologue/epilogue.
    frame: u64,
    /// Volatile access.
    vol: u64,
    /// Number of general-purpose registers before spilling starts.
    regs: usize,
    /// Cost per spilled temporary (store + reload, amortized).
    spill: u64,
    /// Whether small call-free conditionals are if-converted.
    if_conversion: bool,
    /// Whether internal calls are inlined.
    inline: bool,
}

fn costs(model: CostModel) -> Costs {
    match model {
        CostModel::CompCert => Costs {
            reg: 1,
            addr: 1,
            mem: 2,
            alu: 1,
            mul: 3,
            div: 24,
            fop: 4,
            fdiv: 28,
            cvt: 4,
            branch: 4,
            predicate: 1,
            call: 14,
            arg: 1,
            frame: 6,
            vol: 3,
            regs: 9,
            spill: 6,
            if_conversion: false,
            inline: false,
        },
        CostModel::Gcc | CostModel::GccInline => Costs {
            reg: 1,
            addr: 0,
            mem: 2,
            alu: 1,
            mul: 3,
            div: 24,
            fop: 4,
            fdiv: 28,
            cvt: 4,
            branch: 4,
            predicate: 1,
            call: 10,
            arg: 1,
            frame: 4,
            vol: 3,
            regs: 11,
            spill: 4,
            if_conversion: true,
            inline: model == CostModel::GccInline,
        },
    }
}

struct Analyzer<'p> {
    prog: &'p Program,
    c: Costs,
    memo: IdentMap<u64>,
}

impl Analyzer<'_> {
    fn expr(&self, e: &Expr) -> u64 {
        match e {
            Expr::Const(..) => self.c.reg,
            Expr::Temp(..) => 0,
            Expr::Var(..) => self.c.addr + self.c.mem,
            Expr::Field(a, ..) => self.expr_addr(a) + self.c.addr + self.c.mem,
            Expr::DerefField(p, ..) => self.expr(p) + self.c.addr + self.c.mem,
            Expr::AddrOf(a) => self.expr_addr(a) + self.c.reg,
            Expr::Unop(op, e1, _) => {
                self.expr(e1)
                    + match op {
                        CUnOp::Not | CUnOp::Neg => self.c.alu,
                        CUnOp::Cast(to) => {
                            if to.is_float() {
                                self.c.cvt
                            } else {
                                self.c.alu
                            }
                        }
                    }
            }
            Expr::Binop(op, e1, e2, ty) => {
                let operands = self.expr(e1) + self.expr(e2);
                let is_float = matches!(ty, CTy::F32 | CTy::F64)
                    || matches!(e1.ty().as_scalar(), Some(t) if t.is_float());
                operands
                    + match op {
                        CBinOp::Mul if !is_float => self.c.mul,
                        CBinOp::Div | CBinOp::Mod if !is_float => self.c.div,
                        CBinOp::Mul | CBinOp::Div if is_float => self.c.fdiv.min(self.c.fop * 2),
                        _ if is_float => self.c.fop,
                        _ => self.c.alu,
                    }
            }
        }
    }

    fn expr_addr(&self, e: &Expr) -> u64 {
        match e {
            Expr::Var(..) => 0,
            Expr::Field(a, ..) => self.expr_addr(a) + self.c.addr,
            Expr::DerefField(p, ..) => self.expr(p) + self.c.addr,
            other => self.expr(other),
        }
    }

    /// Whether a branch is small and effect-free enough for predication.
    fn if_convertible(s: &Stmt) -> bool {
        fn atoms(s: &Stmt) -> Option<usize> {
            match s {
                Stmt::Skip => Some(0),
                Stmt::Assign(..) | Stmt::Set(..) => Some(1),
                Stmt::Seq(a, b) => Some(atoms(a)? + atoms(b)?),
                Stmt::If(_, t, f) => Some(1 + atoms(t)? + atoms(f)?),
                Stmt::Call { .. }
                | Stmt::VolLoad(..)
                | Stmt::VolStore(..)
                | Stmt::Loop(..)
                | Stmt::Return(..) => None,
            }
        }
        matches!(atoms(s), Some(n) if n <= 4)
    }

    fn stmt(&mut self, fname: Ident, s: &Stmt) -> Result<u64, WcetError> {
        Ok(match s {
            Stmt::Skip => 0,
            Stmt::Seq(a, b) => self.stmt(fname, a)? + self.stmt(fname, b)?,
            Stmt::Set(_, e) => self.expr(e) + self.c.reg,
            Stmt::Assign(lv, e) => self.expr(e) + self.expr_addr(lv) + self.c.addr + self.c.mem,
            Stmt::If(cnd, t, f) => {
                let cond = self.expr(cnd) + self.c.alu;
                let tc = self.stmt(fname, t)?;
                let fc = self.stmt(fname, f)?;
                if self.c.if_conversion && Self::if_convertible(t) && Self::if_convertible(f) {
                    cond + tc + fc + self.c.predicate
                } else {
                    cond + self.c.branch + tc.max(fc)
                }
            }
            Stmt::Call(dest, g, args) => {
                let args_cost: u64 = args.iter().map(|a| self.expr(a) + self.c.arg).sum();
                let callee = if self.c.inline {
                    self.function_body_cost(*g)?
                } else {
                    self.c.call + self.function_cost(*g)?
                };
                args_cost + callee + if dest.is_some() { self.c.reg } else { 0 }
            }
            Stmt::VolLoad(..) => self.c.vol + self.c.reg,
            Stmt::VolStore(_, e) => self.expr(e) + self.c.vol,
            Stmt::Loop(_) => return Err(WcetError::LoopInAnalyzedCode(fname)),
            Stmt::Return(e) => e.as_ref().map_or(0, |e| self.expr(e)) + self.c.reg,
        })
    }

    /// Body cost without frame overhead (for inlining).
    fn function_body_cost(&mut self, fname: Ident) -> Result<u64, WcetError> {
        let f: &Function = self
            .prog
            .function(fname)
            .ok_or(WcetError::UnknownFunction(fname))?;
        let body = f.body.clone();
        self.stmt(fname, &body)
    }

    /// Full cost: frame + spills + body. Memoized.
    fn function_cost(&mut self, fname: Ident) -> Result<u64, WcetError> {
        if let Some(&c) = self.memo.get(&fname) {
            return Ok(c);
        }
        let f: &Function = self
            .prog
            .function(fname)
            .ok_or(WcetError::UnknownFunction(fname))?;
        let live = f.temps.len() + f.params.len();
        let spills = live.saturating_sub(self.c.regs) as u64 * self.c.spill;
        let body = self.function_body_cost(fname)?;
        let total = self.c.frame + spills + body;
        self.memo.insert(fname, total);
        Ok(total)
    }
}

/// Estimates the WCET in cycles of function `fname` of `prog` under the
/// given cost model.
///
/// # Errors
///
/// Unknown functions; loops in the analyzed code (only the generated
/// `main` contains one — analyze `step` functions).
pub fn wcet_function(prog: &Program, fname: Ident, model: CostModel) -> Result<u64, WcetError> {
    let mut a = Analyzer {
        prog,
        c: costs(model),
        memo: IdentMap::default(),
    };
    a.function_cost(fname)
}

/// Estimates the WCET of the `step` function of class `root` — the
/// quantity reported in Fig. 12.
///
/// # Errors
///
/// See [`wcet_function`].
pub fn wcet_step(prog: &Program, root: Ident, model: CostModel) -> Result<u64, WcetError> {
    let step = velus_clight::generate::method_fn_name(root, velus_obc::ast::step_name());
    wcet_function(prog, step, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use velus_clight::ast::{Expr, Function, Program, Stmt};
    use velus_clight::ctypes::CType;
    use velus_ops::CVal;

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    fn iconst(v: i32) -> Expr {
        Expr::Const(CVal::int(v), CTy::I32)
    }

    fn prog_with(body: Stmt, temps: usize) -> Program {
        Program {
            composites: vec![],
            functions: vec![Function {
                name: id("f"),
                params: vec![],
                vars: vec![],
                temps: (0..temps)
                    .map(|i| (Ident::new(&format!("t{i}")), CType::Scalar(CTy::I32)))
                    .collect(),
                ret: CType::Void,
                body,
            }],
            volatiles_in: vec![],
            volatiles_out: vec![],
        }
    }

    #[test]
    fn branches_are_maxed_under_compcert() {
        // if c then {8 sets} else {1 set}: WCET takes the 8-set arm.
        let heavy = Stmt::seq_all((0..8).map(|_| Stmt::Set(id("x"), iconst(1))));
        let light = Stmt::Set(id("x"), iconst(1));
        let s = Stmt::If(
            Expr::Const(CVal::bool(true), CTy::Bool),
            Box::new(heavy.clone()),
            Box::new(light.clone()),
        );
        let p = prog_with(s, 1);
        let both = wcet_function(&p, id("f"), CostModel::CompCert).unwrap();
        let p_heavy = prog_with(heavy, 1);
        let heavy_only = wcet_function(&p_heavy, id("f"), CostModel::CompCert).unwrap();
        assert!(both > heavy_only, "{both} vs {heavy_only}");
        // But not by the cost of the light branch too.
        let p_light = prog_with(light, 1);
        let light_only = wcet_function(&p_light, id("f"), CostModel::CompCert).unwrap();
        assert!(both < heavy_only + light_only + 10);
    }

    #[test]
    fn gcc_if_converts_small_branches() {
        // A tiny conditional: gcc pays both arms but no branch penalty;
        // repeated many times the predicated form must be cheaper than
        // branch-penalty form when arms are single sets.
        let tiny = Stmt::If(
            Expr::Const(CVal::bool(true), CTy::Bool),
            Box::new(Stmt::Set(id("x"), iconst(1))),
            Box::new(Stmt::Skip),
        );
        let s = Stmt::seq_all(std::iter::repeat_n(tiny, 10));
        let p = prog_with(s, 1);
        let cc = wcet_function(&p, id("f"), CostModel::CompCert).unwrap();
        let gcc = wcet_function(&p, id("f"), CostModel::Gcc).unwrap();
        assert!(gcc < cc, "gcc {gcc} vs cc {cc}");
    }

    #[test]
    fn inlining_removes_call_overhead() {
        // g() { set } ; f() { call g x 5 }
        let g = Function {
            name: id("g"),
            params: vec![],
            vars: vec![],
            temps: vec![(id("t"), CType::Scalar(CTy::I32))],
            ret: CType::Void,
            body: Stmt::Set(id("t"), iconst(1)),
        };
        let f = Function {
            name: id("f"),
            params: vec![],
            vars: vec![],
            temps: vec![],
            ret: CType::Void,
            body: Stmt::seq_all((0..5).map(|_| Stmt::Call(None, id("g"), vec![]))),
        };
        let p = Program {
            composites: vec![],
            functions: vec![g, f],
            volatiles_in: vec![],
            volatiles_out: vec![],
        };
        let gcc = wcet_function(&p, id("f"), CostModel::Gcc).unwrap();
        let gcci = wcet_function(&p, id("f"), CostModel::GccInline).unwrap();
        assert!(gcci < gcc, "{gcci} vs {gcc}");
    }

    #[test]
    fn register_pressure_costs() {
        let s = Stmt::Set(id("t0"), iconst(1));
        let few = prog_with(s.clone(), 2);
        let many = prog_with(s, 30);
        let a = wcet_function(&few, id("f"), CostModel::CompCert).unwrap();
        let b = wcet_function(&many, id("f"), CostModel::CompCert).unwrap();
        assert!(b > a);
    }

    #[test]
    fn loops_are_rejected() {
        let p = prog_with(Stmt::Loop(Box::new(Stmt::Skip)), 0);
        assert!(matches!(
            wcet_function(&p, id("f"), CostModel::CompCert),
            Err(WcetError::LoopInAnalyzedCode(_))
        ));
    }

    #[test]
    fn integer_division_is_expensive() {
        let div = Stmt::Set(
            id("t0"),
            Expr::Binop(
                CBinOp::Div,
                Box::new(iconst(10)),
                Box::new(iconst(3)),
                CTy::I32,
            ),
        );
        let add = Stmt::Set(
            id("t0"),
            Expr::Binop(
                CBinOp::Add,
                Box::new(iconst(10)),
                Box::new(iconst(3)),
                CTy::I32,
            ),
        );
        let pd = prog_with(div, 1);
        let pa = prog_with(add, 1);
        let d = wcet_function(&pd, id("f"), CostModel::CompCert).unwrap();
        let a = wcet_function(&pa, id("f"), CostModel::CompCert).unwrap();
        assert!(d > a + 15);
    }
}
