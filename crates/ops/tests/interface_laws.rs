//! Property-based checks of the operator-interface laws (paper §4.1).
//!
//! The paper requires, of every instantiation: `true ≠ false`, well-typed
//! booleans, well-typed constants, and type preservation for the unary and
//! binary operator semantics. We verify these for `ClightOps` over random
//! values, types and operators.

use proptest::prelude::*;
use velus_ops::{CBinOp, CTy, CUnOp, CVal, ClightOps, Literal, Ops};

fn arb_ty() -> impl Strategy<Value = CTy> {
    prop::sample::select(CTy::ALL.to_vec())
}

/// A well-typed value of the given type.
fn arb_val(ty: CTy) -> BoxedStrategy<CVal> {
    match ty {
        CTy::Bool => prop::bool::ANY.prop_map(CVal::bool).boxed(),
        CTy::I8 => any::<i8>().prop_map(|v| CVal::int(v as i32)).boxed(),
        CTy::U8 => any::<u8>().prop_map(|v| CVal::int(v as i32)).boxed(),
        CTy::I16 => any::<i16>().prop_map(|v| CVal::int(v as i32)).boxed(),
        CTy::U16 => any::<u16>().prop_map(|v| CVal::int(v as i32)).boxed(),
        CTy::I32 | CTy::U32 => any::<i32>().prop_map(CVal::int).boxed(),
        CTy::I64 | CTy::U64 => any::<i64>().prop_map(CVal::long).boxed(),
        CTy::F32 => any::<f32>().prop_map(CVal::single).boxed(),
        CTy::F64 => any::<f64>().prop_map(CVal::float).boxed(),
    }
}

fn arb_unop() -> impl Strategy<Value = CUnOp> {
    prop_oneof![
        Just(CUnOp::Not),
        Just(CUnOp::Neg),
        arb_ty().prop_map(CUnOp::Cast),
    ]
}

fn arb_binop() -> impl Strategy<Value = CBinOp> {
    prop::sample::select(vec![
        CBinOp::Add,
        CBinOp::Sub,
        CBinOp::Mul,
        CBinOp::Div,
        CBinOp::Mod,
        CBinOp::And,
        CBinOp::Or,
        CBinOp::Xor,
        CBinOp::Eq,
        CBinOp::Ne,
        CBinOp::Lt,
        CBinOp::Le,
        CBinOp::Gt,
        CBinOp::Ge,
    ])
}

proptest! {
    /// Generated values really are well typed (sanity of the generator).
    #[test]
    fn generator_produces_well_typed_values(ty in arb_ty(), seed in any::<u64>()) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let _ = seed;
        let v = arb_val(ty).new_tree(&mut runner).unwrap().current();
        prop_assert!(ClightOps::well_typed(&v, &ty));
    }

    /// Type preservation for unary operators.
    #[test]
    fn unop_type_preservation(ty in arb_ty(), op in arb_unop(), seed in any::<u64>()) {
        let mut runner = proptest::test_runner::TestRunner::new(proptest::test_runner::Config {
            rng_algorithm: proptest::test_runner::RngAlgorithm::ChaCha,
            ..Default::default()
        });
        let _ = seed;
        let v = arb_val(ty).new_tree(&mut runner).unwrap().current();
        if let Some(rty) = ClightOps::type_unop(op, &ty) {
            if let Some(rv) = ClightOps::sem_unop(op, &v, &ty) {
                prop_assert!(
                    ClightOps::well_typed(&rv, &rty),
                    "({op} {v} : {ty}) = {rv} not well typed at {rty}"
                );
            }
        }
    }

    /// Type preservation for binary operators.
    #[test]
    fn binop_type_preservation(ty in arb_ty(), op in arb_binop(), seed in any::<u64>()) {
        let mut runner = proptest::test_runner::TestRunner::new(proptest::test_runner::Config {
            rng_algorithm: proptest::test_runner::RngAlgorithm::ChaCha,
            ..Default::default()
        });
        let _ = seed;
        let v1 = arb_val(ty).new_tree(&mut runner).unwrap().current();
        let v2 = arb_val(ty).new_tree(&mut runner).unwrap().current();
        if let Some(rty) = ClightOps::type_binop(op, &ty, &ty) {
            if let Some(rv) = ClightOps::sem_binop(op, &v1, &ty, &v2, &ty) {
                prop_assert!(
                    ClightOps::well_typed(&rv, &rty),
                    "({v1} {op} {v2} : {ty}) = {rv} not well typed at {rty}"
                );
            }
        }
    }

    /// Casting a value to its own type is the identity on integers.
    #[test]
    fn cast_to_same_integer_type_is_identity(ty in arb_ty().prop_filter("int", |t| t.is_integer()), seed in any::<u64>()) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let _ = seed;
        let v = arb_val(ty).new_tree(&mut runner).unwrap().current();
        let r = ClightOps::sem_unop(CUnOp::Cast(ty), &v, &ty).unwrap();
        prop_assert_eq!(r, v);
    }

    /// Literal elaboration always yields constants of the requested type.
    #[test]
    fn literal_constants_are_well_typed(i in any::<i64>(), ty in arb_ty()) {
        if let Some(c) = ClightOps::const_of_literal(&Literal::Int(i as i128), &ty) {
            prop_assert_eq!(ClightOps::type_of_const(&c), ty);
            prop_assert!(ClightOps::well_typed(&ClightOps::sem_const(&c), &ty));
        }
    }

    /// Comparisons always produce booleans.
    #[test]
    fn comparisons_produce_booleans(ty in arb_ty(), seed in any::<u64>()) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let _ = seed;
        let v1 = arb_val(ty).new_tree(&mut runner).unwrap().current();
        let v2 = arb_val(ty).new_tree(&mut runner).unwrap().current();
        for op in [CBinOp::Eq, CBinOp::Ne, CBinOp::Lt, CBinOp::Le, CBinOp::Gt, CBinOp::Ge] {
            if ClightOps::type_binop(op, &ty, &ty).is_some() {
                if let Some(r) = ClightOps::sem_binop(op, &v1, &ty, &v2, &ty) {
                    prop_assert!(ClightOps::as_bool(&r).is_some());
                }
            }
        }
    }
}

#[test]
fn true_and_false_are_distinct_booleans() {
    assert_ne!(ClightOps::true_val(), ClightOps::false_val());
    assert_eq!(ClightOps::as_bool(&ClightOps::true_val()), Some(true));
    assert_eq!(ClightOps::as_bool(&ClightOps::false_val()), Some(false));
}
