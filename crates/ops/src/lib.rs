//! The abstract operator interface of the Vélus compiler (PLDI'17 §4.1,
//! Fig. 10) and its machine-level instantiation.
//!
//! The paper defines the front and middle end of the compiler — SN-Lustre,
//! Obc, the translation between them, and the fusion optimization — as Coq
//! functors over a *module type* of operators: abstract types for values,
//! value types, constants and operators, together with a typing judgment and
//! partial semantic functions. The interface is instantiated with CompCert's
//! values and Clight's operator semantics only in the final generation pass.
//!
//! This crate is the Rust rendition of that design:
//!
//! * [`Ops`] — the operator interface as a trait with associated types.
//!   Every IR, every interpreter, and the SN-Lustre → Obc translation in the
//!   sibling crates is generic over `O: Ops`.
//! * [`ClightOps`] — the canonical instantiation mirroring CompCert:
//!   32/64-bit machine integers with two's-complement wrap-around, IEEE-754
//!   floats, booleans that are exactly the integers 0 and 1, explicit casts,
//!   and *partial* semantics (`None` models CompCert's undefined behaviours:
//!   division by zero, `INT_MIN / -1`, …).
//! * [`toy::I64Ops`] — a deliberately small second instantiation used by
//!   tests to demonstrate that the pipeline really is parametric.
//!
//! The interface properties stated in the paper (e.g. `true ≠ false`, type
//! preservation of the operator semantics) are checked for both
//! instantiations by this crate's property-based tests.
//!
//! # Examples
//!
//! ```
//! use velus_ops::{ClightOps, Ops, CBinOp, CTy, CVal};
//!
//! let two = CVal::int(2);
//! let three = CVal::int(3);
//! let ty = CTy::I32;
//! let sum = ClightOps::sem_binop(CBinOp::Add, &two, &ty, &three, &ty).unwrap();
//! assert_eq!(sum, CVal::int(5));
//! assert!(ClightOps::well_typed(&sum, &ty));
//! ```

mod cops;
mod cvals;
mod interface;
pub mod toy;

pub use cops::ClightOps;
pub use cvals::{CBinOp, CConst, CTy, CUnOp, CVal};
pub use interface::{Literal, Ops, SurfaceBinOp, SurfaceUnOp};
